#include "core/solver.hpp"

#include <algorithm>

#include "arrays/design3_feedback.hpp"
#include "arrays/graph_adapter.hpp"
#include "baseline/matrix_chain.hpp"
#include "baseline/multistage_dp.hpp"
#include "dnc/schedule.hpp"
#include "arrays/gkt_array.hpp"
#include "nonserial/elimination.hpp"
#include "nonserial/grouping.hpp"
#include "nonserial/serial_chain.hpp"

namespace sysdp {

SolveReport solve_monadic_serial(const MultistageGraph& g) {
  SolveReport rep;
  rep.cls = {Recursion::kMonadic, Structure::kSerial};
  rep.method = "Design 1: pipelined systolic string of matrix multiplications";
  const auto run = run_design1_shortest(g);
  rep.cost = *std::min_element(run.values.begin(), run.values.end());
  rep.work_steps = run.busy_steps;
  rep.cycles = run.cycles;
  // Path recovery needs the path-register extension (Design 3); for the
  // edge-cost form we trace the path with the sequential sweep.
  const auto ref = solve_multistage(g);
  rep.assignment = ref.path;
  return rep;
}

SolveReport solve_monadic_serial(const NodeValueGraph& g) {
  SolveReport rep;
  rep.cls = {Recursion::kMonadic, Structure::kSerial};
  rep.method = "Design 3: feedback systolic array with path registers";
  Design3Feedback array(g);
  auto run = array.run();
  rep.cost = run.cost;
  rep.assignment = std::move(run.path);
  rep.work_steps = run.stats.busy_steps;
  rep.cycles = run.stats.cycles;
  return rep;
}

SolveReport solve_polyadic_serial(const MultistageGraph& g, std::uint64_t k) {
  SolveReport rep;
  rep.cls = {Recursion::kPolyadic, Structure::kSerial};
  rep.method = "divide-and-conquer string product on " + std::to_string(k) +
               " systolic arrays";
  OpCount ops;
  std::uint64_t steps = 0;
  const Matrix<Cost> all = execute_dnc(g.matrix_string(), k, &ops, &steps);
  Cost best = kInfCost;
  for (std::size_t i = 0; i < all.rows(); ++i) {
    for (std::size_t j = 0; j < all.cols(); ++j) {
      best = std::min(best, all(i, j));
    }
  }
  rep.cost = best;
  rep.work_steps = ops.mac;
  rep.cycles = steps;  // makespan in units of T_1
  return rep;
}

SolveReport solve_chain_order(const std::vector<Cost>& dims) {
  SolveReport rep;
  rep.cls = {Recursion::kPolyadic, Structure::kNonserial};
  rep.method =
      "serialised AND/OR-graph on a triangular (GKT) systolic array";
  GktArray array(dims);
  const auto run = array.run();
  rep.cost = run.total();
  rep.work_steps = run.stats.busy_steps;
  rep.cycles = run.stats.cycles;
  // assignment: the split index per subchain is in run.split; expose the
  // root split so callers can recurse if needed.
  if (dims.size() > 2) rep.assignment = {run.split(0, dims.size() - 2)};
  return rep;
}

SolveReport solve_objective(const NonserialObjective& obj) {
  SolveReport rep;
  rep.cls = classify(obj, Recursion::kMonadic);

  if (rep.cls.structure == Structure::kSerial && obj.num_variables() >= 2 &&
      obj.combine() == Combine::kSum) {
    const auto chain = serial_to_multistage(obj);
    rep.method = "serial objective -> multistage graph -> Design 1";
    const auto run = run_design1_shortest(chain.graph);
    rep.cost = *std::min_element(run.values.begin(), run.values.end());
    rep.work_steps = run.busy_steps;
    rep.cycles = run.cycles;
    rep.assignment = chain.decode(solve_multistage(chain.graph).path);
    return rep;
  }

  // Nonserial: try the banded grouping transform of Section 6.1 first.
  bool banded = obj.num_variables() >= 3;
  for (const Term& t : obj.terms()) {
    if (t.scope.back() - t.scope.front() > 2) {
      banded = false;
      break;
    }
  }
  if (banded) {
    const auto grouped = group_banded_to_serial(obj);
    const bool minimax = grouped.combine == Combine::kMax;
    rep.method = minimax
                     ? "grouping transform (eq. 41) -> serial graph -> "
                       "(MIN,MAX) sweep"
                     : "grouping transform (eq. 41) -> serial multistage "
                       "graph -> DP sweep";
    const auto ref = minimax ? solve_multistage_minimax(grouped.graph)
                             : solve_multistage(grouped.graph);
    rep.cost = ref.cost;
    rep.work_steps = ref.ops.mac;
    rep.assignment = grouped.decode(ref.path);
    return rep;
  }

  rep.method = "general variable elimination (min-degree order)";
  auto res = solve_by_elimination(obj, min_degree_order(obj));
  rep.cost = res.cost;
  rep.work_steps = res.steps;
  rep.assignment = std::move(res.assignment);
  return rep;
}

}  // namespace sysdp
