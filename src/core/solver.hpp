// High-level solve() façade.
//
// Routes each DP class to the architecture Table 1 prescribes and reports
// which path was taken, so applications can use one entry point per problem
// shape without touching the array models directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classification.hpp"
#include "graph/multistage_graph.hpp"
#include "graph/node_value_graph.hpp"
#include "nonserial/objective.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

struct SolveReport {
  Cost cost = kInfCost;
  /// Optimal assignment: node per stage (graph problems) or value per
  /// variable (objective problems); empty when the method reports only the
  /// optimum (e.g. a matrix-string product of costs).
  std::vector<std::size_t> assignment;
  DpClass cls;
  std::string method;            ///< human-readable route taken
  std::uint64_t work_steps = 0;  ///< add-compare steps performed
  std::uint64_t cycles = 0;      ///< systolic wall-clock, when applicable
};

/// Monadic-serial, edge-cost form: Design 1 (pipelined string of matrix
/// multiplications).
[[nodiscard]] SolveReport solve_monadic_serial(const MultistageGraph& g);

/// Monadic-serial, node-value form: Design 3 (feedback array) with path
/// recovery.
[[nodiscard]] SolveReport solve_monadic_serial(const NodeValueGraph& g);

/// Polyadic-serial: divide-and-conquer string product on `k` arrays
/// (Section 4).  Returns the optimal source-to-sink cost.
[[nodiscard]] SolveReport solve_polyadic_serial(const MultistageGraph& g,
                                                std::uint64_t k);

/// Polyadic-nonserial: optimal matrix-chain order via the serialised
/// AND/OR-graph / GKT array (Section 6.2).
[[nodiscard]] SolveReport solve_chain_order(const std::vector<Cost>& dims);

/// Objective-function entry point: classifies the objective and dispatches —
/// serial chains go to Design 3 via the multistage mapping; banded
/// nonserial objectives are grouped into a serial problem (Section 6.1);
/// anything else falls back to general variable elimination.
[[nodiscard]] SolveReport solve_objective(const NonserialObjective& obj);

}  // namespace sysdp
