// DP-formulation classification (Section 2 of the paper).
//
// A DP formulation is monadic or polyadic by the number of recursive terms
// in its cost function, and serial or nonserial by the structure of its
// objective (equivalently: whether its AND/OR-graph has arcs between
// adjacent levels only).  The four classes index Table 1, which maps each
// to the architecture the paper recommends.
#pragma once

#include <string>

#include "nonserial/objective.hpp"

namespace sysdp {

/// Number of recursive terms in the functional equation.
enum class Recursion { kMonadic, kPolyadic };

/// Structure of the objective / AND-OR-graph.
enum class Structure { kSerial, kNonserial };

struct DpClass {
  Recursion recursion = Recursion::kMonadic;
  Structure structure = Structure::kSerial;

  friend bool operator==(const DpClass&, const DpClass&) = default;
};

[[nodiscard]] std::string to_string(Recursion r);
[[nodiscard]] std::string to_string(Structure s);
[[nodiscard]] std::string to_string(const DpClass& c);

/// Classify an objective's structure from its interaction graph; the
/// recursion kind is the caller's modelling choice (the same problem can be
/// posed monadically or polyadically — Section 2.1).
[[nodiscard]] DpClass classify(const NonserialObjective& obj,
                               Recursion intended);

}  // namespace sysdp
