#include "core/classification.hpp"

namespace sysdp {

std::string to_string(Recursion r) {
  return r == Recursion::kMonadic ? "monadic" : "polyadic";
}

std::string to_string(Structure s) {
  return s == Structure::kSerial ? "serial" : "nonserial";
}

std::string to_string(const DpClass& c) {
  return to_string(c.recursion) + "-" + to_string(c.structure);
}

DpClass classify(const NonserialObjective& obj, Recursion intended) {
  return DpClass{intended, obj.is_serial() ? Structure::kSerial
                                           : Structure::kNonserial};
}

}  // namespace sysdp
