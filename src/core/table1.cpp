#include "core/table1.hpp"

#include <sstream>
#include <stdexcept>

namespace sysdp {

const std::vector<Table1Row>& table1() {
  static const std::vector<Table1Row> rows = {
      {{Recursion::kMonadic, Structure::kSerial},
       "many states or quantized values in each stage",
       "solve as string of matrix multiplications",
       "systolic processing"},
      {{Recursion::kPolyadic, Structure::kSerial},
       "many stages",
       "solve by divide-and-conquer algorithms, or search AND/OR-trees",
       "loose coupling for fine grain; tight coupling for coarse grain"},
      {{Recursion::kMonadic, Structure::kNonserial},
       "variables can be eliminated one by one",
       "transform into monadic-serial representation (by grouping variables)",
       "systolic processing"},
      {{Recursion::kPolyadic, Structure::kNonserial},
       "unstructured problems",
       "search AND/OR-graphs; transform into serial AND/OR-graphs",
       "dataflow or systolic processing"},
  };
  return rows;
}

const Table1Row& recommend(const DpClass& cls) {
  for (const auto& row : table1()) {
    if (row.cls == cls) return row;
  }
  throw std::logic_error("recommend: unknown class");  // unreachable
}

std::string render_table1() {
  std::ostringstream os;
  os << "Formulation          | Problem characteristic                         "
        "| Suitable method\n";
  os << std::string(120, '-') << '\n';
  for (const auto& row : table1()) {
    std::string name = to_string(row.cls);
    name.resize(20, ' ');
    std::string characteristic = row.problem_characteristic;
    characteristic.resize(46, ' ');
    os << name << " | " << characteristic << " | " << row.suitable_method
       << "\n                     |                                            "
          "    |   requires: "
       << row.functional_requirement << '\n';
  }
  return os.str();
}

}  // namespace sysdp
