// Table 1 of the paper: formulation -> suitable method -> functional
// requirement.  table1() regenerates the published rows; recommend() is the
// lookup the solve() dispatcher uses.
#pragma once

#include <string>
#include <vector>

#include "core/classification.hpp"

namespace sysdp {

struct Table1Row {
  DpClass cls;
  std::string problem_characteristic;
  std::string suitable_method;
  std::string functional_requirement;
};

/// The four rows of Table 1, in the paper's order.
[[nodiscard]] const std::vector<Table1Row>& table1();

/// The row for a given class.
[[nodiscard]] const Table1Row& recommend(const DpClass& cls);

/// Render the table as fixed-width text (used by bench_table1_summary).
[[nodiscard]] std::string render_table1();

}  // namespace sysdp
