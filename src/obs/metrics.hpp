// Named-counter registry and the sysdp-metrics-v1 document.
//
// The registry is the telemetry layer's scoreboard: anything with a name
// and a number (cycles simulated, PE-busy steps, engine activity, trace
// drops) lands here, and every consumer — the sysdp_trace CLI, the
// sysdp_tool --metrics flag, tests — renders the same two views: aligned
// text for humans, a JSON object for machines.  Iteration order is the
// sorted key order (std::map), so renderings are deterministic and
// golden-testable regardless of insertion order.
//
// sysdp-metrics-v1 is the one-run document sysdp_trace emits: the
// registry plus the per-PE utilisation timeline, self-describing via a
// "schema" field like the bench and lint documents.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sysdp::obs {

class TimelineSink;

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (creating it at 0 first).
  void count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Set counter `name` to an absolute value.
  void set_counter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  /// Set gauge `name` (a measured ratio or wall-clock figure).
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty();
  }

  /// Aligned "name  value" lines, counters first, then gauges.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters": {...}, "gauges": {...}}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// Render the sysdp-metrics-v1 document for one run: the registry plus the
/// optional utilisation timeline (see obs/timeline.hpp).  The timeline's
/// aggregate equals the "busy_steps" counter by construction, which the
/// sysdp_trace CLI asserts before writing the file.
[[nodiscard]] std::string metrics_v1_json(const std::string& design,
                                          const MetricsRegistry& registry,
                                          const TimelineSink* timeline);

/// Write `content` to `path`; throws std::runtime_error on I/O failure.
/// The artifact writers (VCD, chrome trace, metrics documents) all share
/// this error contract.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace sysdp::obs
