// Named-counter registry, log2 histograms and the sysdp-metrics documents.
//
// The registry is the telemetry layer's scoreboard: anything with a name
// and a number (cycles simulated, PE-busy steps, engine activity, trace
// drops) lands here, and every consumer — the sysdp_trace CLI, the
// sysdp_tool --metrics flag, tests — renders the same two views: aligned
// text for humans, a JSON object for machines.  Iteration order is the
// sorted key order (std::map), so renderings are deterministic and
// golden-testable regardless of insertion order.
//
// sysdp-metrics-v1 is the one-run document sysdp_trace emits: the
// registry plus the per-PE utilisation timeline, self-describing via a
// "schema" field like the bench and lint documents.  A registry carrying
// histograms renders as sysdp-metrics-v2 — same document plus a
// "histograms" object; a histogram-free registry still renders v1 byte
// for byte, so existing consumers and goldens are untouched.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace sysdp::obs {

class TimelineSink;

/// Fixed-bucket log2 histogram for latency-style values: bucket 0 counts
/// zeros, bucket i >= 1 counts values in [2^(i-1), 2^i - 1] (the value's
/// bit width), 65 buckets covering all of uint64.  Quantiles resolve to
/// the upper bound of the bucket holding the rank (clamped to the observed
/// max) — deterministic, allocation-free, within 2x of the true order
/// statistic, which is the usual contract for bucketed latency metrics.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) {
    std::size_t b = 0;
    for (std::uint64_t v = value; v != 0; v >>= 1U) ++b;
    ++buckets_[b];
    sum_ += value;
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

  /// Value at quantile `q` in [0, 1]: upper bound of the bucket containing
  /// rank ceil(q * count), clamped to [min, max].  0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// {"count": ..., "sum": ..., "min": ..., "max": ..., "p50": ...,
  ///  "p90": ..., "p99": ..., "buckets": [[upper_bound, count], ...]}
  /// with only non-empty buckets listed.
  [[nodiscard]] std::string to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (creating it at 0 first).
  void count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Set counter `name` to an absolute value.
  void set_counter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  /// Set gauge `name` (a measured ratio or wall-clock figure).
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  /// Record one sample into histogram `name` (creating it empty first).
  void observe(const std::string& name, std::uint64_t value) {
    histograms_[name].record(value);
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Aligned "name  value" lines: counters, then gauges, then histogram
  /// summaries (count/p50/p90/p99).
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters": {...}, "gauges": {...}}, plus a
  /// "histograms" object only when any histogram exists — histogram-free
  /// registries render exactly as before the histogram extension.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Render the metrics document for one run: the registry plus the
/// optional utilisation timeline (see obs/timeline.hpp).  The timeline's
/// aggregate equals the "busy_steps" counter by construction, which the
/// sysdp_trace CLI asserts before writing the file.  Schema version is
/// picked from the registry's contents: "sysdp-metrics-v1" (byte-identical
/// to the pre-histogram renderer) when no histograms were recorded,
/// "sysdp-metrics-v2" when any were — v2 is v1 plus the "histograms"
/// object inside "metrics", nothing else moves.
[[nodiscard]] std::string metrics_json(const std::string& design,
                                       const MetricsRegistry& registry,
                                       const TimelineSink* timeline);

/// Write `content` to `path`; throws std::runtime_error on I/O failure.
/// The artifact writers (VCD, chrome trace, metrics documents) all share
/// this error contract.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace sysdp::obs
