// Minimal JSON rendering helpers shared by the obs emitters.
//
// The repo's JSON documents (sysdp-metrics-v1, chrome traces, bench JSON)
// are all *written*, never parsed, so a couple of inline formatters beat a
// JSON library dependency.
#pragma once

#include <cstdio>
#include <string>

namespace sysdp::obs {

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double with enough digits to round-trip utilisation ratios.
[[nodiscard]] inline std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  std::string out = buf;
  // JSON has no inf/nan; clamp to null like python's json.dumps would fail
  // on — callers never pass these, but a crash-proof fallback is cheaper
  // than an assert in an emitter.
  if (out.find("inf") != std::string::npos ||
      out.find("nan") != std::string::npos) {
    return "null";
  }
  return out;
}

}  // namespace sysdp::obs
