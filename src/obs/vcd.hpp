// VCD (Value Change Dump) waveform writer for any modular array.
//
// VcdSink is an EngineObserver that, at elaboration, walks every
// registered module's describe_ports() declarations (the introspection the
// analysis layer already relies on) and builds a probe per *sampled*
// output port: arithmetic arena lanes and integer registers/buses sample
// automatically, struct-valued lanes wherever the model attached an
// explicit Sampler.  Each completed cycle it samples all probes and dumps
// the changes, producing a standard IEEE 1364 VCD document loadable in
// GTKWave — one $scope per module, one 64-bit integer var per storage key.
//
// Determinism: probes are collected in registration × declaration order
// and deduplicated by storage key (first declaration wins), and samples
// read committed state on cycle boundaries — so the document is
// byte-identical across serial/pooled × dense/sparse engine modes whenever
// the run itself is bit-identical (the repo's standing determinism
// contract), and golden-file testable.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/observer.hpp"
#include "sim/port.hpp"

namespace sysdp::obs {

struct VcdOptions {
  std::string timescale = "1ns";  ///< one engine cycle maps to one tick
  bool include_inputs = false;    ///< probe kIn declarations too (default
                                  ///< outputs only: inputs are someone
                                  ///< else's outputs or environment ties)
};

class VcdSink final : public sim::EngineObserver {
 public:
  explicit VcdSink(std::string top = "sysdp", VcdOptions options = {});
  VcdSink(const VcdSink&) = delete;
  VcdSink& operator=(const VcdSink&) = delete;
  VcdSink(VcdSink&&) = delete;
  VcdSink& operator=(VcdSink&&) = delete;
  /// A streaming sink flushes and closes its file here, so the document on
  /// disk is well-formed (every completed cycle present, cleanly
  /// terminated) even when a run throws mid-replay.
  ~VcdSink();

  void on_elaborated(const sim::Engine& engine) override;
  void on_cycle(const sim::Engine& engine, sim::Cycle t) override;

  /// Stream the document to `path` incrementally: the header and the dump
  /// so far are written immediately, then every completed cycle's changes
  /// as they happen.  VCD is an append-only format, so the file is valid
  /// at every cycle boundary — if the run throws, the destructor closes a
  /// well-formed document covering everything up to the failing cycle.
  /// Call before or after elaboration; throws std::runtime_error if the
  /// file cannot be opened.  write_file() remains available regardless.
  void stream_to(const std::string& path);

  /// Flush and close the stream, reporting I/O errors by exception (the
  /// destructor closes silently instead).  No-op when not streaming.
  void close();

  /// Probes collected at elaboration (0 before the first step()).
  [[nodiscard]] std::size_t num_signals() const noexcept {
    return probes_.size();
  }

  /// The complete VCD document (header + dump so far).
  [[nodiscard]] std::string str() const { return header_ + body_; }

  /// Write str() to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  /// Identifier code for probe `index`: base-94 over the printable ASCII
  /// identifier alphabet the VCD grammar allows.  Public statics: the
  /// compiled-replay waveform sink (obs/replay.hpp) renders through the
  /// same primitives so signal names and value encodings match the
  /// interpreted documents exactly.
  [[nodiscard]] static std::string id_code(std::size_t index);
  /// Replace everything outside [A-Za-z0-9_] so GTKWave parses the name.
  [[nodiscard]] static std::string sanitize(const std::string& name);
  /// Two's-complement binary rendering ("b... ") of a sample.
  static void append_value(std::string& out, std::int64_t value,
                           const std::string& id);

 private:
  struct Probe {
    sim::Sampler sample;
    std::string id;        ///< VCD identifier code
    std::int64_t last = 0; ///< value at the previous dump
  };

  /// Tee everything not yet flushed to the stream, if one is open.
  void flush_stream();

  std::string top_;
  VcdOptions options_;
  std::string header_;
  std::string body_;
  std::vector<Probe> probes_;
  std::ofstream stream_;
  std::size_t flushed_header_ = 0;
  std::size_t flushed_body_ = 0;
  bool elaborated_ = false;
};

}  // namespace sysdp::obs
