// Chrome trace-event JSON exporter (load in Perfetto / chrome://tracing).
//
// One writer covers both time domains the repo has:
//
//   * simulated time — DnC scheduler busy spans (dnc::ScheduleSpan, units
//     of T_1 mapped to microseconds) and cycle-bucketed PE activity
//     counters (TimelineSink), drawn per array / per PE so eq. (29)'s
//     wind-down phase and eq. (9)'s fill/drain are visible as idle gaps;
//   * host wall-clock — ThreadPool lane spans and barrier waits recorded
//     by PoolTraceRecorder, explaining where BatchSpeedup's time goes.
//
// The writer is bounded with an explicit drop count (same policy surface
// as sim::Trace): a runaway span source truncates the trace and says so,
// instead of eating the heap.  Events are rendered eagerly to JSON
// fragments; str() wraps them in the standard {"traceEvents": [...]}
// envelope, which both Perfetto and chrome://tracing accept.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "dnc/schedule.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp::obs {

class TimelineSink;

class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter(ChromeTraceWriter&&) = delete;
  ChromeTraceWriter& operator=(ChromeTraceWriter&&) = delete;
  /// A streaming writer closes the JSON envelope here, so the file on
  /// disk parses even when a run throws mid-trace.
  ~ChromeTraceWriter();

  /// Stream the document to `path` incrementally: events are teed to the
  /// file as they are pushed, and close() (or the destructor) writes the
  /// closing envelope — so a run that throws still leaves a parseable
  /// trace of everything recorded before the failure.  Throws
  /// std::runtime_error if the file cannot be opened.
  void stream_to(const std::string& path);

  /// Finish the envelope, flush and close; reports I/O errors by
  /// exception (the destructor closes silently instead).  No-op when not
  /// streaming.  No events can be streamed after close().
  void close();

  /// Complete event (ph "X"): a [ts, ts+dur) span on (pid, tid).
  /// Timestamps are microseconds, as the trace-event format specifies.
  void complete_event(const std::string& name, const std::string& category,
                      std::uint32_t pid, std::uint32_t tid, double ts_us,
                      double dur_us);
  /// Counter event (ph "C"): one named series sampled at ts.
  void counter_event(const std::string& name, std::uint32_t pid, double ts_us,
                     const std::string& series, std::int64_t value);
  /// Metadata: name the process / thread rows in the viewer.
  void process_name(std::uint32_t pid, const std::string& name);
  void thread_name(std::uint32_t pid, std::uint32_t tid,
                   const std::string& name);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_;
  }

  /// The complete JSON document.
  [[nodiscard]] std::string str() const;
  /// Write str() to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void push(std::string json);

  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> events_;  ///< pre-rendered JSON objects
  std::ofstream stream_;
  std::size_t streamed_ = 0;  ///< events already teed to the stream
};

/// Thread-safe sim::PoolObserver that buffers spans for later export.
class PoolTraceRecorder final : public sim::PoolObserver {
 public:
  struct Span {
    std::size_t lane;
    SpanKind kind;
    std::uint64_t t0_ns;
    std::uint64_t t1_ns;
  };

  void on_span(std::size_t lane, SpanKind kind, std::uint64_t t0_ns,
               std::uint64_t t1_ns) override {
    const std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(Span{lane, kind, t0_ns, t1_ns});
  }

  /// Snapshot of the recorded spans (copy, taken under the lock).
  [[nodiscard]] std::vector<Span> spans() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// DnC scheduler spans: one viewer thread per array, one 1-T_1-wide span
/// per executed product (T_1 rendered as kT1Microseconds).  Names the
/// process "dnc scheduler (K=k)".
void append_schedule_trace(ChromeTraceWriter& writer,
                           const std::vector<ScheduleSpan>& spans,
                           std::uint64_t k, std::uint32_t pid = 1);

/// PE-busy counters from a (finalized) timeline: an aggregate series
/// always, per-PE series only for arrays small enough to stay readable.
void append_timeline_trace(ChromeTraceWriter& writer,
                           const TimelineSink& timeline,
                           std::uint32_t pid = 2);

/// Host-layer pool spans, normalised so the earliest span starts at 0.
void append_pool_trace(ChromeTraceWriter& writer,
                       const PoolTraceRecorder& recorder,
                       std::uint32_t pid = 3);

/// Microseconds one scheduler step (T_1) is drawn as.
inline constexpr double kT1Microseconds = 1000.0;
/// Microseconds one engine cycle is drawn as.
inline constexpr double kCycleMicroseconds = 1.0;

}  // namespace sysdp::obs
