#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/json_util.hpp"
#include "obs/timeline.hpp"

namespace sysdp::obs {

void ChromeTraceWriter::push(std::string json) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(json));
  if (stream_.is_open()) {
    stream_ << (streamed_ == 0 ? "\n" : ",\n") << events_.back();
    stream_.flush();
    ++streamed_;
  }
}

ChromeTraceWriter::~ChromeTraceWriter() {
  // Best-effort envelope close; errors are deliberately swallowed here —
  // use close() for a reporting shutdown.
  if (stream_.is_open()) {
    try {
      close();
    } catch (const std::runtime_error&) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

void ChromeTraceWriter::stream_to(const std::string& path) {
  stream_.open(path, std::ios::binary | std::ios::trunc);
  if (!stream_) {
    throw std::runtime_error("ChromeTraceWriter::stream_to: cannot open " +
                             path);
  }
  stream_ << "{\"traceEvents\": [";
  // Catch up on events pushed before streaming started.
  for (const std::string& e : events_) {
    stream_ << (streamed_ == 0 ? "\n" : ",\n") << e;
    ++streamed_;
  }
  stream_.flush();
}

void ChromeTraceWriter::close() {
  if (!stream_.is_open()) return;
  stream_ << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
             "{\"dropped_events\": " +
                 std::to_string(dropped_) + "}}\n";
  stream_.close();
  if (stream_.fail()) {
    throw std::runtime_error("ChromeTraceWriter::close: write failed");
  }
}

void ChromeTraceWriter::complete_event(const std::string& name,
                                       const std::string& category,
                                       std::uint32_t pid, std::uint32_t tid,
                                       double ts_us, double dur_us) {
  push("{\"name\": \"" + json_escape(name) + "\", \"cat\": \"" +
       json_escape(category) + "\", \"ph\": \"X\", \"pid\": " +
       std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
       ", \"ts\": " + json_double(ts_us) + ", \"dur\": " +
       json_double(dur_us) + "}");
}

void ChromeTraceWriter::counter_event(const std::string& name,
                                      std::uint32_t pid, double ts_us,
                                      const std::string& series,
                                      std::int64_t value) {
  push("{\"name\": \"" + json_escape(name) + "\", \"ph\": \"C\", \"pid\": " +
       std::to_string(pid) + ", \"ts\": " + json_double(ts_us) +
       ", \"args\": {\"" + json_escape(series) + "\": " +
       std::to_string(value) + "}}");
}

void ChromeTraceWriter::process_name(std::uint32_t pid,
                                     const std::string& name) {
  push("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
       std::to_string(pid) + ", \"args\": {\"name\": \"" + json_escape(name) +
       "\"}}");
}

void ChromeTraceWriter::thread_name(std::uint32_t pid, std::uint32_t tid,
                                    const std::string& name) {
  push("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
       std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
       ", \"args\": {\"name\": \"" + json_escape(name) + "\"}}");
}

std::string ChromeTraceWriter::str() const {
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += events_[i];
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"dropped_events\": " +
         std::to_string(dropped_) + "}}\n";
  return out;
}

void ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("ChromeTraceWriter: cannot open " + path);
  }
  out << str();
  if (!out) {
    throw std::runtime_error("ChromeTraceWriter: write failed for " + path);
  }
}

void append_schedule_trace(ChromeTraceWriter& writer,
                           const std::vector<ScheduleSpan>& spans,
                           std::uint64_t k, std::uint32_t pid) {
  writer.process_name(pid, "dnc scheduler (K=" + std::to_string(k) + ")");
  for (std::uint64_t a = 0; a < k; ++a) {
    writer.thread_name(pid, static_cast<std::uint32_t>(a),
                       "array " + std::to_string(a));
  }
  for (const ScheduleSpan& s : spans) {
    writer.complete_event("node " + std::to_string(s.node), "dnc", pid,
                          static_cast<std::uint32_t>(s.array),
                          static_cast<double>(s.start) * kT1Microseconds,
                          kT1Microseconds);
  }
}

void append_timeline_trace(ChromeTraceWriter& writer,
                           const TimelineSink& timeline, std::uint32_t pid) {
  writer.process_name(pid, "pe activity");
  const auto& per_pe = timeline.per_pe();
  const double bucket_us =
      static_cast<double>(timeline.bucket_cycles()) * kCycleMicroseconds;
  // Per-PE series stay readable for small arrays only; the aggregate is
  // always emitted so heatmap totals are never silently capped.
  constexpr std::size_t kMaxPerPeSeries = 32;
  const bool per_pe_series = per_pe.size() <= kMaxPerPeSeries;
  for (std::size_t b = 0; b < timeline.num_buckets(); ++b) {
    std::int64_t total = 0;
    for (std::size_t pe = 0; pe < per_pe.size(); ++pe) {
      const auto v = static_cast<std::int64_t>(per_pe[pe][b]);
      total += v;
      if (per_pe_series) {
        writer.counter_event("pe" + std::to_string(pe), pid,
                             static_cast<double>(b) * bucket_us, "busy", v);
      }
    }
    writer.counter_event("busy_total", pid,
                         static_cast<double>(b) * bucket_us, "busy", total);
  }
}

void append_pool_trace(ChromeTraceWriter& writer,
                       const PoolTraceRecorder& recorder, std::uint32_t pid) {
  const auto spans = recorder.spans();
  writer.process_name(pid, "host thread pool");
  if (spans.empty()) return;
  std::uint64_t t0 = spans.front().t0_ns;
  std::size_t max_lane = 0;
  for (const auto& s : spans) {
    t0 = std::min(t0, s.t0_ns);
    max_lane = std::max(max_lane, s.lane);
  }
  for (std::size_t lane = 0; lane <= max_lane; ++lane) {
    writer.thread_name(pid, static_cast<std::uint32_t>(lane),
                       lane == 0 ? "caller" : "worker " + std::to_string(lane));
  }
  for (const auto& s : spans) {
    const char* name = "chunk";
    const char* cat = "work";
    if (s.kind == sim::PoolObserver::SpanKind::kTask) {
      name = "task";
    } else if (s.kind == sim::PoolObserver::SpanKind::kBarrierWait) {
      name = "barrier_wait";
      cat = "wait";
    }
    writer.complete_event(name, cat, pid, static_cast<std::uint32_t>(s.lane),
                          static_cast<double>(s.t0_ns - t0) / 1000.0,
                          static_cast<double>(s.t1_ns - s.t0_ns) / 1000.0);
  }
}

}  // namespace sysdp::obs
