#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json_util.hpp"
#include "obs/timeline.hpp"

namespace sysdp::obs {

std::string MetricsRegistry::to_text() const {
  std::size_t width = 0;
  for (const auto& kv : counters_) width = std::max(width, kv.first.size());
  for (const auto& kv : gauges_) width = std::max(width, kv.first.size());
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += json_double(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(name) + "\": " + json_double(value);
  }
  out += "}}";
  return out;
}

std::string metrics_v1_json(const std::string& design,
                            const MetricsRegistry& registry,
                            const TimelineSink* timeline) {
  std::string out = "{\n  \"schema\": \"sysdp-metrics-v1\",\n  \"design\": \"" +
                    json_escape(design) + "\",\n  \"metrics\": " +
                    registry.to_json();
  if (timeline != nullptr) {
    out += ",\n  \"timeline\": " + timeline->to_json();
  }
  out += "\n}\n";
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  if (!out) {
    throw std::runtime_error("obs::write_text_file: write failed for " + path);
  }
}

}  // namespace sysdp::obs
