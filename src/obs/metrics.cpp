#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json_util.hpp"
#include "obs/timeline.hpp"

namespace sysdp::obs {

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<std::uint64_t>(clamped * static_cast<double>(count_));
  if (static_cast<double>(rank) < clamped * static_cast<double>(count_)) {
    ++rank;  // ceil
  }
  if (rank == 0) rank = 1;
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    acc += buckets_[b];
    if (acc >= rank) {
      const std::uint64_t upper =
          b == 0 ? 0
                 : (b >= 64 ? max_
                            : (std::uint64_t{1} << b) - 1);
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\": " + std::to_string(count_) +
                    ", \"sum\": " + std::to_string(sum_) +
                    ", \"min\": " + std::to_string(min_) +
                    ", \"max\": " + std::to_string(max_) +
                    ", \"p50\": " + std::to_string(quantile(0.50)) +
                    ", \"p90\": " + std::to_string(quantile(0.90)) +
                    ", \"p99\": " + std::to_string(quantile(0.99)) +
                    ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (!first) out += ", ";
    first = false;
    const std::uint64_t upper =
        b == 0 ? 0
               : (b >= 64 ? max_ : (std::uint64_t{1} << b) - 1);
    out += "[" + std::to_string(upper) + ", " + std::to_string(buckets_[b]) +
           "]";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::size_t width = 0;
  for (const auto& kv : counters_) width = std::max(width, kv.first.size());
  for (const auto& kv : gauges_) width = std::max(width, kv.first.size());
  for (const auto& kv : histograms_) width = std::max(width, kv.first.size());
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += json_double(value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += "count=" + std::to_string(hist.count()) +
           " p50=" + std::to_string(hist.quantile(0.50)) +
           " p90=" + std::to_string(hist.quantile(0.90)) +
           " p99=" + std::to_string(hist.quantile(0.99));
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(name) + "\": " + json_double(value);
  }
  out += "}";
  if (!histograms_.empty()) {
    out += ", \"histograms\": {";
    first = true;
    for (const auto& [name, hist] : histograms_) {
      if (!first) out += ", ";
      first = false;
      out += '"' + json_escape(name) + "\": " + hist.to_json();
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string metrics_json(const std::string& design,
                         const MetricsRegistry& registry,
                         const TimelineSink* timeline) {
  const char* schema =
      registry.histograms().empty() ? "sysdp-metrics-v1" : "sysdp-metrics-v2";
  std::string out = std::string("{\n  \"schema\": \"") + schema +
                    "\",\n  \"design\": \"" + json_escape(design) +
                    "\",\n  \"metrics\": " + registry.to_json();
  if (timeline != nullptr) {
    out += ",\n  \"timeline\": " + timeline->to_json();
  }
  out += "\n}\n";
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  if (!out) {
    throw std::runtime_error("obs::write_text_file: write failed for " + path);
  }
}

}  // namespace sysdp::obs
