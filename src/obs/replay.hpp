// Compiled-replay telemetry adapters: waveforms, timelines and profiles
// for CompiledEngine / BatchedCompiledEngine runs.
//
// The interpreted engine's sinks (obs/vcd.hpp, obs/timeline.hpp) observe a
// sim::Engine; the compiled backend has no modules or ports left to walk —
// only the flat tape and its slot→port provenance table
// (compile::Provenance, emitted at lowering).  The adapters here close
// that gap:
//
//   * ReplayVcdSink renders a compiled replay as an IEEE 1364 VCD with the
//     SAME signal names as the interpreted run: provenance lanes resolve
//     to module/port labels, bind events say which slot holds each
//     register's value at which VCD time, and the slot image passed to
//     on_level supplies the values.  Because bind stamps and slot values
//     are deterministic functions of the tape, the document is
//     byte-identical across batch widths and compacted/uncompacted tapes.
//   * ReplayTimelineSink drives a regular TimelineSink from op→module
//     attribution, one PE row per provenance module (plus a single
//     "(unattributed)" row if any op has no module), so per-PE busy
//     timelines and utilization read the same as interpreted ones and the
//     aggregate equals ops_executed by construction.
//   * profile_json / profile_metrics / append_replay_trace export a
//     compile::ReplayProfiler as the sysdp-profile-v1 document, histogram
//     metrics (obs/metrics.hpp) and Chrome-trace spans.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compile/profile.hpp"
#include "compile/program.hpp"
#include "compile/replay_observer.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/vcd.hpp"

namespace sysdp::obs {

/// VCD writer for compiled replays, driven by provenance bind events.
/// Only *named* lanes (resolved against the captured netlist at lowering)
/// are rendered, so every emitted signal also exists in the interpreted
/// run's VCD; for batched engines, `lane` picks which batch lane's values
/// to dump.  A second on_replay_begin restarts the document.
class ReplayVcdSink final : public compile::ReplayObserver {
 public:
  explicit ReplayVcdSink(std::string top = "sysdp", std::uint32_t lane = 0,
                         VcdOptions options = {});

  void on_replay_begin(const compile::CompiledNetlist& net, const Cost* slots,
                       std::uint32_t lanes) override;
  void on_level(const compile::CompiledNetlist& net, sim::Cycle t,
                std::uint32_t lo, std::uint32_t hi, const Cost* slots,
                std::uint32_t lanes) override;

  /// Probes rendered (0 before the first on_replay_begin).
  [[nodiscard]] std::size_t num_signals() const noexcept {
    return probes_.size();
  }
  /// Sanitized signal names in document order, for name-parity checks.
  [[nodiscard]] std::vector<std::string> signal_names() const;

  /// The complete VCD document (header + dump so far).
  [[nodiscard]] std::string str() const { return header_ + body_; }
  /// Write str() to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Probe {
    std::string id;
    std::string name;       ///< sanitized label
    std::int64_t last = 0;
    bool known = false;     ///< a bind has supplied a value
  };

  std::string top_;
  std::uint32_t lane_;
  VcdOptions options_;
  std::string header_;
  std::string body_;
  std::vector<Probe> probes_;
  /// Probe index per provenance lane, or npos for unnamed lanes.
  std::vector<std::uint32_t> probe_of_lane_;
  std::size_t next_bind_ = 0;
  static constexpr std::uint32_t npos = 0xffffffffu;
};

/// Per-module busy timeline for compiled replays: each executed op counts
/// one busy step (per batch lane) for the module its provenance attributes
/// it to.  The aggregate equals the engine's ops_executed by construction
/// — the same cross-check sysdp_trace runs on interpreted timelines.
class ReplayTimelineSink final : public compile::ReplayObserver {
 public:
  explicit ReplayTimelineSink(sim::Cycle bucket_cycles = 1);

  void on_replay_begin(const compile::CompiledNetlist& net, const Cost* slots,
                       std::uint32_t lanes) override;
  void on_level(const compile::CompiledNetlist& net, sim::Cycle t,
                std::uint32_t lo, std::uint32_t hi, const Cost* slots,
                std::uint32_t lanes) override;

  /// Close the final (possibly partial) bucket.
  void finalize();

  /// PE-row names: provenance modules in id order, then "(unattributed)"
  /// if present.
  [[nodiscard]] const std::vector<std::string>& pe_names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::uint64_t aggregate_busy() const;
  [[nodiscard]] double utilization() const;
  /// The composed TimelineSink (same JSON/bucket surface as interpreted
  /// timelines).  Throws std::logic_error before the first replay begins.
  [[nodiscard]] const TimelineSink& timeline() const;
  [[nodiscard]] std::string to_json() const { return timeline().to_json(); }

 private:
  sim::Cycle bucket_;
  std::vector<std::uint64_t> busy_;
  std::vector<std::string> names_;
  std::uint32_t num_modules_ = 0;
  bool unattributed_row_ = false;
  // Pointer (not optional member) so a fresh sink per replay re-baselines.
  std::unique_ptr<TimelineSink> timeline_;
};

/// Options for the sysdp-profile-v1 renderer.  Timing fields (wall-clock
/// nanoseconds, skew) are real measurements and therefore nondeterministic;
/// the structural fields (per-level op counts, kinds, replay shapes) are
/// functions of the tape alone.  Telemetry-determinism tests render with
/// include_timing = false and compare documents byte for byte.
struct ProfileJsonOptions {
  bool include_timing = true;
};

/// Render one ReplayProfiler as the sysdp-profile-v1 document.
[[nodiscard]] std::string profile_json(const std::string& design,
                                       const compile::CompiledNetlist& net,
                                       const compile::ReplayProfiler& profiler,
                                       const ProfileJsonOptions& options = {});

/// Record the profiler into `registry`: per-replay latency and per-level
/// wall-time histograms ("replay.wall_ns", "replay.level_ns"), replay/op
/// counters and the replay-skew gauge.
void profile_metrics(MetricsRegistry& registry,
                     const compile::ReplayProfiler& profiler);

/// Chrome-trace spans for a profiled replay, in simulated time: one span
/// per non-empty dependency level (cycle t drawn at t*kCycleMicroseconds)
/// plus an op-lane counter series — deterministic, so the trace is
/// comparable across runs; wall times live in the profile document.
void append_replay_trace(ChromeTraceWriter& writer, const std::string& name,
                         const compile::ReplayProfiler& profiler,
                         std::uint32_t pid = 4);

}  // namespace sysdp::obs
