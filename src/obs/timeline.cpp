#include "obs/timeline.hpp"

#include <stdexcept>
#include <utility>

#include "obs/json_util.hpp"

namespace sysdp::obs {

TimelineSink::TimelineSink(std::size_t num_pes, BusyFn busy,
                           sim::Cycle bucket_cycles)
    : busy_(std::move(busy)),
      bucket_(bucket_cycles),
      prev_(num_pes, 0),
      per_pe_(num_pes) {
  if (bucket_ == 0) {
    throw std::invalid_argument("TimelineSink: bucket_cycles == 0");
  }
  if (!busy_) throw std::invalid_argument("TimelineSink: empty BusyFn");
  // Baseline now, in case the sink is driven manually (no on_elaborated).
  for (std::size_t pe = 0; pe < num_pes; ++pe) prev_[pe] = busy_(pe);
}

void TimelineSink::on_elaborated(const sim::Engine& engine) {
  (void)engine;
  begin();
}

void TimelineSink::on_cycle(const sim::Engine& engine, sim::Cycle t) {
  (void)engine;
  (void)t;
  advance();
}

void TimelineSink::begin() {
  // Re-baseline: elaboration may have reset the counters since
  // construction, and nothing has run yet, so buckets stay empty.
  for (std::size_t pe = 0; pe < prev_.size(); ++pe) prev_[pe] = busy_(pe);
}

void TimelineSink::advance() {
  ++cycles_;
  if (++in_bucket_ == bucket_) close_bucket();
}

void TimelineSink::close_bucket() {
  for (std::size_t pe = 0; pe < prev_.size(); ++pe) {
    const std::uint64_t cur = busy_(pe);
    per_pe_[pe].push_back(cur - prev_[pe]);
    aggregate_ += cur - prev_[pe];
    prev_[pe] = cur;
  }
  in_bucket_ = 0;
}

void TimelineSink::finalize() {
  if (in_bucket_ > 0) close_bucket();
}

double TimelineSink::utilization() const noexcept {
  if (cycles_ == 0 || prev_.empty()) return 0.0;
  return static_cast<double>(aggregate_) /
         (static_cast<double>(cycles_) * static_cast<double>(prev_.size()));
}

std::string TimelineSink::to_json() const {
  std::string out = "{\"bucket_cycles\": " + std::to_string(bucket_) +
                    ", \"cycles\": " + std::to_string(cycles_) +
                    ", \"num_pes\": " + std::to_string(prev_.size()) +
                    ", \"aggregate_busy\": " + std::to_string(aggregate_) +
                    ", \"utilization\": " + json_double(utilization()) +
                    ", \"per_pe\": [";
  for (std::size_t pe = 0; pe < per_pe_.size(); ++pe) {
    if (pe > 0) out += ", ";
    out += '[';
    for (std::size_t b = 0; b < per_pe_[pe].size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(per_pe_[pe][b]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

}  // namespace sysdp::obs
