#include "obs/vcd.hpp"

#include <fstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "sim/engine.hpp"

namespace sysdp::obs {

namespace {

/// VCD identifier alphabet: every printable ASCII char '!'..'~'.
constexpr char kIdFirst = '!';
constexpr std::size_t kIdRange = 94;

}  // namespace

VcdSink::VcdSink(std::string top, VcdOptions options)
    : top_(std::move(top)), options_(std::move(options)) {}

VcdSink::~VcdSink() {
  // Best-effort flush: the ofstream destructor closes the handle, and VCD
  // is append-only, so whatever reached the stream is a valid document.
  if (stream_.is_open()) flush_stream();
}

void VcdSink::stream_to(const std::string& path) {
  stream_.open(path, std::ios::binary | std::ios::trunc);
  if (!stream_) {
    throw std::runtime_error("VcdSink::stream_to: cannot open " + path);
  }
  flush_stream();
}

void VcdSink::flush_stream() {
  if (!stream_.is_open()) return;
  if (flushed_header_ < header_.size()) {
    stream_.write(header_.data() + flushed_header_,
                  static_cast<std::streamsize>(header_.size() -
                                               flushed_header_));
    flushed_header_ = header_.size();
  }
  if (flushed_body_ < body_.size()) {
    stream_.write(body_.data() + flushed_body_,
                  static_cast<std::streamsize>(body_.size() - flushed_body_));
    flushed_body_ = body_.size();
  }
  stream_.flush();
}

void VcdSink::close() {
  if (!stream_.is_open()) return;
  flush_stream();
  stream_.close();
  if (stream_.fail()) {
    throw std::runtime_error("VcdSink::close: write failed");
  }
}

std::string VcdSink::id_code(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>(kIdFirst + index % kIdRange);
    index /= kIdRange;
  } while (index > 0);
  return id;
}

std::string VcdSink::sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

void VcdSink::append_value(std::string& out, std::int64_t value,
                           const std::string& id) {
  // Minimal-width binary for non-negative values; full 64 bits when the
  // sign bit matters, so GTKWave's signed-decimal view stays correct.
  const auto bits = static_cast<std::uint64_t>(value);
  out += 'b';
  if (value == 0) {
    out += '0';
  } else {
    int hi = 63;
    if (value > 0) {
      while (hi > 0 && ((bits >> hi) & 1u) == 0) --hi;
    }
    for (int i = hi; i >= 0; --i) {
      out += ((bits >> i) & 1u) != 0 ? '1' : '0';
    }
  }
  out += ' ';
  out += id;
  out += '\n';
}

void VcdSink::on_elaborated(const sim::Engine& engine) {
  if (elaborated_) return;  // one engine per sink
  elaborated_ = true;

  header_ = "$version sysdp obs::VcdSink $end\n$timescale " +
            options_.timescale + " $end\n$scope module " + sanitize(top_) +
            " $end\n";
  std::unordered_set<const void*> seen;
  for (const sim::Module* m : engine.modules()) {
    sim::PortSet ports;
    m->describe_ports(ports);
    std::string vars;
    for (const sim::Port& port : ports.ports()) {
      if (!port.sample) continue;
      if (port.dir != sim::PortDir::kOut && !options_.include_inputs) {
        continue;
      }
      if (!seen.insert(port.storage).second) continue;  // first decl wins
      Probe probe;
      probe.sample = port.sample;
      probe.id = id_code(probes_.size());
      vars += "  $var integer 64 " + probe.id + " " + sanitize(port.label) +
              " $end\n";
      probes_.push_back(std::move(probe));
    }
    if (!vars.empty()) {
      header_ += " $scope module " + sanitize(m->name()) + " $end\n" + vars +
                 " $upscope $end\n";
    }
  }
  header_ += "$upscope $end\n$enddefinitions $end\n";

  // Initial dump: pre-cycle-0 committed state, every probe.
  body_ = "#0\n$dumpvars\n";
  for (Probe& probe : probes_) {
    probe.last = probe.sample();
    append_value(body_, probe.last, probe.id);
  }
  body_ += "$end\n";
  flush_stream();
}

void VcdSink::on_cycle(const sim::Engine& engine, sim::Cycle t) {
  (void)engine;
  bool stamped = false;
  for (Probe& probe : probes_) {
    const std::int64_t v = probe.sample();
    if (v == probe.last) continue;
    if (!stamped) {
      body_ += '#';
      body_ += std::to_string(t + 1);  // state after cycle t's clock edge
      body_ += '\n';
      stamped = true;
    }
    probe.last = v;
    append_value(body_, v, probe.id);
  }
  if (stamped) flush_stream();
}

void VcdSink::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("VcdSink: cannot open " + path);
  }
  out << header_ << body_;
  if (!out) {
    throw std::runtime_error("VcdSink: write failed for " + path);
  }
}

}  // namespace sysdp::obs
