// Per-PE utilisation timelines: eq. (9) observable over time.
//
// ActivityStats answers "what fraction of PE-cycles did useful work" as a
// single end-of-run number.  TimelineSink buckets the same busy counters
// over cycles, so fill and drain transients — the phenomena behind the
// paper's PU formulas and behind the sparse-gating win — become visible as
// a heatmap instead of being averaged away.  By construction the sum of
// all buckets equals the end-of-run total, so the timeline *aggregates* to
// ActivityStats.utilization(); sysdp_trace asserts that equality on every
// run.
//
// The sink is array-agnostic: it samples an arbitrary per-PE cumulative
// busy counter through a closure (ActivityStats::busy_cycles for Designs
// 1–3, arena cell meta for GKT/triangular), taking a baseline at
// elaboration and recording per-bucket deltas after each cycle.  Because
// it reads committed monotone counters on cycle boundaries, its output is
// bit-identical across serial/pooled × dense/sparse engine modes whenever
// the underlying run is.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/observer.hpp"

namespace sysdp::obs {

class TimelineSink final : public sim::EngineObserver {
 public:
  /// Cumulative busy-cycle count of PE `pe` so far (monotone over a run).
  using BusyFn = std::function<std::uint64_t(std::size_t)>;

  /// Buckets of `bucket_cycles` cycles each; 1 gives a per-cycle timeline.
  TimelineSink(std::size_t num_pes, BusyFn busy, sim::Cycle bucket_cycles = 1);

  void on_elaborated(const sim::Engine& engine) override;
  void on_cycle(const sim::Engine& engine, sim::Cycle t) override;

  /// Engine-free driving surface (the observer overrides delegate here):
  /// the compiled-replay adapters (obs/replay.hpp) maintain their own busy
  /// counters from tape provenance and have no sim::Engine to pass.
  /// begin() re-baselines the counters; advance() records one cycle.
  void begin();
  void advance();

  /// Close the final (possibly partial) bucket.  Idempotent; str()-style
  /// accessors call it implicitly via the const overloads' contract that
  /// the run has ended.
  void finalize();

  [[nodiscard]] std::size_t num_pes() const noexcept { return prev_.size(); }
  [[nodiscard]] sim::Cycle bucket_cycles() const noexcept { return bucket_; }
  [[nodiscard]] sim::Cycle cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return per_pe_.empty() ? 0 : per_pe_.front().size();
  }
  /// Busy-cycle deltas, [pe][bucket].
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& per_pe()
      const noexcept {
    return per_pe_;
  }
  /// Sum of every bucket of every PE == busy steps observed over the run.
  [[nodiscard]] std::uint64_t aggregate_busy() const noexcept {
    return aggregate_;
  }
  /// aggregate / (cycles * num_pes): must equal ActivityStats::utilization
  /// over the same run.
  [[nodiscard]] double utilization() const noexcept;

  /// JSON object: {"bucket_cycles": B, "cycles": C, "num_pes": P,
  /// "aggregate_busy": A, "per_pe": [[...], ...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  void close_bucket();

  BusyFn busy_;
  sim::Cycle bucket_;
  sim::Cycle cycles_ = 0;           ///< cycles observed
  sim::Cycle in_bucket_ = 0;        ///< cycles in the currently open bucket
  std::uint64_t aggregate_ = 0;
  std::vector<std::uint64_t> prev_;  ///< per-PE counter at last bucket close
  std::vector<std::vector<std::uint64_t>> per_pe_;  ///< [pe][bucket] deltas
};

}  // namespace sysdp::obs
