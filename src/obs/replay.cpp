#include "obs/replay.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/json_util.hpp"

namespace sysdp::obs {

namespace {

using compile::Provenance;

}  // namespace

// ---------------------------------------------------------------------------
// ReplayVcdSink

ReplayVcdSink::ReplayVcdSink(std::string top, std::uint32_t lane,
                             VcdOptions options)
    : top_(std::move(top)), lane_(lane), options_(std::move(options)) {}

void ReplayVcdSink::on_replay_begin(const compile::CompiledNetlist& net,
                                    const Cost* slots, std::uint32_t lanes) {
  if (lane_ >= lanes) {
    throw std::out_of_range("ReplayVcdSink: lane " + std::to_string(lane_) +
                            " out of range for " + std::to_string(lanes) +
                            "-lane replay");
  }
  // A fresh (or restarted) document.
  header_.clear();
  body_.clear();
  probes_.clear();
  next_bind_ = 0;
  const Provenance& prov = net.provenance;
  probe_of_lane_.assign(prov.lanes.size(), npos);

  header_ = "$version sysdp obs::ReplayVcdSink $end\n$timescale " +
            options_.timescale + " $end\n$scope module " +
            VcdSink::sanitize(top_) + " $end\n";
  // Group probes by provenance module, in module-id order — the same
  // one-scope-per-module shape (and the same sanitizer and value encoding)
  // as the interpreted VcdSink, so documents diff cleanly side by side.
  for (std::uint32_t m = 0; m < prov.modules.size(); ++m) {
    std::string vars;
    for (std::uint32_t i = 0; i < prov.lanes.size(); ++i) {
      const compile::ProvenanceLane& lane = prov.lanes[i];
      if (!lane.named || lane.module_id != m) continue;
      Probe probe;
      probe.id = VcdSink::id_code(probes_.size());
      probe.name = VcdSink::sanitize(lane.label);
      vars += "  $var integer 64 " + probe.id + " " + probe.name + " $end\n";
      probe_of_lane_[i] = static_cast<std::uint32_t>(probes_.size());
      probes_.push_back(std::move(probe));
    }
    if (!vars.empty()) {
      header_ += " $scope module " + VcdSink::sanitize(prov.modules[m]) +
                 " $end\n" + vars + " $upscope $end\n";
    }
  }
  header_ += "$upscope $end\n$enddefinitions $end\n";

  // Initial dump: stamp-0 binds are the pre-cycle-0 reset state.  Probes
  // whose register has no stamp-0 bind start unknown ("bx"), exactly what
  // a waveform viewer shows for an undriven net.
  while (next_bind_ < prov.binds.size() &&
         prov.binds[next_bind_].stamp == 0) {
    const compile::ProvenanceBind& b = prov.binds[next_bind_++];
    const std::uint32_t p = probe_of_lane_[b.lane];
    if (p == npos) continue;
    probes_[p].last = slots[static_cast<std::size_t>(b.slot) * lanes + lane_];
    probes_[p].known = true;
  }
  body_ = "#0\n$dumpvars\n";
  for (const Probe& probe : probes_) {
    if (probe.known) {
      VcdSink::append_value(body_, probe.last, probe.id);
    } else {
      body_ += "bx " + probe.id + "\n";
    }
  }
  body_ += "$end\n";
}

void ReplayVcdSink::on_level(const compile::CompiledNetlist& net, sim::Cycle t,
                             std::uint32_t lo, std::uint32_t hi,
                             const Cost* slots, std::uint32_t lanes) {
  (void)lo;
  (void)hi;
  const Provenance& prov = net.provenance;
  bool stamped = false;
  // Binds are sorted by stamp; stamp t+1 is a commit at the end of cycle
  // t, sampled here after the level executed — the same clock-edge
  // semantics as the interpreted sink's on_cycle dump.
  while (next_bind_ < prov.binds.size() &&
         prov.binds[next_bind_].stamp <= t + 1) {
    const compile::ProvenanceBind& b = prov.binds[next_bind_++];
    const std::uint32_t p = probe_of_lane_[b.lane];
    if (p == npos) continue;
    const Cost v = slots[static_cast<std::size_t>(b.slot) * lanes + lane_];
    if (probes_[p].known && v == probes_[p].last) continue;
    if (!stamped) {
      body_ += '#';
      body_ += std::to_string(t + 1);
      body_ += '\n';
      stamped = true;
    }
    probes_[p].last = v;
    probes_[p].known = true;
    VcdSink::append_value(body_, v, probes_[p].id);
  }
}

std::vector<std::string> ReplayVcdSink::signal_names() const {
  std::vector<std::string> names;
  names.reserve(probes_.size());
  for (const Probe& probe : probes_) names.push_back(probe.name);
  return names;
}

void ReplayVcdSink::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("ReplayVcdSink: cannot open " + path);
  }
  out << header_ << body_;
  if (!out) {
    throw std::runtime_error("ReplayVcdSink: write failed for " + path);
  }
}

// ---------------------------------------------------------------------------
// ReplayTimelineSink

ReplayTimelineSink::ReplayTimelineSink(sim::Cycle bucket_cycles)
    : bucket_(bucket_cycles) {}

void ReplayTimelineSink::on_replay_begin(const compile::CompiledNetlist& net,
                                         const Cost* slots,
                                         std::uint32_t lanes) {
  (void)slots;
  (void)lanes;
  const Provenance& prov = net.provenance;
  num_modules_ = static_cast<std::uint32_t>(prov.modules.size());
  // One extra row only when some op actually needs it, so fully-attributed
  // tapes render exactly one PE per design module.
  unattributed_row_ = false;
  for (std::uint64_t i = 0; i < net.num_ops(); ++i) {
    if (prov.module_of_op(i) >= num_modules_) {
      unattributed_row_ = true;
      break;
    }
  }
  names_.assign(prov.modules.begin(), prov.modules.end());
  if (unattributed_row_) names_.emplace_back("(unattributed)");
  busy_.assign(names_.size(), 0);
  timeline_ = std::make_unique<TimelineSink>(
      names_.size(), [this](std::size_t pe) { return busy_[pe]; }, bucket_);
}

void ReplayTimelineSink::on_level(const compile::CompiledNetlist& net,
                                  sim::Cycle t, std::uint32_t lo,
                                  std::uint32_t hi, const Cost* slots,
                                  std::uint32_t lanes) {
  (void)t;
  (void)slots;
  const Provenance& prov = net.provenance;
  for (std::uint32_t i = lo; i < hi; ++i) {
    std::uint32_t idx = prov.module_of_op(i);
    if (idx >= num_modules_) idx = num_modules_;  // the unattributed row
    busy_[idx] += lanes;
  }
  timeline_->advance();
}

void ReplayTimelineSink::finalize() {
  if (timeline_) timeline_->finalize();
}

std::uint64_t ReplayTimelineSink::aggregate_busy() const {
  return timeline_ ? timeline_->aggregate_busy() : 0;
}

double ReplayTimelineSink::utilization() const {
  return timeline_ ? timeline_->utilization() : 0.0;
}

const TimelineSink& ReplayTimelineSink::timeline() const {
  if (!timeline_) {
    throw std::logic_error("ReplayTimelineSink: no replay has begun");
  }
  return *timeline_;
}

// ---------------------------------------------------------------------------
// sysdp-profile-v1

std::string profile_json(const std::string& design,
                         const compile::CompiledNetlist& net,
                         const compile::ReplayProfiler& profiler,
                         const ProfileJsonOptions& options) {
  std::string out = "{\"schema\": \"sysdp-profile-v1\", \"design\": \"" +
                    json_escape(design) + "\",\n";
  out += " \"tape\": {\"ops\": " + std::to_string(net.num_ops()) +
         ", \"cycles\": " + std::to_string(net.cycles()) +
         ", \"slots\": " + std::to_string(net.num_slots) +
         ", \"compacted\": " + (net.compacted() ? "true" : "false") +
         ", \"params\": " + std::to_string(net.num_params()) +
         ", \"provenance_lanes\": " +
         std::to_string(net.provenance.lanes.size()) +
         ", \"provenance_modules\": " +
         std::to_string(net.provenance.modules.size()) + "},\n";
  out += " \"totals\": {\"ops\": " + std::to_string(profiler.total_ops()) +
         ", \"mac\": " + std::to_string(profiler.total_mac()) +
         ", \"fold\": " + std::to_string(profiler.total_fold()) +
         ", \"relax\": " + std::to_string(profiler.total_relax()) + "},\n";

  out += " \"replays\": [";
  const auto& replays = profiler.replays();
  for (std::size_t i = 0; i < replays.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"lanes\": " + std::to_string(replays[i].lanes) +
           ", \"levels\": " + std::to_string(replays[i].levels) +
           ", \"ops\": " + std::to_string(replays[i].ops);
    if (options.include_timing) {
      out += ", \"wall_ns\": " + std::to_string(replays[i].wall_ns);
    }
    out += '}';
  }
  out += "],\n";

  // Only levels some replay actually visited with work; dense tapes keep
  // every level, gated phases collapse to the few live ones.
  out += " \"levels\": [";
  const auto& levels = profiler.levels();
  bool first = true;
  for (std::size_t t = 0; t < levels.size(); ++t) {
    const auto& agg = levels[t];
    if (agg.ops == 0) continue;
    if (!first) out += ",\n  ";
    first = false;
    out += "{\"level\": " + std::to_string(t) +
           ", \"visits\": " + std::to_string(agg.visits) +
           ", \"ops\": " + std::to_string(agg.ops) +
           ", \"mac\": " + std::to_string(agg.mac_ops) +
           ", \"fold\": " + std::to_string(agg.fold_ops) +
           ", \"relax\": " + std::to_string(agg.relax_ops);
    if (options.include_timing) {
      out += ", \"wall_ns\": " + std::to_string(agg.wall_ns);
    }
    out += '}';
  }
  out += "]";

  if (options.include_timing) {
    Histogram wall;
    for (const auto& r : replays) wall.record(r.wall_ns);
    out += ",\n \"timing\": {\"total_wall_ns\": " +
           std::to_string(profiler.total_wall_ns()) +
           ", \"replay_wall_ns\": {\"p50\": " +
           std::to_string(wall.quantile(0.50)) +
           ", \"p90\": " + std::to_string(wall.quantile(0.90)) +
           ", \"p99\": " + std::to_string(wall.quantile(0.99)) +
           "}, \"replay_skew\": " + json_double(profiler.replay_skew()) + "}";
  }
  out += "}\n";
  return out;
}

void profile_metrics(MetricsRegistry& registry,
                     const compile::ReplayProfiler& profiler) {
  for (const auto& r : profiler.replays()) {
    registry.observe("replay.wall_ns", r.wall_ns);
  }
  for (const auto& agg : profiler.levels()) {
    if (agg.visits > 0) registry.observe("replay.level_ns", agg.wall_ns);
  }
  registry.set_counter("replay.count", profiler.replays().size());
  registry.set_counter("replay.ops", profiler.total_ops());
  registry.set_counter("replay.mac_ops", profiler.total_mac());
  registry.set_counter("replay.fold_ops", profiler.total_fold());
  registry.set_counter("replay.relax_ops", profiler.total_relax());
  registry.set_gauge("replay.skew", profiler.replay_skew());
}

void append_replay_trace(ChromeTraceWriter& writer, const std::string& name,
                         const compile::ReplayProfiler& profiler,
                         std::uint32_t pid) {
  writer.process_name(pid, "compiled replay (" + name + ")");
  writer.thread_name(pid, 0, "levels");
  const auto& levels = profiler.levels();
  for (std::size_t t = 0; t < levels.size(); ++t) {
    if (levels[t].ops == 0) continue;
    const double ts = static_cast<double>(t) * kCycleMicroseconds;
    writer.complete_event("level " + std::to_string(t), "replay", pid, 0, ts,
                          kCycleMicroseconds);
    writer.counter_event("tape op-lanes", pid, ts, "ops",
                         static_cast<std::int64_t>(levels[t].ops));
  }
  // Close the counter series so the last sample does not extend forever.
  writer.counter_event("tape op-lanes", pid,
                       static_cast<double>(levels.size()) * kCycleMicroseconds,
                       "ops", 0);
}

}  // namespace sysdp::obs
