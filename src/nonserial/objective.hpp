// Nonserial objective functions (eq. 5 of the paper).
//
// f(X) = sum_i g_i(X^i) over discrete variables X_k with m_k quantised
// values each, where each term's scope X^i is an arbitrary variable subset.
// Terms are stored as dense cost tables in mixed-radix row-major order over
// their (sorted) scopes.  This is the input language for the
// nonserial-to-serial transformations of Section 6.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <algorithm>

#include "graph/interaction_graph.hpp"
#include "semiring/cost.hpp"

namespace sysdp {

/// The monotone function (+) of eq. (5) relating the terms: the paper only
/// requires monotonicity for the Principle of Optimality, so besides the
/// usual sum we support the maximum (minimax objectives: minimise the worst
/// term — makespan/bottleneck-style problems).
enum class Combine { kSum, kMax };

/// One functional term g(X^i).
struct Term {
  TermScope scope;          ///< sorted variable indices
  std::vector<Cost> table;  ///< row-major over scope (last var fastest)

  /// Table value for a full assignment of all problem variables.
  [[nodiscard]] Cost lookup(const std::vector<std::size_t>& assignment,
                            const std::vector<std::size_t>& domains) const;
};

class NonserialObjective {
 public:
  explicit NonserialObjective(std::vector<std::size_t> domain_sizes,
                              Combine combine = Combine::kSum);

  /// Add a term; `table` must have prod(domains of scope) entries, row-major
  /// with the last scope variable varying fastest.
  void add_term(TermScope scope, std::vector<Cost> table);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] std::size_t domain(std::size_t v) const {
    return domains_.at(v);
  }
  [[nodiscard]] const std::vector<std::size_t>& domains() const noexcept {
    return domains_;
  }
  [[nodiscard]] const std::vector<Term>& terms() const noexcept {
    return terms_;
  }

  [[nodiscard]] Combine combine() const noexcept { return combine_; }

  /// Fold two partial objective values with the Phi of eq. (5).
  [[nodiscard]] Cost fold(Cost a, Cost b) const noexcept {
    return combine_ == Combine::kSum ? sat_add(a, b) : std::max(a, b);
  }
  /// Identity of the fold (0 for sum, -inf for max).
  [[nodiscard]] Cost fold_identity() const noexcept {
    return combine_ == Combine::kSum ? Cost{0} : kNegInfCost;
  }

  /// Total objective value of a full assignment.
  [[nodiscard]] Cost evaluate(const std::vector<std::size_t>& assignment) const;

  /// The interaction graph of Section 2.2 (vertices = variables, edges =
  /// co-occurrence in a term).
  [[nodiscard]] InteractionGraph interaction() const;

  /// True if the objective is serial (binary terms forming a chain).
  [[nodiscard]] bool is_serial() const { return interaction().is_serial(); }

 private:
  std::vector<std::size_t> domains_;
  std::vector<Term> terms_;
  Combine combine_ = Combine::kSum;
};

}  // namespace sysdp
