// Variable elimination for nonserial DP (Section 6.1, eqs. 34-40).
//
// The monadic multistage optimisation procedure eliminates variables one by
// one: eliminating V_k folds every term mentioning V_k into a new term
// h_opt over V_k's neighbours (eq. 35).  One *step* is the paper's unit —
// one cost-function evaluation, one addition, one comparison — so
// eliminating V_k costs prod(domain of V_k and its current neighbours)
// steps, and for the banded objective of eq. (36) the total matches
// eq. (40).  Arg tables recorded per elimination give the optimal
// assignment by back-substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "nonserial/objective.hpp"

namespace sysdp {

struct EliminationResult {
  Cost cost = kInfCost;
  std::vector<std::size_t> assignment;  ///< one optimal value per variable
  std::uint64_t steps = 0;              ///< paper-unit steps, cf. eq. (40)
  std::uint64_t final_comparisons = 0;  ///< last variable's m-way compare
  std::uint64_t largest_table = 0;      ///< max intermediate table size
};

/// Eliminate all variables in the given order (a permutation of all
/// variable indices) and reconstruct an optimal assignment.
[[nodiscard]] EliminationResult solve_by_elimination(
    const NonserialObjective& obj, const std::vector<std::size_t>& order);

/// Natural order 0, 1, ..., n-1 — the paper's order for banded problems.
[[nodiscard]] EliminationResult solve_by_elimination(
    const NonserialObjective& obj);

/// Exhaustive minimisation over all joint assignments (the correctness
/// oracle; exponential).
[[nodiscard]] EliminationResult solve_brute_force(
    const NonserialObjective& obj);

/// Minimum-degree elimination ordering heuristic (the "favorable pattern of
/// term interactions" of Section 6 exploited automatically; an extension
/// beyond the paper's fixed orders).
[[nodiscard]] std::vector<std::size_t> min_degree_order(
    const NonserialObjective& obj);

/// Eq. (40): step count for the bandwidth-2 objective of eq. (36) with
/// domain sizes m_1..m_N (0-based here):
/// sum_{k=0}^{N-3} m_k m_{k+1} m_{k+2} + m_{N-2} m_{N-1}.
[[nodiscard]] std::uint64_t eq40_steps(const std::vector<std::size_t>& m);

}  // namespace sysdp
