#include "nonserial/objective.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

Cost Term::lookup(const std::vector<std::size_t>& assignment,
                  const std::vector<std::size_t>& domains) const {
  std::size_t idx = 0;
  for (std::size_t v : scope) {
    idx = idx * domains[v] + assignment[v];
  }
  return table[idx];
}

NonserialObjective::NonserialObjective(std::vector<std::size_t> domain_sizes,
                                       Combine combine)
    : domains_(std::move(domain_sizes)), combine_(combine) {
  if (domains_.empty()) {
    throw std::invalid_argument("NonserialObjective: no variables");
  }
  for (std::size_t d : domains_) {
    if (d == 0) throw std::invalid_argument("NonserialObjective: empty domain");
  }
}

void NonserialObjective::add_term(TermScope scope, std::vector<Cost> table) {
  if (scope.empty()) throw std::invalid_argument("add_term: empty scope");
  if (!std::is_sorted(scope.begin(), scope.end()) ||
      std::adjacent_find(scope.begin(), scope.end()) != scope.end()) {
    throw std::invalid_argument("add_term: scope must be sorted and unique");
  }
  std::size_t expect = 1;
  for (std::size_t v : scope) {
    if (v >= domains_.size()) throw std::out_of_range("add_term: variable");
    expect *= domains_[v];
  }
  if (table.size() != expect) {
    throw std::invalid_argument("add_term: table size mismatch");
  }
  terms_.push_back(Term{std::move(scope), std::move(table)});
}

Cost NonserialObjective::evaluate(
    const std::vector<std::size_t>& assignment) const {
  if (assignment.size() != domains_.size()) {
    throw std::invalid_argument("evaluate: assignment size");
  }
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] >= domains_[v]) {
      throw std::out_of_range("evaluate: value out of domain");
    }
  }
  Cost total = fold_identity();
  for (const Term& t : terms_) {
    total = fold(total, t.lookup(assignment, domains_));
  }
  return total;
}

InteractionGraph NonserialObjective::interaction() const {
  InteractionGraph ig(domains_.size());
  for (const Term& t : terms_) ig.add_term(t.scope);
  return ig;
}

}  // namespace sysdp
