#include "nonserial/elimination.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace sysdp {

namespace {

/// Mixed-radix odometer over the domains of `scope`; returns false after
/// the last combination.
bool advance(std::vector<std::size_t>& values, const TermScope& scope,
             const std::vector<std::size_t>& domains) {
  for (std::size_t d = scope.size(); d-- > 0;) {
    if (++values[d] < domains[scope[d]]) return true;
    values[d] = 0;
  }
  return false;
}

/// Row-major index of `assignment` restricted to `scope`.
std::size_t scope_index(const TermScope& scope,
                        const std::vector<std::size_t>& assignment,
                        const std::vector<std::size_t>& domains) {
  std::size_t idx = 0;
  for (std::size_t v : scope) idx = idx * domains[v] + assignment[v];
  return idx;
}

/// Arg table recorded when a variable is eliminated: the best value of the
/// variable for every joint assignment of its neighbours at that time.
struct ArgRecord {
  std::size_t var = 0;
  TermScope neighbors;
  std::vector<std::size_t> best;  ///< indexed like the h table
};

}  // namespace

EliminationResult solve_by_elimination(const NonserialObjective& obj,
                                       const std::vector<std::size_t>& order) {
  const std::size_t n = obj.num_variables();
  if (order.size() != n) {
    throw std::invalid_argument("solve_by_elimination: order size");
  }
  {
    std::vector<bool> seen(n, false);
    for (std::size_t v : order) {
      if (v >= n || seen[v]) {
        throw std::invalid_argument("solve_by_elimination: not a permutation");
      }
      seen[v] = true;
    }
  }
  const auto& domains = obj.domains();
  std::vector<Term> pool = obj.terms();
  EliminationResult res;
  res.steps = 0;
  Cost constant = obj.fold_identity();
  std::vector<ArgRecord> args;
  args.reserve(n);

  std::vector<std::size_t> scratch(n, 0);
  for (std::size_t v : order) {
    // Pull every term whose scope mentions v.
    std::vector<Term> pulled;
    std::vector<Term> rest;
    for (auto& t : pool) {
      const bool has_v =
          std::binary_search(t.scope.begin(), t.scope.end(), v);
      (has_v ? pulled : rest).push_back(std::move(t));
    }
    pool = std::move(rest);

    // Neighbours: all other variables in the pulled scopes.
    std::set<std::size_t> nb_set;
    for (const auto& t : pulled) {
      for (std::size_t u : t.scope) {
        if (u != v) nb_set.insert(u);
      }
    }
    TermScope neighbors(nb_set.begin(), nb_set.end());

    std::size_t table_size = 1;
    for (std::size_t u : neighbors) table_size *= domains[u];
    std::vector<Cost> h(table_size, kInfCost);
    std::vector<std::size_t> best(table_size, 0);

    std::vector<std::size_t> nb_vals(neighbors.size(), 0);
    std::size_t out_idx = 0;
    do {
      for (std::size_t d = 0; d < neighbors.size(); ++d) {
        scratch[neighbors[d]] = nb_vals[d];
      }
      for (std::size_t val = 0; val < domains[v]; ++val) {
        scratch[v] = val;
        Cost sum = obj.fold_identity();
        for (const auto& t : pulled) {
          sum = obj.fold(sum, t.table[scope_index(t.scope, scratch, domains)]);
        }
        ++res.steps;  // one f-evaluation, one addition, one comparison
        if (sum < h[out_idx]) {
          h[out_idx] = sum;
          best[out_idx] = val;
        }
      }
      ++out_idx;
    } while (advance(nb_vals, neighbors, domains));

    res.largest_table =
        std::max<std::uint64_t>(res.largest_table, table_size * domains[v]);
    args.push_back(ArgRecord{v, neighbors, std::move(best)});
    if (neighbors.empty()) {
      constant = obj.fold(constant, h[0]);
      res.final_comparisons += domains[v];
      res.steps -= domains[v];  // the final compare is counted separately
    } else {
      Term ht;
      ht.scope = std::move(neighbors);
      ht.table = std::move(h);
      pool.push_back(std::move(ht));
    }
  }
  res.cost = constant;

  // Back-substitution: each variable's best value depends only on variables
  // eliminated after it, which are already assigned when walking in reverse.
  res.assignment.assign(n, 0);
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    for (std::size_t d = 0; d < it->neighbors.size(); ++d) {
      scratch[it->neighbors[d]] = res.assignment[it->neighbors[d]];
    }
    res.assignment[it->var] =
        it->best[scope_index(it->neighbors, scratch, domains)];
  }
  return res;
}

EliminationResult solve_by_elimination(const NonserialObjective& obj) {
  std::vector<std::size_t> order(obj.num_variables());
  std::iota(order.begin(), order.end(), 0);
  return solve_by_elimination(obj, order);
}

EliminationResult solve_brute_force(const NonserialObjective& obj) {
  const std::size_t n = obj.num_variables();
  TermScope all(n);
  std::iota(all.begin(), all.end(), 0);
  EliminationResult res;
  std::vector<std::size_t> values(n, 0);
  do {
    const Cost c = obj.evaluate(values);
    ++res.steps;
    if (c < res.cost) {
      res.cost = c;
      res.assignment = values;
    }
  } while (advance(values, all, obj.domains()));
  return res;
}

std::vector<std::size_t> min_degree_order(const NonserialObjective& obj) {
  const std::size_t n = obj.num_variables();
  std::vector<std::set<std::size_t>> adj(n);
  for (const Term& t : obj.terms()) {
    for (std::size_t a : t.scope) {
      for (std::size_t b : t.scope) {
        if (a != b) adj[a].insert(b);
      }
    }
  }
  std::vector<bool> done(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t best = n;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (done[v]) continue;
      if (adj[v].size() < best_deg) {
        best_deg = adj[v].size();
        best = v;
      }
    }
    done[best] = true;
    order.push_back(best);
    // Eliminating `best` joins its remaining neighbours into a clique.
    for (std::size_t u : adj[best]) {
      adj[u].erase(best);
      for (std::size_t w : adj[best]) {
        if (u != w) adj[u].insert(w);
      }
    }
    adj[best].clear();
  }
  return order;
}

std::uint64_t eq40_steps(const std::vector<std::size_t>& m) {
  if (m.size() < 3) throw std::invalid_argument("eq40_steps: need >= 3 vars");
  std::uint64_t total = 0;
  for (std::size_t k = 0; k + 2 < m.size(); ++k) {
    total += static_cast<std::uint64_t>(m[k]) * m[k + 1] * m[k + 2];
  }
  total += static_cast<std::uint64_t>(m[m.size() - 2]) * m[m.size() - 1];
  return total;
}

}  // namespace sysdp
