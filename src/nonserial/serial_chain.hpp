// Conversion of a *serial* objective into a multistage graph.
//
// Section 2.2: a serial objective's interaction graph is a simple path, so
// ordering the variables along that path gives stages, each variable's
// quantised values give the stage's nodes, and each binary term becomes the
// edge costs of one stage transition (unary terms fold into an adjacent
// transition).  This is the bridge from the objective-function view (eq. 4)
// to the multistage-graph view (Figure 1b) that the systolic designs of
// Section 3 consume.
#pragma once

#include <vector>

#include "graph/multistage_graph.hpp"
#include "nonserial/objective.hpp"

namespace sysdp {

struct SerialChainProblem {
  MultistageGraph graph;
  /// var_order[s] = original variable index placed at stage s.
  std::vector<std::size_t> var_order;

  /// Map a stage path back to an assignment of the original variables.
  [[nodiscard]] std::vector<std::size_t> decode(const StagePath& path) const;
};

/// Throws if the objective is not serial (use group_banded_to_serial or
/// solve_by_elimination for those).
[[nodiscard]] SerialChainProblem serial_to_multistage(
    const NonserialObjective& obj);

}  // namespace sysdp
