// Grouping transform: monadic-nonserial to monadic-serial (Section 6.1,
// eqs. 36-41).
//
// A banded nonserial objective (every term spans at most three consecutive
// variables, as in eq. 36) becomes a *serial* multistage problem by fusing
// consecutive variable pairs into compound stage variables
// V'_s = (V_s, V_{s+1}) (eq. 41).  Stage s then has m_s * m_{s+1} states;
// an edge from state (a, b) to state (b', c) costs the window terms'
// g(a, b, c) when b == b' and +inf otherwise (the overlap constraint that
// makes the compound chain consistent).  The resulting graph is exactly the
// kind Designs 1-3 consume — "with additional control, the linear systolic
// array presented earlier can be applied" — at the price of the larger
// state space the paper notes.
#pragma once

#include <vector>

#include "graph/multistage_graph.hpp"
#include "nonserial/objective.hpp"

namespace sysdp {

struct GroupedSerialProblem {
  MultistageGraph graph;  ///< stages 0..n-2, stage s holds (V_s, V_{s+1})
  std::vector<std::size_t> domains;  ///< original variable domain sizes
  /// The objective's Phi: kSum problems are solved over (MIN,+), kMax
  /// problems over (MIN,MAX) — the same graph, a different semiring.
  Combine combine = Combine::kSum;

  /// Recover the original variable assignment from a stage path.
  [[nodiscard]] std::vector<std::size_t> decode(const StagePath& path) const;
};

/// Transform a bandwidth-<=2 objective over n >= 3 variables.  Throws if a
/// term spans more than three consecutive variables (no banded structure to
/// exploit — the unrestricted case is NP-hard, Section 6).
[[nodiscard]] GroupedSerialProblem group_banded_to_serial(
    const NonserialObjective& obj);

}  // namespace sysdp
