#include "nonserial/grouping.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

namespace {

/// Stage sizes of the compound chain: |V'_s| = m_s * m_{s+1}.
std::vector<std::size_t> compound_sizes(const std::vector<std::size_t>& m) {
  std::vector<std::size_t> sizes;
  sizes.reserve(m.size() - 1);
  for (std::size_t s = 0; s + 1 < m.size(); ++s) {
    sizes.push_back(m[s] * m[s + 1]);
  }
  return sizes;
}

}  // namespace

std::vector<std::size_t> GroupedSerialProblem::decode(
    const StagePath& path) const {
  const std::size_t n = domains.size();
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    assignment[s] = path.at(s) / domains[s + 1];  // the (a, b) pair's a
  }
  assignment[n - 1] = path.at(n - 2) % domains[n - 1];
  return assignment;
}

GroupedSerialProblem group_banded_to_serial(const NonserialObjective& obj) {
  const std::size_t n = obj.num_variables();
  if (n < 3) {
    throw std::invalid_argument("group_banded_to_serial: need >= 3 variables");
  }
  const auto& m = obj.domains();
  // Every term must fit in a window {s, s+1, s+2}.
  std::vector<std::vector<const Term*>> window(n - 2);
  for (const Term& t : obj.terms()) {
    const std::size_t lo = t.scope.front();
    const std::size_t hi = t.scope.back();
    if (hi - lo > 2) {
      throw std::invalid_argument(
          "group_banded_to_serial: term spans more than three consecutive "
          "variables");
    }
    window[std::min(lo, n - 3)].push_back(&t);
  }

  GroupedSerialProblem out{MultistageGraph(compound_sizes(m)), m,
                           obj.combine()};
  std::vector<std::size_t> scratch(n, 0);
  for (std::size_t s = 0; s + 3 <= n; ++s) {
    for (std::size_t a = 0; a < m[s]; ++a) {
      for (std::size_t b = 0; b < m[s + 1]; ++b) {
        for (std::size_t c = 0; c < m[s + 2]; ++c) {
          scratch[s] = a;
          scratch[s + 1] = b;
          scratch[s + 2] = c;
          Cost cost = obj.fold_identity();
          for (const Term* t : window[s]) {
            std::size_t idx = 0;
            for (std::size_t v : t->scope) idx = idx * m[v] + scratch[v];
            cost = obj.fold(cost, t->table[idx]);
          }
          // Compound edge: (a, b) in stage s -> (b, c) in stage s+1; pairs
          // with mismatching overlap keep the +inf "no edge" default.
          out.graph.set_edge(s, a * m[s + 1] + b, b * m[s + 2] + c, cost);
        }
      }
    }
  }
  return out;
}

}  // namespace sysdp
