#include "nonserial/nonserial_generators.hpp"

#include <algorithm>
#include <set>

namespace sysdp {

namespace {

std::vector<Cost> random_table(std::size_t size, Rng& rng, Cost lo, Cost hi) {
  std::uniform_int_distribution<Cost> dist(lo, hi);
  std::vector<Cost> table(size);
  for (auto& c : table) c = dist(rng);
  return table;
}

}  // namespace

NonserialObjective random_banded_objective(const std::vector<std::size_t>& m,
                                           Rng& rng, Cost lo, Cost hi) {
  NonserialObjective obj(m);
  for (std::size_t k = 0; k + 2 < m.size(); ++k) {
    obj.add_term({k, k + 1, k + 2},
                 random_table(m[k] * m[k + 1] * m[k + 2], rng, lo, hi));
  }
  return obj;
}

NonserialObjective random_banded_objective(std::size_t n_vars, std::size_t m,
                                           Rng& rng) {
  return random_banded_objective(std::vector<std::size_t>(n_vars, m), rng);
}

NonserialObjective paper_example_objective(std::size_t m, Rng& rng) {
  NonserialObjective obj(std::vector<std::size_t>(5, m));
  obj.add_term({0, 1, 3}, random_table(m * m * m, rng, 0, 99));
  obj.add_term({2, 3}, random_table(m * m, rng, 0, 99));
  obj.add_term({1, 4}, random_table(m * m, rng, 0, 99));
  return obj;
}

NonserialObjective random_sparse_objective(std::size_t n_vars, std::size_t m,
                                           std::size_t n_terms, Rng& rng) {
  NonserialObjective obj(std::vector<std::size_t>(n_vars, m));
  std::uniform_int_distribution<std::size_t> arity_dist(1, 3);
  std::uniform_int_distribution<std::size_t> var_dist(0, n_vars - 1);
  for (std::size_t t = 0; t < n_terms; ++t) {
    std::set<std::size_t> scope_set;
    const std::size_t arity = std::min(arity_dist(rng), n_vars);
    while (scope_set.size() < arity) scope_set.insert(var_dist(rng));
    TermScope scope(scope_set.begin(), scope_set.end());
    std::size_t size = 1;
    for (std::size_t v : scope) size *= obj.domain(v);
    obj.add_term(std::move(scope), random_table(size, rng, 0, 99));
  }
  return obj;
}

}  // namespace sysdp
