#include "nonserial/serial_chain.hpp"

#include <stdexcept>

namespace sysdp {

std::vector<std::size_t> SerialChainProblem::decode(
    const StagePath& path) const {
  std::vector<std::size_t> assignment(var_order.size(), 0);
  for (std::size_t s = 0; s < var_order.size(); ++s) {
    assignment[var_order[s]] = path.at(s);
  }
  return assignment;
}

SerialChainProblem serial_to_multistage(const NonserialObjective& obj) {
  if (obj.combine() != Combine::kSum) {
    // Edge costs telescope additively along the chain; a Phi = max
    // objective needs the elimination route instead.
    throw std::invalid_argument("serial_to_multistage: requires Phi = sum");
  }
  const InteractionGraph ig = obj.interaction();
  if (!ig.is_serial()) {
    throw std::invalid_argument("serial_to_multistage: objective not serial");
  }
  std::vector<std::size_t> order = ig.path_order();
  const std::size_t n = order.size();
  if (n < 2) {
    throw std::invalid_argument("serial_to_multistage: need >= 2 variables");
  }
  // Position of each variable along the chain.
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t s = 0; s < n; ++s) pos[order[s]] = s;

  std::vector<std::size_t> sizes(n);
  for (std::size_t s = 0; s < n; ++s) sizes[s] = obj.domain(order[s]);
  MultistageGraph g(sizes, 0);  // start from all-zero edges and accumulate

  const auto& domains = obj.domains();
  for (const Term& t : obj.terms()) {
    if (t.scope.size() == 2) {
      const std::size_t pa = pos[t.scope[0]];
      const std::size_t pb = pos[t.scope[1]];
      const std::size_t s = std::min(pa, pb);
      if (std::max(pa, pb) != s + 1) {
        throw std::logic_error("serial_to_multistage: non-adjacent term");
      }
      // Orient the table: scope is sorted by variable id, which may be
      // either chain direction.
      const bool fwd = pos[t.scope[0]] < pos[t.scope[1]];
      const std::size_t da = domains[t.scope[0]];
      const std::size_t db = domains[t.scope[1]];
      for (std::size_t a = 0; a < da; ++a) {
        for (std::size_t b = 0; b < db; ++b) {
          const Cost c = t.table[a * db + b];
          if (fwd) {
            g.set_edge(s, a, b, sat_add(g.edge(s, a, b), c));
          } else {
            g.set_edge(s, b, a, sat_add(g.edge(s, b, a), c));
          }
        }
      }
    } else if (t.scope.size() == 1) {
      // Unary term: fold into the outgoing transition (incoming for the
      // last stage).
      const std::size_t p = pos[t.scope[0]];
      const std::size_t d = domains[t.scope[0]];
      for (std::size_t a = 0; a < d; ++a) {
        const Cost c = t.table[a];
        if (p + 1 < n) {
          for (std::size_t b = 0; b < g.stage_size(p + 1); ++b) {
            g.set_edge(p, a, b, sat_add(g.edge(p, a, b), c));
          }
        } else {
          for (std::size_t b = 0; b < g.stage_size(p - 1); ++b) {
            g.set_edge(p - 1, b, a, sat_add(g.edge(p - 1, b, a), c));
          }
        }
      }
    } else {
      throw std::logic_error("serial_to_multistage: term arity > 2");
    }
  }
  return SerialChainProblem{std::move(g), std::move(order)};
}

}  // namespace sysdp
