// Generators for nonserial workloads.
#pragma once

#include "graph/generators.hpp"
#include "nonserial/objective.hpp"

namespace sysdp {

/// The banded objective of eq. (36): terms g_k(V_k, V_{k+1}, V_{k+2}) with
/// uniformly random cost tables.  `m` gives each variable's domain size.
[[nodiscard]] NonserialObjective random_banded_objective(
    const std::vector<std::size_t>& m, Rng& rng, Cost lo = 0, Cost hi = 99);

/// Uniform-domain convenience overload.
[[nodiscard]] NonserialObjective random_banded_objective(std::size_t n_vars,
                                                         std::size_t m,
                                                         Rng& rng);

/// The worked nonserial example of Section 2.2:
/// g1(X_1, X_2, X_4) + g2(X_3, X_4) + g3(X_2, X_5), with random tables over
/// 5 variables of domain size `m` (0-based scopes {0,1,3}, {2,3}, {1,4}).
[[nodiscard]] NonserialObjective paper_example_objective(std::size_t m,
                                                         Rng& rng);

/// A random nonserial objective: `n_terms` terms of random arity <= 3 over
/// random scopes (used to exercise general elimination orders).
[[nodiscard]] NonserialObjective random_sparse_objective(
    std::size_t n_vars, std::size_t m, std::size_t n_terms, Rng& rng);

}  // namespace sysdp
