#include "arrays/gkt_array.hpp"

#include <algorithm>
#include <stdexcept>

#include "semiring/kernels.hpp"

namespace sysdp {

GktArray::GktArray(std::vector<Cost> dims) : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("GktArray: need at least one matrix");
  }
  for (Cost d : dims_) {
    if (d <= 0) throw std::invalid_argument("GktArray: dims must be positive");
  }
}

GktArray::Result GktArray::run() const {
  const std::size_t n = num_matrices();
  Result out{Matrix<Cost>(n, n, 0), Matrix<std::size_t>(n, n, 0),
             Matrix<sim::Cycle>(n, n, 0), {}};
  out.stats.num_pes = num_cells();
  out.stats.input_scalars = dims_.size();

  // Diagonal-order evaluation: every operand a cell consumes comes from a
  // strictly smaller diagonal, so all arrival times are known by the time a
  // cell is processed.  The per-cell scratch (operand arrival times and the
  // arrival-sorted visit order) is hoisted out of the sweep: one workspace
  // sized for the longest diagonal, reused by every cell.
  std::vector<sim::Cycle> arrivals(n - 1);
  std::vector<std::size_t> order(n - 1);
  for (std::size_t d = 1; d < n; ++d) {
    for (std::size_t i = 0; i + d < n; ++i) {
      const std::size_t j = i + d;
      // Arrival time of the operand pair for each split k.
      for (std::size_t k = i; k < j; ++k) {
        const sim::Cycle left = out.ready(i, k) + (j - k);       // row hop
        const sim::Cycle right = out.ready(k + 1, j) + (k + 1 - i);  // col hop
        arrivals[k - i] = std::max(left, right);
      }
      // The cell's comparator folds candidates in arrival order; like the
      // Section 6.2 processors it performs two additions and two
      // comparisons per step.
      for (std::size_t t = 0; t < d; ++t) order[t] = i + t;
      std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(d),
                [&](std::size_t a, std::size_t b) {
                  return arrivals[a - i] < arrivals[b - i];
                });
      Cost best = kInfCost;
      std::size_t best_k = i;
      sim::Cycle t = 0;
      std::size_t idx = 0;
      while (idx < d) {
        t = std::max(t, arrivals[order[idx] - i]) + 1;
        std::size_t taken = 0;
        while (idx < d && taken < 2 && arrivals[order[idx] - i] <= t - 1) {
          const std::size_t k = order[idx];
          const Cost cand =
              kern::interval_candidate(out.cost(i, k), out.cost(k + 1, j),
                                       dims_[i] * dims_[k + 1] * dims_[j + 1]);
          ++out.stats.busy_steps;
          kern::fold_min(cand, k, best, best_k);
          ++idx;
          ++taken;
        }
      }
      out.cost(i, j) = best;
      out.split(i, j) = best_k;
      out.ready(i, j) = t;
    }
  }
  out.stats.cycles = n == 1 ? 0 : out.ready(0, n - 1);
  return out;
}

}  // namespace sysdp
