#include "arrays/design1_modular.hpp"

#include <cstdint>
#include <stdexcept>

#include "semiring/kernels.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp {

namespace {

struct Token {
  Design1Modular::V val{};
  std::size_t idx = 0;
  std::size_t q = 0;
  bool valid = false;
};

}  // namespace

/// Per-array arena holding every PE's hot state, struct-of-arrays by token
/// field.  Each rail is a bank of two-phase registers (one lane per PE):
/// *_nxt stages the write, written gates the latch, so the semantics are
/// exactly Register<Token> with the storage flattened for cache-linear
/// sweeps.
struct Design1Modular::Arena {
  using V = Design1Modular::V;

  /// One SoA bank of two-phase token registers.
  struct Rail {
    std::vector<V> val, val_nxt;
    std::vector<std::size_t> idx, idx_nxt;
    std::vector<std::size_t> q, q_nxt;
    std::vector<std::uint8_t> valid, valid_nxt, written;

    void init(std::size_t n) {
      val.assign(n, V{});
      val_nxt.assign(n, V{});
      idx.assign(n, 0);
      idx_nxt.assign(n, 0);
      q.assign(n, 0);
      q_nxt.assign(n, 0);
      valid.assign(n, 0);
      valid_nxt.assign(n, 0);
      written.assign(n, 0);
    }
    void write(std::size_t p, V v, std::size_t i, std::size_t qq, bool ok) {
      val_nxt[p] = v;
      idx_nxt[p] = i;
      q_nxt[p] = qq;
      valid_nxt[p] = ok ? 1 : 0;
      written[p] = 1;
    }
    void commit(std::size_t p) {
      if (written[p]) {
        val[p] = val_nxt[p];
        idx[p] = idx_nxt[p];
        q[p] = q_nxt[p];
        valid[p] = valid_nxt[p];
        written[p] = 0;
      }
    }
    [[nodiscard]] Token read(std::size_t p) const {
      return Token{val[p], idx[p], q[p], valid[p] != 0};
    }
  };

  Rail r;    ///< moving rail (pass-through register)
  Rail acc;  ///< accumulator rail
  /// Lowering hook (sim/record.hpp), null in normal runs.  Lane keys are
  /// the rails' value-element addresses — the same keys describe_ports
  /// declares, so the compiled netlist and the captured one coincide.
  sim::OpRecorder* rec = nullptr;
  // Distributed control, one lane per PE: the local iteration counter kept
  // in already-decoded form (multiply index q, 1-based, and position j in
  // the current multiply) so the hot eval path never divides.
  std::vector<std::uint8_t> started, advance;
  std::vector<std::size_t> q_ctl, j_ctl;

  explicit Arena(std::size_t n) {
    r.init(n);
    acc.init(n);
    started.assign(n, 0);
    advance.assign(n, 0);
    q_ctl.assign(n, 1);
    j_ctl.assign(n, 0);
  }
};

/// Host-side I/O: feeds the initial vector into P_0 and harvests mode-B
/// final results streaming out of P_{m-1}.  (The host legitimately sees the
/// global cycle count; the PEs do not.)
class Design1Modular::Host : public sim::Module {
 public:
  Host(const std::vector<V>& v, std::size_t m, std::size_t q_total,
       std::size_t final_rows)
      : Module("host"), v_(v), m_(m), q_total_(q_total),
        final_rows_(final_rows), out_(final_rows, MinPlus::zero()) {}

  void eval(sim::Cycle c) override {
    input_ = Token{};
    if (c < m_) input_ = Token{v_[c], static_cast<std::size_t>(c), 1, true};
    exhausted_ = c + 1 >= m_;
    if (rec_ != nullptr) {
      // The fed element (or the idle token's 0) is an instance constant;
      // bind_now because P_0 samples the bus lane this same cycle.
      rec_->bind_now(&input_, rec_->constant(input_.val));
    }
  }
  void commit() override {}

  /// P_0 reads input() in the same cycle it is computed.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// Once the vector is fed, every further eval leaves input() invalid:
  /// the feed is a no-op and the gated engine may skip it.
  [[nodiscard]] bool quiescent() const noexcept override {
    return exhausted_ && !input_.valid;
  }

  /// Sample the tail PE's accumulator output after each clock edge.
  void harvest(const Token& tail_acc) {
    if (tail_acc.valid && tail_acc.q == q_total_ &&
        tail_acc.idx < final_rows_) {
      out_[tail_acc.idx] = tail_acc.val;
    }
  }

  [[nodiscard]] const Token& input() const noexcept { return input_; }
  [[nodiscard]] std::vector<V>& out() noexcept { return out_; }

  void set_recorder(sim::OpRecorder* rec) noexcept { rec_ = rec; }

  /// The feed retires for good once the vector is exhausted.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return sim::SleepMode::kRetire;
  }
  void describe_ports(sim::PortSet& ports) const override {
    // Token is a struct lane, so the probe is explicit: waveforms show the
    // fed value while a token is in flight and 0 between tokens.
    ports.drives_signal(&input_, "host.input", [this]() -> std::int64_t {
      return input_.valid ? static_cast<std::int64_t>(input_.val) : 0;
    });
  }

 private:
  const std::vector<V>& v_;
  std::size_t m_;
  std::size_t q_total_;
  std::size_t final_rows_;
  Token input_;
  std::vector<V> out_;
  bool exhausted_ = false;
  sim::OpRecorder* rec_ = nullptr;
};

/// One PE with distributed control: a local iteration counter that starts
/// on the first valid token, from which ODD/MOVE are derived.  Dual output
/// rails (R and ACC) let the *receiver's* mode select the moving value, the
/// registered equivalent of Figure 3(b)'s output multiplexer with its
/// per-PE control delay.  All state lives in the shared arena; the module
/// is a thin lane view.
class Design1Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const std::vector<Matrix<V>>& mats, Host& host,
     Arena& a, sim::ActivityStats& stats, std::size_t m)
      : Module("pe" + std::to_string(index)),
        index_(index),
        mats_(mats),
        host_(host),
        a_(a),
        stats_(stats),
        m_(m) {}

  void eval(sim::Cycle) override {
    Arena& a = a_;
    const std::size_t p = index_;
    a.advance[p] = 0;
    const std::size_t q = a.q_ctl[p];
    const std::size_t j = a.j_ctl[p];
    if (q > mats_.size()) return;  // drained
    const bool mode_a = (q % 2 == 1);
    const Matrix<V>& mat = mats_[mats_.size() - q];

    if (mode_a) {
      Token in;
      if (p == 0) {
        in = (q == 1) ? host_.input() : a.acc.read(m_ - 1);
        if (in.valid && q != 1 && in.q != q - 1) in.valid = false;
      } else {
        in = a.r.read(p - 1);
      }
      if (!a.started[p] && !in.valid) return;  // not my turn yet
      a.advance[p] = 1;
      sim::OpRecorder* const rec = a.rec;
      sim::SlotId s_in = 0;
      if (rec != nullptr) {
        // Narrate the pass-through: the R write is a pure copy, so it is a
        // rebind of the lane to the source's slot, not a tape op.
        s_in = (p == 0) ? ((q == 1) ? rec->lane(&host_.input(), in.val)
                                    : rec->lane(&a.acc.val[m_ - 1], in.val))
                        : rec->lane(&a.r.val[p - 1], in.val);
        rec->bind_staged(&a.r.val[p], s_in);
      }
      a.r.write(p, in.val, in.idx, in.q, in.valid);
      if (in.valid && p < mat.rows()) {
        const V base = (j == 0) ? MinPlus::zero() : a.acc.val[p];
        if (rec != nullptr) {
          const sim::SlotId s_base = (j == 0)
                                         ? rec->constant(MinPlus::zero())
                                         : rec->lane(&a.acc.val[p], base);
          rec->bind_staged(&a.acc.val[p],
                           rec->mac(s_base, mat(p, in.idx), s_in));
        }
        a.acc.write(p, kern::mac<MinPlus>(base, mat(p, in.idx), in.val), p, q,
                    true);
        stats_.mark_busy(p);
      }
    } else {
      a.advance[p] = 1;
      const Token stationary = (j == 0) ? a.acc.read(p) : a.r.read(p);
      sim::OpRecorder* const rec = a.rec;
      sim::SlotId s_st = 0;
      if (rec != nullptr) {
        s_st = (j == 0) ? rec->lane(&a.acc.val[p], stationary.val)
                        : rec->lane(&a.r.val[p], stationary.val);
      }
      if (j == 0) {
        if (rec != nullptr) rec->bind_staged(&a.r.val[p], s_st);
        a.r.write(p, stationary.val, stationary.idx, stationary.q,
                  stationary.valid);
      }
      Token partial;
      if (p == 0) {
        partial = (j < mat.rows()) ? Token{MinPlus::zero(), j, q, true}
                                   : Token{};
      } else {
        partial = a.acc.read(p - 1);
        if (partial.valid && partial.q != q) partial.valid = false;
      }
      if (partial.valid) {
        if (rec != nullptr) {
          const sim::SlotId s_part =
              (p == 0) ? rec->constant(MinPlus::zero())
                       : rec->lane(&a.acc.val[p - 1], partial.val);
          rec->bind_staged(&a.acc.val[p],
                           rec->mac(s_part, mat(partial.idx, p), s_st));
        }
        a.acc.write(p,
                    kern::mac<MinPlus>(partial.val, mat(partial.idx, p),
                                       stationary.val),
                    partial.idx, q, true);
        stats_.mark_busy(p);
      } else {
        if (rec != nullptr) {
          rec->bind_staged(&a.acc.val[p], rec->constant(V{}));
        }
        a.acc.write(p, V{}, 0, 0, false);
      }
    }
  }

  void commit() override {
    Arena& a = a_;
    const std::size_t p = index_;
    a.r.commit(p);
    a.acc.commit(p);
    if (a.advance[p]) {
      a.started[p] = 1;
      if (++a.j_ctl[p] == m_) {
        a.j_ctl[p] = 0;
        ++a.q_ctl[p];
      }
    }
  }

  /// Skippable before the first valid token arrives (the wakeup edge from
  /// the left neighbour / host restarts us) and after the last multiply
  /// drains.  A started, undrained PE must run every cycle: its local
  /// iteration counter is live control state.
  [[nodiscard]] bool quiescent() const noexcept override {
    return !a_.started[index_] || a_.q_ctl[index_] > mats_.size();
  }

  /// Sleeps before the first token and reactivates on input: the wakeup
  /// edges from the left neighbour / host / tail must cover every read.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return sim::SleepMode::kWakeable;
  }

  /// Arena lanes are named by the address of their value element; the R
  /// and ACC rails are banks of two-phase registers.
  void describe_ports(sim::PortSet& ports) const override {
    const std::size_t p = index_;
    ports.writes_register(&a_.r.val[p], "r[" + std::to_string(p) + "]");
    ports.writes_register(&a_.acc.val[p], "acc[" + std::to_string(p) + "]");
    if (p == 0) {
      ports.reads_signal(&host_.input(), "host.input");
      ports.reads_register(&a_.acc.val[m_ - 1],
                           "acc[" + std::to_string(m_ - 1) + "]");
    } else {
      ports.reads_register(&a_.r.val[p - 1],
                           "r[" + std::to_string(p - 1) + "]");
      ports.reads_register(&a_.acc.val[p - 1],
                           "acc[" + std::to_string(p - 1) + "]");
    }
  }

 private:
  std::size_t index_;
  const std::vector<Matrix<V>>& mats_;
  Host& host_;
  Arena& a_;
  sim::ActivityStats& stats_;
  std::size_t m_;
};

Design1Modular::Design1Modular(std::vector<Matrix<V>> mats, std::vector<V> v)
    : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()), stats_(m_) {
  if (mats_.empty()) throw std::invalid_argument("Design1Modular: no matrices");
  if (m_ == 0) throw std::invalid_argument("Design1Modular: empty vector");
  for (std::size_t i = 0; i < mats_.size(); ++i) {
    if (mats_[i].cols() != m_ ||
        (mats_[i].rows() != m_ && !(i == 0 && mats_[i].rows() <= m_))) {
      throw std::invalid_argument("Design1Modular: bad matrix shape");
    }
  }
}

Design1Modular::~Design1Modular() = default;

void Design1Modular::elaborate(sim::Engine& engine) {
  const std::size_t Q = mats_.size();
  const std::size_t r = mats_.front().rows();
  stats_.reset();
  arena_ = std::make_unique<Arena>(m_);
  arena_->rec = engine.recorder();
  host_ = std::make_unique<Host>(v_, m_, Q, r);
  host_->set_recorder(engine.recorder());
  engine.add(*host_);
  pes_.clear();
  for (std::size_t p = 0; p < m_; ++p) {
    pes_.push_back(
        std::make_unique<Pe>(p, mats_, *host_, *arena_, stats_, m_));
    engine.add(*pes_.back());
  }
  // Wakeup edges follow the register dataflow: the host feed starts P_0,
  // each PE's R/ACC rails feed its right neighbour, and the tail's ACC
  // rail feeds back into P_0 between multiplies.
  engine.add_wakeup(*host_, *pes_.front());
  for (std::size_t p = 1; p < m_; ++p) {
    engine.add_wakeup(*pes_[p - 1], *pes_[p]);
  }
  engine.add_wakeup(*pes_.back(), *pes_.front());
}

void Design1Modular::describe_environment(sim::PortSet& ports) const {
  if (arena_ == nullptr) return;
  // Mode-B harvests sample the tail ACC lane each cycle; a mode-A finish
  // reads the final results in place across the first r lanes.
  ports.reads_register(&arena_->acc.val[m_ - 1],
                       "acc[" + std::to_string(m_ - 1) + "]");
  if (mats_.size() % 2 == 1) {
    for (std::size_t p = 0; p < mats_.front().rows(); ++p) {
      ports.reads_register(&arena_->acc.val[p],
                           "acc[" + std::to_string(p) + "]");
    }
  }
  // The tail R lane has no right neighbour; declare the architectural
  // tie-off so the pass-through writes don't read as dangling.
  ports.reads_register(&arena_->r.val[m_ - 1],
                       "r[" + std::to_string(m_ - 1) + "]");
}

RunResult<Design1Modular::V> Design1Modular::run(sim::ThreadPool* pool,
                                                 sim::Gating gating) {
  sim::Engine engine(pool, gating);
  return run(engine);
}

RunResult<Design1Modular::V> Design1Modular::run(sim::Engine& engine) {
  if (engine.now() > 0 || engine.num_modules() > 0) {
    throw std::invalid_argument("Design1Modular::run: engine must be fresh");
  }
  const std::size_t Q = mats_.size();
  const std::size_t r = mats_.front().rows();
  elaborate(engine);

  const bool final_mode_a = (Q % 2 == 1);
  const sim::Cycle total = (Q - 1) * m_ + (m_ - 1) + (r - 1) + 1;
  sim::OpRecorder* const rec = engine.recorder();
  for (sim::Cycle c = 0; c < total; ++c) {
    engine.step();
    if (!final_mode_a) {
      const Token tail = arena_->acc.read(m_ - 1);
      if (rec != nullptr && tail.valid && tail.q == Q && tail.idx < r) {
        rec->output("out", tail.idx,
                    rec->lane(&arena_->acc.val[m_ - 1], tail.val), tail.val);
      }
      host_->harvest(tail);
    }
  }

  RunResult<V> res;
  res.num_pes = m_;
  res.cycles = total;
  res.busy_steps = stats_.total_busy();
  res.input_scalars = m_ + res.busy_steps;
  res.active_evals = engine.active_evals();
  res.dense_evals = engine.dense_evals();
  if (final_mode_a) {
    for (std::size_t p = 0; p < r; ++p) {
      host_->out()[p] = arena_->acc.val[p];
      if (rec != nullptr) {
        rec->output("out", p, rec->lane(&arena_->acc.val[p], host_->out()[p]),
                    host_->out()[p]);
      }
    }
  }
  res.values = host_->out();
  return res;
}

}  // namespace sysdp
