#include "arrays/design1_modular.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/module.hpp"
#include "sim/register.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp {

namespace {

struct Token {
  Design1Modular::V val{};
  std::size_t idx = 0;
  std::size_t q = 0;
  bool valid = false;
};

}  // namespace

/// Host-side I/O: feeds the initial vector into P_0 and harvests mode-B
/// final results streaming out of P_{m-1}.  (The host legitimately sees the
/// global cycle count; the PEs do not.)
class Design1Modular::Host : public sim::Module {
 public:
  Host(const std::vector<V>& v, std::size_t m, std::size_t q_total,
       std::size_t final_rows)
      : Module("host"), v_(v), m_(m), q_total_(q_total),
        final_rows_(final_rows), out_(final_rows, MinPlus::zero()) {}

  void eval(sim::Cycle c) override {
    input_ = Token{};
    if (c < m_) input_ = Token{v_[c], static_cast<std::size_t>(c), 1, true};
  }
  void commit() override {}

  /// P_0 reads input() in the same cycle it is computed.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// Sample the tail PE's accumulator output after each clock edge.
  void harvest(const Token& tail_acc) {
    if (tail_acc.valid && tail_acc.q == q_total_ &&
        tail_acc.idx < final_rows_) {
      out_[tail_acc.idx] = tail_acc.val;
    }
  }

  [[nodiscard]] const Token& input() const noexcept { return input_; }
  [[nodiscard]] std::vector<V>& out() noexcept { return out_; }

 private:
  const std::vector<V>& v_;
  std::size_t m_;
  std::size_t q_total_;
  std::size_t final_rows_;
  Token input_;
  std::vector<V> out_;
};

/// One PE with distributed control: a local iteration counter that starts
/// on the first valid token, from which ODD/MOVE are derived.  Dual output
/// rails (R and ACC) let the *receiver's* mode select the moving value, the
/// registered equivalent of Figure 3(b)'s output multiplexer with its
/// per-PE control delay.
class Design1Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const std::vector<Matrix<V>>& mats, Host& host,
     const Pe* left, const Pe* const& tail, sim::ActivityStats& stats,
     std::size_t m)
      : Module("pe" + std::to_string(index)),
        index_(index),
        mats_(mats),
        host_(host),
        left_(left),
        tail_(tail),
        stats_(stats),
        m_(m) {}

  void eval(sim::Cycle) override {
    advance_ = false;
    const std::size_t local = started_ ? local_ : 0;
    const std::size_t q = local / m_ + 1;
    const std::size_t j = local % m_;
    if (q > mats_.size()) return;  // drained
    const bool mode_a = (q % 2 == 1);
    const Matrix<V>& mat = mats_[mats_.size() - q];

    if (mode_a) {
      Token in;
      if (index_ == 0) {
        in = (q == 1) ? host_.input() : tail_->acc_.read();
        if (in.valid && q != 1 && in.q != q - 1) in.valid = false;
      } else {
        in = left_->r_.read();
      }
      if (!started_ && !in.valid) return;  // not my turn yet
      advance_ = true;
      r_.write(in);
      if (in.valid && index_ < mat.rows()) {
        const V base = (j == 0) ? MinPlus::zero() : acc_.read().val;
        acc_.write(Token{
            MinPlus::plus(base, MinPlus::times(mat(index_, in.idx), in.val)),
            index_, q, true});
        stats_.mark_busy(index_);
      }
    } else {
      advance_ = true;
      const Token stationary = (j == 0) ? acc_.read() : r_.read();
      if (j == 0) r_.write(stationary);
      Token partial;
      if (index_ == 0) {
        partial = (j < mat.rows()) ? Token{MinPlus::zero(), j, q, true}
                                   : Token{};
      } else {
        partial = left_->acc_.read();
        if (partial.valid && partial.q != q) partial.valid = false;
      }
      if (partial.valid) {
        acc_.write(Token{MinPlus::plus(partial.val,
                                       MinPlus::times(
                                           mat(partial.idx, index_),
                                           stationary.val)),
                         partial.idx, q, true});
        stats_.mark_busy(index_);
      } else {
        acc_.write(Token{});
      }
    }
  }

  void commit() override {
    r_.commit();
    acc_.commit();
    if (advance_) {
      if (!started_) {
        started_ = true;
        local_ = 1;
      } else {
        ++local_;
      }
    }
  }

  sim::Register<Token> r_;
  sim::Register<Token> acc_;

 private:
  std::size_t index_;
  const std::vector<Matrix<V>>& mats_;
  Host& host_;
  const Pe* left_;
  const Pe* const& tail_;  // resolved after all PEs are constructed
  sim::ActivityStats& stats_;
  std::size_t m_;
  bool started_ = false;
  bool advance_ = false;
  std::size_t local_ = 0;
};

Design1Modular::Design1Modular(std::vector<Matrix<V>> mats, std::vector<V> v)
    : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()) {
  if (mats_.empty()) throw std::invalid_argument("Design1Modular: no matrices");
  if (m_ == 0) throw std::invalid_argument("Design1Modular: empty vector");
  for (std::size_t i = 0; i < mats_.size(); ++i) {
    if (mats_[i].cols() != m_ ||
        (mats_[i].rows() != m_ && !(i == 0 && mats_[i].rows() <= m_))) {
      throw std::invalid_argument("Design1Modular: bad matrix shape");
    }
  }
}

Design1Modular::~Design1Modular() = default;

RunResult<Design1Modular::V> Design1Modular::run(sim::ThreadPool* pool) {
  const std::size_t Q = mats_.size();
  const std::size_t r = mats_.front().rows();
  sim::ActivityStats stats(m_);
  sim::Engine engine(pool);
  host_ = std::make_unique<Host>(v_, m_, Q, r);
  engine.add(*host_);
  pes_.clear();
  tail_ = nullptr;
  for (std::size_t p = 0; p < m_; ++p) {
    const Pe* left = p == 0 ? nullptr : pes_[p - 1].get();
    pes_.push_back(
        std::make_unique<Pe>(p, mats_, *host_, left, tail_, stats, m_));
    engine.add(*pes_.back());
  }
  tail_ = pes_.back().get();

  const bool final_mode_a = (Q % 2 == 1);
  const sim::Cycle total = (Q - 1) * m_ + (m_ - 1) + (r - 1) + 1;
  for (sim::Cycle c = 0; c < total; ++c) {
    engine.step();
    if (!final_mode_a) host_->harvest(pes_.back()->acc_.read());
  }

  RunResult<V> res;
  res.num_pes = m_;
  res.cycles = total;
  res.busy_steps = stats.total_busy();
  res.input_scalars = m_ + res.busy_steps;
  if (final_mode_a) {
    for (std::size_t p = 0; p < r; ++p) {
      host_->out()[p] = pes_[p]->acc_.read().val;
    }
  }
  res.values = host_->out();
  return res;
}

}  // namespace sysdp
