// Design 3: the feedback linear systolic array of Figure 5.
//
// Solves the node-value serial optimisation problem of eq. (4)
//     min_X sum_k f(X_k, X_{k+1})
// by eliminating variables stage by stage (eq. 12).  Each PE P_p contains
//  * R_p  — the pipeline register node tokens travel through,
//  * K_p, H_p — feedback registers holding a previous-stage node value and
//    its optimal prefix cost h,
//  * F, A, C — the edge-cost function unit, an adder, and a comparator.
//
// Schedule (0-based cycles; the paper's iteration t is cycle t-1):
//  * node x_{k,i} (stage k in 1..N, node i in 0..m-1) enters P_0 at cycle
//    (k-1)m + i carrying a partial cost register;
//  * when a completed token (x_{k-1,i}, h(x_{k-1,i})) leaves P_{m-1}, the
//    feedback controller routes it into K_i/H_i of PE i one cycle later
//    (cycle (k-1)m + i), where an arriving token may use it the same cycle —
//    exactly the paper's walkthrough of x_{2,1} meeting x_{1,1} in P_1;
//  * passing PE p, a stage-k token folds in  H_p + f(K_p, x_{k,i})  and
//    remembers the arg p that achieved the minimum;
//  * after the N·m input cycles one *collector* token passes with F = 0,
//    folding in min_p H_p — the final m-way comparison the paper performs by
//    "circulating the values of h(x_{N,i}) through the pipeline".  It leaves
//    P_{m-1} at cycle (N+1)m - 1, for the paper's total of (N+1)m iterations.
//
// Path recovery: P_{m-1} stores each completed token's arg into word i of
// path register k (N path registers of m words, as in Section 3.2), and the
// optimal assignment is traced from the collector's arg at completion.
//
// Only node values cross the array boundary (N·m scalars), not the
// (N-1)·m^2 edge costs — the order-of-magnitude I/O reduction the paper
// claims for this design.
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/run_result.hpp"
#include "graph/node_value_graph.hpp"
#include "semiring/cost.hpp"
#include "sim/trace.hpp"

namespace sysdp {

/// Result of a Design 3 run: optimal cost, one optimal assignment (node
/// index per stage), and the usual array statistics.
struct Design3Result {
  Cost cost = kInfCost;
  StagePath path;
  RunResult<Cost> stats;
};

class Design3Feedback {
 public:
  /// The graph must have uniform width m (one PE per quantised value).
  explicit Design3Feedback(const NodeValueGraph& graph);

  /// The paper's iteration count (N+1) * m.
  [[nodiscard]] std::uint64_t iterations() const noexcept;

  /// Attach an event sink: records every completed h value leaving
  /// P_{m-1} ("h_out") and the final minimum ("min_out").  Any EventSink
  /// works (sim::Trace is the bounded reference one); events the sink
  /// discards during the run surface as RunResult::trace_dropped instead
  /// of vanishing behind a latent flag.
  void set_sink(sim::EventSink* sink) noexcept { sink_ = sink; }
  /// Convenience alias of set_sink for the historical Trace call sites.
  void set_trace(sim::Trace* trace) noexcept { sink_ = trace; }

  /// Simulate to completion.
  [[nodiscard]] Design3Result run();

 private:
  struct Token {
    Cost x = 0;            // node value (quantised value of the variable)
    std::size_t stage = 0;  // 1..N; N+1 marks the collector
    std::size_t idx = 0;    // node index within the stage
    Cost h = kInfCost;      // partial optimal prefix cost
    std::size_t arg = 0;    // PE index achieving the current minimum
    bool valid = false;
  };

  struct Feedback {
    Cost x = 0;
    Cost h = kInfCost;
    std::size_t stage = 0;  // stage the (x, h) pair belongs to
    bool valid = false;
  };

  const NodeValueGraph& graph_;
  std::size_t m_;
  std::size_t n_stages_;
  sim::EventSink* sink_ = nullptr;
};

}  // namespace sysdp
