// Triangular systolic array for optimal parenthesisation
// (Guibas-Kung-Thompson, referenced by Sections 4 and 6.2).
//
// One cell per table entry m_{i,j} of eq. (6), placed on diagonal d = j - i.
// Operand streams move through nearest-neighbour links at one hop per
// cycle: a completed m_{i,k} travels rightward along row i and a completed
// m_{k+1,j} travels up column j, so the pair for split k reaches cell (i,j)
// at max(T(i,k) + (j-k), T(k+1,j) + (k+1-i)).  A cell's comparator folds
// one candidate per cycle (OR-nodes are evaluated sequentially, as Theorem 2
// prescribes for m-arc OR-nodes), so completion times follow the serialised
// AND/OR recurrence of eq. (43) and the whole chain finishes in Theta(N)
// cycles — the linear-time behaviour of Proposition 3, against the
// brute-force broadcast mapping's T_d(N) = N with O(N) buses.
//
// The model is a discrete-time dataflow simulation: explicit hop latencies,
// one operation per cell per cycle, no global shortcuts.
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

class GktArray {
 public:
  /// Chain dimensions r_0..r_n (matrix M_i is r_{i-1} x r_i, as in eq. 6).
  explicit GktArray(std::vector<Cost> dims);

  struct Result {
    Matrix<Cost> cost;           ///< completed m_{i,j} table
    Matrix<std::size_t> split;   ///< winning k per cell
    Matrix<sim::Cycle> ready;    ///< completion cycle of each cell
    RunResult<Cost> stats;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    /// Cycle at which the topmost cell (the full chain) completes.
    [[nodiscard]] sim::Cycle completion() const {
      return ready(0, ready.cols() - 1);
    }
  };

  [[nodiscard]] Result run() const;

  [[nodiscard]] std::size_t num_matrices() const noexcept {
    return dims_.size() - 1;
  }
  /// Cells in the triangular array: n(n+1)/2.
  [[nodiscard]] std::size_t num_cells() const noexcept {
    const std::size_t n = num_matrices();
    return n * (n + 1) / 2;
  }

 private:
  std::vector<Cost> dims_;
};

}  // namespace sysdp
