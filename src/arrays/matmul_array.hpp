// Two-dimensional systolic array for one semiring matrix product.
//
// Section 4 treats "a systolic array" as a unit that multiplies two m x m
// matrices in constant time T_1.  This model grounds that constant: the
// classic stationary-C mesh in which A streams eastward (row i skewed by i
// cycles), B streams southward (column j skewed by j cycles), and cell
// (i,j) accumulates C(i,j) = plus_k times(A(i,k), B(k,j)) when the operands
// meet at cycle i + j + k.  The whole product completes in 3m - 2 cycles.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

template <Semiring S>
class MatmulArray {
 public:
  using V = typename S::value_type;

  MatmulArray(Matrix<V> a, Matrix<V> b) : a_(std::move(a)), b_(std::move(b)) {
    if (a_.cols() != b_.rows()) throw std::invalid_argument("MatmulArray: shape");
  }

  /// Closed-form completion time for an m x m product on this array.
  [[nodiscard]] static sim::Cycle completion_cycles(std::size_t m) noexcept {
    return m == 0 ? 0 : 3 * static_cast<sim::Cycle>(m) - 2;
  }

  struct Product {
    Matrix<V> c;
    RunResult<V> stats;
  };

  [[nodiscard]] Product run() {
    const std::size_t n = a_.rows();
    const std::size_t kk = a_.cols();
    const std::size_t mm = b_.cols();
    Product out{Matrix<V>(n, mm, S::zero()), {}};
    out.stats.num_pes = n * mm;
    out.stats.input_scalars = n * kk + kk * mm;

    struct Moving {
      V val{};
      bool valid = false;
    };
    // a_east[i][j]: the A element sitting in cell (i,j)'s west register.
    std::vector<std::vector<Moving>> a_east(n, std::vector<Moving>(mm));
    std::vector<std::vector<Moving>> b_south(n, std::vector<Moving>(mm));
    auto a_next = a_east;
    auto b_next = b_south;

    const sim::Cycle total =
        static_cast<sim::Cycle>(n - 1 + mm - 1 + kk - 1) + 1;
    for (sim::Cycle c = 0; c < total; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < mm; ++j) {
          // West input: boundary feed for column 0, neighbour otherwise.
          Moving a_in;
          if (j == 0) {
            // a(i,k) enters row i at cycle i + k.
            if (c >= i && c - i < kk) a_in = {a_(i, c - i), true};
          } else {
            a_in = a_east[i][j - 1];
          }
          Moving b_in;
          if (i == 0) {
            if (c >= j && c - j < kk) b_in = {b_(c - j, j), true};
          } else {
            b_in = b_south[i - 1][j];
          }
          if (a_in.valid && b_in.valid) {
            out.c(i, j) = S::plus(out.c(i, j), S::times(a_in.val, b_in.val));
            ++out.stats.busy_steps;
          }
          a_next[i][j] = a_in;
          b_next[i][j] = b_in;
        }
      }
      a_east.swap(a_next);
      b_south.swap(b_next);
    }
    out.stats.cycles = total;
    return out;
  }

 private:
  Matrix<V> a_;
  Matrix<V> b_;
};

}  // namespace sysdp
