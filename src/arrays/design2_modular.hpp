// Design 2 built from discrete hardware modules on the simulation engine.
//
// The monolithic Design2Broadcast model steps all PEs inside one object;
// this variant is the same Figure 4 architecture expressed structurally —
// one Module per hardware block, connected exactly as the figure draws
// them:
//
//   FeedbackUnit ──(broadcast Bus)──> PE_0 ... PE_{m-1}
//        ^                              │ S registers
//        └──────────────────────────────┘
//
// The FeedbackUnit drives the bus each cycle with either the external
// vector element (FIRST = 1) or the fed-back S register contents; each PE
// folds M(p, j) (x) bus into its accumulator and latches it into S on MOVE.
// Engine ordering (bus driver first, listeners after) gives the
// combinational broadcast semantics of the figure; registers give the
// clocked state.  Tests assert cycle-exact equivalence with the monolithic
// model — an ablation of modelling style, not of architecture.
#pragma once

#include <memory>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"
#include "sim/bus.hpp"
#include "sim/engine.hpp"
#include "sim/module.hpp"
#include "sim/port.hpp"
#include "sim/register.hpp"
#include "sim/stats.hpp"

namespace sysdp {

class Design2Modular {
 public:
  using V = MinPlus::value_type;

  /// Same shape contract as Design2Broadcast.
  Design2Modular(std::vector<Matrix<V>> mats, std::vector<V> v);
  ~Design2Modular();

  Design2Modular(const Design2Modular&) = delete;
  Design2Modular& operator=(const Design2Modular&) = delete;

  /// Run to completion.  With a pool the PEs evaluate and latch across
  /// threads; the FeedbackUnit is the bus driver and stays serialised, so
  /// results are bit-identical to the serial run.  Design 2 keeps every PE
  /// busy almost every cycle (that is its selling point in the paper), so
  /// activity gating only retires PEs beyond the rectangular final
  /// matrix's rows during the last multiply.
  [[nodiscard]] RunResult<V> run(sim::ThreadPool* pool = nullptr,
                                 sim::Gating gating = sim::Gating::kSparse);

  /// Run on a caller-constructed engine, so telemetry observers (VCD,
  /// timelines — sim/observer.hpp) can attach before time starts.  The
  /// engine must be fresh: no modules added, no cycles stepped; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] RunResult<V> run(sim::Engine& engine);

  /// Number of PEs (valid from construction, before elaborate()).
  [[nodiscard]] std::size_t num_pes() const noexcept { return m_; }
  /// Cumulative busy cycles of PE `pe` — the monotone counter utilisation
  /// timelines sample per cycle.
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const {
    return stats_.busy_cycles(pe);
  }

  /// Build the arena, modules, and bus wiring into `engine` without
  /// running a cycle (run() uses this; the lint CLI captures the netlist).
  void elaborate(sim::Engine& engine);

  /// Testbench-side taps for analysis::capture: the run loop harvests the
  /// S registers of the first final-matrix-rows PEs.
  void describe_environment(sim::PortSet& ports) const;

 private:
  class FeedbackUnit;
  class Pe;
  struct Arena;

  std::vector<Matrix<V>> mats_;
  std::vector<V> v_;
  std::size_t m_;
  sim::ActivityStats stats_;

  sim::Bus<V> bus_;
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<FeedbackUnit> feedback_;
  std::vector<std::unique_ptr<Pe>> pes_;
};

}  // namespace sysdp
