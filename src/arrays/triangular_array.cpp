#include "arrays/triangular_array.hpp"

#include <stdexcept>

#include "semiring/kernels.hpp"

namespace sysdp {

BstRule::BstRule(std::vector<Cost> freq) : freq_(std::move(freq)) {
  if (freq_.empty()) throw std::invalid_argument("BstRule: no keys");
  for (Cost f : freq_) {
    if (f < 0) throw std::invalid_argument("BstRule: negative frequency");
  }
  prefix_.assign(freq_.size() + 1, 0);
  for (std::size_t i = 0; i < freq_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + freq_[i];
  }
}

Cost BstRule::candidate(std::size_t i, std::size_t j, std::size_t t,
                        Cost left, Cost right) const {
  const std::size_t r = i + t;
  const Cost l = r > i ? left : 0;   // empty left subtree
  const Cost rr = r < j ? right : 0; // empty right subtree
  const Cost weight = prefix_[j + 1] - prefix_[i];
  return kern::interval_candidate(l, rr, weight);
}

std::pair<std::size_t, std::size_t> BstRule::left_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  (void)j;
  const std::size_t r = i + t;
  return r > i ? std::pair{i, r - 1} : std::pair{i, i};
}

std::pair<std::size_t, std::size_t> BstRule::right_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  const std::size_t r = i + t;
  return r < j ? std::pair{r + 1, j} : std::pair{j, j};
}

TriangularArray<BstRule>::Result run_bst_array(const std::vector<Cost>& freq) {
  BstRule rule(freq);
  const std::size_t n = rule.num_keys();
  return TriangularArray<BstRule>(std::move(rule), n).run();
}

PolygonRule::PolygonRule(std::vector<Cost> weights)
    : weights_(std::move(weights)) {
  if (weights_.size() < 2) {
    throw std::invalid_argument("PolygonRule: need >= 2 vertices");
  }
  for (Cost w : weights_) {
    if (w <= 0) throw std::invalid_argument("PolygonRule: weights must be > 0");
  }
}

Cost PolygonRule::candidate(std::size_t i, std::size_t j, std::size_t t,
                            Cost left, Cost right) const {
  const std::size_t k = i + 1 + t;  // apex strictly between i and j
  return kern::interval_candidate(left, right,
                                  weights_[i] * weights_[k] * weights_[j]);
}

std::pair<std::size_t, std::size_t> PolygonRule::left_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  (void)j;
  const std::size_t k = i + 1 + t;
  // The sub-polygon i..k; a bare edge (k == i + 1) contributes 0 and is
  // represented by the adjacent diagonal cell.
  return k > i + 1 ? std::pair{i, k} : std::pair{i, i};
}

std::pair<std::size_t, std::size_t> PolygonRule::right_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  const std::size_t k = i + 1 + t;
  return j > k + 1 ? std::pair{k, j} : std::pair{j, j};
}

TriangularArray<PolygonRule>::Result run_polygon_array(
    const std::vector<Cost>& weights) {
  PolygonRule rule(weights);
  const std::size_t n = rule.num_vertices();
  return TriangularArray<PolygonRule>(std::move(rule), n).run();
}

ChainRule::ChainRule(std::vector<Cost> dims) : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("ChainRule: need at least one matrix");
  }
  for (Cost d : dims_) {
    if (d <= 0) throw std::invalid_argument("ChainRule: dims must be > 0");
  }
}

Cost ChainRule::candidate(std::size_t i, std::size_t j, std::size_t t,
                          Cost left, Cost right) const {
  const std::size_t k = i + t;
  return kern::interval_candidate(left, right,
                                  dims_[i] * dims_[k + 1] * dims_[j + 1]);
}

std::pair<std::size_t, std::size_t> ChainRule::left_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  (void)j;
  return {i, i + t};
}

std::pair<std::size_t, std::size_t> ChainRule::right_interval(
    std::size_t i, std::size_t j, std::size_t t) const {
  return {i + t + 1, j};
}

TriangularArray<ChainRule>::Result run_chain_array(
    const std::vector<Cost>& dims) {
  ChainRule rule(dims);
  const std::size_t n = rule.num_matrices();
  return TriangularArray<ChainRule>(std::move(rule), n).run();
}

}  // namespace sysdp
