#include "arrays/gkt_rtl.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "semiring/kernels.hpp"

namespace sysdp {

namespace {

/// A value in flight on a link: the m_{a,b} it carries, tagged by its
/// origin so consumers can pair operands.
struct Flit {
  Cost val = 0;
  std::size_t a = 0;  // origin cell (a, b)
  std::size_t b = 0;
};

using Link = std::optional<Flit>;

/// A candidate waiting at a cell once both operands have arrived.
struct Ready {
  sim::Cycle at;
  std::size_t k;
};

}  // namespace

GktRtlArray::GktRtlArray(std::vector<Cost> dims) : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("GktRtlArray: need at least one matrix");
  }
  for (Cost d : dims_) {
    if (d <= 0) throw std::invalid_argument("GktRtlArray: dims must be > 0");
  }
}

GktRtlArray::Result GktRtlArray::run() const {
  const std::size_t n = num_matrices();
  Result out{Matrix<Cost>(n, n, kInfCost), Matrix<sim::Cycle>(n, n, 0), {},
             0};
  out.stats.num_pes = n * (n + 1) / 2;
  out.stats.input_scalars = dims_.size();

  // Link registers: row[i][j] is the value sitting at cell (i, j) on row
  // i's rightward stream this cycle; col[i][j] likewise on column j's
  // upward stream.
  std::vector<std::vector<Link>> row(n, std::vector<Link>(n));
  std::vector<std::vector<Link>> col(n, std::vector<Link>(n));
  auto row_next = row;
  auto col_next = col;

  // Per-cell operand staging: arrived row values m_{i,k} (indexed k) and
  // column values m_{k+1,j} (indexed k), plus the ready-candidate queue.
  // The operand buffers live in one contiguous arena shared by all cells
  // (lane (i*n + j)*n + k) with presence tracked in parallel byte arrays —
  // the flattened equivalent of a vector<optional<Cost>> per cell.
  struct CellState {
    std::vector<Ready> ready;
    std::size_t remaining = 0;
    Cost best = kInfCost;
    std::size_t staged = 0;
  };
  std::vector<Cost> row_op_val(n * n * n, 0);
  std::vector<Cost> col_op_val(n * n * n, 0);
  std::vector<std::uint8_t> row_op_set(n * n * n, 0);
  std::vector<std::uint8_t> col_op_set(n * n * n, 0);
  const auto lane = [n](std::size_t i, std::size_t j) {
    return (i * n + j) * n;
  };
  std::vector<std::vector<CellState>> cell(n, std::vector<CellState>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      cell[i][j].remaining = j - i;
    }
  }

  const auto place = [](Link& slot, const Flit& f) {
    if (slot.has_value()) {
      throw std::logic_error("GktRtlArray: link register conflict");
    }
    slot = f;
  };

  // A completed m_{a,b} launches rightward on row a (toward (a, b+1)) and
  // upward on column b (toward (a-1, b)), one hop per cycle.
  const auto launch = [&](std::size_t a, std::size_t b, Cost v) {
    if (b + 1 < n) place(row_next[a][b + 1], Flit{v, a, b});
    if (a > 0) place(col_next[a - 1][b], Flit{v, a, b});
  };

  // Leaves complete at cycle 0: their values are in flight from cycle 1.
  for (std::size_t i = 0; i < n; ++i) {
    out.cost(i, i) = 0;
    out.done(i, i) = 0;
    launch(i, i, 0);
  }
  row.swap(row_next);
  col.swap(col_next);

  std::size_t open_cells = n * (n - 1) / 2;
  const sim::Cycle limit = 4 * static_cast<sim::Cycle>(n) + 16;
  for (sim::Cycle c = 1; c <= limit && open_cells > 0; ++c) {
    // ---- observe: every cell samples the streams passing it ------------
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        auto& st = cell[i][j];
        const std::size_t base = lane(i, j);
        if (row[i][j].has_value() && row[i][j]->a == i) {
          const std::size_t k = row[i][j]->b;  // m_{i,k}
          if (k >= i && k < j && !row_op_set[base + k]) {
            row_op_val[base + k] = row[i][j]->val;
            row_op_set[base + k] = 1;
            ++st.staged;
            if (col_op_set[base + k]) st.ready.push_back(Ready{c, k});
          }
        }
        if (col[i][j].has_value() && col[i][j]->b == j) {
          const std::size_t a = col[i][j]->a;  // m_{a,j}, pairs with k=a-1
          if (a > i && a <= j && !col_op_set[base + a - 1]) {
            col_op_val[base + a - 1] = col[i][j]->val;
            col_op_set[base + a - 1] = 1;
            ++st.staged;
            if (row_op_set[base + a - 1]) {
              st.ready.push_back(Ready{c, a - 1});
            }
          }
        }
        out.peak_operand_buffer =
            std::max<std::uint64_t>(out.peak_operand_buffer, st.staged);
      }
    }
    // ---- shift the streams one hop --------------------------------------
    for (auto& r : row_next) std::fill(r.begin(), r.end(), Link{});
    for (auto& r : col_next) std::fill(r.begin(), r.end(), Link{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (row[i][j].has_value() && j + 1 < n) {
          place(row_next[i][j + 1], *row[i][j]);
        }
        if (col[i][j].has_value() && i > 0) {
          place(col_next[i - 1][j], *col[i][j]);
        }
      }
    }
    // ---- compute: fold up to two candidates that were ready before now --
    for (std::size_t d = 1; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) {
        const std::size_t j = i + d;
        auto& st = cell[i][j];
        if (out.done(i, j) != 0 || st.ready.empty()) continue;
        std::sort(st.ready.begin(), st.ready.end(),
                  [](const Ready& x, const Ready& y) { return x.at < y.at; });
        const std::size_t base = lane(i, j);
        std::size_t taken = 0;
        while (taken < st.ready.size() && taken < 2 &&
               st.ready[taken].at <= c - 1) {
          const std::size_t k = st.ready[taken].k;
          const Cost cand =
              kern::interval_candidate(row_op_val[base + k],
                                       col_op_val[base + k],
                                       dims_[i] * dims_[k + 1] * dims_[j + 1]);
          st.best = std::min(st.best, cand);
          ++out.stats.busy_steps;
          ++taken;
          --st.remaining;
          st.staged -= 2;  // operands retire with their candidate
        }
        st.ready.erase(st.ready.begin(),
                       st.ready.begin() + static_cast<std::ptrdiff_t>(taken));
        if (taken > 0 && st.remaining == 0) {
          out.cost(i, j) = st.best;
          out.done(i, j) = c;
          --open_cells;
          launch(i, j, st.best);
        }
      }
    }
    row.swap(row_next);
    col.swap(col_next);
  }
  if (open_cells > 0) {
    throw std::logic_error("GktRtlArray: did not converge");
  }
  out.stats.cycles = out.completion();
  return out;
}

}  // namespace sysdp
