// Adapters between multistage graphs and the string-product arrays.
//
// Equation (8) turns a multistage graph into a string of cost matrices; the
// adapters below perform that conversion (folding a single-sink final stage
// into the initial vector, exactly as D degenerates into a column vector in
// the paper's example) and run Designs 1/2 end to end.
#pragma once

#include "arrays/design1_pipeline.hpp"
#include "arrays/design2_broadcast.hpp"
#include "arrays/run_result.hpp"
#include "graph/multistage_graph.hpp"

namespace sysdp {

/// A monadic-serial problem in string-product form: compute
/// mats[0] (x) (mats[1] (x) ( ... (x) v)).
struct MonadicStringProblem {
  std::vector<Matrix<Cost>> mats;
  std::vector<Cost> v;
};

/// Convert a multistage graph to string-product form.  Requires all
/// intermediate stages to have equal width m (the systolic arrays have one
/// PE per quantised value); the first stage may be narrower (multi- or
/// single-source) and a single-node final stage is folded into `v`.
[[nodiscard]] MonadicStringProblem to_string_product(const MultistageGraph& g);

/// Run Design 1 (pipelined array) on the graph; values[i] is the optimal
/// cost from node i of stage 0 to the sink side.
[[nodiscard]] RunResult<Cost> run_design1_shortest(const MultistageGraph& g);

/// Run Design 2 (broadcast array) on the graph.
[[nodiscard]] RunResult<Cost> run_design2_shortest(const MultistageGraph& g);

/// Design 1 with the path-register extension: each PE records the winning
/// column index of every result element (one extra register per element,
/// the same mechanism as Design 3's path registers), and the host traces an
/// optimal path at completion.
struct Design1PathResult {
  Cost cost = kInfCost;
  StagePath path;
  RunResult<Cost> stats;
};
[[nodiscard]] Design1PathResult run_design1_shortest_with_path(
    const MultistageGraph& g);

/// Backward monadic formulation (eq. 2): the optimal cost from the source
/// side to every node of the *last* stage, computed on the same array by
/// reversing the multiplication order and transposing each stage matrix —
/// "the order of multiplications is reversed in backward monadic DP
/// formulations" (Section 3.1).
[[nodiscard]] RunResult<Cost> run_design1_backward(const MultistageGraph& g);

}  // namespace sysdp
