// Closed-form performance expressions from the paper, kept in one place so
// tests and benches compare simulation against the exact published formulas.
#pragma once

#include <cstdint>

namespace sysdp {

/// Eq. (9): PU of Designs 1/2 on an (N+1)-stage single-source/sink graph
/// with m nodes per intermediate stage:
/// ((N-2)m^2 + m) / (N m^2) = (N-2)/N + 1/(N m).
[[nodiscard]] constexpr double analytic_pu_design12(std::uint64_t N,
                                                    std::uint64_t m) noexcept {
  const double n = static_cast<double>(N);
  const double w = static_cast<double>(m);
  return (n - 2.0) / n + 1.0 / (n * w);
}

/// Section 3.2: PU of Design 3 on an N-stage node-value graph with m values
/// per stage: ((N-1)m^2 + m) / ((N+1) m^2).
[[nodiscard]] constexpr double analytic_pu_design3(std::uint64_t N,
                                                   std::uint64_t m) noexcept {
  const double n = static_cast<double>(N);
  const double w = static_cast<double>(m);
  return ((n - 1.0) * w * w + w) / ((n + 1.0) * w * w);
}

/// Proposition 2 / eq. (42): broadcast-mapped AND/OR search time for a
/// chain of k matrices, T_d(k) = T_d(ceil(k/2)) + floor(k/2), T_d(1) = 1.
[[nodiscard]] constexpr std::uint64_t t_broadcast(std::uint64_t k) noexcept {
  std::uint64_t t = 1;
  while (k > 1) {
    t += k / 2;
    k = (k + 1) / 2;
  }
  return t;
}

/// Proposition 3 / eq. (43): serialised (pipelined) AND/OR search time,
/// T_p(k) = T_p(ceil(k/2)) + 2 floor(k/2), T_p(1) = 2.
[[nodiscard]] constexpr std::uint64_t t_pipelined(std::uint64_t k) noexcept {
  std::uint64_t t = 2;
  while (k > 1) {
    t += 2 * (k / 2);
    k = (k + 1) / 2;
  }
  return t;
}

static_assert(t_broadcast(1) == 1);
static_assert(t_pipelined(1) == 2);

}  // namespace sysdp
