// Design 3 built from discrete hardware modules on the simulation engine.
//
// The structural counterpart of Design3Feedback, wired exactly as
// Figure 5 draws the array:
//
//    host ──> PE_0 ──> PE_1 ──> ... ──> PE_{m-1} ──┐
//      ^        ^K/H     ^K/H             ^K/H     │ completed (x, h)
//      └──────── FeedbackController <───────────────┘
//                 (single bus, round-robin station select)
//
// Each PE owns its R pipeline register, K/H feedback registers, and the
// F/A/C datapath; the controller owns the one-cycle feedback delay and the
// circulating-token station selector; P_{m-1} additionally owns the path
// registers.  Tests assert cycle-exact equivalence (cost, path, timing,
// busy work) with the monolithic model on randomized sweeps — the same
// modelling-style ablation as Design2Modular, for the hardest design.
#pragma once

#include <memory>
#include <vector>

#include "arrays/design3_feedback.hpp"
#include "graph/node_value_graph.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"
#include "sim/stats.hpp"

namespace sysdp::sim {
class ThreadPool;
}  // namespace sysdp::sim

namespace sysdp {

class Design3Modular {
 public:
  explicit Design3Modular(const NodeValueGraph& graph);
  ~Design3Modular();

  Design3Modular(const Design3Modular&) = delete;
  Design3Modular& operator=(const Design3Modular&) = delete;

  /// Run to completion.  With a pool the stations evaluate and latch
  /// across threads; the feedback controller is the only combinational
  /// driver and stays serialised, so results are bit-identical to serial.
  /// With Gating::kSparse (default) stations sleep through pipeline fill
  /// and drain; wakeup edges along the R pipeline and the feedback path
  /// (controller -> P_0, P_{p-1} -> P_p, tail and its predecessor ->
  /// controller, tail -> every station for the round-robin K/H delivery)
  /// keep the gated run bit-identical.
  [[nodiscard]] Design3Result run(sim::ThreadPool* pool = nullptr,
                                  sim::Gating gating = sim::Gating::kSparse);

  /// Run on a caller-constructed engine, so telemetry observers (VCD,
  /// timelines — sim/observer.hpp) can attach before time starts.  The
  /// engine must be fresh: no modules added, no cycles stepped; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] Design3Result run(sim::Engine& engine);

  /// Number of PEs (valid from construction, before elaborate()).
  [[nodiscard]] std::size_t num_pes() const noexcept { return m_; }
  /// Cumulative busy cycles of PE `pe` — the monotone counter utilisation
  /// timelines sample per cycle.
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const {
    return stats_.busy_cycles(pe);
  }

  /// Build the arena, modules, and wakeup wiring into `engine` without
  /// running a cycle (run() uses this; the lint CLI captures the netlist).
  void elaborate(sim::Engine& engine);

  /// Testbench-side taps for analysis::capture: the run loop harvests the
  /// collector token and the predecessor table after the final cycle.
  void describe_environment(sim::PortSet& ports) const;

 private:
  class Controller;
  class Pe;
  struct Arena;

  const NodeValueGraph& graph_;
  std::size_t m_;
  std::size_t n_stages_;
  sim::ActivityStats stats_;
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<Controller> controller_;
  std::vector<std::unique_ptr<Pe>> pes_;
};

}  // namespace sysdp
