#include "arrays/gkt_modular.hpp"

#include <stdexcept>
#include <string>

#include "semiring/kernels.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp {

namespace {

/// A value in flight on a link: the m_{a,b} it carries, tagged by its
/// origin so consumers can pair operands.
struct Flit {
  Cost val = 0;
  std::uint32_t a = 0;  // origin cell (a, b)
  std::uint32_t b = 0;
};

/// The row and column link registers at one cell position, two-phase:
/// cur is the flit sitting here this cycle, nxt is staged by the owner's
/// eval (the through-shift from upstream).  Packed per cell so a
/// forwarding eval touches one or two cache lines, not a dozen arrays.
struct LinkPair {
  Flit row_cur, col_cur;
  Flit row_nxt, col_nxt;
  std::uint8_t row_has = 0, col_has = 0;
  std::uint8_t row_nxt_has = 0, col_nxt_has = 0;
};

/// Fold bookkeeping for one cell, likewise packed.
struct CellMeta {
  Cost best = kInfCost;
  sim::Cycle done_at = 0;
  std::uint64_t busy = 0;
  std::uint32_t q_head = 0;   ///< next ready candidate to fold
  std::uint32_t q_len = 0;    ///< ready candidates pushed so far
  std::uint32_t remaining = 0;
  std::uint32_t staged = 0;
  std::uint32_t peak = 0;
  std::uint8_t is_done = 0;
  std::uint8_t fired = 0;  ///< leaf: cycle-0 launch already sent
};

}  // namespace

/// Per-array arena holding every cell's state in contiguous per-cell
/// lanes: the packed link registers and fold metadata above, the operand
/// staging buffers (lane id*n + k), the arena-backed ready queues
/// (capacity j-i per cell, prefix-offset addressed), and the completion-
/// launch bypass slots that a finishing neighbour stages and the owner's
/// commit merges.  Cell modules are thin lane views.
struct GktModularArray::Arena {
  std::size_t n;
  std::vector<std::uint32_t> id_of;  ///< (i*n + j) -> cell id, i <= j

  std::vector<LinkPair> link;
  std::vector<CellMeta> meta;

  // Completion-launch bypass.  A real flit in both the through-shift (nxt)
  // and the launch slot is a link-register conflict, which would falsify
  // the single-occupancy design — commit throws, mirroring the RTL
  // assertion.  The row and column pending flags live in separate byte
  // arrays, not one bitmask: a cell's row launcher and column launcher are
  // different cells, and under the parallel engine both may launch in the
  // same eval phase — a shared byte would make that a racy read-modify-
  // write that can drop a bit.  Split, every element has exactly one
  // writer per phase and the engine's phase barrier orders the rest.
  std::vector<Flit> row_launch, col_launch;
  std::vector<std::uint8_t> row_launch_set, col_launch_set;

  // Operand staging, lane id*n + k, presence in parallel byte arrays.
  std::vector<Cost> row_op_val, col_op_val;
  std::vector<std::uint8_t> row_op_set, col_op_set;

  // Ready-candidate FIFOs: cell id owns q_store[q_base[id] + t] for
  // t < j-i.  Entries below the eval-entry watermark were ready before the
  // current cycle — exactly the RTL's `at <= c-1` eligibility.
  std::vector<std::uint32_t> q_store, q_base;

  /// Tape recorder mirroring the fold datapath, or null when not lowering.
  /// The streams need no mirroring: a flit's value is its origin cell's
  /// final best (origins always complete before their flits are consumed),
  /// so fold operands resolve directly against origin lanes.
  sim::OpRecorder* rec = nullptr;

  explicit Arena(std::size_t n_in) : n(n_in) {
    const std::size_t cells = n * (n + 1) / 2;
    id_of.assign(n * n, 0);
    // Diagonal-major cell ids: the completion wavefront sweeps outward one
    // diagonal at a time, so at any cycle the cells carrying traffic are a
    // band of consecutive diagonals — with this numbering the gated
    // engine's (sorted) active set walks nearly contiguous arena lanes,
    // and a cell's two upstreams sit adjacent in the previous diagonal.
    std::uint32_t next = 0;
    for (std::size_t d = 0; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) id_of[i * n + (i + d)] = next++;
    }
    link.resize(cells);
    meta.resize(cells);
    row_launch.resize(cells);
    col_launch.resize(cells);
    row_launch_set.assign(cells, 0);
    col_launch_set.assign(cells, 0);
    row_op_val.assign(cells * n, 0);
    col_op_val.assign(cells * n, 0);
    row_op_set.assign(cells * n, 0);
    col_op_set.assign(cells * n, 0);
    q_base.assign(cells + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        q_base[id(i, j) + 1] = static_cast<std::uint32_t>(j - i);
        meta[id(i, j)].remaining = static_cast<std::uint32_t>(j - i);
      }
      meta[id(i, i)].is_done = 1;  // leaves complete at cycle 0
    }
    for (std::size_t c = 0; c < cells; ++c) q_base[c + 1] += q_base[c];
    q_store.assign(q_base[cells], 0);
  }

  [[nodiscard]] std::uint32_t id(std::size_t i, std::size_t j) const {
    return id_of[i * n + j];
  }

  /// A completed m_{a,b} launches rightward on row a and upward on column
  /// b by staging the *receiver's* launch slot.  Each slot has exactly one
  /// possible launcher and receivers only read it at commit, so concurrent
  /// cell evals never race here.
  void launch(std::size_t a, std::size_t b, Cost v) {
    const Flit f{v, static_cast<std::uint32_t>(a),
                 static_cast<std::uint32_t>(b)};
    if (b + 1 < n) {
      const std::uint32_t t = id(a, b + 1);
      if (row_launch_set[t]) {
        throw std::logic_error("GktModularArray: link register conflict");
      }
      row_launch[t] = f;
      row_launch_set[t] = 1;
    }
    if (a > 0) {
      const std::uint32_t t = id(a - 1, b);
      if (col_launch_set[t]) {
        throw std::logic_error("GktModularArray: link register conflict");
      }
      col_launch[t] = f;
      col_launch_set[t] = 1;
    }
  }
};

/// One cell (i, j).  Diagonal cells are the leaves: they launch their
/// (zero) value at cycle 0 and sleep forever after.  Off-diagonal cells
/// observe the streams passing their position, fold up to two ready
/// candidates per cycle, and forward both streams one hop.
class GktModularArray::Cell : public sim::Module {
 public:
  Cell(std::size_t i, std::size_t j, Arena& a, const std::vector<Cost>& dims)
      : Module("c" + std::to_string(i) + "_" + std::to_string(j)),
        i_(i),
        j_(j),
        id_(a.id(i, j)),
        left_(i == j ? 0 : a.id(i, j - 1)),
        below_(i == j ? 0 : a.id(i + 1, j)),
        a_(a),
        dims_(dims) {}

  void eval(sim::Cycle c) override {
    Arena& a = a_;
    const std::uint32_t id = id_;
    if (i_ == j_) {
      if (c == 0) {
        a.launch(i_, j_, 0);
        a.meta[id].fired = 1;
      }
      return;
    }
    LinkPair& lk = a.link[id];
    CellMeta& mt = a.meta[id];
    const std::size_t base = static_cast<std::size_t>(id) * a.n;
    std::uint32_t* const q = a.q_store.data() + a.q_base[id];
    const std::uint32_t len0 = mt.q_len;  // candidates ready before cycle c

    // ---- observe: sample the streams passing this position --------------
    if (lk.row_has) {
      const Flit& f = lk.row_cur;
      if (f.a == i_) {
        const std::size_t k = f.b;  // m_{i,k}
        if (k >= i_ && k < j_ && !a.row_op_set[base + k]) {
          a.row_op_val[base + k] = f.val;
          a.row_op_set[base + k] = 1;
          ++mt.staged;
          if (a.col_op_set[base + k]) {
            q[mt.q_len++] = static_cast<std::uint32_t>(k);
          }
        }
      }
    }
    if (lk.col_has) {
      const Flit& f = lk.col_cur;
      if (f.b == j_) {
        const std::size_t fa = f.a;  // m_{a,j}, pairs with k = a-1
        if (fa > i_ && fa <= j_ && !a.col_op_set[base + fa - 1]) {
          a.col_op_val[base + fa - 1] = f.val;
          a.col_op_set[base + fa - 1] = 1;
          ++mt.staged;
          if (a.row_op_set[base + fa - 1]) {
            q[mt.q_len++] = static_cast<std::uint32_t>(fa - 1);
          }
        }
      }
    }
    if (mt.staged > mt.peak) mt.peak = mt.staged;

    // ---- compute: fold up to two candidates that were ready before now --
    if (!mt.is_done && mt.q_head < len0) {
      std::uint32_t taken = 0;
      while (mt.q_head < len0 && taken < 2) {
        const std::size_t k = q[mt.q_head];
        const Cost w = dims_[i_] * dims_[k + 1] * dims_[j_ + 1];
        const Cost cand = kern::interval_candidate(
            a.row_op_val[base + k], a.col_op_val[base + k], w);
        if (sim::OpRecorder* const rec = a.rec; rec != nullptr) {
          // Diagonal-leaf origins launched the literal 0; every other
          // operand is the origin cell's (final) best lane.
          const sim::SlotId l =
              (k == i_) ? rec->constant(0)
                        : rec->lane(&a.meta[a.id(i_, k)].best,
                                    a.row_op_val[base + k]);
          const sim::SlotId r =
              (k + 1 == j_) ? rec->constant(0)
                            : rec->lane(&a.meta[a.id(k + 1, j_)].best,
                                        a.col_op_val[base + k]);
          rec->bind_now(&mt.best,
                        rec->fold(rec->lane(&mt.best, mt.best), l, r, w));
        }
        if (cand < mt.best) mt.best = cand;
        ++mt.busy;
        ++mt.q_head;
        ++taken;
        --mt.remaining;
        mt.staged -= 2;  // operands retire with their candidate
      }
      if (mt.remaining == 0) {
        mt.is_done = 1;
        mt.done_at = c;
        a.launch(i_, j_, mt.best);
      }
    }

    // ---- stage the through-shift: one hop from upstream -----------------
    // Row upstream is (i, j-1), column upstream is (i+1, j); when either
    // is the diagonal leaf its registers are perpetually empty, so the
    // stage below correctly clears this cell's register.
    const LinkPair& lleft = a.link[left_];
    const LinkPair& lbelow = a.link[below_];
    lk.row_nxt = lleft.row_cur;
    lk.row_nxt_has = lleft.row_has;
    lk.col_nxt = lbelow.col_cur;
    lk.col_nxt_has = lbelow.col_has;
  }

  void commit() override {
    if (i_ == j_) return;
    Arena& a = a_;
    const std::uint32_t id = id_;
    LinkPair& lk = a.link[id];
    const std::uint8_t rl = a.row_launch_set[id];
    const std::uint8_t cl = a.col_launch_set[id];
    if ((rl | cl) == 0) {  // common case: plain clock edge on both links
      lk.row_cur = lk.row_nxt;
      lk.row_has = lk.row_nxt_has;
      lk.col_cur = lk.col_nxt;
      lk.col_has = lk.col_nxt_has;
      return;
    }
    if (rl) {
      if (lk.row_nxt_has) {
        throw std::logic_error("GktModularArray: link register conflict");
      }
      lk.row_cur = a.row_launch[id];
      lk.row_has = 1;
      a.row_launch_set[id] = 0;
    } else {
      lk.row_cur = lk.row_nxt;
      lk.row_has = lk.row_nxt_has;
    }
    if (cl) {
      if (lk.col_nxt_has) {
        throw std::logic_error("GktModularArray: link register conflict");
      }
      lk.col_cur = a.col_launch[id];
      lk.col_has = 1;
      a.col_launch_set[id] = 0;
    } else {
      lk.col_cur = lk.col_nxt;
      lk.col_has = lk.col_nxt_has;
    }
  }

  /// A leaf is quiescent once its cycle-0 launch fired.  A cell is
  /// quiescent when both its link registers are empty (nothing to observe
  /// or forward) and no folded-candidate work is queued; whether its
  /// result is still pending does not matter — only an arriving flit can
  /// change its state, and both streams are covered by wakeup edges.
  [[nodiscard]] bool quiescent() const noexcept override {
    const CellMeta& mt = a_.meta[id_];
    if (i_ == j_) return mt.fired != 0;
    const LinkPair& lk = a_.link[id_];
    return !lk.row_has && !lk.col_has && mt.q_head == mt.q_len;
  }

  /// Leaves retire after their cycle-0 launch; every other cell sleeps
  /// between flits and is reactivated by the two incoming streams.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return i_ == j_ ? sim::SleepMode::kRetire : sim::SleepMode::kWakeable;
  }

  /// Keys name the link registers (per-cell row/col streams) and the
  /// completion-launch slots.  A diagonal leaf never writes its own link
  /// registers, so downstream cells do not declare reads of leaf links
  /// (the tie-off convention) — leaf outputs travel via launch slots only.
  void describe_ports(sim::PortSet& ports) const override {
    const Arena& a = a_;
    const auto slot = [](const char* base, std::size_t i, std::size_t j) {
      return std::string(base) + "[" + std::to_string(i) + "," +
             std::to_string(j) + "]";
    };
    // Flit lanes are structs, so the port layer cannot infer a sampler;
    // probe the carried cost when a flit is present, 0 when the link is
    // empty (telemetry only — occupancy is the interesting waveform).
    const LinkPair* const lk = &a.link[id_];
    if (i_ != j_) {
      ports.writes_register(&lk->row_cur, slot("row", i_, j_),
                            [lk]() -> std::int64_t {
                              return lk->row_has != 0
                                         ? static_cast<std::int64_t>(
                                               lk->row_cur.val)
                                         : 0;
                            });
      ports.writes_register(&lk->col_cur, slot("col", i_, j_),
                            [lk]() -> std::int64_t {
                              return lk->col_has != 0
                                         ? static_cast<std::int64_t>(
                                               lk->col_cur.val)
                                         : 0;
                            });
      ports.reads_register(&a.row_launch[id_], slot("row_launch", i_, j_));
      ports.reads_register(&a.col_launch[id_], slot("col_launch", i_, j_));
      if (j_ > i_ + 1) {  // upstreams are real cells, not leaves
        ports.reads_register(&a.link[left_].row_cur, slot("row", i_, j_ - 1));
        ports.reads_register(&a.link[below_].col_cur,
                             slot("col", i_ + 1, j_));
      }
    }
    // Completion launch: stage the right neighbour's row slot and the
    // upper neighbour's column slot (leaves launch too, at cycle 0).
    if (j_ + 1 < a.n) {
      const std::uint32_t t = a.id(i_, j_ + 1);
      const Flit* const f = &a.row_launch[t];
      const std::uint8_t* const set = &a.row_launch_set[t];
      ports.writes_register(f, slot("row_launch", i_, j_ + 1),
                            [f, set]() -> std::int64_t {
                              return *set != 0
                                         ? static_cast<std::int64_t>(f->val)
                                         : 0;
                            });
    }
    if (i_ > 0) {
      const std::uint32_t t = a.id(i_ - 1, j_);
      const Flit* const f = &a.col_launch[t];
      const std::uint8_t* const set = &a.col_launch_set[t];
      ports.writes_register(f, slot("col_launch", i_ - 1, j_),
                            [f, set]() -> std::int64_t {
                              return *set != 0
                                         ? static_cast<std::int64_t>(f->val)
                                         : 0;
                            });
    }
  }

 private:
  std::size_t i_, j_;
  std::uint32_t id_, left_, below_;
  Arena& a_;
  const std::vector<Cost>& dims_;
};

GktModularArray::GktModularArray(std::vector<Cost> dims)
    : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("GktModularArray: need at least one matrix");
  }
  for (Cost d : dims_) {
    if (d <= 0) {
      throw std::invalid_argument("GktModularArray: dims must be > 0");
    }
  }
}

GktModularArray::~GktModularArray() = default;

void GktModularArray::elaborate(sim::Engine& engine) {
  const std::size_t n = num_matrices();
  arena_ = std::make_unique<Arena>(n);
  arena_->rec = engine.recorder();
  cells_.clear();
  // Registered in arena-id (diagonal-major) order so the engine's module
  // index equals the arena lane and the sorted active set walks the arena
  // sequentially.
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t i = 0; i + d < n; ++i) {
      cells_.push_back(std::make_unique<Cell>(i, i + d, *arena_, dims_));
      engine.add(*cells_.back());
    }
  }
  // Wakeup edges follow the register dataflow: a cell can only be
  // reactivated by a flit arriving on its row stream (from (i, j-1)) or
  // its column stream (from (i+1, j)) — completion launches travel the
  // same arcs, and a launching cell is provably active the cycle before
  // (it holds the not-yet-folded candidates that complete it), so the
  // receiver is always awake to latch the launch.  Declared source-major
  // so each cell's edge 0 / edge 1 match its wake_mask() bits.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const std::uint32_t id = arena_->id(i, j);
      if (j + 1 < n) engine.add_wakeup(*cells_[id], *cells_[arena_->id(i, j + 1)]);
      if (i > 0 && i - 1 <= j && i <= j) {
        engine.add_wakeup(*cells_[id], *cells_[arena_->id(i - 1, j)]);
      }
    }
  }
}

void GktModularArray::describe_environment(sim::PortSet& ports) const {
  if (arena_ == nullptr) return;
  const std::size_t n = arena_->n;
  // Boundary tie-offs: the last column's row streams and the top row's
  // column streams shift off the edge of the triangle by design.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ports.reads_register(&arena_->link[arena_->id(i, n - 1)].row_cur,
                         "row[" + std::to_string(i) + "," +
                             std::to_string(n - 1) + "]");
  }
  for (std::size_t j = 1; j < n; ++j) {
    ports.reads_register(&arena_->link[arena_->id(0, j)].col_cur,
                         "col[0," + std::to_string(j) + "]");
  }
}

std::uint64_t GktModularArray::pe_busy(std::size_t pe) const {
  return arena_ != nullptr ? arena_->meta.at(pe).busy : 0;
}

GktModularArray::Result GktModularArray::run(sim::ThreadPool* pool,
                                             sim::Gating gating) {
  sim::Engine engine(pool, gating);
  return run(engine);
}

GktModularArray::Result GktModularArray::run(sim::Engine& engine) {
  if (engine.now() > 0 || engine.num_modules() > 0) {
    throw std::invalid_argument("GktModularArray::run: engine must be fresh");
  }
  const std::size_t n = num_matrices();
  elaborate(engine);

  const std::uint32_t root = arena_->id(0, n - 1);
  const sim::Cycle limit = 4 * static_cast<sim::Cycle>(n) + 16;
  const auto until = engine.run_until(
      [this, root] { return arena_->meta[root].is_done != 0; }, limit);
  if (!until.satisfied) {
    throw std::logic_error("GktModularArray: did not converge");
  }

  Result out{Matrix<Cost>(n, n, kInfCost), Matrix<sim::Cycle>(n, n, 0), {}, 0};
  out.stats.num_pes = n * (n + 1) / 2;
  out.stats.input_scalars = dims_.size();
  sim::OpRecorder* const rec = engine.recorder();
  for (std::size_t i = 0; i < n; ++i) {
    out.cost(i, i) = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      CellMeta& mt = arena_->meta[arena_->id(i, j)];
      if (mt.is_done) {
        out.cost(i, j) = mt.best;
        out.done(i, j) = mt.done_at;
        if (rec != nullptr) {
          rec->output("cell", static_cast<std::uint64_t>(i) * n + j,
                      rec->lane(&mt.best, mt.best), mt.best);
        }
      }
      out.stats.busy_steps += mt.busy;
      if (mt.peak > out.peak_operand_buffer) {
        out.peak_operand_buffer = mt.peak;
      }
    }
  }
  out.stats.cycles = out.completion();
  out.stats.active_evals = engine.active_evals();
  out.stats.dense_evals = engine.dense_evals();
  return out;
}

}  // namespace sysdp
