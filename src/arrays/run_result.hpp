// Common result type for systolic-array simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/module.hpp"

namespace sysdp {

/// Outcome of running an array model to completion.
template <typename V>
struct RunResult {
  /// Final result vector (length = rows of the leftmost matrix).
  std::vector<V> values;
  /// Wall-clock cycles from first input to last output.
  sim::Cycle cycles = 0;
  /// Total useful PE work steps (one multiply-accumulate each).
  std::uint64_t busy_steps = 0;
  /// Number of PEs in the array.
  std::size_t num_pes = 0;
  /// Scalars that crossed the array boundary inward (matrix/vector/node
  /// values).  The I/O-bottleneck comparison of experiment E2 uses this.
  std::uint64_t input_scalars = 0;
  /// Engine activity accounting: module evals the engine actually
  /// performed vs. the dense modules-x-cycles count.  Equal under dense
  /// gating; active < dense when activity gating skipped idle PEs.  These
  /// describe the *simulator's* work, not the simulated hardware, so they
  /// are excluded from dense-vs-sparse bit-identity comparisons.
  std::uint64_t active_evals = 0;
  std::uint64_t dense_evals = 0;
  /// Events the attached telemetry sink discarded during this run (0 when
  /// no sink was attached or nothing overflowed).  The explicit surface
  /// for what used to be sim::Trace's silent drop: a truncated trace is a
  /// fact of the result, not a latent flag.
  std::uint64_t trace_dropped = 0;

  /// Measured processor utilisation against wall-clock time.
  [[nodiscard]] double utilization_wall() const noexcept {
    if (cycles == 0 || num_pes == 0) return 0.0;
    return static_cast<double>(busy_steps) /
           (static_cast<double>(cycles) * static_cast<double>(num_pes));
  }

  /// Utilisation against a caller-supplied iteration count (the paper's PU
  /// uses parallel *iterations*, which exclude pipeline fill/drain skew).
  [[nodiscard]] double utilization_iters(std::uint64_t iters) const noexcept {
    if (iters == 0 || num_pes == 0) return 0.0;
    return static_cast<double>(busy_steps) /
           (static_cast<double>(iters) * static_cast<double>(num_pes));
  }

  /// Measured engine activity (active evals / dense evals), the
  /// simulator-side utilisation the gated engine reports.  1.0 for dense
  /// runs.  Related to but not comparable with utilization_wall(): the
  /// denominators differ (activity counts every module — hosts and
  /// collectors included — while PU divides by PEs only), so the invariant
  /// is busy_steps <= active_evals, not a bound between the two ratios.
  [[nodiscard]] double engine_activity() const noexcept {
    return dense_evals > 0 ? static_cast<double>(active_evals) /
                                 static_cast<double>(dense_evals)
                           : 1.0;
  }
};

}  // namespace sysdp
