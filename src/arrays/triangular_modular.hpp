// Engine-backed triangular array for the whole interval-DP family.
//
// GktModularArray hard-codes the matrix-chain recurrence; this model runs
// any TriangularArray rule (chain, optimal BST, polygon triangulation) on
// discrete cell modules with the same transport fabric: per-cell row and
// column link registers, values hopping one register per cycle, completed
// results launched rightward along the row and upward along the column,
// each cell folding up to two ready candidates per cycle.
//
// Two generalisations over the GKT cells make the family fit:
//
//   * Origin-matched operands.  A rule's candidate t at cell (i, j) names
//     a left sub-interval on row i and a right sub-interval on column j.
//     The wrapper compiles these into per-candidate origin tables; a
//     passing flit is matched against the tables (one origin may feed
//     several candidates — the BST rule maps the adjacent diagonal cell
//     to two slots, as both the empty-left and empty-right trees clamp to
//     it).
//   * Patient launch slots.  GKT's single-occupancy theorem (at most one
//     value per link register per cycle) is proved for the chain
//     recurrence only; richer rules can collide a completion launch with
//     a through-shifting flit.  Instead of the GKT conflict assertion, a
//     staged launch waits in its slot until the receiver's link has a
//     gap.  Timing therefore need not match the analytic model
//     cycle-for-cycle — tests assert cost equality with TriangularArray
//     (and, for the chain rule, with the GKT arrays) plus bit-identical
//     results across serial/pooled and dense/gated engines.
//
// The quiescence contract extends to the waiting slots: a cell sleeps
// only when its links are empty, its ready queue is drained, AND no
// launch is pending in its slots; wakeup edges follow the two incoming
// streams ((i, j-1) row-wise, (i+1, j) column-wise), exactly the arcs
// launches travel.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"

namespace sysdp::sim {
class ThreadPool;
}  // namespace sysdp::sim

namespace sysdp {

/// Non-template machinery: arena, cell modules, transport, gating.  The
/// rule is pre-compiled into per-candidate specs by TriangularModularArray.
class TriangularModularCore {
 public:
  /// One candidate of one cell, rule-agnostic.  `row_origin` is the column
  /// b of the left operand's producer cell (i, b) on the consumer's row;
  /// `col_origin` is the row a of the right operand's producer (a, j) on
  /// the consumer's column.  An operand clamped away by the rule (e.g. an
  /// empty BST subtree) still gates arrival but contributes zero cost:
  /// use_left / use_right record that.
  struct Candidate {
    std::uint32_t row_origin = 0;
    std::uint32_t col_origin = 0;
    std::uint8_t use_left = 1;
    std::uint8_t use_right = 1;
    Cost local = 0;
  };

  /// `base[i]` is diagonal cell (i, i)'s value; `cands[i * n + j]` the
  /// candidate list of off-diagonal cell (i, j) (empty = trivially solved,
  /// value 0 at cycle 0, e.g. a polygon edge).  Throws invalid_argument
  /// if an origin names a cell that never launches (neither diagonal nor
  /// a candidate-bearing cell).
  TriangularModularCore(std::size_t n, std::vector<Cost> base,
                        std::vector<std::vector<Candidate>> cands);
  ~TriangularModularCore();

  TriangularModularCore(const TriangularModularCore&) = delete;
  TriangularModularCore& operator=(const TriangularModularCore&) = delete;

  struct Result {
    Matrix<Cost> cost;
    Matrix<sim::Cycle> done;
    RunResult<Cost> stats;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    [[nodiscard]] sim::Cycle completion() const {
      return done(0, done.cols() - 1);
    }
  };

  /// Simulate until every cell has completed.  Bit-identical across
  /// serial/pooled and dense/gated engines; throws std::logic_error if the
  /// array does not converge within the transport bound.
  [[nodiscard]] Result run(sim::ThreadPool* pool = nullptr,
                           sim::Gating gating = sim::Gating::kSparse);

  /// Run on a caller-constructed engine, so telemetry observers (VCD,
  /// timelines — sim/observer.hpp) can attach before time starts.  The
  /// engine must be fresh: no modules added, no cycles stepped; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] Result run(sim::Engine& engine);

  /// Build the arena, cells, and wakeup wiring into `engine` without
  /// running a cycle (run() uses this; the lint CLI captures the netlist).
  void elaborate(sim::Engine& engine);

  /// Testbench-side taps for analysis::capture (boundary link tie-offs).
  void describe_environment(sim::PortSet& ports) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Number of cells n(n+1)/2 (valid from construction).
  [[nodiscard]] std::size_t num_pes() const noexcept {
    return n_ * (n_ + 1) / 2;
  }
  /// Cumulative busy cycles of cell `pe` (arena diagonal-major id) — the
  /// monotone counter utilisation timelines sample per cycle.  0 before
  /// elaboration.
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const;

 private:
  class Cell;
  struct Arena;

  std::size_t n_;
  std::vector<Cost> base_;
  std::vector<std::vector<Candidate>> cands_;
  std::unique_ptr<Arena> arena_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// The generic triangular array on the simulation engine: compiles `Rule`
/// (same policy concept as TriangularArray) into origin tables and runs
/// the shared core.
template <typename Rule>
class TriangularModularArray {
 public:
  using Result = TriangularModularCore::Result;

  TriangularModularArray(const Rule& rule, std::size_t n)
      : core_(n, compile_base(rule, n), compile_cands(rule, n)) {}

  [[nodiscard]] Result run(sim::ThreadPool* pool = nullptr,
                           sim::Gating gating = sim::Gating::kSparse) {
    return core_.run(pool, gating);
  }
  [[nodiscard]] Result run(sim::Engine& engine) { return core_.run(engine); }
  void elaborate(sim::Engine& engine) { core_.elaborate(engine); }
  void describe_environment(sim::PortSet& ports) const {
    core_.describe_environment(ports);
  }
  [[nodiscard]] std::size_t size() const noexcept { return core_.size(); }
  [[nodiscard]] std::size_t num_pes() const noexcept {
    return core_.num_pes();
  }
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const {
    return core_.pe_busy(pe);
  }

 private:
  static std::vector<Cost> compile_base(const Rule& rule, std::size_t n) {
    std::vector<Cost> base(n);
    for (std::size_t i = 0; i < n; ++i) base[i] = rule.base(i);
    return base;
  }

  /// Evaluate the rule's interval geometry once per candidate.  The local
  /// cost is recovered by probing candidate() with zero operands — every
  /// interval rule's candidate is (use_left ? left : 0) + (use_right ?
  /// right : 0) + local, so the zero probe isolates `local`.
  static std::vector<std::vector<TriangularModularCore::Candidate>>
  compile_cands(const Rule& rule, std::size_t n) {
    std::vector<std::vector<TriangularModularCore::Candidate>> cands(n * n);
    for (std::size_t d = 1; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) {
        const std::size_t j = i + d;
        const std::size_t k = rule.splits(i, j);
        auto& list = cands[i * n + j];
        list.reserve(k);
        for (std::size_t t = 0; t < k; ++t) {
          const auto [li, lj] = rule.left_interval(i, j, t);
          const auto [ri, rj] = rule.right_interval(i, j, t);
          if (li != i || lj > j || ri < i || rj != j) {
            throw std::invalid_argument(
                "TriangularModularArray: rule's sub-intervals must lie on "
                "the consumer's row and column");
          }
          TriangularModularCore::Candidate c;
          c.row_origin = static_cast<std::uint32_t>(lj);
          c.col_origin = static_cast<std::uint32_t>(ri);
          // Clamp detection: feed a sentinel through a zero probe.  If the
          // rule ignores an operand (empty sub-tree), a sentinel in that
          // slot does not move the result.
          const Cost local = rule.candidate(i, j, t, 0, 0);
          const Cost probe_l = rule.candidate(i, j, t, 1, 0);
          const Cost probe_r = rule.candidate(i, j, t, 0, 1);
          c.use_left = probe_l != local ? 1 : 0;
          c.use_right = probe_r != local ? 1 : 0;
          c.local = local;
          list.push_back(c);
        }
      }
    }
    return cands;
  }

  TriangularModularCore core_;
};

/// Convenience runners mirroring run_bst_array / run_polygon_array /
/// run_chain_array on the engine-backed model.
[[nodiscard]] TriangularModularCore::Result run_bst_modular(
    const std::vector<Cost>& freq, sim::ThreadPool* pool = nullptr,
    sim::Gating gating = sim::Gating::kSparse);
[[nodiscard]] TriangularModularCore::Result run_polygon_modular(
    const std::vector<Cost>& weights, sim::ThreadPool* pool = nullptr,
    sim::Gating gating = sim::Gating::kSparse);
[[nodiscard]] TriangularModularCore::Result run_chain_modular(
    const std::vector<Cost>& dims, sim::ThreadPool* pool = nullptr,
    sim::Gating gating = sim::Gating::kSparse);

}  // namespace sysdp
