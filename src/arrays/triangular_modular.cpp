#include "arrays/triangular_modular.hpp"

#include <string>

#include "semiring/kernels.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"
#include "sim/thread_pool.hpp"
#include "arrays/triangular_array.hpp"

namespace sysdp {

namespace {

/// A value in flight on a link, tagged by its origin cell (a, b).
struct Flit {
  Cost val = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// The row and column link registers at one cell position, two-phase (see
/// GktModularArray::LinkPair — same fabric).
struct LinkPair {
  Flit row_cur, col_cur;
  Flit row_nxt, col_nxt;
  std::uint8_t row_has = 0, col_has = 0;
  std::uint8_t row_nxt_has = 0, col_nxt_has = 0;
};

struct CellMeta {
  Cost best = kInfCost;
  sim::Cycle done_at = 0;
  std::uint64_t busy = 0;
  std::uint32_t q_head = 0;  ///< next ready candidate to fold
  std::uint32_t q_len = 0;   ///< ready candidates pushed so far
  std::uint32_t remaining = 0;
  std::uint8_t is_done = 0;
  std::uint8_t fired = 0;  ///< launch already sent (diagonals at cycle 0)
};

}  // namespace

/// Per-array arena: the packed link registers, fold metadata, the patient
/// completion-launch slots, and the flattened per-candidate tables
/// (origins, clamp flags, local costs, arrived operand values, ready
/// FIFO), prefix-offset addressed per cell.  Cell modules are thin lane
/// views, registered diagonal-major like GktModularArray.
struct TriangularModularCore::Arena {
  std::size_t n;
  std::vector<std::uint32_t> id_of;  ///< (i*n + j) -> cell id, i <= j

  std::vector<LinkPair> link;
  std::vector<CellMeta> meta;

  // Patient launch slots: a completing cell stages the receiver's slot;
  // the receiver's commit merges it into the link register at the first
  // cycle with a gap (the slot stays pending until then).  Each slot has
  // exactly one possible launcher, which launches at most once per run,
  // so a still-pending slot can never be re-staged.
  std::vector<Flit> row_launch, col_launch;
  std::vector<std::uint8_t> row_launch_set, col_launch_set;

  // Per-candidate tables, lane cand_base[id] + t for t < cands.
  std::vector<std::uint32_t> cand_base;
  std::vector<std::uint32_t> row_origin, col_origin;
  std::vector<std::uint8_t> use_left, use_right;
  std::vector<Cost> local, left_val, right_val;
  std::vector<std::uint8_t> left_set, right_set;
  std::vector<std::uint32_t> q_store;

  /// Tape recorder mirroring the fold datapath, or null when not lowering.
  /// As in GktModularArray, fold operands resolve against origin-cell best
  /// lanes; diagonal origins auto-initialise to their base value.
  sim::OpRecorder* rec = nullptr;

  Arena(std::size_t n_in, const std::vector<Cost>& base,
        const std::vector<std::vector<Candidate>>& cands)
      : n(n_in) {
    const std::size_t cells = n * (n + 1) / 2;
    id_of.assign(n * n, 0);
    std::uint32_t next = 0;
    for (std::size_t d = 0; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) id_of[i * n + (i + d)] = next++;
    }
    link.resize(cells);
    meta.resize(cells);
    row_launch.resize(cells);
    col_launch.resize(cells);
    row_launch_set.assign(cells, 0);
    col_launch_set.assign(cells, 0);

    cand_base.assign(cells + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      meta[id(i, i)].best = base[i];
      meta[id(i, i)].is_done = 1;  // diagonals complete at cycle 0
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto& list = cands[i * n + j];
        cand_base[id(i, j) + 1] = static_cast<std::uint32_t>(list.size());
        meta[id(i, j)].remaining = static_cast<std::uint32_t>(list.size());
        if (list.empty()) {
          // Trivially solved (e.g. a polygon edge): value 0 at cycle 0.
          // Such a cell still forwards traffic but never launches — the
          // constructor has verified nothing consumes it.
          meta[id(i, j)].best = 0;
          meta[id(i, j)].is_done = 1;
          meta[id(i, j)].fired = 1;
        }
      }
    }
    for (std::size_t c = 0; c < cells; ++c) cand_base[c + 1] += cand_base[c];
    const std::size_t total = cand_base[cells];
    row_origin.assign(total, 0);
    col_origin.assign(total, 0);
    use_left.assign(total, 0);
    use_right.assign(total, 0);
    local.assign(total, 0);
    left_val.assign(total, 0);
    right_val.assign(total, 0);
    left_set.assign(total, 0);
    right_set.assign(total, 0);
    q_store.assign(total, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto& list = cands[i * n + j];
        const std::uint32_t b0 = cand_base[id(i, j)];
        for (std::size_t t = 0; t < list.size(); ++t) {
          row_origin[b0 + t] = list[t].row_origin;
          col_origin[b0 + t] = list[t].col_origin;
          use_left[b0 + t] = list[t].use_left;
          use_right[b0 + t] = list[t].use_right;
          local[b0 + t] = list[t].local;
        }
      }
    }
  }

  /// Polled between cycles on the main thread (eval must not mutate any
  /// shared counter — cells fold concurrently under the pooled engine).
  [[nodiscard]] bool all_done() const {
    for (const CellMeta& mt : meta) {
      if (!mt.is_done) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint32_t id(std::size_t i, std::size_t j) const {
    return id_of[i * n + j];
  }

  /// Whether cell (i, j) ever launches a completion: diagonals always do,
  /// off-diagonal cells only when they have candidates (trivially-solved
  /// cells forward traffic but produce nothing).
  [[nodiscard]] bool launches(std::size_t i, std::size_t j) const {
    if (i == j) return true;
    const std::uint32_t c = id(i, j);
    return cand_base[c + 1] - cand_base[c] > 0;
  }

  /// A completed cell (a, b) launches rightward on row a and upward on
  /// column b by staging the receiver's (patient) launch slot.
  void launch(std::size_t a, std::size_t b, Cost v) {
    const Flit f{v, static_cast<std::uint32_t>(a),
                 static_cast<std::uint32_t>(b)};
    if (b + 1 < n) {
      const std::uint32_t t = id(a, b + 1);
      if (row_launch_set[t]) {
        throw std::logic_error("TriangularModularCore: launch slot re-staged");
      }
      row_launch[t] = f;
      row_launch_set[t] = 1;
    }
    if (a > 0) {
      const std::uint32_t t = id(a - 1, b);
      if (col_launch_set[t]) {
        throw std::logic_error("TriangularModularCore: launch slot re-staged");
      }
      col_launch[t] = f;
      col_launch_set[t] = 1;
    }
  }
};

/// One cell (i, j).  Diagonal cells launch their base value at cycle 0 and
/// retire; off-diagonal cells observe the streams passing their position,
/// match flits against their candidates' origin tables, fold up to two
/// ready candidates per cycle, and forward both streams one hop.
class TriangularModularCore::Cell : public sim::Module {
 public:
  Cell(std::size_t i, std::size_t j, Arena& a)
      : Module("t" + std::to_string(i) + "_" + std::to_string(j)),
        i_(i),
        j_(j),
        id_(a.id(i, j)),
        left_(i == j ? 0 : a.id(i, j - 1)),
        below_(i == j ? 0 : a.id(i + 1, j)),
        a_(a) {}

  void eval(sim::Cycle c) override {
    Arena& a = a_;
    const std::uint32_t id = id_;
    if (i_ == j_) {
      if (c == 0) {
        a.launch(i_, j_, a.meta[id].best);
        a.meta[id].fired = 1;
      }
      return;
    }
    LinkPair& lk = a.link[id];
    CellMeta& mt = a.meta[id];
    const std::uint32_t b0 = a.cand_base[id];
    const std::uint32_t kcnt = a.cand_base[id + 1] - b0;
    std::uint32_t* const q = a.q_store.data() + b0;
    const std::uint32_t len0 = mt.q_len;  // candidates ready before cycle c

    // ---- observe: match passing flits against the origin tables --------
    if (lk.row_has && lk.row_cur.a == i_) {
      const Flit& f = lk.row_cur;  // left operand from (i, f.b)
      for (std::uint32_t t = 0; t < kcnt; ++t) {
        if (a.row_origin[b0 + t] == f.b && !a.left_set[b0 + t]) {
          a.left_val[b0 + t] = f.val;
          a.left_set[b0 + t] = 1;
          if (a.right_set[b0 + t]) q[mt.q_len++] = t;
        }
      }
    }
    if (lk.col_has && lk.col_cur.b == j_) {
      const Flit& f = lk.col_cur;  // right operand from (f.a, j)
      for (std::uint32_t t = 0; t < kcnt; ++t) {
        if (a.col_origin[b0 + t] == f.a && !a.right_set[b0 + t]) {
          a.right_val[b0 + t] = f.val;
          a.right_set[b0 + t] = 1;
          if (a.left_set[b0 + t]) q[mt.q_len++] = t;
        }
      }
    }

    // ---- compute: fold up to two candidates that were ready before now -
    if (!mt.is_done && mt.q_head < len0) {
      std::uint32_t taken = 0;
      while (mt.q_head < len0 && taken < 2) {
        const std::uint32_t t = q[mt.q_head];
        const Cost l = a.use_left[b0 + t] ? a.left_val[b0 + t] : 0;
        const Cost r = a.use_right[b0 + t] ? a.right_val[b0 + t] : 0;
        const Cost cand = kern::interval_candidate(l, r, a.local[b0 + t]);
        if (sim::OpRecorder* const rec = a.rec; rec != nullptr) {
          // A clamped operand (use_* == 0) is the rule's structural zero,
          // not a transported value; otherwise read the origin's lane.
          const sim::SlotId sl =
              a.use_left[b0 + t]
                  ? rec->lane(&a.meta[a.id(i_, a.row_origin[b0 + t])].best,
                              l)
                  : rec->constant(0);
          const sim::SlotId sr =
              a.use_right[b0 + t]
                  ? rec->lane(&a.meta[a.id(a.col_origin[b0 + t], j_)].best,
                              r)
                  : rec->constant(0);
          rec->bind_now(&mt.best, rec->fold(rec->lane(&mt.best, mt.best),
                                            sl, sr, a.local[b0 + t]));
        }
        if (cand < mt.best) mt.best = cand;
        ++mt.busy;
        ++mt.q_head;
        ++taken;
        --mt.remaining;
      }
      if (mt.remaining == 0) {
        mt.is_done = 1;
        mt.done_at = c;
        a.launch(i_, j_, mt.best);
      }
    }

    // ---- stage the through-shift: one hop from upstream ----------------
    const LinkPair& lleft = a.link[left_];
    const LinkPair& lbelow = a.link[below_];
    lk.row_nxt = lleft.row_cur;
    lk.row_nxt_has = lleft.row_has;
    lk.col_nxt = lbelow.col_cur;
    lk.col_nxt_has = lbelow.col_has;
  }

  void commit() override {
    if (i_ == j_) return;
    Arena& a = a_;
    const std::uint32_t id = id_;
    LinkPair& lk = a.link[id];
    // Patient merge: a pending launch takes the link only in a cycle whose
    // through-shift leaves it empty; otherwise it keeps waiting.
    if (a.row_launch_set[id] && !lk.row_nxt_has) {
      lk.row_cur = a.row_launch[id];
      lk.row_has = 1;
      a.row_launch_set[id] = 0;
    } else {
      lk.row_cur = lk.row_nxt;
      lk.row_has = lk.row_nxt_has;
    }
    if (a.col_launch_set[id] && !lk.col_nxt_has) {
      lk.col_cur = a.col_launch[id];
      lk.col_has = 1;
      a.col_launch_set[id] = 0;
    } else {
      lk.col_cur = lk.col_nxt;
      lk.col_has = lk.col_nxt_has;
    }
  }

  /// A diagonal is quiescent once its cycle-0 launch fired.  A cell is
  /// quiescent when both links are empty, no folded-candidate work is
  /// queued, and no launch is waiting in its slots (a waiting launch
  /// needs this cell's commit to merge — sleeping on it would deadlock).
  [[nodiscard]] bool quiescent() const noexcept override {
    const CellMeta& mt = a_.meta[id_];
    if (i_ == j_) return mt.fired != 0;
    const LinkPair& lk = a_.link[id_];
    return !lk.row_has && !lk.col_has && mt.q_head == mt.q_len &&
           !a_.row_launch_set[id_] && !a_.col_launch_set[id_];
  }

  /// Diagonals retire after their one launch; every other cell sleeps
  /// between flits and is reactivated by the two incoming streams.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return i_ == j_ ? sim::SleepMode::kRetire : sim::SleepMode::kWakeable;
  }

  /// Same key model as GktModularArray: link registers and launch slots,
  /// with the leaf tie-off convention (a diagonal never writes its own
  /// links, so downstream cells do not declare reads of diagonal links).
  void describe_ports(sim::PortSet& ports) const override {
    const Arena& a = a_;
    const auto slot = [](const char* base, std::size_t i, std::size_t j) {
      return std::string(base) + "[" + std::to_string(i) + "," +
             std::to_string(j) + "]";
    };
    // Flit lanes are structs, so the port layer cannot infer a sampler;
    // probe the carried cost when a flit is present, 0 when the link is
    // empty (telemetry only — occupancy is the interesting waveform).
    const LinkPair* const lk = &a.link[id_];
    if (i_ != j_) {
      ports.writes_register(&lk->row_cur, slot("row", i_, j_),
                            [lk]() -> std::int64_t {
                              return lk->row_has != 0
                                         ? static_cast<std::int64_t>(
                                               lk->row_cur.val)
                                         : 0;
                            });
      ports.writes_register(&lk->col_cur, slot("col", i_, j_),
                            [lk]() -> std::int64_t {
                              return lk->col_has != 0
                                         ? static_cast<std::int64_t>(
                                               lk->col_cur.val)
                                         : 0;
                            });
      // A launch slot is staged only by the neighbour it belongs to; when
      // that neighbour never launches (a trivially-solved cell) the slot
      // stays architecturally empty and declaring the read would be a
      // dangling port.
      if (a.launches(i_, j_ - 1)) {
        ports.reads_register(&a.row_launch[id_], slot("row_launch", i_, j_));
      }
      if (a.launches(i_ + 1, j_)) {
        ports.reads_register(&a.col_launch[id_], slot("col_launch", i_, j_));
      }
      if (j_ > i_ + 1) {  // upstreams are real cells, not diagonals
        ports.reads_register(&a.link[left_].row_cur, slot("row", i_, j_ - 1));
        ports.reads_register(&a.link[below_].col_cur,
                             slot("col", i_ + 1, j_));
      }
    }
    // Completion launch targets (trivially-solved cells never launch).
    if (a.launches(i_, j_)) {
      if (j_ + 1 < a.n) {
        const std::uint32_t t = a.id(i_, j_ + 1);
        const Flit* const f = &a.row_launch[t];
        const std::uint8_t* const set = &a.row_launch_set[t];
        ports.writes_register(f, slot("row_launch", i_, j_ + 1),
                              [f, set]() -> std::int64_t {
                                return *set != 0
                                           ? static_cast<std::int64_t>(f->val)
                                           : 0;
                              });
      }
      if (i_ > 0) {
        const std::uint32_t t = a.id(i_ - 1, j_);
        const Flit* const f = &a.col_launch[t];
        const std::uint8_t* const set = &a.col_launch_set[t];
        ports.writes_register(f, slot("col_launch", i_ - 1, j_),
                              [f, set]() -> std::int64_t {
                                return *set != 0
                                           ? static_cast<std::int64_t>(f->val)
                                           : 0;
                              });
      }
    }
  }

 private:
  std::size_t i_, j_;
  std::uint32_t id_, left_, below_;
  Arena& a_;
};

TriangularModularCore::TriangularModularCore(
    std::size_t n, std::vector<Cost> base,
    std::vector<std::vector<Candidate>> cands)
    : n_(n), base_(std::move(base)), cands_(std::move(cands)) {
  if (n_ == 0) throw std::invalid_argument("TriangularModularCore: empty");
  if (base_.size() != n_ || cands_.size() != n_ * n_) {
    throw std::invalid_argument("TriangularModularCore: bad table shape");
  }
  // Every origin must name a cell that actually launches: a diagonal, or
  // an off-diagonal cell with at least one candidate.
  const auto launches = [&](std::size_t i, std::size_t j) {
    return i == j || !cands_[i * n_ + j].empty();
  };
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      for (const Candidate& c : cands_[i * n_ + j]) {
        if (c.row_origin < i || c.row_origin >= j ||
            !launches(i, c.row_origin) || c.col_origin <= i ||
            c.col_origin > j || !launches(c.col_origin, j)) {
          throw std::invalid_argument(
              "TriangularModularCore: candidate origin is not a launching "
              "cell");
        }
      }
    }
  }
}

TriangularModularCore::~TriangularModularCore() = default;

void TriangularModularCore::elaborate(sim::Engine& engine) {
  arena_ = std::make_unique<Arena>(n_, base_, cands_);
  arena_->rec = engine.recorder();
  cells_.clear();
  // Registered in arena-id (diagonal-major) order, like GktModularArray.
  for (std::size_t d = 0; d < n_; ++d) {
    for (std::size_t i = 0; i + d < n_; ++i) {
      cells_.push_back(std::make_unique<Cell>(i, i + d, *arena_));
      engine.add(*cells_.back());
    }
  }
  // Wakeup edges follow the two transport streams, the only arcs a flit
  // (through-shift or patient launch) can arrive on.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      const std::uint32_t id = arena_->id(i, j);
      if (j + 1 < n_) {
        engine.add_wakeup(*cells_[id], *cells_[arena_->id(i, j + 1)]);
      }
      if (i > 0) {
        engine.add_wakeup(*cells_[id], *cells_[arena_->id(i - 1, j)]);
      }
    }
  }
}

void TriangularModularCore::describe_environment(sim::PortSet& ports) const {
  if (arena_ == nullptr) return;
  const std::size_t n = arena_->n;
  // Boundary tie-offs: the last column's row streams and the top row's
  // column streams shift off the edge of the triangle by design.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ports.reads_register(&arena_->link[arena_->id(i, n - 1)].row_cur,
                         "row[" + std::to_string(i) + "," +
                             std::to_string(n - 1) + "]");
  }
  for (std::size_t j = 1; j < n; ++j) {
    ports.reads_register(&arena_->link[arena_->id(0, j)].col_cur,
                         "col[0," + std::to_string(j) + "]");
  }
}

std::uint64_t TriangularModularCore::pe_busy(std::size_t pe) const {
  return arena_ != nullptr ? arena_->meta.at(pe).busy : 0;
}

TriangularModularCore::Result TriangularModularCore::run(
    sim::ThreadPool* pool, sim::Gating gating) {
  sim::Engine engine(pool, gating);
  return run(engine);
}

TriangularModularCore::Result TriangularModularCore::run(sim::Engine& engine) {
  if (engine.now() > 0 || engine.num_modules() > 0) {
    throw std::invalid_argument(
        "TriangularModularCore::run: engine must be fresh");
  }
  const std::size_t n = n_;
  elaborate(engine);

  // Transport bound: every flit crosses at most n links, each candidate
  // fold costs at most one extra cycle, and a patient launch can wait at
  // most for the finite stream ahead of it — 8n + 32 covers the family
  // with generous slack.
  const sim::Cycle limit = 8 * static_cast<sim::Cycle>(n) + 32;
  const auto until = engine.run_until([this] { return arena_->all_done(); },
                                      limit);
  if (!until.satisfied) {
    throw std::logic_error("TriangularModularCore: did not converge");
  }

  Result out{Matrix<Cost>(n, n, kInfCost), Matrix<sim::Cycle>(n, n, 0), {}};
  out.stats.num_pes = n * (n + 1) / 2;
  out.stats.input_scalars = n;
  sim::OpRecorder* const rec = engine.recorder();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const CellMeta& mt = arena_->meta[arena_->id(i, j)];
      out.cost(i, j) = mt.best;
      if (i != j) {
        out.done(i, j) = mt.done_at;
        out.stats.busy_steps += mt.busy;
      }
      if (rec != nullptr) {
        rec->output("cell", static_cast<std::uint64_t>(i) * n + j,
                    rec->lane(&mt.best, mt.best), mt.best);
      }
    }
  }
  out.stats.cycles = until.cycles;
  out.stats.active_evals = engine.active_evals();
  out.stats.dense_evals = engine.dense_evals();
  return out;
}

TriangularModularCore::Result run_bst_modular(const std::vector<Cost>& freq,
                                              sim::ThreadPool* pool,
                                              sim::Gating gating) {
  const BstRule rule(freq);
  return TriangularModularArray<BstRule>(rule, rule.num_keys())
      .run(pool, gating);
}

TriangularModularCore::Result run_polygon_modular(
    const std::vector<Cost>& weights, sim::ThreadPool* pool,
    sim::Gating gating) {
  const PolygonRule rule(weights);
  return TriangularModularArray<PolygonRule>(rule, rule.num_vertices())
      .run(pool, gating);
}

TriangularModularCore::Result run_chain_modular(const std::vector<Cost>& dims,
                                                sim::ThreadPool* pool,
                                                sim::Gating gating) {
  const ChainRule rule(dims);
  return TriangularModularArray<ChainRule>(rule, rule.num_matrices())
      .run(pool, gating);
}

}  // namespace sysdp
