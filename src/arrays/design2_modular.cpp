#include "arrays/design2_modular.hpp"

#include <cstdint>
#include <stdexcept>

#include "semiring/kernels.hpp"
#include "sim/record.hpp"

namespace sysdp {

namespace {

/// Per-cycle control decode shared by the modules: multiply index (1-based)
/// and local iteration j for global cycle c on an m-wide array.
struct Phase {
  std::size_t q;
  std::size_t j;
};

Phase decode(sim::Cycle c, std::size_t m) {
  return Phase{static_cast<std::size_t>(c) / m + 1,
               static_cast<std::size_t>(c) % m};
}

}  // namespace

/// Per-array arena for the hot PE state: the ACC two-phase register bank
/// (value + written flag, one lane per PE), the S result registers, and
/// the MOVE/drained control bits — flattened so the per-cycle sweep walks
/// contiguous memory instead of chasing one heap object per PE.
struct Design2Modular::Arena {
  using V = Design2Modular::V;

  std::vector<V> acc, acc_nxt, s;
  std::vector<std::uint8_t> acc_written, move, drained;

  /// Tape recorder mirroring the datapath, or null when not lowering.
  sim::OpRecorder* rec = nullptr;

  explicit Arena(std::size_t n)
      : acc(n, MinPlus::zero()),
        acc_nxt(n, MinPlus::zero()),
        s(n, MinPlus::zero()),
        acc_written(n, 0),
        move(n, 0),
        drained(n, 0) {}
};

/// Drives the broadcast bus: the external input vector during the first
/// multiply (FIRST = 1), the fed-back S registers afterwards.
class Design2Modular::FeedbackUnit : public sim::Module {
 public:
  FeedbackUnit(sim::Bus<V>& bus, const std::vector<V>& v, std::size_t m)
      : Module("feedback"), bus_(bus), v_(v), m_(m) {}

  void eval(sim::Cycle c) override {
    phase_ = decode(c, m_);
    bus_.drive(c, phase_.q == 1 ? v_[phase_.j] : s_snapshot_[phase_.j]);
  }
  void commit() override {}

  /// Drives the broadcast bus the PEs sample in the same cycle.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// The cycle decode, computed once per cycle for all PEs (the unit is a
  /// combinational driver, so it is stable before any PE evaluates).
  [[nodiscard]] const Phase& phase() const noexcept { return phase_; }

  /// The PEs publish their S registers here on MOVE (the feedback wiring).
  std::vector<V> s_snapshot_;

  /// The bus combinationally re-presents registered state: the external
  /// vector (constant) or the fed-back S snapshots.
  void describe_ports(sim::PortSet& ports) const override {
    ports.drives(bus_, "bus");
    for (std::size_t p = 0; p < m_; ++p) {
      ports.reads_register(&s_snapshot_[p],
                           "s_snapshot[" + std::to_string(p) + "]");
      ports.derives(&bus_, &s_snapshot_[p]);
    }
  }

 private:
  sim::Bus<V>& bus_;
  const std::vector<V>& v_;
  std::size_t m_;
  Phase phase_{1, 0};
};

/// One processing element of Figure 4(b): accumulator, S register, and the
/// add/compare datapath fed from the broadcast bus.  State lives in the
/// shared arena; the module is a thin lane view.
class Design2Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const std::vector<Matrix<V>>& mats,
     sim::Bus<V>& bus, FeedbackUnit& feedback, Arena& a,
     sim::ActivityStats& stats, std::size_t m)
      : Module("pe" + std::to_string(index)),
        index_(index),
        mats_(mats),
        bus_(bus),
        feedback_(feedback),
        a_(a),
        stats_(stats),
        m_(m) {}

  void eval(sim::Cycle c) override {
    const std::size_t p = index_;
    const auto [q, j] = feedback_.phase();
    if (q > mats_.size()) return;
    const Matrix<V>& mat = mats_[mats_.size() - q];
    if (p >= mat.rows()) {
      // Only the (possibly rectangular) leftmost matrix can be short, and
      // it runs last: this PE has no further work in this run.
      if (q == mats_.size()) a_.drained[p] = 1;
      return;
    }
    const auto x = bus_.sample(c);
    if (!x.has_value()) throw std::logic_error("Design2Modular: dead bus");
    const V base = (j == 0) ? MinPlus::zero() : a_.acc[p];
    if (sim::OpRecorder* const rec = a_.rec; rec != nullptr) {
      // During the first multiply the bus carries the external vector
      // (constants on the tape); afterwards it re-presents the fed-back S
      // snapshot lanes.  MOVE forwards the freshly staged ACC slot into the
      // S register and the feedback snapshot — pure copies, elided to
      // binding updates.
      const sim::SlotId s_x = (q == 1)
                                  ? rec->constant(*x)
                                  : rec->lane(&feedback_.s_snapshot_[j], *x);
      const sim::SlotId s_base = (j == 0) ? rec->constant(MinPlus::zero())
                                          : rec->lane(&a_.acc[p], base);
      const sim::SlotId s_mac = rec->mac(s_base, mat(p, j), s_x);
      rec->bind_staged(&a_.acc[p], s_mac);
      if (j + 1 == m_) {
        rec->bind_staged(&a_.s[p], s_mac);
        rec->bind_staged(&feedback_.s_snapshot_[p], s_mac);
      }
    }
    a_.acc_nxt[p] = kern::mac<MinPlus>(base, mat(p, j), *x);
    a_.acc_written[p] = 1;
    stats_.mark_busy(p);
    a_.move[p] = (j + 1 == m_) ? 1 : 0;  // MOVE fires at the multiply bound
  }

  void commit() override {
    const std::size_t p = index_;
    if (a_.acc_written[p]) {
      a_.acc[p] = a_.acc_nxt[p];
      a_.acc_written[p] = 0;
    }
    if (a_.move[p]) {
      a_.s[p] = a_.acc[p];
      feedback_.s_snapshot_[p] = a_.s[p];
      a_.move[p] = 0;
    }
  }

  /// A PE beyond the final matrix's rows never works again; no wakeup
  /// edge exists into Design 2 PEs, so it sleeps through the drain.
  [[nodiscard]] bool quiescent() const noexcept override {
    return a_.drained[index_] != 0;
  }

  /// Once drained a Design 2 PE never reactivates: retirement, not sleep,
  /// so no wakeup edge into it is required.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return sim::SleepMode::kRetire;
  }

  void describe_ports(sim::PortSet& ports) const override {
    const std::size_t p = index_;
    ports.reads(bus_, "bus");
    ports.writes_register(&a_.s[p], "s[" + std::to_string(p) + "]");
    ports.writes_register(&feedback_.s_snapshot_[p],
                          "s_snapshot[" + std::to_string(p) + "]");
  }

  [[nodiscard]] V result() const { return a_.s[index_]; }

 private:
  std::size_t index_;
  const std::vector<Matrix<V>>& mats_;
  sim::Bus<V>& bus_;
  FeedbackUnit& feedback_;
  Arena& a_;
  sim::ActivityStats& stats_;
  std::size_t m_;
};

Design2Modular::Design2Modular(std::vector<Matrix<V>> mats, std::vector<V> v)
    : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()), stats_(m_) {
  if (mats_.empty()) throw std::invalid_argument("Design2Modular: no matrices");
  if (m_ == 0) throw std::invalid_argument("Design2Modular: empty vector");
  for (std::size_t i = 0; i < mats_.size(); ++i) {
    if (mats_[i].cols() != m_ ||
        (mats_[i].rows() != m_ && !(i == 0 && mats_[i].rows() <= m_))) {
      throw std::invalid_argument("Design2Modular: bad matrix shape");
    }
  }
}

Design2Modular::~Design2Modular() = default;

void Design2Modular::elaborate(sim::Engine& engine) {
  stats_.reset();
  arena_ = std::make_unique<Arena>(m_);
  arena_->rec = engine.recorder();
  feedback_ = std::make_unique<FeedbackUnit>(bus_, v_, m_);
  feedback_->s_snapshot_.assign(m_, MinPlus::zero());
  engine.add(*feedback_);  // bus driver first
  pes_.clear();
  for (std::size_t p = 0; p < m_; ++p) {
    pes_.push_back(std::make_unique<Pe>(p, mats_, bus_, *feedback_, *arena_,
                                        stats_, m_));
    engine.add(*pes_.back());
  }
}

void Design2Modular::describe_environment(sim::PortSet& ports) const {
  if (arena_ == nullptr) return;
  // Result harvest reads the first final-matrix-rows S registers; the
  // remaining lanes are tied off (their PEs drain during the last multiply).
  for (std::size_t p = 0; p < m_; ++p) {
    ports.reads_register(&arena_->s[p], "s[" + std::to_string(p) + "]");
  }
}

RunResult<Design2Modular::V> Design2Modular::run(sim::ThreadPool* pool,
                                                 sim::Gating gating) {
  sim::Engine engine(pool, gating);
  return run(engine);
}

RunResult<Design2Modular::V> Design2Modular::run(sim::Engine& engine) {
  if (engine.now() > 0 || engine.num_modules() > 0) {
    throw std::invalid_argument("Design2Modular::run: engine must be fresh");
  }
  elaborate(engine);

  const sim::Cycle total = static_cast<sim::Cycle>(mats_.size()) * m_;
  engine.run(total);

  RunResult<V> res;
  res.num_pes = m_;
  res.cycles = total;
  res.busy_steps = stats_.total_busy();
  res.input_scalars = m_ + res.busy_steps;  // vector + one element per MAC
  res.active_evals = engine.active_evals();
  res.dense_evals = engine.dense_evals();
  const std::size_t r = mats_.front().rows();
  res.values.reserve(r);
  sim::OpRecorder* const rec = engine.recorder();
  for (std::size_t p = 0; p < r; ++p) {
    const V val = pes_[p]->result();
    if (rec != nullptr) {
      rec->output("out", p, rec->lane(&arena_->s[p], val), val);
    }
    res.values.push_back(val);
  }
  return res;
}

}  // namespace sysdp
