#include "arrays/design2_modular.hpp"

#include <stdexcept>

namespace sysdp {

namespace {

/// Per-cycle control decode shared by the modules: multiply index (1-based)
/// and local iteration j for global cycle c on an m-wide array.
struct Phase {
  std::size_t q;
  std::size_t j;
};

Phase decode(sim::Cycle c, std::size_t m) {
  return Phase{static_cast<std::size_t>(c) / m + 1,
               static_cast<std::size_t>(c) % m};
}

}  // namespace

/// Drives the broadcast bus: the external input vector during the first
/// multiply (FIRST = 1), the fed-back S registers afterwards.
class Design2Modular::FeedbackUnit : public sim::Module {
 public:
  FeedbackUnit(sim::Bus<V>& bus, const std::vector<V>& v, std::size_t m)
      : Module("feedback"), bus_(bus), v_(v), m_(m) {}

  void eval(sim::Cycle c) override {
    const auto [q, j] = decode(c, m_);
    bus_.drive(c, q == 1 ? v_[j] : s_snapshot_[j]);
  }
  void commit() override {}

  /// Drives the broadcast bus the PEs sample in the same cycle.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// The PEs publish their S registers here on MOVE (the feedback wiring).
  std::vector<V> s_snapshot_;

 private:
  sim::Bus<V>& bus_;
  const std::vector<V>& v_;
  std::size_t m_;
};

/// One processing element of Figure 4(b): accumulator, S register, and the
/// add/compare datapath fed from the broadcast bus.
class Design2Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const std::vector<Matrix<V>>& mats,
     sim::Bus<V>& bus, FeedbackUnit& feedback, sim::ActivityStats& stats,
     std::size_t m)
      : Module("pe" + std::to_string(index)),
        index_(index),
        mats_(mats),
        bus_(bus),
        feedback_(feedback),
        stats_(stats),
        m_(m) {}

  void eval(sim::Cycle c) override {
    const auto [q, j] = decode(c, m_);
    if (q > mats_.size()) return;
    const Matrix<V>& mat = mats_[mats_.size() - q];
    if (index_ >= mat.rows()) return;
    const auto x = bus_.sample(c);
    if (!x.has_value()) throw std::logic_error("Design2Modular: dead bus");
    const V base = (j == 0) ? MinPlus::zero() : acc_.read();
    acc_.write(MinPlus::plus(base, MinPlus::times(mat(index_, j), *x)));
    stats_.mark_busy(index_);
    move_ = (j + 1 == m_);  // MOVE fires at the multiply boundary
  }

  void commit() override {
    acc_.commit();
    if (move_) {
      s_.reset(acc_.read());
      feedback_.s_snapshot_[index_] = s_.read();
      move_ = false;
    }
  }

  [[nodiscard]] V result() const { return s_.read(); }

 private:
  std::size_t index_;
  const std::vector<Matrix<V>>& mats_;
  sim::Bus<V>& bus_;
  FeedbackUnit& feedback_;
  sim::ActivityStats& stats_;
  std::size_t m_;
  sim::Register<V> acc_{MinPlus::zero()};
  sim::Register<V> s_{MinPlus::zero()};
  bool move_ = false;
};

Design2Modular::Design2Modular(std::vector<Matrix<V>> mats, std::vector<V> v)
    : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()) {
  if (mats_.empty()) throw std::invalid_argument("Design2Modular: no matrices");
  if (m_ == 0) throw std::invalid_argument("Design2Modular: empty vector");
  for (std::size_t i = 0; i < mats_.size(); ++i) {
    if (mats_[i].cols() != m_ ||
        (mats_[i].rows() != m_ && !(i == 0 && mats_[i].rows() <= m_))) {
      throw std::invalid_argument("Design2Modular: bad matrix shape");
    }
  }
}

Design2Modular::~Design2Modular() = default;

RunResult<Design2Modular::V> Design2Modular::run(sim::ThreadPool* pool) {
  sim::ActivityStats stats(m_);
  sim::Engine engine(pool);
  feedback_ = std::make_unique<FeedbackUnit>(bus_, v_, m_);
  feedback_->s_snapshot_.assign(m_, MinPlus::zero());
  engine.add(*feedback_);  // bus driver first
  pes_.clear();
  for (std::size_t p = 0; p < m_; ++p) {
    pes_.push_back(
        std::make_unique<Pe>(p, mats_, bus_, *feedback_, stats, m_));
    engine.add(*pes_.back());
  }

  const sim::Cycle total = static_cast<sim::Cycle>(mats_.size()) * m_;
  engine.run(total);

  RunResult<V> res;
  res.num_pes = m_;
  res.cycles = total;
  res.busy_steps = stats.total_busy();
  res.input_scalars = m_ + res.busy_steps;  // vector + one element per MAC
  const std::size_t r = mats_.front().rows();
  res.values.reserve(r);
  for (std::size_t p = 0; p < r; ++p) res.values.push_back(pes_[p]->result());
  return res;
}

}  // namespace sysdp
