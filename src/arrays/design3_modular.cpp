#include "arrays/design3_modular.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/module.hpp"
#include "sim/register.hpp"
#include "sim/stats.hpp"

namespace sysdp {

namespace {

/// A node token travelling the R pipeline (Figure 5's data format: node
/// value, stage tag, running h, winning station).
struct Token {
  Cost x = 0;
  std::size_t stage = 0;  // 1..N; N+1 marks the collector
  std::size_t idx = 0;
  Cost h = kInfCost;
  std::size_t arg = 0;
  bool valid = false;
};

/// A completed (x, h) pair on the feedback path.
struct Pair {
  Cost x = 0;
  Cost h = kInfCost;
  std::size_t stage = 0;
  bool valid = false;
};

}  // namespace

/// Owns the feedback bus: latches P_{m-1}'s completed pair for one cycle
/// and presents it to the selected station (round-robin), plus the host
/// input feeder for P_0.  Also the home of the path registers and the
/// collector capture (both physically live next to P_{m-1}; kept here so
/// the PE stays a pure datapath).
class Design3Modular::Controller : public sim::Module {
 public:
  Controller(const NodeValueGraph& graph, std::size_t m, std::size_t n)
      : Module("controller"), graph_(graph), m_(m), n_(n),
        pred_(n, std::vector<std::size_t>(m, 0)) {}

  void eval(sim::Cycle c) override {
    // Host input for P_0 this cycle.
    input_ = Token{};
    if (c < static_cast<sim::Cycle>(n_) * m_) {
      const std::size_t k = static_cast<std::size_t>(c) / m_ + 1;
      const std::size_t i = static_cast<std::size_t>(c) % m_;
      input_ = Token{graph_.value(k - 1, i), k, i,
                     k == 1 ? Cost{0} : kInfCost, 0, true};
    } else if (c == static_cast<sim::Cycle>(n_) * m_) {
      input_ = Token{0, n_ + 1, 0, kInfCost, 0, true};  // collector
    }
    // Feedback delivery: the pair captured last cycle goes to station
    // c mod m (the circulating token selects the pick-up station).
    delivery_ = in_flight_.read();
    delivery_station_ = static_cast<std::size_t>(c) % m_;
  }

  void commit() override { in_flight_.commit(); }

  /// The stations read input()/delivery() in the cycle they are computed.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// Called by P_{m-1} during eval with its outgoing token (registered:
  /// visible to stations only next cycle).
  void capture(sim::Cycle c, const Token& t) {
    if (!t.valid) {
      in_flight_.write(Pair{});
      return;
    }
    if (t.stage <= n_) {
      in_flight_.write(Pair{t.x, t.h, t.stage, true});
      if (t.stage >= 2) pred_[t.stage - 1][t.idx] = t.arg;
    } else {
      in_flight_.write(Pair{});
      collector_ = t;
      done_cycle_ = c;
    }
  }

  [[nodiscard]] const Token& input() const noexcept { return input_; }
  [[nodiscard]] const Pair& delivery() const noexcept { return delivery_; }
  [[nodiscard]] std::size_t delivery_station() const noexcept {
    return delivery_station_;
  }
  [[nodiscard]] const Token& collector() const noexcept { return collector_; }
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& pred() const {
    return pred_;
  }

 private:
  const NodeValueGraph& graph_;
  std::size_t m_;
  std::size_t n_;
  sim::Register<Pair> in_flight_;
  Token input_;
  Pair delivery_;
  std::size_t delivery_station_ = 0;
  Token collector_;
  sim::Cycle done_cycle_ = 0;
  std::vector<std::vector<std::size_t>> pred_;
};

/// One PE of Figure 5(b): R register, K/H feedback registers, and the
/// F (edge cost) / A (add) / C (compare) datapath.
class Design3Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const NodeValueGraph& graph, Controller& ctrl,
     const Pe* left, bool is_tail, sim::ActivityStats& stats, std::size_t n)
      : Module("pe" + std::to_string(index)),
        index_(index),
        graph_(graph),
        ctrl_(ctrl),
        left_(left),
        is_tail_(is_tail),
        stats_(stats),
        n_(n) {}

  void eval(sim::Cycle c) override {
    // Same-cycle feedback load (the paper's walkthrough: an arriving token
    // meets the pair delivered this very iteration).
    if (ctrl_.delivery().valid && ctrl_.delivery_station() == index_) {
      k_h_.write(ctrl_.delivery());
      k_h_.commit();  // combinational load into K/H before use
    }
    Token in = (index_ == 0) ? ctrl_.input() : left_->r_.read();
    if (in.valid && in.stage >= 2) {
      const Pair& fb = k_h_.read();
      if (fb.valid && fb.stage + 1 == in.stage) {
        const Cost edge =
            in.stage <= n_
                ? graph_.transition_cost(in.stage - 2, fb.x, in.x)
                : Cost{0};
        const Cost cand = sat_add(fb.h, edge);
        if (cand < in.h) {
          in.h = cand;
          in.arg = index_;
        }
        stats_.mark_busy(index_);
      }
    }
    r_.write(in);
    if (is_tail_) ctrl_.capture(c, in);  // registered hand-off to feedback
  }

  void commit() override { r_.commit(); }

  sim::Register<Token> r_;

 private:
  std::size_t index_;
  const NodeValueGraph& graph_;
  Controller& ctrl_;
  const Pe* left_;
  bool is_tail_;
  sim::Register<Pair> k_h_;
  sim::ActivityStats& stats_;
  std::size_t n_;
};

Design3Modular::Design3Modular(const NodeValueGraph& graph)
    : graph_(graph),
      m_(graph.stage_size(0)),
      n_stages_(graph.num_stages()) {
  if (!graph.uniform_width()) {
    throw std::invalid_argument("Design3Modular: non-uniform width");
  }
}

Design3Modular::~Design3Modular() = default;

Design3Result Design3Modular::run(sim::ThreadPool* pool) {
  sim::ActivityStats stats(m_);
  sim::Engine engine(pool);
  controller_ = std::make_unique<Controller>(graph_, m_, n_stages_);
  engine.add(*controller_);  // bus driver before the stations
  pes_.clear();
  for (std::size_t p = 0; p < m_; ++p) {
    const Pe* left = p == 0 ? nullptr : pes_[p - 1].get();
    pes_.push_back(std::make_unique<Pe>(p, graph_, *controller_, left,
                                        p + 1 == m_, stats, n_stages_));
    engine.add(*pes_.back());
  }
  const sim::Cycle total = static_cast<sim::Cycle>(n_stages_ + 1) * m_;
  engine.run(total);

  Design3Result out;
  out.stats.num_pes = m_;
  out.stats.cycles = total;
  out.stats.busy_steps = stats.total_busy();
  out.stats.input_scalars =
      static_cast<std::uint64_t>(n_stages_) * m_;  // node values only
  const Token& col = controller_->collector();
  out.cost = col.h;
  if (!is_inf(out.cost)) {
    out.path.assign(n_stages_, 0);
    out.path[n_stages_ - 1] = col.arg;
    const auto& pred = controller_->pred();
    for (std::size_t k = n_stages_ - 1; k > 0; --k) {
      out.path[k - 1] = pred[k][out.path[k]];
    }
  }
  return out;
}

}  // namespace sysdp
