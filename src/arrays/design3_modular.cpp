#include "arrays/design3_modular.hpp"

#include <cstdint>
#include <stdexcept>

#include "semiring/kernels.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"
#include "sim/register.hpp"
#include "sim/stats.hpp"

namespace sysdp {

namespace {

/// A node token travelling the R pipeline (Figure 5's data format: node
/// value, stage tag, running h, winning station).
struct Token {
  Cost x = 0;
  std::size_t stage = 0;  // 1..N; N+1 marks the collector
  std::size_t idx = 0;
  Cost h = kInfCost;
  std::size_t arg = 0;
  bool valid = false;
};

/// A completed (x, h) pair on the feedback path.
struct Pair {
  Cost x = 0;
  Cost h = kInfCost;
  std::size_t stage = 0;
  bool valid = false;
};

}  // namespace

/// Per-array arena for the station-local hot state: the R pipeline rail as
/// a bank of two-phase registers (struct-of-arrays by token field) and the
/// K/H feedback registers.  K/H loads are combinational (write-then-commit
/// inside eval in the original model), so they need no staging — a plain
/// store is the identical semantics.
struct Design3Modular::Arena {
  // R rail, two-phase.
  std::vector<Cost> r_x, r_x_nxt, r_h, r_h_nxt;
  std::vector<std::size_t> r_stage, r_stage_nxt, r_idx, r_idx_nxt, r_arg,
      r_arg_nxt;
  std::vector<std::uint8_t> r_valid, r_valid_nxt, r_written;
  // K/H feedback registers, immediate.
  std::vector<Cost> kh_x, kh_h;
  std::vector<std::size_t> kh_stage;
  std::vector<std::uint8_t> kh_valid;

  /// Tape recorder mirroring the cost plane, or null when not lowering.
  /// Token x/stage/idx fields and the K/H match logic are control (they
  /// never depend on accumulated costs), so only h and arg are narrated.
  sim::OpRecorder* rec = nullptr;

  explicit Arena(std::size_t n)
      : r_x(n, 0), r_x_nxt(n, 0),
        r_h(n, kInfCost), r_h_nxt(n, kInfCost),
        r_stage(n, 0), r_stage_nxt(n, 0),
        r_idx(n, 0), r_idx_nxt(n, 0),
        r_arg(n, 0), r_arg_nxt(n, 0),
        r_valid(n, 0), r_valid_nxt(n, 0), r_written(n, 0),
        kh_x(n, 0), kh_h(n, kInfCost), kh_stage(n, 0), kh_valid(n, 0) {}

  [[nodiscard]] Token r_read(std::size_t p) const {
    return Token{r_x[p], r_stage[p], r_idx[p], r_h[p], r_arg[p],
                 r_valid[p] != 0};
  }
  void r_write(std::size_t p, const Token& t) {
    r_x_nxt[p] = t.x;
    r_stage_nxt[p] = t.stage;
    r_idx_nxt[p] = t.idx;
    r_h_nxt[p] = t.h;
    r_arg_nxt[p] = t.arg;
    r_valid_nxt[p] = t.valid ? 1 : 0;
    r_written[p] = 1;
  }
  void r_commit(std::size_t p) {
    if (r_written[p]) {
      r_x[p] = r_x_nxt[p];
      r_stage[p] = r_stage_nxt[p];
      r_idx[p] = r_idx_nxt[p];
      r_h[p] = r_h_nxt[p];
      r_arg[p] = r_arg_nxt[p];
      r_valid[p] = r_valid_nxt[p];
      r_written[p] = 0;
    }
  }
};

/// Default-token invariant the gating relies on: invalid tokens in the R
/// pipeline are always exactly Token{} (the controller only ever emits
/// Token{} as "no input", and stations forward tokens verbatim), so a
/// skipped station's stale invalid register is bit-identical to the
/// rewrite a dense eval would have staged.
///
/// Owns the feedback bus: latches P_{m-1}'s completed pair for one cycle
/// and presents it to the selected station (round-robin), plus the host
/// input feeder for P_0.  Also the home of the path registers and the
/// collector capture (both physically live next to P_{m-1}; kept here so
/// the PE stays a pure datapath).
class Design3Modular::Controller : public sim::Module {
 public:
  Controller(const NodeValueGraph& graph, std::size_t m, std::size_t n)
      : Module("controller"), graph_(graph), m_(m), n_(n),
        pred_(n, std::vector<std::size_t>(m, 0)) {}

  void eval(sim::Cycle c) override {
    // Host input for P_0 this cycle.
    input_ = Token{};
    if (c < static_cast<sim::Cycle>(n_) * m_) {
      const std::size_t k = static_cast<std::size_t>(c) / m_ + 1;
      const std::size_t i = static_cast<std::size_t>(c) % m_;
      input_ = Token{graph_.value(k - 1, i), k, i,
                     k == 1 ? Cost{0} : kInfCost, 0, true};
    } else if (c == static_cast<sim::Cycle>(n_) * m_) {
      input_ = Token{0, n_ + 1, 0, kInfCost, 0, true};  // collector
    }
    // Feedback delivery: the pair captured last cycle goes to station
    // c mod m (the circulating token selects the pick-up station).
    delivery_ = in_flight_.read();
    delivery_station_ = static_cast<std::size_t>(c) % m_;
  }

  void commit() override { in_flight_.commit(); }

  /// The stations read input()/delivery() in the cycle they are computed.
  [[nodiscard]] bool combinational() const noexcept override { return true; }

  /// Nothing left to feed forward (inputs exhausted) and nothing in flight
  /// on the feedback path, presented or latched.  All three members are
  /// only mutated by this module's own eval/commit, and a valid capture
  /// from the tail can only happen in a cycle where the tail's wakeup
  /// edges have already re-activated the controller.
  [[nodiscard]] bool quiescent() const noexcept override {
    return !input_.valid && !delivery_.valid && !in_flight_.read().valid;
  }

  /// Called by P_{m-1} during eval with its outgoing token (registered:
  /// visible to stations only next cycle).
  void capture(sim::Cycle c, const Token& t) {
    if (!t.valid) {
      in_flight_.write(Pair{});
      return;
    }
    if (t.stage <= n_) {
      in_flight_.write(Pair{t.x, t.h, t.stage, true});
      if (t.stage >= 2) pred_[t.stage - 1][t.idx] = t.arg;
    } else {
      in_flight_.write(Pair{});
      collector_ = t;
      done_cycle_ = c;
    }
  }

  [[nodiscard]] const Token& input() const noexcept { return input_; }
  [[nodiscard]] std::size_t width() const noexcept { return m_; }
  [[nodiscard]] const Pair& delivery() const noexcept { return delivery_; }
  [[nodiscard]] std::size_t delivery_station() const noexcept {
    return delivery_station_;
  }
  [[nodiscard]] const Token& collector() const noexcept { return collector_; }
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& pred() const {
    return pred_;
  }

  /// Storage keys for the port declarations of the modules (and the
  /// testbench) that touch controller-owned state via capture()/harvest.
  [[nodiscard]] const void* in_flight_key() const noexcept {
    return &in_flight_;
  }
  [[nodiscard]] const void* collector_key() const noexcept {
    return &collector_;
  }
  [[nodiscard]] const void* pred_key() const noexcept { return &pred_; }

  /// Telemetry probes for the controller-owned struct lanes the tail PE
  /// declares (the port layer cannot infer samplers for them).
  [[nodiscard]] std::int64_t in_flight_probe() const {
    const Pair f = in_flight_.read();
    return f.valid ? static_cast<std::int64_t>(f.h) : 0;
  }
  [[nodiscard]] std::int64_t collector_probe() const {
    return collector_.valid ? static_cast<std::int64_t>(collector_.h) : 0;
  }
  /// Path-register occupancy: how many predecessor entries are nonzero so
  /// far — a staircase waveform that tracks completed stages.
  [[nodiscard]] std::int64_t pred_probe() const {
    std::int64_t filled = 0;
    for (const auto& row : pred_) {
      for (const std::size_t arg : row) filled += arg != 0 ? 1 : 0;
    }
    return filled;
  }

  /// Sleeps once the feed is exhausted and the feedback path is empty;
  /// the tail (and its predecessor) wakeup edges reactivate it.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return sim::SleepMode::kWakeable;
  }

  /// `delivery` combinationally re-presents the latched in-flight pair —
  /// the derivation lets wakeup-coverage accept the tail's edges to the
  /// stations in place of controller -> station edges (which would keep
  /// the whole array awake during pipeline fill).
  void describe_ports(sim::PortSet& ports) const override {
    // Struct-valued lanes carry explicit probes: the input token shows
    // the node value being fed, the delivery pair its prefix cost h (0
    // while no token is in flight, so waveforms read as activity bursts).
    ports.drives_signal(&input_, "ctrl.input", [this]() -> std::int64_t {
      return input_.valid ? static_cast<std::int64_t>(input_.x) : 0;
    });
    ports.drives_signal(&delivery_, "ctrl.delivery",
                        [this]() -> std::int64_t {
                          return delivery_.valid
                                     ? static_cast<std::int64_t>(delivery_.h)
                                     : 0;
                        });
    ports.reads_register(&in_flight_, "in_flight");
    ports.derives(&delivery_, &in_flight_);
  }

 private:
  const NodeValueGraph& graph_;
  std::size_t m_;
  std::size_t n_;
  sim::Register<Pair> in_flight_;
  Token input_;
  Pair delivery_;
  std::size_t delivery_station_ = 0;
  Token collector_;
  sim::Cycle done_cycle_ = 0;
  std::vector<std::vector<std::size_t>> pred_;
};

/// One PE of Figure 5(b): R register, K/H feedback registers, and the
/// F (edge cost) / A (add) / C (compare) datapath.  State lives in the
/// shared arena; the module is a thin lane view.
class Design3Modular::Pe : public sim::Module {
 public:
  Pe(std::size_t index, const NodeValueGraph& graph, Controller& ctrl,
     Arena& a, bool is_tail, sim::ActivityStats& stats, std::size_t n)
      : Module("pe" + std::to_string(index)),
        index_(index),
        graph_(graph),
        ctrl_(ctrl),
        a_(a),
        is_tail_(is_tail),
        stats_(stats),
        n_(n) {}

  void eval(sim::Cycle c) override {
    Arena& a = a_;
    const std::size_t p = index_;
    sim::OpRecorder* const rec = a.rec;
    // Same-cycle feedback load (the paper's walkthrough: an arriving token
    // meets the pair delivered this very iteration).
    if (ctrl_.delivery().valid && ctrl_.delivery_station() == p) {
      const Pair& d = ctrl_.delivery();
      a.kh_x[p] = d.x;
      a.kh_h[p] = d.h;
      a.kh_stage[p] = d.stage;
      a.kh_valid[p] = 1;
      // The K/H load forwards the in-flight pair's prefix cost: a copy,
      // visible intra-cycle (the fold below may fire this very eval).
      if (rec != nullptr) {
        rec->bind_now(&a.kh_h[p], rec->lane(ctrl_.in_flight_key(), d.h));
      }
    }
    Token in = (p == 0) ? ctrl_.input() : a.r_read(p - 1);
    sim::SlotId s_in = 0;
    const bool track = rec != nullptr && in.valid;
    if (track) {
      // Host-fed tokens carry constant prefixes (0 from the source stage,
      // +inf otherwise); pipelined tokens ride the left neighbour's rail
      // lane as an (h, arg) pair.
      s_in = (p == 0)
                 ? rec->constant_pair(in.h, static_cast<Cost>(in.arg))
                 : rec->lane_pair(&a.r_x[p - 1], in.h,
                                  static_cast<Cost>(in.arg));
    }
    if (in.valid && in.stage >= 2) {
      if (a.kh_valid[p] && a.kh_stage[p] + 1 == in.stage) {
        const Cost edge =
            in.stage <= n_
                ? graph_.transition_cost(in.stage - 2, a.kh_x[p], in.x)
                : Cost{0};
        if (track) {
          s_in = rec->relax(s_in, rec->lane(&a.kh_h[p], a.kh_h[p]), edge,
                            static_cast<Cost>(p));
        }
        const Cost cand = sat_add(a.kh_h[p], edge);
        kern::fold_min(cand, p, in.h, in.arg);
        stats_.mark_busy(p);
      }
    }
    a.r_write(p, in);
    if (track) rec->bind_staged(&a.r_x[p], s_in);
    if (is_tail_) {
      if (rec != nullptr) {
        if (in.valid && in.stage <= n_) {
          rec->bind_staged(ctrl_.in_flight_key(), s_in);
          // The path register write: the token's winning station becomes
          // the predecessor entry for (stage, idx).
          if (in.stage >= 2) {
            rec->output_arg("pred",
                            static_cast<std::uint64_t>(in.stage - 1) *
                                    ctrl_.width() +
                                in.idx,
                            s_in, static_cast<Cost>(in.arg));
          }
        } else {
          rec->bind_staged(ctrl_.in_flight_key(), rec->constant(kInfCost));
          if (in.valid) rec->bind_now(ctrl_.collector_key(), s_in);
        }
      }
      ctrl_.capture(c, in);  // registered hand-off to feedback
    }
  }

  void commit() override { a_.r_commit(index_); }

  /// No valid token in the R register means the last input was invalid and
  /// eval would only rewrite Token{} over Token{}: skippable.  A pending
  /// K/H pair alone does no work (the datapath fires on token arrival),
  /// and every token/delivery that could arrive is covered by a wakeup
  /// edge from its producer.
  [[nodiscard]] bool quiescent() const noexcept override {
    return a_.r_valid[index_] == 0;
  }

  /// Sleeps between tokens; the R-pipeline and feedback wakeup edges
  /// reactivate it.
  [[nodiscard]] sim::SleepMode sleep_mode() const noexcept override {
    return sim::SleepMode::kWakeable;
  }

  void describe_ports(sim::PortSet& ports) const override {
    const std::size_t p = index_;
    ports.reads_signal(&ctrl_.delivery(), "ctrl.delivery");
    ports.writes_register(&a_.r_x[p], "r[" + std::to_string(p) + "]");
    if (p == 0) {
      ports.reads_signal(&ctrl_.input(), "ctrl.input");
    } else {
      ports.reads_register(&a_.r_x[p - 1],
                           "r[" + std::to_string(p - 1) + "]");
    }
    if (is_tail_) {
      // capture(): staged write of the controller's in-flight pair (a
      // two-phase register latched at the controller's commit) plus the
      // harvest-only collector token and predecessor table.
      ports.writes_register(ctrl_.in_flight_key(), "in_flight",
                            [c = &ctrl_] { return c->in_flight_probe(); });
      ports.writes_register(ctrl_.collector_key(), "collector",
                            [c = &ctrl_] { return c->collector_probe(); });
      ports.writes_register(ctrl_.pred_key(), "pred",
                            [c = &ctrl_] { return c->pred_probe(); });
    }
  }

 private:
  std::size_t index_;
  const NodeValueGraph& graph_;
  Controller& ctrl_;
  Arena& a_;
  bool is_tail_;
  sim::ActivityStats& stats_;
  std::size_t n_;
};

Design3Modular::Design3Modular(const NodeValueGraph& graph)
    : graph_(graph),
      m_(graph.stage_size(0)),
      n_stages_(graph.num_stages()),
      stats_(m_) {
  if (!graph.uniform_width()) {
    throw std::invalid_argument("Design3Modular: non-uniform width");
  }
}

Design3Modular::~Design3Modular() = default;

void Design3Modular::elaborate(sim::Engine& engine) {
  stats_.reset();
  arena_ = std::make_unique<Arena>(m_);
  arena_->rec = engine.recorder();
  controller_ = std::make_unique<Controller>(graph_, m_, n_stages_);
  engine.add(*controller_);  // bus driver before the stations
  pes_.clear();
  for (std::size_t p = 0; p < m_; ++p) {
    pes_.push_back(std::make_unique<Pe>(p, graph_, *controller_, *arena_,
                                        p + 1 == m_, stats_, n_stages_));
    engine.add(*pes_.back());
  }
  // Wakeup edges follow the register dataflow.  The R pipeline:
  // controller -> P_0 and P_{p-1} -> P_p.  The feedback path: the tail
  // stages the controller's in-flight pair (so the tail AND whatever can
  // wake the tail — its predecessor — must wake the controller, or a
  // staged capture would miss its commit), and a latched pair is delivered
  // to station (c mod m), so the tail wakes every station.
  engine.add_wakeup(*controller_, *pes_.front());
  for (std::size_t p = 1; p < m_; ++p) {
    engine.add_wakeup(*pes_[p - 1], *pes_[p]);
  }
  engine.add_wakeup(*pes_.back(), *controller_);
  if (m_ > 1) engine.add_wakeup(*pes_[m_ - 2], *controller_);
  // Station 0 is skipped: the controller cannot be quiescent while a
  // delivery is pending, so the controller -> P_0 pipeline edge already
  // covers P_0's delivery input.
  for (std::size_t p = 1; p < m_; ++p) {
    engine.add_wakeup(*pes_.back(), *pes_[p]);
  }
}

void Design3Modular::describe_environment(sim::PortSet& ports) const {
  if (controller_ == nullptr) return;
  ports.reads_register(controller_->collector_key(), "collector");
  ports.reads_register(controller_->pred_key(), "pred");
  // The tail's R lane has no right neighbour (the hand-off to the feedback
  // path is the staged capture, not this register): architectural tie-off.
  ports.reads_register(&arena_->r_x[m_ - 1],
                       "r[" + std::to_string(m_ - 1) + "]");
}

Design3Result Design3Modular::run(sim::ThreadPool* pool, sim::Gating gating) {
  sim::Engine engine(pool, gating);
  return run(engine);
}

Design3Result Design3Modular::run(sim::Engine& engine) {
  if (engine.now() > 0 || engine.num_modules() > 0) {
    throw std::invalid_argument("Design3Modular::run: engine must be fresh");
  }
  elaborate(engine);

  const sim::Cycle total = static_cast<sim::Cycle>(n_stages_ + 1) * m_;
  engine.run(total);

  Design3Result out;
  out.stats.num_pes = m_;
  out.stats.cycles = total;
  out.stats.busy_steps = stats_.total_busy();
  out.stats.input_scalars =
      static_cast<std::uint64_t>(n_stages_) * m_;  // node values only
  out.stats.active_evals = engine.active_evals();
  out.stats.dense_evals = engine.dense_evals();
  const Token& col = controller_->collector();
  out.cost = col.h;
  if (sim::OpRecorder* const rec = engine.recorder(); rec != nullptr) {
    const sim::SlotId s_col = rec->lane_pair(
        controller_->collector_key(), col.h, static_cast<Cost>(col.arg));
    rec->output("cost", 0, s_col, col.h);
    rec->output_arg("arg", 0, s_col, static_cast<Cost>(col.arg));
  }
  if (!is_inf(out.cost)) {
    out.path.assign(n_stages_, 0);
    out.path[n_stages_ - 1] = col.arg;
    const auto& pred = controller_->pred();
    for (std::size_t k = n_stages_ - 1; k > 0; --k) {
      out.path[k - 1] = pred[k][out.path[k]];
    }
  }
  return out;
}

}  // namespace sysdp
