// Design 1: the pipelined linear systolic array of Figure 3.
//
// Computes the right-associated string product
//     M_0 (x) ( M_1 (x) ( ... ( M_{Q-1} (x) v ) ... ) )
// over a closed semiring with m processing elements, where every matrix is
// m x m except that the leftmost (final) matrix may have r <= m rows (the
// degenerate row-vector of a single-source graph, Section 3.1).
//
// Operation (paper terminology in parentheses):
//  * Multiplies alternate between two modes controlled by ODD_i:
//    - mode A (ODD=1): the input vector shifts through the R registers while
//      each PE p accumulates result element y_p in its accumulator A_p;
//      PE p consumes matrix element M(p, j) when input element x_j passes.
//    - mode B (ODD=0): inputs are stationary in R_p (moved there from A_p by
//      the MOVE signal at the multiply boundary) and the partial results
//      y_j shift through the accumulators, with PE p folding in
//      M(j, p) (x) R_p.
//  * The result stream leaving P_{m-1} in mode B re-enters P_0 as the
//    shifting input of the following mode-A multiply with zero dead cycles,
//    which is why successive matrices are fed back-to-back.
//  * Control switches with a one-cycle delay per PE (PE p runs iteration j
//    of multiply q at cycle (q-1)m + j + p), exactly the skew Figure 3
//    notes between P_{i+1} and P_i.
//
// The model is cycle-accurate with two-phase (read-committed / write-next)
// register semantics, so it is deterministic and free of evaluation-order
// artefacts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

template <Semiring S>
class Design1Pipeline {
 public:
  using V = typename S::value_type;

  /// `mats` are applied right to left onto `v`; all must be m x m where
  /// m = v.size(), except mats.front() which may have r <= m rows.
  Design1Pipeline(std::vector<Matrix<V>> mats, std::vector<V> v)
      : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()) {
    if (mats_.empty()) throw std::invalid_argument("Design1: no matrices");
    if (m_ == 0) throw std::invalid_argument("Design1: empty vector");
    for (std::size_t i = 0; i < mats_.size(); ++i) {
      if (mats_[i].cols() != m_) {
        throw std::invalid_argument("Design1: matrix cols != m");
      }
      const bool leftmost = (i == 0);
      if (mats_[i].rows() != m_ && !(leftmost && mats_[i].rows() <= m_)) {
        throw std::invalid_argument(
            "Design1: only the leftmost matrix may be rectangular");
      }
    }
  }

  /// Number of multiplies the array performs.
  [[nodiscard]] std::size_t num_multiplies() const noexcept {
    return mats_.size();
  }

  /// The paper's iteration count: m iterations per multiply (skew excluded).
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return static_cast<std::uint64_t>(mats_.size()) * m_;
  }

  /// Arg tables recorded during a run (one per multiply, leftmost matrix
  /// first): args[q][i] is the column index that achieved result element i
  /// of multiply Q-q.  This extends the path-register idea of Design 3
  /// (Section 3.2) to the string-product arrays: each PE's comparator
  /// already knows the winning index, so recording it costs one register
  /// per result element.
  using ArgTables = std::vector<std::vector<std::size_t>>;

  /// Simulate to completion and return results plus measured statistics.
  /// If `args` is non-null, the per-multiply winning indices are recorded
  /// for path recovery.
  [[nodiscard]] RunResult<V> run(ArgTables* args = nullptr) {
    args_ = nullptr;
    if (args != nullptr) {
      args->clear();
      args->resize(mats_.size());
      for (std::size_t q = 1; q <= mats_.size(); ++q) {
        (*args)[mats_.size() - q].assign(mats_[mats_.size() - q].rows(), 0);
      }
      args_ = args;
    }
    return run_impl();
  }

 private:
  [[nodiscard]] RunResult<V> run_impl() {
    const std::size_t Q = mats_.size();          // number of multiplies
    const std::size_t r = mats_.front().rows();  // rows of final result
    RunResult<V> res;
    res.num_pes = m_;
    res.input_scalars = m_;  // the initial vector v

    std::vector<Token> r_cur(m_), r_next(m_);
    std::vector<Token> a_cur(m_), a_next(m_);

    // Mode-A finals complete in the accumulators of P_0..P_{r-1} (PE p's
    // last iteration is cycle (Q-1)m + (m-1) + p); mode-B finals stream out
    // of P_{m-1} (token j commits at cycle (Q-1)m + j + (m-1)).
    const sim::Cycle last_cycle = (Q - 1) * m_ + (m_ - 1) + (r - 1);
    std::vector<V> out(r, S::zero());

    for (sim::Cycle c = 0; c <= last_cycle; ++c) {
      // ---- eval phase: compute next state from committed state ----------
      r_next = r_cur;
      a_next = a_cur;
      for (std::size_t p = 0; p < m_; ++p) {
        if (c < p) continue;  // pipeline not yet filled at this PE
        const std::uint64_t local = c - p;
        const std::size_t q = static_cast<std::size_t>(local / m_) + 1;
        const std::size_t j = static_cast<std::size_t>(local % m_);
        if (q > Q) continue;  // this PE has drained
        const Matrix<V>& M = mats_[Q - q];
        if (mode_a(q)) {
          eval_mode_a(res, r_cur, a_cur, r_next, a_next, p, q, j, M);
        } else {
          eval_mode_b(res, r_cur, a_cur, a_next, r_next, p, q, j, M);
        }
      }
      // ---- commit phase (clock edge) -------------------------------------
      r_cur.swap(r_next);
      a_cur.swap(a_next);
      // ---- harvest mode-B final results streaming out of P_{m-1} ---------
      if (!final_mode_a(Q)) {
        const Token& t = a_cur[m_ - 1];
        if (t.valid && t.q == Q && t.idx < r) out[t.idx] = t.val;
      }
    }
    if (final_mode_a(Q)) {
      for (std::size_t p = 0; p < r; ++p) out[p] = a_cur[p].val;
    }
    res.values = std::move(out);
    res.cycles = last_cycle + 1;
    return res;
  }

  struct Token {
    V val{};
    std::size_t idx = 0;
    std::size_t q = 0;  // multiply that produced/carries this token
    std::size_t arg = 0;  // winning column index so far (path recovery)
    bool valid = false;
  };

  /// Mode A shifts the input vector (first, third, ... multiply).
  [[nodiscard]] static bool mode_a(std::size_t q) noexcept { return q % 2 == 1; }
  [[nodiscard]] static bool final_mode_a(std::size_t Q) noexcept {
    return mode_a(Q);
  }

  void eval_mode_a(RunResult<V>& res, const std::vector<Token>& r_cur,
                   const std::vector<Token>& a_cur, std::vector<Token>& r_next,
                   std::vector<Token>& a_next, std::size_t p, std::size_t q,
                   std::size_t j, const Matrix<V>& M) {
    // Incoming token: external vector element (first multiply), feedback of
    // the previous multiply's result stream (later odd multiplies), or the
    // right-neighbour output of the previous PE.
    Token in;
    if (p == 0) {
      if (q == 1) {
        in = Token{v_[j], j, q, 0, true};
      } else {
        in = a_cur[m_ - 1];  // y_j of multiply q-1, exiting P_{m-1}
        if (in.valid && in.q != q - 1) in.valid = false;
      }
    } else {
      in = r_cur[p - 1];
    }
    r_next[p] = in;  // shift the input vector along the R pipeline
    if (in.valid && p < M.rows()) {
      // Stationary accumulation of y_p; at the first local iteration the
      // accumulator restarts from the semiring zero (implicit reset).
      const V base = (j == 0) ? S::zero() : a_cur[p].val;
      const V cand = S::times(M(p, in.idx), in.val);
      std::size_t arg = (j == 0) ? in.idx : a_cur[p].arg;
      if (j != 0 && S::improves(cand, base)) arg = in.idx;
      a_next[p] = Token{S::plus(base, cand), p, q, arg, true};
      ++res.busy_steps;
      ++res.input_scalars;  // one matrix element consumed
      if (args_ != nullptr && j + 1 == m_ && p < M.rows()) {
        (*args_)[mats_.size() - q][p] = a_next[p].arg;
      }
    }
  }

  void eval_mode_b(RunResult<V>& res, const std::vector<Token>& r_cur,
                   const std::vector<Token>& a_cur, std::vector<Token>& a_next,
                   std::vector<Token>& r_next, std::size_t p, std::size_t q,
                   std::size_t j, const Matrix<V>& M) {
    // MOVE: at the local multiply boundary the previous mode-A result y_p
    // becomes the stationary input x_p, copied from A_p into R_p.
    const Token stationary = (j == 0) ? a_cur[p] : r_cur[p];
    if (j == 0) r_next[p] = stationary;
    // Moving partial result: created at P_0, or taken from the left
    // neighbour's accumulator.
    Token partial;
    if (p == 0) {
      partial = (j < M.rows()) ? Token{S::zero(), j, q, 0, true} : Token{};
    } else {
      partial = a_cur[p - 1];
      if (partial.valid && partial.q != q) partial.valid = false;
    }
    if (partial.valid) {
      const V cand = S::times(M(partial.idx, p), stationary.val);
      std::size_t arg = (p == 0) ? p : partial.arg;
      if (p != 0 && S::improves(cand, partial.val)) arg = p;
      a_next[p] = Token{S::plus(partial.val, cand), partial.idx, q, arg, true};
      ++res.busy_steps;
      ++res.input_scalars;  // one matrix element consumed
      if (args_ != nullptr && p + 1 == m_) {
        (*args_)[mats_.size() - q][partial.idx] = a_next[p].arg;
      }
    } else {
      a_next[p] = Token{};  // bubble
    }
  }

  std::vector<Matrix<V>> mats_;
  std::vector<V> v_;
  std::size_t m_;
  ArgTables* args_ = nullptr;
};

}  // namespace sysdp
