// Generic triangular systolic array for interval DP recurrences.
//
// Both polyadic examples the paper names in Section 2.1 — the optimal
// matrix-multiplication order (eq. 6) and the optimal binary search tree —
// share the interval recurrence
//     T(i,j) = opt_k combine(T(i, k), T(k', j), local(i, j, k))
// whose dependency structure is the triangle the GKT array implements.
// TriangularArray captures the timing (operands ripple along rows/columns
// one hop per cycle; each cell folds up to two candidates per cycle) while
// the *rule* — base values, split range, and candidate cost — is supplied
// by a policy type, so one hardware model serves every member of the class.
//
//   struct Rule {
//     Cost base(std::size_t i) const;                    // diagonal cells
//     std::size_t splits(std::size_t i, std::size_t j) const;
//     // candidate `t` (0-based) for interval [i, j]; left/right are the
//     // completed sub-interval values the operand streams deliver.
//     Cost candidate(std::size_t i, std::size_t j, std::size_t t,
//                    Cost left, Cost right) const;
//     // sub-intervals consumed by candidate t.
//     std::pair<std::size_t, std::size_t> left_interval(i, j, t) const;
//     std::pair<std::size_t, std::size_t> right_interval(i, j, t) const;
//   };
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/kernels.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

template <typename Rule>
class TriangularArray {
 public:
  explicit TriangularArray(Rule rule, std::size_t n)
      : rule_(std::move(rule)), n_(n) {}

  struct Result {
    Matrix<Cost> cost;
    Matrix<std::size_t> split;   ///< winning candidate index per cell
    Matrix<sim::Cycle> ready;    ///< completion cycle per cell
    RunResult<Cost> stats;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    [[nodiscard]] sim::Cycle completion() const {
      return ready(0, ready.cols() - 1);
    }
  };

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return n_ * (n_ + 1) / 2;
  }

  [[nodiscard]] Result run() const {
    const std::size_t n = n_;
    Result out{Matrix<Cost>(n, n, 0), Matrix<std::size_t>(n, n, 0),
               Matrix<sim::Cycle>(n, n, 0), {}};
    out.stats.num_pes = num_cells();
    for (std::size_t i = 0; i < n; ++i) out.cost(i, i) = rule_.base(i);

    // Per-cell scratch (operand arrival times, arrival-sorted visit order)
    // hoisted out of the sweep: one workspace sized for the widest split
    // range, reused by every cell.
    std::vector<sim::Cycle> arrivals(n);
    std::vector<std::size_t> order(n);
    for (std::size_t d = 1; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) {
        const std::size_t j = i + d;
        const std::size_t cands = rule_.splits(i, j);
        if (cands == 0) {
          // A trivially-solved cell (e.g. a polygon edge): value 0,
          // available immediately.
          out.cost(i, j) = 0;
          out.ready(i, j) = 0;
          continue;
        }
        // Operand-pair arrival times: a completed sub-interval value hops
        // one cell per cycle along its row/column toward (i, j).
        for (std::size_t t = 0; t < cands; ++t) {
          const auto [li, lj] = rule_.left_interval(i, j, t);
          const auto [ri, rj] = rule_.right_interval(i, j, t);
          const sim::Cycle left =
              out.ready(li, lj) + (j - lj);   // row hops
          const sim::Cycle right =
              out.ready(ri, rj) + (ri - i);   // column hops
          arrivals[t] = std::max(left, right);
        }
        for (std::size_t t = 0; t < cands; ++t) order[t] = t;
        std::sort(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(cands),
                  [&](std::size_t a, std::size_t b) {
                    return arrivals[a] < arrivals[b];
                  });
        Cost best = kInfCost;
        std::size_t best_t = 0;
        sim::Cycle clock = 0;
        std::size_t idx = 0;
        // Two additions + two comparisons per cell per cycle (Section 6.2).
        while (idx < cands) {
          clock = std::max(clock, arrivals[order[idx]]) + 1;
          std::size_t taken = 0;
          while (idx < cands && taken < 2 &&
                 arrivals[order[idx]] <= clock - 1) {
            const std::size_t t = order[idx];
            const auto [li, lj] = rule_.left_interval(i, j, t);
            const auto [ri, rj] = rule_.right_interval(i, j, t);
            const Cost cand = rule_.candidate(i, j, t, out.cost(li, lj),
                                              out.cost(ri, rj));
            ++out.stats.busy_steps;
            kern::fold_min(cand, t, best, best_t);
            ++idx;
            ++taken;
          }
        }
        out.cost(i, j) = best;
        out.split(i, j) = best_t;
        out.ready(i, j) = clock;
      }
    }
    out.stats.cycles = n == 1 ? 0 : out.ready(0, n - 1);
    return out;
  }

 private:
  Rule rule_;
  std::size_t n_;
};

/// Rule for the optimal binary search tree: candidate t roots the interval
/// at key i + t; the local cost is the interval's total access frequency.
/// Empty sub-trees are modelled by clamping to the adjacent diagonal cell
/// with zero contribution.
class BstRule {
 public:
  explicit BstRule(std::vector<Cost> freq);

  [[nodiscard]] Cost base(std::size_t i) const { return freq_[i]; }
  [[nodiscard]] std::size_t splits(std::size_t i, std::size_t j) const {
    return j - i + 1;  // every key in [i, j] can be the root
  }
  [[nodiscard]] Cost candidate(std::size_t i, std::size_t j, std::size_t t,
                               Cost left, Cost right) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> left_interval(
      std::size_t i, std::size_t j, std::size_t t) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> right_interval(
      std::size_t i, std::size_t j, std::size_t t) const;

  [[nodiscard]] std::size_t num_keys() const noexcept { return freq_.size(); }

 private:
  std::vector<Cost> freq_;
  std::vector<Cost> prefix_;
};

/// Optimal-BST triangular array (the paper's second polyadic example).
[[nodiscard]] TriangularArray<BstRule>::Result run_bst_array(
    const std::vector<Cost>& freq);

/// Rule for minimum-weight triangulation of a convex polygon — the third
/// classic member of the interval-DP class (equivalent to matrix-chain
/// ordering by the standard polygon/product correspondence):
///   t(i, j) = min_{i < k < j} t(i, k) + t(k, j) + w_i w_k w_j
/// over vertex weights w, with t(i, i+1) = 0 (an edge is already a
/// triangle side).  Intervals here share endpoints, exercising a split
/// pattern the chain/BST rules do not.
class PolygonRule {
 public:
  explicit PolygonRule(std::vector<Cost> weights);

  [[nodiscard]] Cost base(std::size_t) const { return 0; }
  /// Cell (i, j) models polygon vertices i..j; splits pick the apex k.
  [[nodiscard]] std::size_t splits(std::size_t i, std::size_t j) const {
    return j - i - 1 > 0 && j > i ? j - i - 1 : 0;
  }
  [[nodiscard]] Cost candidate(std::size_t i, std::size_t j, std::size_t t,
                               Cost left, Cost right) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> left_interval(
      std::size_t i, std::size_t j, std::size_t t) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> right_interval(
      std::size_t i, std::size_t j, std::size_t t) const;

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return weights_.size();
  }

 private:
  std::vector<Cost> weights_;
};

/// Minimum-weight polygon triangulation on the triangular array.
[[nodiscard]] TriangularArray<PolygonRule>::Result run_polygon_array(
    const std::vector<Cost>& weights);

/// Rule for the optimal matrix-multiplication order (the paper's eq. 6):
///   m(i, j) = min_{i <= k < j} m(i, k) + m(k+1, j) + d_i d_{k+1} d_{j+1}
/// over chain dimensions d.  This is the recurrence the GKT array is
/// specialised for, so the generic triangular models cross-check against
/// GktRtlArray / GktModularArray on identical inputs.
class ChainRule {
 public:
  explicit ChainRule(std::vector<Cost> dims);

  [[nodiscard]] Cost base(std::size_t) const { return 0; }
  [[nodiscard]] std::size_t splits(std::size_t i, std::size_t j) const {
    return j - i;
  }
  [[nodiscard]] Cost candidate(std::size_t i, std::size_t j, std::size_t t,
                               Cost left, Cost right) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> left_interval(
      std::size_t i, std::size_t j, std::size_t t) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> right_interval(
      std::size_t i, std::size_t j, std::size_t t) const;

  [[nodiscard]] std::size_t num_matrices() const noexcept {
    return dims_.size() - 1;
  }

 private:
  std::vector<Cost> dims_;
};

/// Matrix-chain ordering on the generic triangular array.
[[nodiscard]] TriangularArray<ChainRule>::Result run_chain_array(
    const std::vector<Cost>& dims);

}  // namespace sysdp
