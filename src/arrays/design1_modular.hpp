// Design 1 built from discrete hardware modules with *distributed* control.
//
// The monolithic Design1Pipeline derives each PE's phase from the global
// cycle counter; real systolic arrays have no such global view.  Here every
// PE runs its own iteration counter that starts when the first valid token
// reaches it — which happens exactly one cycle after its left neighbour
// started, reproducing Figure 3's "one-cycle delay between switching the
// control signals in P_{i+1} and P_i" from purely local information.  The
// ODD/MOVE decisions are then local functions of that counter.
//
// Hot PE state (the R and ACC token rails plus the control counters) lives
// in one contiguous per-array arena, struct-of-arrays by token field, so
// the engine's active-set sweep is cache-linear; the Pe modules are thin
// views indexing into it.  The array declares quiescence (a PE that has
// not started, or has drained, is skippable) and wakeup edges along the
// register dataflow (host -> P_0, P_{p-1} -> P_p, tail -> P_0), so an
// activity-gated engine skips idle PEs during pipeline fill and drain
// while staying bit-identical to the dense sweep.
//
// Tests assert cycle-exact equivalence with the monolithic model, which
// demonstrates that the paper's skewed control scheme needs no global
// wiring.
#pragma once

#include <memory>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"
#include "sim/stats.hpp"

namespace sysdp::sim {
class ThreadPool;
}  // namespace sysdp::sim

namespace sysdp {

class Design1Modular {
 public:
  using V = MinPlus::value_type;

  /// Same shape contract as Design1Pipeline (square m x m matrices applied
  /// right to left; rectangular leftmost allowed).
  Design1Modular(std::vector<Matrix<V>> mats, std::vector<V> v);
  ~Design1Modular();

  Design1Modular(const Design1Modular&) = delete;
  Design1Modular& operator=(const Design1Modular&) = delete;

  /// Run to completion.  With a pool the engine fans PE eval/commit across
  /// threads; with Gating::kSparse (the default) idle PEs are skipped
  /// entirely.  Results are bit-identical across all four mode
  /// combinations (the host input feed is the only combinational driver
  /// and stays serialised).
  [[nodiscard]] RunResult<V> run(sim::ThreadPool* pool = nullptr,
                                 sim::Gating gating = sim::Gating::kSparse);

  /// Run on a caller-constructed engine, so telemetry observers (VCD,
  /// timelines — sim/observer.hpp) can attach before time starts.  The
  /// engine must be fresh: no modules added, no cycles stepped; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] RunResult<V> run(sim::Engine& engine);

  /// Number of PEs (valid from construction, before elaborate()).
  [[nodiscard]] std::size_t num_pes() const noexcept { return m_; }
  /// Cumulative busy cycles of PE `pe` — the monotone counter utilisation
  /// timelines sample per cycle.
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const {
    return stats_.busy_cycles(pe);
  }

  /// Build the arena, modules, and wakeup wiring into `engine` without
  /// running a cycle.  run() uses this internally; the lint CLI and the
  /// analysis tests call it directly and capture the netlist.
  void elaborate(sim::Engine& engine);

  /// Testbench-side taps for analysis::capture: the run loop harvests the
  /// result values straight out of the ACC rail after the final cycles.
  void describe_environment(sim::PortSet& ports) const;

 private:
  class Host;
  class Pe;
  struct Arena;

  std::vector<Matrix<V>> mats_;
  std::vector<V> v_;
  std::size_t m_;
  sim::ActivityStats stats_;
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<Host> host_;
  std::vector<std::unique_ptr<Pe>> pes_;
};

}  // namespace sysdp
