// Design 1 built from discrete hardware modules with *distributed* control.
//
// The monolithic Design1Pipeline derives each PE's phase from the global
// cycle counter; real systolic arrays have no such global view.  Here every
// PE runs its own iteration counter that starts when the first valid token
// reaches it — which happens exactly one cycle after its left neighbour
// started, reproducing Figure 3's "one-cycle delay between switching the
// control signals in P_{i+1} and P_i" from purely local information.  The
// ODD/MOVE decisions are then local functions of that counter.
//
// Tests assert cycle-exact equivalence with the monolithic model, which
// demonstrates that the paper's skewed control scheme needs no global
// wiring.
#pragma once

#include <memory>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"

namespace sysdp::sim {
class ThreadPool;
}  // namespace sysdp::sim

namespace sysdp {

class Design1Modular {
 public:
  using V = MinPlus::value_type;

  /// Same shape contract as Design1Pipeline (square m x m matrices applied
  /// right to left; rectangular leftmost allowed).
  Design1Modular(std::vector<Matrix<V>> mats, std::vector<V> v);
  ~Design1Modular();

  Design1Modular(const Design1Modular&) = delete;
  Design1Modular& operator=(const Design1Modular&) = delete;

  /// Run to completion.  With a pool the engine fans PE eval/commit across
  /// threads; results are bit-identical to the serial run (the host input
  /// feed is the only combinational driver and stays serialised).
  [[nodiscard]] RunResult<V> run(sim::ThreadPool* pool = nullptr);

 private:
  class Host;
  class Pe;

  std::vector<Matrix<V>> mats_;
  std::vector<V> v_;
  std::size_t m_;
  std::unique_ptr<Host> host_;
  std::vector<std::unique_ptr<Pe>> pes_;
  const Pe* tail_ = nullptr;  ///< resolved after all PEs are constructed
};

}  // namespace sysdp
