// Design 2: the linear systolic array with broadcasts of Figure 4.
//
// Same string product as Design 1, but every input matrix is fed in the
// same format and the current input vector element is *broadcast* to all
// PEs, so there is no pipeline skew:
//  * iteration j of multiply q (global cycle (q-1)m + j): the bus carries
//    x_j — the external vector element for the first multiply (FIRST=1) or
//    the fed-back S_j register (FIRST=0) — and PE p folds in
//    M(p, j) (x) x_j toward the stationary y_p.
//  * at the end of a multiply the MOVE signal gates every accumulator into
//    its S register, from which the feedback path broadcasts them as the
//    next multiply's inputs.
//
// The broadcast bus removes the fill/drain skew of Design 1 at the price of
// a global wire — the trade-off Section 3.2 discusses.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

template <Semiring S>
class Design2Broadcast {
 public:
  using V = typename S::value_type;

  /// Same shape contract as Design 1: square m x m matrices applied right
  /// to left onto `v`; the leftmost may have r <= m rows.
  Design2Broadcast(std::vector<Matrix<V>> mats, std::vector<V> v)
      : mats_(std::move(mats)), v_(std::move(v)), m_(v_.size()) {
    if (mats_.empty()) throw std::invalid_argument("Design2: no matrices");
    if (m_ == 0) throw std::invalid_argument("Design2: empty vector");
    for (std::size_t i = 0; i < mats_.size(); ++i) {
      if (mats_[i].cols() != m_) {
        throw std::invalid_argument("Design2: matrix cols != m");
      }
      if (mats_[i].rows() != m_ && !(i == 0 && mats_[i].rows() <= m_)) {
        throw std::invalid_argument(
            "Design2: only the leftmost matrix may be rectangular");
      }
    }
  }

  [[nodiscard]] std::size_t num_multiplies() const noexcept {
    return mats_.size();
  }
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return static_cast<std::uint64_t>(mats_.size()) * m_;
  }

  /// Number of scalars moved over the broadcast bus during a full run
  /// (available after run()).
  [[nodiscard]] std::uint64_t bus_transactions() const noexcept {
    return bus_txns_;
  }

  [[nodiscard]] RunResult<V> run() {
    const std::size_t Q = mats_.size();
    const std::size_t r = mats_.front().rows();
    RunResult<V> res;
    res.num_pes = m_;
    res.input_scalars = m_;  // the initial vector
    bus_txns_ = 0;

    std::vector<V> acc(m_, S::zero());
    std::vector<V> s(m_, S::zero());
    for (std::size_t q = 1; q <= Q; ++q) {
      const Matrix<V>& M = mats_[Q - q];
      for (std::size_t j = 0; j < m_; ++j) {
        // FIRST selects the external input; afterwards the S registers are
        // broadcast round-robin by the feedback path.
        const V x = (q == 1) ? v_[j] : s[j];
        ++bus_txns_;
        for (std::size_t p = 0; p < M.rows(); ++p) {
          const V base = (j == 0) ? S::zero() : acc[p];
          acc[p] = S::plus(base, S::times(M(p, j), x));
          ++res.busy_steps;
          ++res.input_scalars;  // matrix element fed to PE p this cycle
        }
      }
      s = acc;  // MOVE: gate accumulators into the S registers
    }
    res.values.assign(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(r));
    res.cycles = static_cast<sim::Cycle>(Q) * m_;
    return res;
  }

 private:
  std::vector<Matrix<V>> mats_;
  std::vector<V> v_;
  std::size_t m_;
  std::uint64_t bus_txns_ = 0;
};

}  // namespace sysdp
