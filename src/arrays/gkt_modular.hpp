// GKT triangular array built from discrete cell modules on the simulation
// engine.
//
// The structural counterpart of GktRtlArray: every upper-triangle cell
// (i, j) is one sim::Module owning the row/column link registers at its
// position; values hop one register per cycle along the row (rightward)
// and column (upward) streams, and a cell folds up to two ready candidates
// per cycle, exactly as the monolithic RTL loop does.  Tests assert
// cycle-exact equivalence (costs, completion cycles, busy work, operand
// buffer peak) with GktRtlArray.
//
// The point of the exercise is activity gating: a 2-D DP array is the
// paper's worst case for processor utilisation — cell (i, j) works only
// while operands ripple past it, so across a whole run only ~1/6 of all
// cell-cycles do anything.  GktRtlArray pays for every cell every cycle;
// here each cell reports quiescent() whenever its links are empty and no
// candidate is queued, wakeup edges follow the two incoming streams
// ((i, j-1) row-wise, (i+1, j) column-wise — launches travel the same
// arcs), and the gated engine skips the idle triangle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"

namespace sysdp::sim {
class ThreadPool;
}  // namespace sysdp::sim

namespace sysdp {

class GktModularArray {
 public:
  explicit GktModularArray(std::vector<Cost> dims);
  ~GktModularArray();

  GktModularArray(const GktModularArray&) = delete;
  GktModularArray& operator=(const GktModularArray&) = delete;

  /// Same shape as GktRtlArray::Result so differential tests compare
  /// field-for-field.
  struct Result {
    Matrix<Cost> cost;
    Matrix<sim::Cycle> done;
    RunResult<Cost> stats;
    std::uint64_t peak_operand_buffer = 0;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    [[nodiscard]] sim::Cycle completion() const {
      return done(0, done.cols() - 1);
    }
  };

  /// Simulate to completion.  Cells are register-only modules, so a pooled
  /// run is bit-identical to serial; with Gating::kSparse (default) idle
  /// cells sleep and the run is still bit-identical, because a quiescent
  /// cell's eval is an observational no-op and both reactivating streams
  /// are covered by wakeup edges.  Throws std::logic_error if two values
  /// ever contend for one link register.
  [[nodiscard]] Result run(sim::ThreadPool* pool = nullptr,
                           sim::Gating gating = sim::Gating::kSparse);

  /// Run on a caller-constructed engine, so telemetry observers (VCD,
  /// timelines — sim/observer.hpp) can attach before time starts.  The
  /// engine must be fresh: no modules added, no cycles stepped; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] Result run(sim::Engine& engine);

  /// Number of cells n(n+1)/2 (valid from construction, before
  /// elaborate()).
  [[nodiscard]] std::size_t num_pes() const noexcept {
    const std::size_t n = num_matrices();
    return n * (n + 1) / 2;
  }
  /// Cumulative busy cycles of cell `pe` (arena diagonal-major id) — the
  /// monotone counter utilisation timelines sample per cycle.  0 before
  /// elaboration.
  [[nodiscard]] std::uint64_t pe_busy(std::size_t pe) const;

  /// Build the arena, cells, and wakeup wiring into `engine` without
  /// running a cycle (run() uses this; the lint CLI captures the netlist).
  void elaborate(sim::Engine& engine);

  /// Testbench-side taps for analysis::capture: the boundary link
  /// registers (top row / last column) shift into the void by design.
  void describe_environment(sim::PortSet& ports) const;

  [[nodiscard]] std::size_t num_matrices() const noexcept {
    return dims_.size() - 1;
  }

 private:
  class Cell;
  struct Arena;

  std::vector<Cost> dims_;
  std::unique_ptr<Arena> arena_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace sysdp
