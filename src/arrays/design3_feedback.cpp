#include "arrays/design3_feedback.hpp"

#include <stdexcept>

namespace sysdp {

Design3Feedback::Design3Feedback(const NodeValueGraph& graph)
    : graph_(graph),
      m_(graph.stage_size(0)),
      n_stages_(graph.num_stages()) {
  if (!graph.uniform_width()) {
    throw std::invalid_argument(
        "Design3: needs a uniform number of quantised values per stage");
  }
}

std::uint64_t Design3Feedback::iterations() const noexcept {
  return static_cast<std::uint64_t>(n_stages_ + 1) * m_;
}

Design3Result Design3Feedback::run() {
  const std::size_t N = n_stages_;
  const std::size_t m = m_;

  Design3Result out;
  out.stats.num_pes = m;
  const std::uint64_t sink_dropped_before =
      sink_ != nullptr ? sink_->dropped_events() : 0;

  std::vector<Token> r_cur(m), r_next(m);
  std::vector<Feedback> k_h(m);  // K_p / H_p registers (combinational load)
  Feedback in_flight;            // token travelling the feedback path
  // Path registers in P_{m-1}: pred[k][i] = predecessor node (stage k-1,
  // 0-based) of node i in stage k.
  std::vector<std::vector<std::size_t>> pred(N,
                                             std::vector<std::size_t>(m, 0));
  Token collector_out;

  const sim::Cycle total = static_cast<sim::Cycle>(N + 1) * m;
  for (sim::Cycle c = 0; c < total; ++c) {
    // Feedback delivery: the pair that left P_{m-1} last cycle lands in
    // K_i/H_i of PE i this cycle and is usable immediately (single bus;
    // the station is selected by a circulating token, Section 3.2).
    if (in_flight.valid) {
      const std::size_t dest = static_cast<std::size_t>(c) % m;
      k_h[dest] = in_flight;
      in_flight.valid = false;
    }

    r_next = r_cur;
    for (std::size_t p = 0; p < m; ++p) {
      Token in;
      if (p == 0) {
        if (c < static_cast<sim::Cycle>(N) * m) {
          const std::size_t k = static_cast<std::size_t>(c) / m + 1;
          const std::size_t i = static_cast<std::size_t>(c) % m;
          in = Token{graph_.value(k - 1, i), k, i,
                     k == 1 ? Cost{0} : kInfCost, 0, true};
          ++out.stats.input_scalars;  // one node value enters the array
        } else if (c == static_cast<sim::Cycle>(N) * m) {
          in = Token{0, N + 1, 0, kInfCost, 0, true};  // collector, F = 0
        }
      } else {
        in = r_cur[p - 1];
      }
      if (in.valid && in.stage >= 2) {
        const Feedback& fb = k_h[p];
        if (fb.valid && fb.stage + 1 == in.stage) {
          // F computes the edge cost (zero for the collector pass), A adds
          // the prefix cost, C compares against the token's running best.
          // The F unit receives the token's stage as a control input, so
          // stage-dependent cost functions (Section 3.2's sequentially
          // controlled systems) need no extra hardware.
          const Cost edge = in.stage <= N
                                ? graph_.transition_cost(in.stage - 2, fb.x, in.x)
                                : Cost{0};
          const Cost cand = sat_add(fb.h, edge);
          if (cand < in.h) {
            in.h = cand;
            in.arg = p;
          }
          ++out.stats.busy_steps;
        }
      }
      r_next[p] = in;
    }

    // Commit: advance the pipeline and capture P_{m-1}'s output.
    r_cur.swap(r_next);
    const Token& tail = r_cur[m - 1];
    if (tail.valid) {
      if (tail.stage <= N) {
        in_flight = Feedback{tail.x, tail.h, tail.stage, true};
        if (tail.stage >= 2) pred[tail.stage - 1][tail.idx] = tail.arg;
        if (sink_ != nullptr && tail.stage >= 2) {
          sink_->record(c, "h_out", tail.h);
        }
      } else {
        collector_out = tail;  // the final minimum leaves the array
        if (sink_ != nullptr) sink_->record(c, "min_out", tail.h);
      }
    }
  }

  out.stats.cycles = total;
  if (sink_ != nullptr) {
    out.stats.trace_dropped = sink_->dropped_events() - sink_dropped_before;
  }
  out.cost = collector_out.h;
  if (!is_inf(out.cost)) {
    out.path.assign(N, 0);
    out.path[N - 1] = collector_out.arg;
    for (std::size_t k = N - 1; k > 0; --k) {
      out.path[k - 1] = pred[k][out.path[k]];
    }
  }
  return out;
}

}  // namespace sysdp
