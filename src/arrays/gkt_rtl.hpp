// Register-transfer-level model of the GKT triangular array.
//
// GktArray computes operand arrival times arithmetically; this model
// instead *moves the data*: every cell (i, j) of the upper triangle owns a
// rightward row register and an upward column register, each holding at
// most one value per cycle.  When cell (i, k) completes m_{i,k} it launches
// the value into its row stream; cell (k+1, j) launches m_{k+1,j} up its
// column; values hop one register per cycle; a cell pairs the row value
// tagged k with the column value tagged k and folds up to two candidates
// per cycle.
//
// The point of the exercise is physical feasibility: single-value links are
// a hard constraint a timing formula can silently violate.  The model
// *asserts* that no two values ever contend for one register — which holds
// because completed wavefronts advance two cycles per diagonal while data
// moves one hop per cycle, keeping successive stream values spaced apart —
// and reproduces GktArray's results cycle for cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

class GktRtlArray {
 public:
  explicit GktRtlArray(std::vector<Cost> dims);

  struct Result {
    Matrix<Cost> cost;
    Matrix<sim::Cycle> done;
    RunResult<Cost> stats;
    /// Largest number of operands any one cell ever had staged while
    /// waiting for their partners — the per-cell buffer depth the design
    /// needs (link registers themselves are asserted single-occupancy).
    std::uint64_t peak_operand_buffer = 0;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    [[nodiscard]] sim::Cycle completion() const {
      return done(0, done.cols() - 1);
    }
  };

  /// Simulate to completion.  Throws std::logic_error if two values ever
  /// contend for one link register (which would falsify the design).
  [[nodiscard]] Result run() const;

  [[nodiscard]] std::size_t num_matrices() const noexcept {
    return dims_.size() - 1;
  }

 private:
  std::vector<Cost> dims_;
};

}  // namespace sysdp
