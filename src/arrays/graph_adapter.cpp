#include "arrays/graph_adapter.hpp"

#include <stdexcept>

namespace sysdp {

MonadicStringProblem to_string_product(const MultistageGraph& g) {
  const std::size_t S = g.num_stages();
  const std::size_t last = S - 1;
  MonadicStringProblem out;

  // Intermediate stages must share width m (one PE per quantised value).
  std::size_t m = 0;
  for (std::size_t k = 1; k < last; ++k) {
    if (m == 0) m = g.stage_size(k);
    if (g.stage_size(k) != m) {
      throw std::invalid_argument(
          "to_string_product: intermediate stages must have equal width");
    }
  }
  if (m == 0) m = g.stage_size(last);  // two-stage graph

  if (g.stage_size(last) == 1 && S >= 3) {
    // Single sink: the last cost matrix degenerates into the initial column
    // vector D of eq. (8a).
    out.v = g.costs(last - 1).col(0);
    for (std::size_t k = 0; k + 1 < last; ++k) out.mats.push_back(g.costs(k));
  } else {
    if (g.stage_size(last) != m) {
      throw std::invalid_argument(
          "to_string_product: multi-sink final stage must match width m");
    }
    // Multi-sink: start from f(sink) = 0 (the semiring one).
    out.v.assign(m, MinPlus::one());
    for (std::size_t k = 0; k < last; ++k) out.mats.push_back(g.costs(k));
  }
  if (g.stage_size(0) > m) {
    throw std::invalid_argument(
        "to_string_product: first stage wider than intermediate stages");
  }
  return out;
}

RunResult<Cost> run_design1_shortest(const MultistageGraph& g) {
  auto prob = to_string_product(g);
  Design1Pipeline<MinPlus> array(std::move(prob.mats), std::move(prob.v));
  return array.run();
}

Design1PathResult run_design1_shortest_with_path(const MultistageGraph& g) {
  auto prob = to_string_product(g);
  const bool folded_sink = prob.mats.size() + 2 == g.num_stages();
  Design1Pipeline<MinPlus> array(std::move(prob.mats), std::move(prob.v));
  Design1Pipeline<MinPlus>::ArgTables args;
  Design1PathResult out;
  out.stats = array.run(&args);

  // Best source node, then follow the recorded winning columns forward.
  std::size_t src = 0;
  for (std::size_t i = 1; i < out.stats.values.size(); ++i) {
    if (out.stats.values[i] < out.stats.values[src]) src = i;
  }
  out.cost = out.stats.values[src];
  if (is_inf(out.cost)) return out;
  out.path.push_back(src);
  for (const auto& table : args) {
    out.path.push_back(table[out.path.back()]);
  }
  if (folded_sink) out.path.push_back(0);  // the single sink
  return out;
}

RunResult<Cost> run_design1_backward(const MultistageGraph& g) {
  const std::size_t S = g.num_stages();
  // Width checks mirror to_string_product with the roles of the first and
  // last stages swapped.
  std::size_t m = 0;
  for (std::size_t k = 1; k + 1 < S; ++k) {
    if (m == 0) m = g.stage_size(k);
    if (g.stage_size(k) != m) {
      throw std::invalid_argument(
          "run_design1_backward: intermediate stages must have equal width");
    }
  }
  if (m == 0) m = g.stage_size(0);

  std::vector<Matrix<Cost>> mats;
  std::vector<Cost> v;
  if (g.stage_size(0) == 1 && S >= 3) {
    // Single source: the first cost matrix degenerates into the vector.
    v = g.costs(0).row(0);
    for (std::size_t k = S - 1; k-- > 1;) {
      mats.push_back(g.costs(k).transposed());
    }
  } else {
    if (g.stage_size(0) != m) {
      throw std::invalid_argument(
          "run_design1_backward: multi-source first stage must match width");
    }
    v.assign(m, MinPlus::one());
    for (std::size_t k = S - 1; k-- > 0;) {
      mats.push_back(g.costs(k).transposed());
    }
  }
  Design1Pipeline<MinPlus> array(std::move(mats), std::move(v));
  return array.run();
}

RunResult<Cost> run_design2_shortest(const MultistageGraph& g) {
  auto prob = to_string_product(g);
  Design2Broadcast<MinPlus> array(std::move(prob.mats), std::move(prob.v));
  return array.run();
}

}  // namespace sysdp
