// Workload generators.
//
// The paper motivates Design 3 with four sequential-decision applications
// (Section 2.2): traffic-light control, circuit design, fluid flow, and
// task scheduling.  The authors' concrete instances are not published, so we
// generate synthetic instances with the structural properties the paper
// names — N stages, m quantised values per stage, stage-independent cost
// functions — which is all the architectures are sensitive to (see
// DESIGN.md, substitutions table).
#pragma once

#include <cstdint>
#include <random>

#include "graph/multistage_graph.hpp"
#include "graph/node_value_graph.hpp"

namespace sysdp {

/// Deterministic RNG for reproducible workloads.
using Rng = std::mt19937_64;

/// Uniformly random edge costs in [lo, hi]; every edge present.
[[nodiscard]] MultistageGraph random_multistage(std::size_t stages,
                                                std::size_t width, Rng& rng,
                                                Cost lo = 0, Cost hi = 99);

/// Random graph with per-stage widths.
[[nodiscard]] MultistageGraph random_multistage(
    const std::vector<std::size_t>& stage_sizes, Rng& rng, Cost lo = 0,
    Cost hi = 99);

/// Like random_multistage but each edge is removed (set to kInfCost) with
/// probability `drop_permille`/1000, while a random "spine" path is kept so
/// the instance always stays feasible.
[[nodiscard]] MultistageGraph random_sparse_multistage(std::size_t stages,
                                                       std::size_t width,
                                                       Rng& rng,
                                                       unsigned drop_permille);

/// Single-source, single-sink wrapper: prepends/appends width-1 stages
/// connected with zero-cost edges (Figure 1a shape).
[[nodiscard]] MultistageGraph with_single_source_sink(
    const MultistageGraph& g);

/// Traffic-control styled instance (node-value form): node values are
/// candidate signal-change times; the edge cost is the timing difference
/// |u - v| (the paper: "the cost on an edge ... is the difference in
/// timings").
[[nodiscard]] NodeValueGraph traffic_control_instance(std::size_t stages,
                                                      std::size_t width,
                                                      Rng& rng,
                                                      Cost horizon = 120);

/// Circuit-design styled instance: node values are candidate voltages (in
/// millivolt steps); edge cost models power dissipation, quadratic in the
/// voltage swing ("the cost of an edge ... may be the corresponding power
/// dissipation").
[[nodiscard]] NodeValueGraph circuit_design_instance(std::size_t stages,
                                                     std::size_t width,
                                                     Rng& rng,
                                                     Cost vmax = 50);

/// Fluid-flow styled instance: node values are pump pressures; edge cost
/// penalises pressure drops (flow constraint) and large pressure jumps.
[[nodiscard]] NodeValueGraph fluid_flow_instance(std::size_t stages,
                                                 std::size_t width, Rng& rng,
                                                 Cost pmax = 200);

/// Scheduling styled instance: node values are candidate service times for
/// each task; edge cost is the queueing delay max(0, u - v) plus the service
/// time itself.
[[nodiscard]] NodeValueGraph scheduling_instance(std::size_t stages,
                                                 std::size_t width, Rng& rng,
                                                 Cost tmax = 60);

/// Inventory-control instance (Section 3.2's "inventory systems"): stage k
/// is period k, node values are candidate end-of-period inventory levels,
/// and the stage-dependent transition cost prices the production
/// v - u + d_k needed to meet the period's demand d_k, plus holding cost
/// and a fixed setup charge (infeasible negative production costs +inf).
[[nodiscard]] NodeValueGraph inventory_instance(std::size_t periods,
                                                std::size_t levels, Rng& rng,
                                                Cost capacity = 40,
                                                Cost max_demand = 15);

/// Quantised trajectory-tracking instance (Section 3.2's "Kalman
/// filtering" flavour): node values are candidate state estimates; the
/// stage-dependent cost is the squared deviation from a reference
/// trajectory plus a quadratic control effort for the state change.
[[nodiscard]] NodeValueGraph tracking_instance(std::size_t steps,
                                               std::size_t levels, Rng& rng,
                                               Cost span = 60);

/// Multistage production process: node values are production rates; the
/// stage-dependent cost combines a per-period unit cost (fluctuating
/// input prices) with a rate-change penalty (retooling).
[[nodiscard]] NodeValueGraph production_instance(std::size_t periods,
                                                 std::size_t levels, Rng& rng,
                                                 Cost max_rate = 30);

/// Resource-allocation instance (a classic "industrial engineering" DP the
/// paper's introduction gestures at): distribute a budget of `budget` units
/// over `activities` activities; stage k's nodes are cumulative units spent
/// after activity k, and the edge from u to u' >= u carries the *profit*
/// of giving activity k the difference (concave random profit tables).
/// Profits are encoded for the (MAX,+) semiring: impossible transitions
/// (u' < u) carry kNegInfCost.
[[nodiscard]] MultistageGraph resource_allocation_instance(
    std::size_t activities, std::size_t budget, Rng& rng,
    Cost max_marginal = 25);

/// Random matrix-chain dimensions r_0..r_n for the optimal-parenthesisation
/// problem (eq. 6): n matrices, M_i is r_{i-1} x r_i.
[[nodiscard]] std::vector<Cost> random_chain_dims(std::size_t n, Rng& rng,
                                                  Cost lo = 1, Cost hi = 40);

/// Random string of `count` square cost matrices of size m (for the
/// divide-and-conquer experiments of Section 4).
[[nodiscard]] std::vector<Matrix<Cost>> random_matrix_string(
    std::size_t count, std::size_t m, Rng& rng, Cost lo = 0, Cost hi = 99);

}  // namespace sysdp
