#include "graph/node_value_graph.hpp"

#include <stdexcept>
#include <utility>

namespace sysdp {

namespace {

void validate_values(const std::vector<std::vector<Cost>>& values) {
  if (values.size() < 2) {
    throw std::invalid_argument("NodeValueGraph: need at least 2 stages");
  }
  for (const auto& stage : values) {
    if (stage.empty()) {
      throw std::invalid_argument("NodeValueGraph: empty stage");
    }
  }
}

}  // namespace

NodeValueGraph::NodeValueGraph(std::vector<std::vector<Cost>> values,
                               EdgeCostFn f)
    : values_(std::move(values)), f_(std::move(f)) {
  validate_values(values_);
  if (!f_) throw std::invalid_argument("NodeValueGraph: null cost function");
  sf_ = [g = f_](std::size_t, Cost u, Cost v) { return g(u, v); };
}

NodeValueGraph::NodeValueGraph(std::vector<std::vector<Cost>> values,
                               StageEdgeCostFn f)
    : values_(std::move(values)), sf_(std::move(f)) {
  validate_values(values_);
  if (!sf_) throw std::invalid_argument("NodeValueGraph: null cost function");
}

bool NodeValueGraph::uniform_width() const noexcept {
  for (const auto& s : values_) {
    if (s.size() != values_.front().size()) return false;
  }
  return true;
}

MultistageGraph NodeValueGraph::materialize() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(values_.size());
  for (const auto& s : values_) sizes.push_back(s.size());
  MultistageGraph g(sizes);
  for (std::size_t k = 0; k + 1 < values_.size(); ++k) {
    for (std::size_t i = 0; i < values_[k].size(); ++i) {
      for (std::size_t j = 0; j < values_[k + 1].size(); ++j) {
        g.set_edge(k, i, j, sf_(k, values_[k][i], values_[k + 1][j]));
      }
    }
  }
  return g;
}

std::size_t NodeValueGraph::input_scalars() const {
  std::size_t n = 0;
  for (const auto& s : values_) n += s.size();
  return n;
}

std::size_t NodeValueGraph::edge_scalars() const {
  std::size_t n = 0;
  for (std::size_t k = 0; k + 1 < values_.size(); ++k) {
    n += values_[k].size() * values_[k + 1].size();
  }
  return n;
}

}  // namespace sysdp
