#include "graph/generators.hpp"

#include <algorithm>
#include <cstdlib>

namespace sysdp {

namespace {

/// Random stage-value table for node-value instances: `width` distinct-ish
/// values per stage drawn from [0, vmax].
std::vector<std::vector<Cost>> random_values(std::size_t stages,
                                             std::size_t width, Rng& rng,
                                             Cost vmax) {
  std::uniform_int_distribution<Cost> dist(0, vmax);
  std::vector<std::vector<Cost>> values(stages);
  for (auto& stage : values) {
    stage.resize(width);
    for (auto& v : stage) v = dist(rng);
    std::sort(stage.begin(), stage.end());
  }
  return values;
}

}  // namespace

MultistageGraph random_multistage(std::size_t stages, std::size_t width,
                                  Rng& rng, Cost lo, Cost hi) {
  return random_multistage(std::vector<std::size_t>(stages, width), rng, lo,
                           hi);
}

MultistageGraph random_multistage(const std::vector<std::size_t>& stage_sizes,
                                  Rng& rng, Cost lo, Cost hi) {
  MultistageGraph g(stage_sizes);
  std::uniform_int_distribution<Cost> dist(lo, hi);
  for (std::size_t k = 0; k + 1 < g.num_stages(); ++k) {
    for (std::size_t i = 0; i < g.stage_size(k); ++i) {
      for (std::size_t j = 0; j < g.stage_size(k + 1); ++j) {
        g.set_edge(k, i, j, dist(rng));
      }
    }
  }
  return g;
}

MultistageGraph random_sparse_multistage(std::size_t stages, std::size_t width,
                                         Rng& rng, unsigned drop_permille) {
  MultistageGraph g = random_multistage(stages, width, rng);
  std::uniform_int_distribution<unsigned> coin(0, 999);
  std::uniform_int_distribution<std::size_t> pick(0, width - 1);
  // Spine path that is never dropped, keeping the instance feasible.
  StagePath spine(stages);
  for (auto& node : spine) node = pick(rng);
  for (std::size_t k = 0; k + 1 < stages; ++k) {
    for (std::size_t i = 0; i < width; ++i) {
      for (std::size_t j = 0; j < width; ++j) {
        const bool on_spine = (i == spine[k] && j == spine[k + 1]);
        if (!on_spine && coin(rng) < drop_permille) {
          g.set_edge(k, i, j, kInfCost);
        }
      }
    }
  }
  return g;
}

MultistageGraph with_single_source_sink(const MultistageGraph& g) {
  std::vector<std::size_t> sizes;
  sizes.reserve(g.num_stages() + 2);
  sizes.push_back(1);
  for (std::size_t s : g.stage_sizes()) sizes.push_back(s);
  sizes.push_back(1);
  MultistageGraph out(sizes);
  for (std::size_t j = 0; j < g.stage_size(0); ++j) out.set_edge(0, 0, j, 0);
  for (std::size_t k = 0; k + 1 < g.num_stages(); ++k) {
    out.costs(k + 1) = g.costs(k);
  }
  const std::size_t last = g.num_stages() - 1;
  for (std::size_t i = 0; i < g.stage_size(last); ++i) {
    out.set_edge(last + 1, i, 0, 0);
  }
  return out;
}

NodeValueGraph traffic_control_instance(std::size_t stages, std::size_t width,
                                        Rng& rng, Cost horizon) {
  return NodeValueGraph(random_values(stages, width, rng, horizon),
                        [](Cost u, Cost v) { return std::abs(u - v); });
}

NodeValueGraph circuit_design_instance(std::size_t stages, std::size_t width,
                                       Rng& rng, Cost vmax) {
  return NodeValueGraph(random_values(stages, width, rng, vmax),
                        [](Cost u, Cost v) {
                          const Cost swing = u - v;
                          return swing * swing;  // dissipation ~ swing^2
                        });
}

NodeValueGraph fluid_flow_instance(std::size_t stages, std::size_t width,
                                   Rng& rng, Cost pmax) {
  return NodeValueGraph(
      random_values(stages, width, rng, pmax), [](Cost u, Cost v) {
        // A drop in pressure chokes the flow (heavy penalty); a rise costs
        // pumping energy proportional to the jump.
        return v < u ? 5 * (u - v) : (v - u);
      });
}

NodeValueGraph scheduling_instance(std::size_t stages, std::size_t width,
                                   Rng& rng, Cost tmax) {
  return NodeValueGraph(
      random_values(stages, width, rng, tmax), [](Cost u, Cost v) {
        return std::max<Cost>(0, u - v) + v;  // queueing delay + service time
      });
}

NodeValueGraph inventory_instance(std::size_t periods, std::size_t levels,
                                  Rng& rng, Cost capacity, Cost max_demand) {
  std::uniform_int_distribution<Cost> demand_dist(1, max_demand);
  std::vector<Cost> demand(periods);  // demand[k]: met during k -> k+1
  for (auto& d : demand) d = demand_dist(rng);
  auto values = random_values(periods, levels, rng, capacity);
  // Period 0 starts empty so the first transition must produce.
  for (auto& v : values.front()) v = 0;
  return NodeValueGraph(
      std::move(values),
      [demand](std::size_t k, Cost u, Cost v) -> Cost {
        const Cost production = v - u + demand[k];
        if (production < 0) return kInfCost;  // cannot consume stock twice
        const Cost setup = production > 0 ? 12 : 0;
        return 3 * production + 1 * v + setup;  // unit + holding + setup
      });
}

NodeValueGraph tracking_instance(std::size_t steps, std::size_t levels,
                                 Rng& rng, Cost span) {
  std::uniform_int_distribution<Cost> ref_dist(0, span);
  std::vector<Cost> reference(steps);
  for (auto& r : reference) r = ref_dist(rng);
  auto values = random_values(steps, levels, rng, span);
  return NodeValueGraph(
      std::move(values),
      [reference](std::size_t k, Cost u, Cost v) -> Cost {
        const Cost deviation = v - reference[k + 1 < reference.size()
                                                 ? k + 1
                                                 : reference.size() - 1];
        const Cost control = v - u;
        return deviation * deviation + control * control;
      });
}

NodeValueGraph production_instance(std::size_t periods, std::size_t levels,
                                   Rng& rng, Cost max_rate) {
  std::uniform_int_distribution<Cost> price_dist(1, 9);
  std::vector<Cost> unit_price(periods);
  for (auto& p : unit_price) p = price_dist(rng);
  auto values = random_values(periods, levels, rng, max_rate);
  return NodeValueGraph(std::move(values),
                        [unit_price](std::size_t k, Cost u, Cost v) -> Cost {
                          const Cost retool = std::abs(v - u);
                          return unit_price[k] * v + 2 * retool;
                        });
}

MultistageGraph resource_allocation_instance(std::size_t activities,
                                              std::size_t budget, Rng& rng,
                                              Cost max_marginal) {
  // Stage 0 is the single "nothing spent yet" node; stages 1..A track the
  // cumulative spend, so stage A's node index is the total consumed.
  std::vector<std::size_t> sizes(activities + 1, budget + 1);
  sizes.front() = 1;
  MultistageGraph g(sizes, kNegInfCost);
  std::uniform_int_distribution<Cost> marginal(0, max_marginal);
  for (std::size_t k = 0; k + 1 <= activities; ++k) {
    // Concave profit table for activity k: decreasing random marginals.
    std::vector<Cost> profit(budget + 1, 0);
    Cost gain = marginal(rng) + max_marginal;
    for (std::size_t a = 1; a <= budget; ++a) {
      profit[a] = profit[a - 1] + gain;
      gain = std::max<Cost>(0, gain - marginal(rng) / 2);
    }
    for (std::size_t u = 0; u < g.stage_size(k); ++u) {
      for (std::size_t v2 = u; v2 <= budget; ++v2) {
        g.set_edge(k, u, v2, profit[v2 - u]);
      }
    }
  }
  return g;
}

std::vector<Cost> random_chain_dims(std::size_t n, Rng& rng, Cost lo,
                                    Cost hi) {
  std::uniform_int_distribution<Cost> dist(lo, hi);
  std::vector<Cost> dims(n + 1);
  for (auto& d : dims) d = dist(rng);
  return dims;
}

std::vector<Matrix<Cost>> random_matrix_string(std::size_t count,
                                               std::size_t m, Rng& rng,
                                               Cost lo, Cost hi) {
  std::uniform_int_distribution<Cost> dist(lo, hi);
  std::vector<Matrix<Cost>> mats;
  mats.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    Matrix<Cost> M(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) M(i, j) = dist(rng);
    }
    mats.push_back(std::move(M));
  }
  return mats;
}

}  // namespace sysdp
