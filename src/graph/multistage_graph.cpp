#include "graph/multistage_graph.hpp"

#include <stdexcept>

namespace sysdp {

MultistageGraph::MultistageGraph(const std::vector<std::size_t>& stage_sizes,
                                 Cost fill)
    : stage_sizes_(stage_sizes) {
  if (stage_sizes_.size() < 2) {
    throw std::invalid_argument("MultistageGraph: need at least 2 stages");
  }
  for (std::size_t s : stage_sizes_) {
    if (s == 0) throw std::invalid_argument("MultistageGraph: empty stage");
  }
  costs_.reserve(stage_sizes_.size() - 1);
  for (std::size_t k = 0; k + 1 < stage_sizes_.size(); ++k) {
    costs_.emplace_back(stage_sizes_[k], stage_sizes_[k + 1], fill);
  }
}

MultistageGraph::MultistageGraph(std::size_t stages, std::size_t width,
                                 Cost fill)
    : MultistageGraph(std::vector<std::size_t>(stages, width), fill) {}

bool MultistageGraph::uniform_width() const noexcept {
  for (std::size_t s : stage_sizes_) {
    if (s != stage_sizes_.front()) return false;
  }
  return true;
}

std::size_t MultistageGraph::num_finite_edges() const {
  std::size_t n = 0;
  for (const auto& m : costs_) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (!is_inf(m(i, j))) ++n;
      }
    }
  }
  return n;
}

Cost MultistageGraph::path_cost(const StagePath& path) const {
  if (path.size() != num_stages()) return kInfCost;
  Cost total = 0;
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    if (path[k] >= stage_size(k) || path[k + 1] >= stage_size(k + 1)) {
      return kInfCost;
    }
    total = sat_add(total, edge(k, path[k], path[k + 1]));
  }
  return total;
}

}  // namespace sysdp
