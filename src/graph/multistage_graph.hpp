// Multistage graphs (Figure 1 of the paper).
//
// A multistage graph decomposes its nodes into stages 0..N-1 with edges only
// between adjacent stages.  Stage-to-stage costs are stored as dense
// matrices: cost(k)(i,j) is the cost of the edge from node i of stage k to
// node j of stage k+1 (kInfCost encodes "no edge").  This is exactly the
// matrix string of eq. (8): solving the graph backward is the product
// C_0 . (C_1 . ( ... (C_{N-2} . 1))) over (MIN,+).
#pragma once

#include <cstddef>
#include <vector>

#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

/// A path through a multistage graph: one node index per stage.
using StagePath = std::vector<std::size_t>;

class MultistageGraph {
 public:
  MultistageGraph() = default;

  /// Graph with the given stage sizes; all edges initialised to `fill`
  /// (default: fully disconnected).
  explicit MultistageGraph(const std::vector<std::size_t>& stage_sizes,
                           Cost fill = kInfCost);

  /// Uniform graph: `stages` stages of `width` nodes each.
  MultistageGraph(std::size_t stages, std::size_t width, Cost fill = kInfCost);

  [[nodiscard]] std::size_t num_stages() const noexcept {
    return stage_sizes_.size();
  }
  [[nodiscard]] std::size_t stage_size(std::size_t k) const {
    return stage_sizes_.at(k);
  }
  [[nodiscard]] const std::vector<std::size_t>& stage_sizes() const noexcept {
    return stage_sizes_;
  }

  /// True if every stage has the same number of nodes.
  [[nodiscard]] bool uniform_width() const noexcept;

  /// Cost matrix between stage k and stage k+1 (k in [0, num_stages()-2]).
  [[nodiscard]] const Matrix<Cost>& costs(std::size_t k) const {
    return costs_.at(k);
  }
  [[nodiscard]] Matrix<Cost>& costs(std::size_t k) { return costs_.at(k); }

  /// Edge-cost accessors with stage/node bounds checks.
  [[nodiscard]] Cost edge(std::size_t stage, std::size_t from,
                          std::size_t to) const {
    return costs_.at(stage).at(from, to);
  }
  void set_edge(std::size_t stage, std::size_t from, std::size_t to, Cost c) {
    costs_.at(stage).at(from, to) = c;
  }

  /// The matrix string C_0, ..., C_{N-2} (eq. 8), in forward stage order.
  [[nodiscard]] const std::vector<Matrix<Cost>>& matrix_string() const noexcept {
    return costs_;
  }

  /// Total number of edges with finite cost.
  [[nodiscard]] std::size_t num_finite_edges() const;

  /// Cost of a concrete path (one node per stage); kInfCost if it uses a
  /// missing edge or has the wrong length.
  [[nodiscard]] Cost path_cost(const StagePath& path) const;

 private:
  std::vector<std::size_t> stage_sizes_;
  std::vector<Matrix<Cost>> costs_;  // costs_[k]: stage k -> stage k+1
};

}  // namespace sysdp
