#include "graph/interaction_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

InteractionGraph::InteractionGraph(std::size_t num_variables)
    : n_(num_variables), adj_(n_, std::vector<bool>(n_, false)) {}

void InteractionGraph::add_term(const TermScope& scope) {
  for (std::size_t v : scope) {
    if (v >= n_) throw std::out_of_range("InteractionGraph::add_term");
  }
  ++num_terms_;
  max_arity_ = std::max(max_arity_, scope.size());
  for (std::size_t a = 0; a < scope.size(); ++a) {
    for (std::size_t b = a + 1; b < scope.size(); ++b) {
      if (scope[a] != scope[b]) {
        adj_[scope[a]][scope[b]] = true;
        adj_[scope[b]][scope[a]] = true;
      }
    }
  }
}

bool InteractionGraph::adjacent(std::size_t u, std::size_t v) const {
  return adj_.at(u).at(v);
}

std::size_t InteractionGraph::degree(std::size_t v) const {
  const auto& row = adj_.at(v);
  return static_cast<std::size_t>(std::count(row.begin(), row.end(), true));
}

std::vector<std::size_t> InteractionGraph::neighbors(std::size_t v) const {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < n_; ++u) {
    if (adj_.at(v)[u]) out.push_back(u);
  }
  return out;
}

bool InteractionGraph::is_simple_path() const {
  // A simple path on k >= 2 vertices has exactly two degree-1 endpoints,
  // all other non-isolated vertices of degree 2, and is connected (among
  // non-isolated vertices).
  std::size_t endpoints = 0;
  std::size_t active = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    const std::size_t d = degree(v);
    if (d == 0) continue;
    ++active;
    if (d == 1) {
      ++endpoints;
    } else if (d != 2) {
      return false;
    }
  }
  if (active == 0) return true;  // no interactions at all: trivially serial
  if (endpoints != 2) return false;
  // Connectivity among active vertices: a degree-<=2 graph with exactly two
  // endpoints is a single path iff it has one component.
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack;
  for (std::size_t v = 0; v < n_; ++v) {
    if (degree(v) > 0) {
      stack.push_back(v);
      seen[v] = true;
      break;
    }
  }
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    ++visited;
    for (std::size_t u : neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return visited == active;
}

bool InteractionGraph::is_serial() const {
  return max_arity_ <= 2 && is_simple_path();
}

std::vector<std::size_t> InteractionGraph::path_order() const {
  if (!is_simple_path()) return {};
  std::vector<std::size_t> order;
  // Start from a degree-1 endpoint (or any vertex if all isolated).
  std::size_t start = n_;
  for (std::size_t v = 0; v < n_; ++v) {
    if (degree(v) == 1) {
      start = v;
      break;
    }
  }
  if (start == n_) {  // no edges: identity order
    order.resize(n_);
    for (std::size_t v = 0; v < n_; ++v) order[v] = v;
    return order;
  }
  std::vector<bool> seen(n_, false);
  std::size_t cur = start;
  seen[cur] = true;
  order.push_back(cur);
  for (;;) {
    std::size_t next = n_;
    for (std::size_t u : neighbors(cur)) {
      if (!seen[u]) {
        next = u;
        break;
      }
    }
    if (next == n_) break;
    seen[next] = true;
    order.push_back(next);
    cur = next;
  }
  // Append isolated vertices so the order is a permutation of all variables.
  for (std::size_t v = 0; v < n_; ++v) {
    if (!seen[v]) order.push_back(v);
  }
  return order;
}

std::size_t InteractionGraph::bandwidth() const {
  std::size_t bw = 0;
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (adj_[u][v]) bw = std::max(bw, v - u);
    }
  }
  return bw;
}

std::size_t InteractionGraph::num_components() const {
  std::vector<bool> seen(n_, false);
  std::size_t components = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    if (seen[v]) continue;
    ++components;
    std::vector<std::size_t> stack{v};
    seen[v] = true;
    while (!stack.empty()) {
      const std::size_t w = stack.back();
      stack.pop_back();
      for (std::size_t u : neighbors(w)) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace sysdp
