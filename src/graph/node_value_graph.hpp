// Node-value multistage problems (eq. 4 of the paper).
//
// In the serial optimisation form min_X sum_i g(X_i, X_{i+1}) each stage is
// a discrete variable and each node one of its m quantised values.  Edge
// costs are *computed* from the two node values by a stage-independent
// function f, so only O(m) values per stage cross the array boundary instead
// of O(m^2) edge costs — the order-of-magnitude input-bandwidth reduction
// the paper credits Design 3 with (Section 3.2).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/multistage_graph.hpp"
#include "semiring/cost.hpp"

namespace sysdp {

/// Stage-independent edge-cost function f(u, v): cost of moving from a node
/// with quantised value u to a node with quantised value v in the next
/// stage.
using EdgeCostFn = std::function<Cost(Cost u, Cost v)>;

/// Stage-dependent variant f_k(u, v) for the "sequentially controlled
/// systems" of Section 3.2 (Kalman filtering, inventory systems, multistage
/// production processes), where the transition cost depends on the period:
/// demands, tracking targets, etc.  The paper drops the stage subscript
/// "for simplicity"; Design 3 supports the general form because each token
/// carries its stage index, which the F unit receives as a control input.
using StageEdgeCostFn = std::function<Cost(std::size_t stage, Cost u, Cost v)>;

class NodeValueGraph {
 public:
  /// `values[k][j]` is the quantised value of node j in stage k; `f`
  /// computes edge costs from adjacent-stage values.
  NodeValueGraph(std::vector<std::vector<Cost>> values, EdgeCostFn f);

  /// Stage-dependent costs: `f(k, u, v)` prices the transition from stage k
  /// to stage k+1.
  NodeValueGraph(std::vector<std::vector<Cost>> values, StageEdgeCostFn f);

  [[nodiscard]] std::size_t num_stages() const noexcept {
    return values_.size();
  }
  [[nodiscard]] std::size_t stage_size(std::size_t k) const {
    return values_.at(k).size();
  }
  [[nodiscard]] bool uniform_width() const noexcept;

  [[nodiscard]] Cost value(std::size_t stage, std::size_t node) const {
    return values_.at(stage).at(node);
  }
  [[nodiscard]] const std::vector<Cost>& stage_values(std::size_t k) const {
    return values_.at(k);
  }

  [[nodiscard]] Cost edge_cost(std::size_t stage, std::size_t from,
                               std::size_t to) const {
    return sf_(stage, value(stage, from), value(stage + 1, to));
  }

  /// Transition cost directly from quantised values (what Design 3's F
  /// unit computes).
  [[nodiscard]] Cost transition_cost(std::size_t stage, Cost u,
                                     Cost v) const {
    return sf_(stage, u, v);
  }

  /// The stage-independent cost function, if the graph was built with one
  /// (empty for stage-dependent graphs).
  [[nodiscard]] const EdgeCostFn& cost_fn() const noexcept { return f_; }

  /// Materialise every edge cost into an explicit multistage graph
  /// (the edge-cost representation Designs 1 and 2 consume).
  [[nodiscard]] MultistageGraph materialize() const;

  /// Number of scalars that must enter an array using this representation:
  /// one node value per node.
  [[nodiscard]] std::size_t input_scalars() const;

  /// Number of scalars the explicit edge-cost representation needs:
  /// one cost per edge.  The ratio against input_scalars() is the I/O
  /// saving quantified in experiment E2.
  [[nodiscard]] std::size_t edge_scalars() const;

 private:
  std::vector<std::vector<Cost>> values_;
  EdgeCostFn f_;        // stage-independent form, when available
  StageEdgeCostFn sf_;  // always valid; wraps f_ when stage-independent
};

}  // namespace sysdp
