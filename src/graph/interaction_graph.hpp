// Interaction graphs (Section 2.2 of the paper).
//
// For an objective f(X) = sum_i g_i(X^i) over discrete variables, the
// interaction graph has one vertex per variable and an edge between two
// variables iff they appear together in some functional term.  A problem is
// *serial* exactly when each term shares one variable with its predecessor
// and one with its successor — i.e. the terms are binary and the interaction
// graph is a simple path.  This classification picks the architecture row in
// Table 1 and drives the nonserial-to-serial transformations of Section 6.
#pragma once

#include <cstddef>
#include <vector>

namespace sysdp {

/// A functional term: the (sorted, deduplicated) set of variable indices it
/// mentions.
using TermScope = std::vector<std::size_t>;

class InteractionGraph {
 public:
  explicit InteractionGraph(std::size_t num_variables);

  /// Declare that the variables in `scope` appear in one functional term.
  void add_term(const TermScope& scope);

  [[nodiscard]] std::size_t num_variables() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_terms() const noexcept { return num_terms_; }

  /// Largest number of variables in any single term.
  [[nodiscard]] std::size_t max_arity() const noexcept { return max_arity_; }

  [[nodiscard]] bool adjacent(std::size_t u, std::size_t v) const;
  [[nodiscard]] std::size_t degree(std::size_t v) const;
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t v) const;

  /// True if the graph (ignoring isolated vertices) is one simple path —
  /// the structural signature of a serial objective.
  [[nodiscard]] bool is_simple_path() const;

  /// True if the objective is serial in the paper's sense: all terms binary
  /// (or unary) and the interaction graph a simple path.
  [[nodiscard]] bool is_serial() const;

  /// A variable ordering along the path if is_simple_path(); empty
  /// otherwise.  This is the stage order a multistage-graph mapping uses.
  [[nodiscard]] std::vector<std::size_t> path_order() const;

  /// Bandwidth of the graph under the identity ordering: max |u - v| over
  /// edges.  Banded objectives (eq. 36 has bandwidth 2) admit the grouping
  /// transform of Section 6.1.
  [[nodiscard]] std::size_t bandwidth() const;

  /// Number of connected components, counting isolated vertices.
  [[nodiscard]] std::size_t num_components() const;

 private:
  std::size_t n_;
  std::size_t num_terms_ = 0;
  std::size_t max_arity_ = 0;
  std::vector<std::vector<bool>> adj_;
};

}  // namespace sysdp
