#include "analysis/debug_lint.hpp"

#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"

namespace sysdp::analysis {

void attach_debug_lint(sim::Engine& engine, CaptureOptions opts,
                       Severity fail_at) {
  engine.set_elaboration_check(
      [opts = std::move(opts), fail_at](const sim::Engine& e) {
        const Netlist net = capture(e, opts);
        const LintReport report = Linter().run(net, "debug-lint");
        if (!report.clean(fail_at)) {
          throw std::logic_error("elaboration lint failed:\n" +
                                 report.to_text());
        }
      });
}

}  // namespace sysdp::analysis
