// Static checker framework over captured netlists.
//
// The linter turns the systolic correctness arguments the simulator used
// to take on faith into machine-checked structural properties.  Six
// built-in checks:
//
//   multiple-drivers  — a register written, or a bus driven, by more than
//                       one module: last-write-wins would depend on eval
//                       order, and real buses forbid it outright.  Also
//                       flags a key declared both register and signal.
//   comb-hazard       — same-phase read-after-write hazards: a signal
//                       driven by a module not marked combinational() (the
//                       parallel engine would race it), a listener
//                       registered before its driver (it reads last
//                       cycle's value), and combinational cycles.
//   dangling-port     — a read port no module or environment tap ever
//                       drives (warning: the reader sees only the initial
//                       value), and a written port nothing reads (note).
//   orphan-module     — a module the design constructed but never
//                       registered with the Engine: it would simply not be
//                       simulated.
//   wakeup-coverage   — the PR 2 quiescence contract: every dataflow edge
//                       into a module that sleeps and reactivates
//                       (SleepMode::kWakeable) must be covered by a
//                       declared wakeup edge.  A combinational signal that
//                       derives() from a register may instead be covered
//                       by an edge from that register's writer — the
//                       retiming argument (Leiserson & Saxe) made
//                       checkable.  Declared edges may be a superset;
//                       missing ones are errors, because Gating::kSparse
//                       silently diverges from dense execution without
//                       them.
//   probe-coverage    — a storage some module writes but no writing port
//                       covers with a telemetry sampler (note): the VCD
//                       layer (src/obs) cannot observe it, so waveforms of
//                       this design silently omit the lane.
//
// Severities are per-check and overridable; reports render as human text
// or JSON (schema sysdp-lint-v1).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/netlist.hpp"

namespace sysdp::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// One finding, tagged with the check that produced it and the module /
/// storage it is anchored to.
struct Diagnostic {
  std::string check;
  Severity severity = Severity::kError;
  std::string module;   ///< primary source tag (module name)
  std::string storage;  ///< storage label, empty if not port-anchored
  std::string message;
};

struct LintReport {
  std::string design;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept {
    return count(Severity::kError);
  }
  [[nodiscard]] std::size_t warnings() const noexcept {
    return count(Severity::kWarning);
  }
  /// True if no diagnostic at or above `fail_at` was produced.
  [[nodiscard]] bool clean(Severity fail_at = Severity::kError) const noexcept;

  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"design": ..., "diagnostics": [...], "counts": ...}.
  [[nodiscard]] std::string to_json() const;
};

class Linter {
 public:
  static constexpr std::string_view kMultipleDrivers = "multiple-drivers";
  static constexpr std::string_view kCombHazard = "comb-hazard";
  static constexpr std::string_view kDanglingPort = "dangling-port";
  static constexpr std::string_view kOrphanModule = "orphan-module";
  static constexpr std::string_view kWakeupCoverage = "wakeup-coverage";
  static constexpr std::string_view kProbeCoverage = "probe-coverage";

  /// All six checks enabled at their default severities.
  Linter();

  /// Override the principal severity of one check (e.g. demote
  /// wakeup-coverage to a warning while bringing up a new array).
  /// Unknown check names throw std::invalid_argument.
  void set_severity(std::string_view check, Severity s);

  [[nodiscard]] LintReport run(const Netlist& net,
                               std::string design_name) const;

 private:
  [[nodiscard]] Severity severity_of(std::string_view check) const;

  struct CheckSeverity {
    std::string_view check;
    Severity severity;
  };
  std::vector<CheckSeverity> severities_;
};

}  // namespace sysdp::analysis
