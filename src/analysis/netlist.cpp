#include "analysis/netlist.hpp"

#include <algorithm>
#include <unordered_map>

#include "sim/engine.hpp"

namespace sysdp::analysis {

namespace {

/// Insert `id` into a deduplicated, sorted accessor list.
void note_accessor(std::vector<NodeId>& list, NodeId id) {
  const auto it = std::lower_bound(list.begin(), list.end(), id);
  if (it == list.end() || *it != id) list.insert(it, id);
}

}  // namespace

bool Netlist::has_wakeup(NodeId src, NodeId dst) const {
  for (const WakeupEdge& w : wakeups) {
    if (w.src == src && w.dst == dst) return true;
  }
  return false;
}

std::uint32_t Netlist::storage_of(const void* key) const {
  for (std::uint32_t i = 0; i < storages.size(); ++i) {
    if (storages[i].key == key) return i;
  }
  return npos;
}

Netlist capture(const sim::Engine& engine, const CaptureOptions& opts) {
  Netlist net;
  std::unordered_map<const sim::Module*, NodeId> node_of;

  const auto add_node = [&](const sim::Module* m, bool in_engine,
                            std::uint32_t order) {
    const auto id = static_cast<NodeId>(net.nodes.size());
    net.nodes.push_back(NetNode{m, m->name(), m->combinational(),
                                m->sleep_mode(), in_engine, order});
    node_of.emplace(m, id);
    return id;
  };

  for (std::uint32_t i = 0; i < engine.modules().size(); ++i) {
    add_node(engine.modules()[i], true, i);
  }
  for (const sim::Module* m : opts.extra_modules) {
    if (m != nullptr && node_of.find(m) == node_of.end()) {
      add_node(m, false, 0);
    }
  }
  net.environment = static_cast<NodeId>(net.nodes.size());
  net.nodes.push_back(
      NetNode{nullptr, "environment", false, sim::SleepMode::kNever, false, 0});

  // Collect every declared port use, building the storage table as keys
  // appear.  The first declaration fixes the kind and label; later
  // mismatching kinds are recorded as a conflict for the linter.
  std::unordered_map<const void*, std::uint32_t> storage_index;
  const auto record = [&](NodeId node, const sim::Port& p) {
    auto [it, inserted] =
        storage_index.emplace(p.storage, net.storages.size());
    if (inserted) {
      net.storages.push_back(
          Storage{p.storage, p.kind, false, false, p.label, {}, {}});
    }
    Storage& st = net.storages[it->second];
    if (st.kind != p.kind) st.kind_conflict = true;
    // Prefer a writer's label as the canonical storage name.
    if (p.dir == sim::PortDir::kOut && !p.label.empty()) st.label = p.label;
    if (p.dir == sim::PortDir::kOut && p.sample) st.sampled = true;
    note_accessor(p.dir == sim::PortDir::kOut ? st.writers : st.readers, node);
  };

  for (NodeId id = 0; id < net.environment; ++id) {
    sim::PortSet ports;
    net.nodes[id].module->describe_ports(ports);
    for (const sim::Port& p : ports.ports()) record(id, p);
    for (const sim::SignalDerivation& d : ports.derivations()) {
      net.derivations.push_back(d);
    }
  }
  for (const sim::Port& p : opts.environment.ports()) {
    record(net.environment, p);
  }
  for (const sim::SignalDerivation& d : opts.environment.derivations()) {
    net.derivations.push_back(d);
  }

  // Dataflow edges: every writer reaches every reader of its storage.
  // Self-loops are dropped — a module's private round-trip through its own
  // register is not inter-module dataflow.
  for (std::uint32_t s = 0; s < net.storages.size(); ++s) {
    const Storage& st = net.storages[s];
    for (const NodeId w : st.writers) {
      for (const NodeId r : st.readers) {
        if (w != r) net.edges.push_back(DataflowEdge{w, r, s, st.kind});
      }
    }
  }

  for (const auto& [src, dst] : engine.wakeup_edges()) {
    net.wakeups.push_back(WakeupEdge{node_of.at(src), node_of.at(dst)});
  }
  return net;
}

}  // namespace sysdp::analysis
