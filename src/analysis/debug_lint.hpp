// Opt-in elaboration-time linting: fail fast before cycle 0.
//
// attach_debug_lint installs an Engine elaboration check that captures the
// netlist and runs the full Linter the moment step() is first called —
// after every add()/add_wakeup(), before any state changes.  A report that
// is not clean at `fail_at` aborts the run with the rendered findings, so
// a mis-wired array dies with "missing wakeup edge host -> pe0" instead of
// silently diverging a thousand cycles later under Gating::kSparse.
#pragma once

#include "analysis/lint.hpp"
#include "analysis/netlist.hpp"

namespace sysdp::sim {
class Engine;
}  // namespace sysdp::sim

namespace sysdp::analysis {

/// Install a one-shot elaboration check on `engine` that lints the
/// captured netlist and throws std::logic_error (message = the text
/// report) if any diagnostic at or above `fail_at` is found.  `opts` is
/// forwarded to capture() — pass the design's environment taps so
/// testbench-observed ports don't count as dangling.
void attach_debug_lint(sim::Engine& engine, CaptureOptions opts = {},
                       Severity fail_at = Severity::kError);

}  // namespace sysdp::analysis
