#include "analysis/tape_verify.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "compile/live_range.hpp"
#include "obs/json_util.hpp"

namespace sysdp::analysis {

namespace {

using compile::CompiledNetlist;
using compile::Op;
using compile::OpKind;
using compile::Output;
using compile::SlotInit;
using compile::TapeSemiring;

/// Current-definition sentinels for the forward scan.
constexpr std::int64_t kInitDef = -1;  ///< defined by a SlotInit entry
constexpr std::int64_t kNoDef = -2;    ///< no definition reached yet

/// Emit helper: one check's findings at one severity.
class Emitter {
 public:
  Emitter(std::string_view check, Severity severity, TapeVerifyReport& report)
      : check_(check), severity_(severity), report_(report) {}

  void operator()(const std::string& site, const std::string& storage,
                  std::string message, Severity severity) const {
    report_.diagnostics.push_back(Diagnostic{
        std::string(check_), severity, site, storage, std::move(message)});
  }
  void operator()(const std::string& site, const std::string& storage,
                  std::string message) const {
    (*this)(site, storage, std::move(message), severity_);
  }

 private:
  std::string_view check_;
  Severity severity_;
  TapeVerifyReport& report_;
};

std::string op_site(std::uint64_t i) { return "op#" + std::to_string(i); }

std::string op_site(std::uint64_t i, std::uint64_t level) {
  return "op#" + std::to_string(i) + "@L" + std::to_string(level);
}

std::string slot_name(sim::SlotId s) { return "slot" + std::to_string(s); }

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kMac: return "mac";
    case OpKind::kFold: return "fold";
    case OpKind::kRelax: return "relax";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Abstract value domain for the value-range check: per slot, which of the
// three cost classes (finite, +inf sentinel, -inf sentinel) the replay can
// produce there, with an interval on the finite part.  "Unknown" (no class
// set) is used for slots poisoned by unrelated tape corruption so a broken
// def never cascades into spurious range findings.

struct AbsVal {
  bool may_pinf = false;
  bool may_ninf = false;
  bool has_fin = false;
  Cost lo = 0;
  Cost hi = 0;

  [[nodiscard]] bool known() const noexcept {
    return may_pinf || may_ninf || has_fin;
  }
};

AbsVal abs_const(Cost v) {
  AbsVal r;
  if (is_inf(v)) {
    r.may_pinf = true;
  } else if (is_neg_inf(v)) {
    r.may_ninf = true;
  } else {
    r.has_fin = true;
    r.lo = v;
    r.hi = v;
  }
  return r;
}

struct TimesResult {
  AbsVal val;
  /// True if two *finite* operands can sum into a sentinel band — the
  /// saturation sat_add() would silently apply to a real cost.
  bool clip = false;
};

/// Abstract semiring multiplication (saturating add).
TimesResult abs_times(const AbsVal& x, const AbsVal& y) {
  TimesResult r;
  if (!x.known() || !y.known()) return r;
  // Sentinel operands absorb (sat_add checks +inf first, so +inf wins mixed
  // cases; the union of both flags stays a sound over-approximation).
  r.val.may_pinf = x.may_pinf || y.may_pinf;
  r.val.may_ninf = x.may_ninf || y.may_ninf;
  if (x.has_fin && y.has_fin) {
    // |finite| < kInfCost == max/4, so these int64 sums cannot overflow.
    const Cost lo = x.lo + y.lo;
    const Cost hi = x.hi + y.hi;
    if (hi >= kInfCost || lo <= kNegInfCost) {
      r.clip = true;
      if (hi >= kInfCost) r.val.may_pinf = true;
      if (lo <= kNegInfCost) r.val.may_ninf = true;
    }
    const Cost flo = std::max(lo, kNegInfCost + 1);
    const Cost fhi = std::min(hi, kInfCost - 1);
    if (flo <= fhi) {
      r.val.has_fin = true;
      r.val.lo = flo;
      r.val.hi = fhi;
    }
  }
  return r;
}

/// Abstract semiring addition: the kernels' improves-select is exactly
/// MIN (MinPlus) / MAX (MaxPlus) of its two operands.
AbsVal abs_select(const AbsVal& x, const AbsVal& y, TapeSemiring sr) {
  if (!x.known() || !y.known()) return AbsVal{};
  AbsVal r;
  if (sr == TapeSemiring::kMinPlus) {
    r.may_pinf = x.may_pinf && y.may_pinf;  // min is +inf only if both can be
    r.may_ninf = x.may_ninf || y.may_ninf;
  } else {
    r.may_pinf = x.may_pinf || y.may_pinf;
    r.may_ninf = x.may_ninf && y.may_ninf;
  }
  // Finite part: interval hull of the finite parts that can be selected.
  r.has_fin = x.has_fin || y.has_fin;
  if (x.has_fin && y.has_fin) {
    r.lo = std::min(x.lo, y.lo);
    r.hi = std::max(x.hi, y.hi);
  } else if (x.has_fin) {
    r.lo = x.lo;
    r.hi = x.hi;
  } else if (y.has_fin) {
    r.lo = y.lo;
    r.hi = y.hi;
  }
  return r;
}

// ---------------------------------------------------------------------------

/// Structural validation; returns false if the tape is not safely
/// traversable (every later check indexes it freely).
bool check_structure(const CompiledNetlist& net, const Emitter& emit) {
  std::size_t findings = 0;
  const auto note = [&](const std::string& site, const std::string& storage,
                        std::string message) {
    ++findings;
    emit(site, storage, std::move(message));
  };

  if (static_cast<std::uint8_t>(net.semiring) > 1) {
    note("tape", "",
         "semiring tag " +
             std::to_string(static_cast<unsigned>(net.semiring)) +
             " names no known closed semiring");
  }

  // CSR cycle index.
  const std::uint64_t nops = net.ops.size();
  bool csr_ok = true;
  if (net.cycle_off.empty()) {
    if (nops != 0) {
      note("tape", "",
           "tape has " + std::to_string(nops) +
               " ops but no cycle index — the executor cannot schedule it");
      csr_ok = false;
    }
  } else {
    if (net.cycle_off.front() != 0) {
      note("tape", "",
           "cycle index does not start at op 0 (first offset " +
               std::to_string(net.cycle_off.front()) + ")");
      csr_ok = false;
    }
    for (std::size_t t = 0; csr_ok && t + 1 < net.cycle_off.size(); ++t) {
      if (net.cycle_off[t + 1] < net.cycle_off[t]) {
        note("tape", "",
             "cycle index is not monotone at level " + std::to_string(t) +
                 " (" + std::to_string(net.cycle_off[t]) + " -> " +
                 std::to_string(net.cycle_off[t + 1]) + ")");
        csr_ok = false;
      }
    }
    if (csr_ok && net.cycle_off.back() != nops) {
      note("tape", "",
           "cycle index covers " + std::to_string(net.cycle_off.back()) +
               " ops but the tape holds " + std::to_string(nops));
      csr_ok = false;
    }
  }

  // Slot references.
  const std::uint32_t n = net.num_slots;
  const auto check_slot = [&](std::uint64_t i, sim::SlotId s,
                              const char* role) {
    if (s < n) return;
    note(op_site(i), slot_name(s),
         std::string("operand ") + role + " names slot " + std::to_string(s) +
             " but the tape declares only " + std::to_string(n));
  };
  for (std::uint64_t i = 0; i < nops; ++i) {
    const Op& op = net.ops[i];
    if (static_cast<std::uint8_t>(op.kind) > 2) {
      note(op_site(i), "",
           "op kind tag " + std::to_string(static_cast<unsigned>(op.kind)) +
               " names no known kernel");
      // dst/a/b mean "slot" under every known kind; still bound-check them.
    }
    check_slot(i, op.dst, "dst");
    check_slot(i, op.a, "a");
    check_slot(i, op.b, "b");
    if (op.kind == OpKind::kFold) check_slot(i, op.c, "c");
    if (op.kind == OpKind::kRelax) {
      check_slot(i, op.dst + 1, "dst+1");
      check_slot(i, op.a + 1, "a+1");
    }
  }
  for (const SlotInit& si : net.init) {
    if (si.slot >= n) {
      note("init", slot_name(si.slot),
           "initial value targets slot " + std::to_string(si.slot) +
               " but the tape declares only " + std::to_string(n));
    }
  }
  for (const Output& o : net.outputs) {
    if (o.slot >= n) {
      note("output", o.tag + "[" + std::to_string(o.index) + "]",
           "declared output reads slot " + std::to_string(o.slot) +
               " but the tape declares only " + std::to_string(n));
    }
  }

  if (!net.expected.empty() && net.expected.size() != nops) {
    note("tape", "",
         "per-op oracle expectations hold " +
             std::to_string(net.expected.size()) + " values for " +
             std::to_string(nops) + " ops — checked replay would misalign");
  }

  return findings == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Report rendering.

std::size_t TapeVerifyReport::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool TapeVerifyReport::clean(Severity fail_at) const noexcept {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= fail_at) return false;
  }
  return true;
}

std::string TapeVerifyReport::to_text() const {
  std::ostringstream out;
  out << design << ": " << errors() << " error(s), " << warnings()
      << " warning(s), " << count(Severity::kNote) << " note(s)\n";
  out << "  tape: " << stats.ops << " ops / " << stats.slots << " slots / "
      << stats.levels << " levels (" << stats.nonempty_levels
      << " non-empty), depth " << stats.dependence_depth << ", "
      << (stats.compacted ? "compacted" : "ssa")
      << (stats.parameterised ? ", parameterised" : "") << ", max |finite| "
      << stats.max_abs_finite << (stats.int32_safe ? " (int32-safe)" : "")
      << "\n";
  if (stats.provenance_lanes > 0) {
    out << "  provenance: " << stats.provenance_lanes << " lanes, "
        << stats.provenance_binds << " binds, " << stats.ops_attributed
        << " of " << stats.ops << " ops attributed\n";
  }
  for (const Diagnostic& d : diagnostics) {
    out << "  [" << to_string(d.severity) << "] " << d.check << " @ "
        << d.module;
    if (!d.storage.empty()) out << " '" << d.storage << "'";
    out << ": " << d.message << "\n";
  }
  return out.str();
}

std::string TapeVerifyReport::to_json() const {
  std::ostringstream out;
  out << "{\"design\": \"" << obs::json_escape(design) << "\", \"tape\": {"
      << "\"ops\": " << stats.ops << ", \"slots\": " << stats.slots
      << ", \"levels\": " << stats.levels
      << ", \"nonempty_levels\": " << stats.nonempty_levels
      << ", \"outputs\": " << stats.outputs << ", \"compacted\": "
      << (stats.compacted ? "true" : "false") << ", \"parameterised\": "
      << (stats.parameterised ? "true" : "false")
      << ", \"in_level_chains\": " << stats.in_level_chains
      << ", \"dependence_depth\": " << stats.dependence_depth
      << ", \"transport_slack_ops\": " << stats.transport_slack_ops
      << ", \"max_transport_slack\": " << stats.max_transport_slack
      << ", \"dead_ops\": " << stats.dead_ops
      << ", \"max_abs_finite\": " << stats.max_abs_finite
      << ", \"int32_safe\": " << (stats.int32_safe ? "true" : "false")
      << ", \"provenance_lanes\": " << stats.provenance_lanes
      << ", \"provenance_binds\": " << stats.provenance_binds
      << ", \"ops_attributed\": " << stats.ops_attributed
      << "}, \"counts\": {\"errors\": " << errors()
      << ", \"warnings\": " << warnings()
      << ", \"notes\": " << count(Severity::kNote) << "}, \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out << ", ";
    out << "{\"check\": \"" << obs::json_escape(d.check)
        << "\", \"severity\": \"" << to_string(d.severity)
        << "\", \"site\": \"" << obs::json_escape(d.module)
        << "\", \"storage\": \"" << obs::json_escape(d.storage)
        << "\", \"message\": \"" << obs::json_escape(d.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Verifier.

TapeVerifier::TapeVerifier()
    : severities_{{kTapeStructure, Severity::kError},
                  {kDefBeforeUse, Severity::kError},
                  {kLevelSchedule, Severity::kError},
                  {kSingleAssignment, Severity::kError},
                  {kOutputReachability, Severity::kError},
                  {kValueRange, Severity::kError},
                  {kCompactionSafety, Severity::kError},
                  {kBindPlane, Severity::kError},
                  {kProvenance, Severity::kError}} {}

void TapeVerifier::set_severity(std::string_view check, Severity s) {
  for (CheckSeverity& cs : severities_) {
    if (cs.check == check) {
      cs.severity = s;
      return;
    }
  }
  std::string known;
  for (const CheckSeverity& cs : severities_) {
    if (!known.empty()) known += ", ";
    known += cs.check;
  }
  throw std::invalid_argument("TapeVerifier::set_severity: unknown check '" +
                              std::string(check) + "' (known checks: " +
                              known + ")");
}

Severity TapeVerifier::severity_of(std::string_view check) const {
  for (const CheckSeverity& cs : severities_) {
    if (cs.check == check) return cs.severity;
  }
  return Severity::kError;
}

TapeVerifyReport TapeVerifier::run(const CompiledNetlist& net,
                                   std::string design_name,
                                   const TapeVerifyOptions& opt) const {
  TapeVerifyReport report;
  report.design = std::move(design_name);
  const auto emitter = [&](std::string_view check) {
    return Emitter(check, severity_of(check), report);
  };

  TapeVerifyStats& st = report.stats;
  st.ops = net.num_ops();
  st.slots = net.num_slots;
  st.levels = net.cycles();
  st.outputs = net.outputs.size();
  st.compacted = net.compacted();
  st.parameterised = net.parameterised;

  // Gate: nothing below may index a tape whose structure is corrupt.
  if (!check_structure(net, emitter(kTapeStructure))) return report;

  // --- bind-plane: parameter-plane shape and oracle-binding agreement.
  {
    const Emitter emit = emitter(kBindPlane);
    if (!net.parameterised) {
      if (!net.params.empty()) {
        emit("tape", "",
             "tape is not parameterised but carries a parameter plane of " +
                 std::to_string(net.params.size()) +
                 " entries — executors would disagree on which weights rule");
      }
      if (!opt.bound_weights.empty()) {
        emit("tape", "",
             "a rebinding table of " +
                 std::to_string(opt.bound_weights.size()) +
                 " weights was offered for verification, but the tape is "
                 "not parameterised — nothing can bind it");
      }
    } else {
      for (std::uint64_t i = 0; i < net.ops.size(); ++i) {
        const Op& op = net.ops[i];
        if (op.param >= net.params.size()) {
          emit(op_site(i), "",
               "parameter index " + std::to_string(op.param) +
                   " is outside the plane of " +
                   std::to_string(net.params.size()) + " entries");
        } else if (net.params[op.param] != op.w) {
          emit(op_site(i), "",
               "baked immediate " + cost_to_string(op.w) +
                   " diverges from the oracle binding params[" +
                   std::to_string(op.param) + "] = " +
                   cost_to_string(net.params[op.param]) +
                   " — the oracle-bound fast path and bound replay would "
                   "compute different tapes");
        }
      }
      if (!opt.bound_weights.empty() &&
          opt.bound_weights.size() != net.params.size()) {
        emit("tape", "",
             "rebinding table holds " +
                 std::to_string(opt.bound_weights.size()) +
                 " weights for a plane of " +
                 std::to_string(net.params.size()) + " parameters");
      }
    }
  }

  const bool rebound = net.parameterised &&
                       opt.bound_weights.size() == net.params.size() &&
                       !opt.bound_weights.empty();

  const std::uint32_t n = net.num_slots;
  const std::uint64_t nops = net.ops.size();
  const std::uint64_t cycles = st.levels;

  const Emitter emit_dbu = emitter(kDefBeforeUse);
  const Emitter emit_sched = emitter(kLevelSchedule);
  const Emitter emit_ssa = emitter(kSingleAssignment);
  const Emitter emit_comp = emitter(kCompactionSafety);
  const Emitter emit_val = emitter(kValueRange);
  const Emitter emit_reach = emitter(kOutputReachability);

  // Which slots are written *anywhere* — separates dangling references
  // (def-before-use) from defined-too-late ones (level-schedule).
  std::vector<std::uint8_t> has_def(n, 0);
  for (const SlotInit& si : net.init) has_def[si.slot] = 1;
  for (const Op& op : net.ops) {
    has_def[op.dst] = 1;
    if (op.kind == OpKind::kRelax) has_def[op.dst + 1] = 1;
  }

  // Forward-scan state: the definition currently visible in each slot.
  std::vector<std::int64_t> def_op(n, kNoDef);
  std::vector<std::int64_t> def_level(n, kNoDef);
  std::vector<std::uint32_t> depth(nops, 0);  // longest def-use chain, in ops
  // Instance-resolved read edges (up to three per op) for dead-op
  // reachability — exact even on compacted tapes, where a slot name alone
  // is ambiguous.
  std::vector<std::array<std::int64_t, 3>> rdef(
      nops, {kNoDef, kNoDef, kNoDef});
  std::vector<std::uint32_t> writes(n, 0);
  std::vector<AbsVal> aval(n);

  // Compaction-safety state: group structure from the very analysis that
  // drives compact_slots(), plus this pass's own last-touch aggregation to
  // cross-check against it.
  compile::TapeLiveness lv;
  std::vector<std::uint32_t> glast;
  std::vector<std::uint8_t> gdef;
  if (st.compacted) {
    lv = compile::compute_liveness(net);
    glast.assign(n, 0);
    gdef.assign(n, 0);
  }

  for (const SlotInit& si : net.init) {
    ++writes[si.slot];
    if (writes[si.slot] > 1) {
      emit_ssa("init", slot_name(si.slot),
               "slot is initialised more than once — the surviving value "
               "depends on init order");
    }
    def_op[si.slot] = kInitDef;
    def_level[si.slot] = -1;
    aval[si.slot] = abs_const(si.value);
    if (si.value > st.max_abs_finite && !is_inf(si.value)) {
      st.max_abs_finite = si.value;
    }
    if (-si.value > st.max_abs_finite && !is_neg_inf(si.value)) {
      st.max_abs_finite = -si.value;
    }
    if (st.compacted) gdef[lv.base[si.slot]] = 1;
  }

  const auto note_fin = [&](const AbsVal& v) {
    if (!v.has_fin) return;
    st.max_abs_finite = std::max(st.max_abs_finite, v.hi);
    st.max_abs_finite = std::max(st.max_abs_finite, v.lo < 0 ? -v.lo : v.lo);
  };

  bool clip_found = false;

  for (std::uint64_t t = 0; t < cycles; ++t) {
    const std::uint32_t lo = net.cycle_off[t];
    const std::uint32_t hi = net.cycle_off[t + 1];
    if (lo < hi) ++st.nonempty_levels;
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Op& op = net.ops[i];
      const std::string site = op_site(i, t);

      // -- reads: resolve each operand against the schedule so far.
      std::uint64_t min_level = 0;  // dependence-minimal level for this op
      std::uint32_t d = 0;          // deepest operand chain
      const auto read = [&](sim::SlotId s, std::size_t rix,
                            const char* role) {
        if (st.compacted) {
          // Mirror compute_liveness() exactly: reads touch the group even
          // when they fail to resolve.
          const std::uint32_t g = lv.base[s];
          glast[g] = std::max(glast[g], static_cast<std::uint32_t>(t));
        }
        if (!has_def[s]) {
          emit_dbu(site, slot_name(s),
                   std::string("operand ") + role + " reads a slot nothing "
                       "ever writes — dangling reference");
          return;
        }
        if (def_op[s] == kNoDef) {
          emit_sched(site, slot_name(s),
                     std::string("operand ") + role + " is read before its "
                         "first definition in the schedule — replay would "
                         "see an uninitialised slot");
          return;
        }
        rdef[i][rix] = def_op[s];
        if (def_op[s] >= 0) {
          d = std::max(d, depth[static_cast<std::size_t>(def_op[s])]);
        }
        if (def_level[s] == static_cast<std::int64_t>(t)) {
          // Same-level chain: legal only because the oracle executed the
          // defining op earlier in this very level (forward scan guarantees
          // program order); the batch executor additionally needs both ends
          // to be the same kind, or its kind-major partition reorders them.
          ++st.in_level_chains;
          min_level = std::max(min_level, t);
          const Op& dop = net.ops[static_cast<std::size_t>(def_op[s])];
          if (dop.kind != op.kind) {
            emit_sched(site, slot_name(s),
                       std::string("same-level read of a value produced by "
                                   "a different-kind op (") +
                           kind_name(dop.kind) + " feeding " +
                           kind_name(op.kind) +
                           ") — the batched executor's kind-major partition "
                           "reorders across kinds and must fall back to "
                           "serial order for this level",
                       Severity::kWarning);
          }
        } else {
          min_level =
              std::max(min_level, static_cast<std::uint64_t>(def_level[s] + 1));
        }
      };

      switch (op.kind) {
        case OpKind::kMac:
          read(op.a, 0, "a");
          read(op.b, 1, "b");
          break;
        case OpKind::kFold:
          read(op.a, 0, "a");
          read(op.b, 1, "b");
          read(op.c, 2, "c");
          break;
        case OpKind::kRelax:
          read(op.a, 0, "a");
          read(op.a + 1, 1, "a+1");
          read(op.b, 2, "b");
          if (def_op[op.a] != kNoDef && def_op[op.a + 1] != kNoDef &&
              def_op[op.a] != def_op[op.a + 1]) {
            emit_dbu(site, slot_name(op.a),
                     "pair operand halves " + slot_name(op.a) + "/" +
                         slot_name(op.a + 1) +
                         " come from different definitions — not a coherent "
                         "(value, station) pair");
          }
          break;
      }

      // -- dependence depth and transport slack.
      depth[i] = d + 1;
      st.dependence_depth = std::max<std::uint64_t>(st.dependence_depth,
                                                    depth[i]);
      if (t > min_level) {
        const std::uint64_t slack = t - min_level;
        ++st.transport_slack_ops;
        st.max_transport_slack = std::max(st.max_transport_slack, slack);
        if (opt.max_transport_slack >= 0 &&
            slack > static_cast<std::uint64_t>(opt.max_transport_slack)) {
          emit_sched(site, slot_name(op.dst),
                     "scheduled " + std::to_string(slack) +
                         " level(s) after its dependence-minimal level " +
                         std::to_string(min_level) +
                         " — exceeds the configured transport-slack bound "
                         "of " + std::to_string(opt.max_transport_slack));
        }
      }

      // -- value-range: abstract-evaluate the kernel.
      const Cost wc = rebound ? opt.bound_weights[op.param] : op.w;
      const AbsVal w = abs_const(wc);
      AbsVal out_dst;
      AbsVal out_pair;
      bool clip = false;
      switch (op.kind) {
        case OpKind::kMac: {
          const TimesResult wb = abs_times(w, aval[op.b]);
          clip = wb.clip;
          note_fin(wb.val);
          out_dst = abs_select(aval[op.a], wb.val, net.semiring);
          break;
        }
        case OpKind::kFold: {
          const TimesResult bc = abs_times(aval[op.b], aval[op.c]);
          const TimesResult cand = abs_times(bc.val, w);
          clip = bc.clip || cand.clip;
          note_fin(bc.val);
          note_fin(cand.val);
          out_dst = abs_select(aval[op.a], cand.val, net.semiring);
          break;
        }
        case OpKind::kRelax: {
          const TimesResult cand = abs_times(aval[op.b], w);
          clip = cand.clip;
          note_fin(cand.val);
          out_dst = abs_select(aval[op.a], cand.val, net.semiring);
          // dst+1 takes either the station immediate or the old index half.
          out_pair = abs_select(abs_const(static_cast<Cost>(op.c)),
                                aval[op.a + 1], net.semiring);
          break;
        }
      }
      note_fin(out_dst);
      note_fin(out_pair);
      if (clip) {
        clip_found = true;
        emit_val(site, slot_name(op.dst),
                 "two finite operands can sum into the infinity sentinel "
                 "band — sat_add() would silently clamp a real cost "
                 "(weight " + cost_to_string(wc) + ")");
      }

      // -- writes.
      if (st.compacted) {
        // The op's write is one definition event: check the written group
        // against the state *before* this op's writes, then commit.
        const std::uint32_t g = lv.base[op.dst];
        if (gdef[g] != 0 && glast[g] >= t) {
          emit_comp(site, slot_name(op.dst),
                    "redefines a slot whose previous value is still live "
                    "(last touched at level " + std::to_string(glast[g]) +
                        ", redefined at level " + std::to_string(t) +
                        ") — overlapping live ranges share a slot, "
                        "compaction is unsound");
        }
        gdef[g] = 1;
        glast[g] = std::max(glast[g], static_cast<std::uint32_t>(t));
      }
      const auto write = [&](sim::SlotId s, const AbsVal& v) {
        ++writes[s];
        if (!st.compacted && writes[s] > 1) {
          emit_ssa(site, slot_name(s),
                   "slot is written more than once on an uncompacted tape — "
                   "single assignment violated (" +
                       std::to_string(writes[s]) + " writes so far)");
        }
        def_op[s] = static_cast<std::int64_t>(i);
        def_level[s] = static_cast<std::int64_t>(t);
        aval[s] = v;
      };
      write(op.dst, out_dst);
      if (op.kind == OpKind::kRelax) write(op.dst + 1, out_pair);
    }
  }

  // --- compaction-safety cross-check: this pass's last-touch aggregation
  // must agree with compile/live_range.hpp, the analysis the allocator
  // actually ran.  Pinned (output) groups are excluded — the liveness side
  // deliberately collapses them to a sentinel.
  if (st.compacted) {
    for (std::uint32_t g = 0; g < n; ++g) {
      if (lv.base[g] != g || lv.last[g] == compile::TapeLiveness::kPinned) {
        continue;
      }
      if (glast[g] != lv.last[g]) {
        emit_comp("tape", slot_name(g),
                  "verifier liveness disagrees with compile/live_range.hpp "
                  "for this slot group (verifier last touch " +
                      std::to_string(glast[g]) + ", compaction's " +
                      std::to_string(lv.last[g]) +
                      ") — the allocator and its proof have drifted apart");
      }
    }
  }

  // --- output-reachability: every output written, every op feeding one.
  {
    std::vector<std::uint8_t> live(nops, 0);
    std::vector<std::uint64_t> work;
    for (const Output& o : net.outputs) {
      const std::string label = o.tag + "[" + std::to_string(o.index) + "]";
      if (!has_def[o.slot]) {
        emit_reach("output", label,
                   "declared output reads " + slot_name(o.slot) +
                       ", which nothing ever writes — verify_outputs() "
                       "would compare garbage");
        continue;
      }
      const std::int64_t d = def_op[o.slot];  // final definition
      if (d >= 0 && live[static_cast<std::size_t>(d)] == 0) {
        live[static_cast<std::size_t>(d)] = 1;
        work.push_back(static_cast<std::uint64_t>(d));
      }
    }
    while (!work.empty()) {
      const std::uint64_t i = work.back();
      work.pop_back();
      for (const std::int64_t d : rdef[i]) {
        if (d >= 0 && live[static_cast<std::size_t>(d)] == 0) {
          live[static_cast<std::size_t>(d)] = 1;
          work.push_back(static_cast<std::uint64_t>(d));
        }
      }
    }
    for (std::uint64_t i = 0; i < nops; ++i) {
      if (live[i] != 0) continue;
      ++st.dead_ops;
      emit_reach(op_site(i, net.level_of_op(i)), slot_name(net.ops[i].dst),
                 "no declared output can observe this op's value through "
                 "any def-use chain — dead work on the tape",
                 Severity::kWarning);
    }
  }

  // --- provenance: the slot→port table, when present, must agree with
  // the tape it annotates.  Runs after the forward scan so def_level is
  // available for the sampling-order proof.
  {
    const Emitter emit = emitter(kProvenance);
    const compile::Provenance& prov = net.provenance;
    st.provenance_lanes = prov.lanes.size();
    st.provenance_binds = prov.binds.size();
    const std::uint32_t nlanes = static_cast<std::uint32_t>(prov.lanes.size());

    if (!prov.op_lane.empty() && prov.op_lane.size() != nops) {
      emit("tape", "",
           "op→lane attribution holds " +
               std::to_string(prov.op_lane.size()) + " entries for a tape of " +
               std::to_string(nops) +
               " ops — neither absent nor parallel to the tape");
    } else {
      for (std::uint64_t i = 0; i < prov.op_lane.size(); ++i) {
        const std::uint32_t lane = prov.op_lane[i];
        if (lane == compile::Provenance::kNone) continue;
        ++st.ops_attributed;
        if (lane >= nlanes) {
          emit(op_site(i), "",
               "attributed to lane " + std::to_string(lane) +
                   ", outside the table of " + std::to_string(nlanes) +
                   " lanes");
        }
      }
    }

    for (std::uint32_t l = 0; l < nlanes; ++l) {
      const compile::ProvenanceLane& lane = prov.lanes[l];
      const bool module_ok = lane.module_id < prov.modules.size();
      if (lane.module_id != compile::Provenance::kNone && !module_ok) {
        emit("lane#" + std::to_string(l), lane.label,
             "module id " + std::to_string(lane.module_id) +
                 " is outside the table of " +
                 std::to_string(prov.modules.size()) + " modules");
      } else if (lane.named && !module_ok) {
        emit("lane#" + std::to_string(l), lane.label,
             "named lane carries no module — the waveform layer could not "
             "scope its signal");
      }
    }

    std::uint32_t prev_stamp = 0;
    for (std::size_t b = 0; b < prov.binds.size(); ++b) {
      const compile::ProvenanceBind& bind = prov.binds[b];
      const std::string site = "bind#" + std::to_string(b);
      if (bind.stamp < prev_stamp) {
        emit(site, "",
             "stamp " + std::to_string(bind.stamp) +
                 " follows stamp " + std::to_string(prev_stamp) +
                 " — bind events are not sorted, the replay waveform "
                 "writer would emit time running backwards");
      }
      prev_stamp = std::max(prev_stamp, bind.stamp);
      if (bind.stamp > cycles) {
        emit(site, "",
             "stamp " + std::to_string(bind.stamp) +
                 " lies past the tape's " + std::to_string(cycles) +
                 " replayed cycles — no level ever samples it");
      }
      if (bind.lane >= nlanes) {
        emit(site, "",
             "binds lane " + std::to_string(bind.lane) +
                 ", outside the table of " + std::to_string(nlanes) +
                 " lanes");
        continue;
      }
      if (bind.slot >= n) {
        emit(site, prov.lanes[bind.lane].label,
             "binds " + slot_name(bind.slot) + ", outside the file of " +
                 std::to_string(n) + " slots");
        continue;
      }
      if (!st.compacted) {
        // SSA: the slot has exactly one definition, so "sampled at the end
        // of level stamp-1" is provable per bind.  (Compacted tapes reuse
        // slot names; the lifetime extension that keeps these samples
        // valid is compaction-safety's cross-checked territory.)
        if (def_op[bind.slot] == kNoDef) {
          emit(site, prov.lanes[bind.lane].label,
               "binds " + slot_name(bind.slot) +
                   ", which nothing ever writes — the waveform would "
                   "sample garbage");
        } else if (def_level[bind.slot] >= static_cast<std::int64_t>(
                                               bind.stamp)) {
          emit(site, prov.lanes[bind.lane].label,
               "stamp " + std::to_string(bind.stamp) + " samples " +
                   slot_name(bind.slot) + " defined at level " +
                   std::to_string(def_level[bind.slot]) +
                   " — the register would show a value before the tape "
                   "computes it");
        }
      }
    }
  }

  // --- value-range and schedule summaries.
  st.int32_safe = !clip_found && st.max_abs_finite <= opt.value_bound;
  if (!clip_found && st.max_abs_finite > opt.value_bound) {
    emit_val("tape", "",
             "reachable finite values span up to " +
                 std::to_string(st.max_abs_finite) +
                 " — exceeds the configured bound of " +
                 std::to_string(opt.value_bound) +
                 "; narrow-lane kernels would need widening",
             Severity::kWarning);
  }
  if (st.transport_slack_ops > 0) {
    emit_sched("tape", "",
               std::to_string(st.transport_slack_ops) + " of " +
                   std::to_string(nops) +
                   " ops are scheduled past their dependence-minimal level "
                   "(max slack " + std::to_string(st.max_transport_slack) +
                   ") — the physical array's transport latency, erased by "
                   "copy elision; replay stays race-free",
               Severity::kNote);
  }

  return report;
}

TapeVerifyReport verify_tape(const CompiledNetlist& net,
                             std::string design_name,
                             const TapeVerifyOptions& opt) {
  return TapeVerifier().run(net, std::move(design_name), opt);
}

void verify_tape_or_throw(const CompiledNetlist& net, std::string design_name,
                          const TapeVerifyOptions& opt) {
  TapeVerifyReport report =
      verify_tape(net, std::move(design_name), opt);
  if (!report.clean(Severity::kError)) {
    throw std::logic_error("tape verification failed:\n" + report.to_text());
  }
}

}  // namespace sysdp::analysis
