#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sysdp::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// Comma-joined node names for multi-module diagnostics.
std::string name_list(const Netlist& net, const std::vector<NodeId>& ids) {
  std::string out;
  for (const NodeId id : ids) {
    if (!out.empty()) out += ", ";
    out += net.node(id).name;
  }
  return out;
}

/// Emit helper: one check's findings at one severity.
class Emitter {
 public:
  Emitter(std::string_view check, Severity severity, LintReport& report)
      : check_(check), severity_(severity), report_(report) {}

  void operator()(const std::string& module, const std::string& storage,
                  std::string message, Severity severity) const {
    report_.diagnostics.push_back(Diagnostic{
        std::string(check_), severity, module, storage, std::move(message)});
  }
  void operator()(const std::string& module, const std::string& storage,
                  std::string message) const {
    (*this)(module, storage, std::move(message), severity_);
  }

 private:
  std::string_view check_;
  Severity severity_;
  LintReport& report_;
};

void check_multiple_drivers(const Netlist& net, const Emitter& emit) {
  for (const Storage& st : net.storages) {
    if (st.kind_conflict) {
      emit(name_list(net, st.writers.empty() ? st.readers : st.writers),
           st.label,
           "storage '" + st.label +
               "' is declared both as a register and as a combinational "
               "signal — pick one timing domain");
    }
    if (st.writers.size() < 2) continue;
    const char* what = st.kind == sim::PortKind::kRegister
                           ? "register written by"
                           : "bus/signal driven by";
    emit(name_list(net, st.writers), st.label,
         std::string(what) + " " + std::to_string(st.writers.size()) +
             " modules (" + name_list(net, st.writers) +
             ") — the surviving value depends on evaluation order");
  }
}

void check_comb_hazard(const Netlist& net, const Emitter& emit) {
  // A signal driver that is not a declared combinational module: the
  // parallel engine would fan it out with the listeners, a same-phase
  // read-after-write race.
  for (const Storage& st : net.storages) {
    if (st.kind != sim::PortKind::kSignal) continue;
    for (const NodeId w : st.writers) {
      const NetNode& n = net.node(w);
      if (n.module != nullptr && !n.combinational) {
        emit(n.name, st.label,
             "signal '" + st.label + "' is driven by " + n.name +
                 ", which does not report combinational() — the parallel "
                 "engine races it against same-cycle listeners");
      }
    }
  }
  // A listener registered before its driver reads the previous cycle's
  // value: the engine's serial order is the figure's broadcast order.
  for (const DataflowEdge& e : net.edges) {
    if (e.kind != sim::PortKind::kSignal) continue;
    const NetNode& src = net.node(e.src);
    const NetNode& dst = net.node(e.dst);
    if (!src.in_engine || !dst.in_engine) continue;
    if (src.engine_order > dst.engine_order) {
      emit(dst.name, net.storages[e.storage].label,
           "same-phase read-after-write hazard: " + dst.name +
               " (eval order " + std::to_string(dst.engine_order) +
               ") samples signal '" + net.storages[e.storage].label +
               "' before its driver " + src.name + " (order " +
               std::to_string(src.engine_order) + ") has spoken");
    }
  }
  // Combinational cycles: a loop of same-cycle dependencies has no valid
  // evaluation order at all.
  const std::size_t n = net.nodes.size();
  std::vector<std::vector<NodeId>> adj(n);
  for (const DataflowEdge& e : net.edges) {
    if (e.kind == sim::PortKind::kSignal) adj[e.src].push_back(e.dst);
  }
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<NodeId> stack;
  const auto dfs = [&](NodeId root, const auto& self) -> bool {
    color[root] = 1;
    stack.push_back(root);
    for (const NodeId next : adj[root]) {
      if (color[next] == 1) {
        std::vector<NodeId> cycle(
            std::find(stack.begin(), stack.end(), next), stack.end());
        emit(net.node(next).name, "",
             "combinational cycle: " + name_list(net, cycle) + " -> " +
                 net.node(next).name +
                 " — same-cycle dependencies form a loop");
        return true;
      }
      if (color[next] == 0 && self(next, self)) return true;
    }
    stack.pop_back();
    color[root] = 2;
    return false;
  };
  for (NodeId i = 0; i < n; ++i) {
    if (color[i] == 0 && dfs(i, dfs)) break;  // one cycle report suffices
  }
}

void check_dangling_port(const Netlist& net, const Emitter& emit) {
  for (const Storage& st : net.storages) {
    if (st.writers.empty() && !st.readers.empty()) {
      emit(name_list(net, st.readers), st.label,
           "port '" + st.label + "' is read by " +
               name_list(net, st.readers) +
               " but never driven — only its initial value is observable");
    }
    if (st.readers.empty() && !st.writers.empty()) {
      emit(name_list(net, st.writers), st.label,
           "port '" + st.label + "' is written by " +
               name_list(net, st.writers) +
               " but nothing (module or environment tap) reads it",
           Severity::kNote);
    }
  }
}

void check_orphan_module(const Netlist& net, const Emitter& emit) {
  for (const NetNode& node : net.nodes) {
    if (node.module != nullptr && !node.in_engine) {
      emit(node.name, "",
           "module " + node.name +
               " was described but never registered with the Engine — it "
               "would not be simulated at all");
    }
  }
}

void check_wakeup_coverage(const Netlist& net, const Emitter& emit) {
  for (const DataflowEdge& e : net.edges) {
    const NetNode& src = net.node(e.src);
    const NetNode& dst = net.node(e.dst);
    if (src.module == nullptr || dst.module == nullptr) continue;
    if (!src.in_engine || !dst.in_engine) continue;
    if (dst.sleep != sim::SleepMode::kWakeable) continue;
    if (net.has_wakeup(e.src, e.dst)) continue;
    const Storage& st = net.storages[e.storage];
    // Retimed coverage: a combinational signal that re-presents a
    // registered value may be covered by an edge from the register's
    // writer — the writer was provably active the cycle the value was
    // staged, so its edge wakes the consumer in time.
    if (e.kind == sim::PortKind::kSignal) {
      bool covered = false;
      for (const sim::SignalDerivation& d : net.derivations) {
        if (d.signal != st.key) continue;
        const std::uint32_t reg = net.storage_of(d.reg);
        if (reg == Netlist::npos) continue;
        for (const NodeId w : net.storages[reg].writers) {
          if (net.has_wakeup(w, e.dst)) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      if (covered) continue;
    }
    emit(dst.name, st.label,
         "dataflow edge " + src.name + " -> " + dst.name + " via '" +
             st.label + "' has no covering wakeup edge: " + dst.name +
             " is wakeable, so Gating::kSparse can leave it asleep while "
             "this input reactivates — declare Engine::add_wakeup(" +
             src.name + ", " + dst.name + ")");
  }
}

void check_probe_coverage(const Netlist& net, const Emitter& emit) {
  for (const Storage& st : net.storages) {
    if (st.sampled || st.writers.empty()) continue;
    // Only engine modules matter: environment taps are testbench harvest
    // conveniences, not simulated hardware the waveform layer could show.
    bool module_written = false;
    for (const NodeId w : st.writers) {
      if (net.node(w).module != nullptr) {
        module_written = true;
        break;
      }
    }
    if (!module_written) continue;
    emit(name_list(net, st.writers), st.label,
         "storage '" + st.label +
             "' is written but no writing port attaches a telemetry "
             "sampler — VCD waveforms of this design omit it");
  }
}

}  // namespace

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

std::size_t LintReport::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool LintReport::clean(Severity fail_at) const noexcept {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= fail_at) return false;
  }
  return true;
}

std::string LintReport::to_text() const {
  std::ostringstream out;
  out << design << ": " << errors() << " error(s), " << warnings()
      << " warning(s), " << count(Severity::kNote) << " note(s)\n";
  for (const Diagnostic& d : diagnostics) {
    out << "  [" << to_string(d.severity) << "] " << d.check << " @ "
        << d.module;
    if (!d.storage.empty()) out << " '" << d.storage << "'";
    out << ": " << d.message << "\n";
  }
  return out.str();
}

std::string LintReport::to_json() const {
  std::ostringstream out;
  out << "{\"design\": \"" << json_escape(design) << "\", \"counts\": {"
      << "\"errors\": " << errors() << ", \"warnings\": " << warnings()
      << ", \"notes\": " << count(Severity::kNote)
      << "}, \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out << ", ";
    out << "{\"check\": \"" << json_escape(d.check) << "\", \"severity\": \""
        << to_string(d.severity) << "\", \"module\": \""
        << json_escape(d.module) << "\", \"storage\": \""
        << json_escape(d.storage) << "\", \"message\": \""
        << json_escape(d.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

Linter::Linter()
    : severities_{{kMultipleDrivers, Severity::kError},
                  {kCombHazard, Severity::kError},
                  {kDanglingPort, Severity::kWarning},
                  {kOrphanModule, Severity::kError},
                  {kWakeupCoverage, Severity::kError},
                  {kProbeCoverage, Severity::kNote}} {}

void Linter::set_severity(std::string_view check, Severity s) {
  for (CheckSeverity& cs : severities_) {
    if (cs.check == check) {
      cs.severity = s;
      return;
    }
  }
  std::string known;
  for (const CheckSeverity& cs : severities_) {
    if (!known.empty()) known += ", ";
    known += cs.check;
  }
  throw std::invalid_argument("Linter::set_severity: unknown check '" +
                              std::string(check) + "' (known checks: " +
                              known + ")");
}

Severity Linter::severity_of(std::string_view check) const {
  for (const CheckSeverity& cs : severities_) {
    if (cs.check == check) return cs.severity;
  }
  return Severity::kError;
}

LintReport Linter::run(const Netlist& net, std::string design_name) const {
  LintReport report;
  report.design = std::move(design_name);
  const auto emitter = [&](std::string_view check) {
    return Emitter(check, severity_of(check), report);
  };
  check_multiple_drivers(net, emitter(kMultipleDrivers));
  check_comb_hazard(net, emitter(kCombHazard));
  check_dangling_port(net, emitter(kDanglingPort));
  check_orphan_module(net, emitter(kOrphanModule));
  check_wakeup_coverage(net, emitter(kWakeupCoverage));
  check_probe_coverage(net, emitter(kProbeCoverage));
  return report;
}

}  // namespace sysdp::analysis
