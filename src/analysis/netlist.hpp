// Dataflow-graph reconstruction from a fully elaborated Engine.
//
// capture() walks every registered module's declared ports (sim/port.hpp)
// and rebuilds the netlist the C++ object graph only implies: nodes are
// modules (plus one synthetic "environment" node for testbench taps),
// storages are the distinct register/signal keys the modules named, and
// dataflow edges connect each storage's writers to its readers.  The
// engine's declared wakeup edges ride along so the linter can compare the
// two graphs — the systolic correctness arguments (Kung-style "data moves
// only through registers", the PR 2 quiescence contract) are statements
// about exactly this structure.
//
// The capture is purely structural: no module is evaluated, no state
// mutated, so it is safe to run between elaboration and cycle 0 (the
// engine's elaboration-check hook does precisely that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/port.hpp"

namespace sysdp::sim {
class Engine;
}  // namespace sysdp::sim

namespace sysdp::analysis {

/// Index into Netlist::nodes.
using NodeId = std::uint32_t;

/// One vertex of the dataflow graph: a module, or the environment.
struct NetNode {
  const sim::Module* module = nullptr;  ///< null for the environment node
  std::string name;
  bool combinational = false;
  sim::SleepMode sleep = sim::SleepMode::kNever;
  bool in_engine = false;
  std::uint32_t engine_order = 0;  ///< registration index; valid if in_engine
};

/// One distinct storage key with its declared accessors (deduplicated, in
/// node order).  `kind_conflict` records a key declared both kRegister and
/// kSignal — a modelling bug the linter reports.
struct Storage {
  const void* key = nullptr;
  sim::PortKind kind = sim::PortKind::kRegister;
  bool kind_conflict = false;
  /// True if any writing port attached a telemetry sampler (sim/port.hpp):
  /// the waveform layer can observe this storage.  The probe-coverage lint
  /// notes written storages no sampler covers.
  bool sampled = false;
  std::string label;
  std::vector<NodeId> writers;
  std::vector<NodeId> readers;
};

/// Writer-to-reader dataflow through one storage.  Self-loops (a module
/// reading its own register) are structural no-ops and are not emitted.
struct DataflowEdge {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t storage = 0;  ///< index into Netlist::storages
  sim::PortKind kind = sim::PortKind::kRegister;
};

/// A declared Engine::add_wakeup edge.
struct WakeupEdge {
  NodeId src = 0;
  NodeId dst = 0;
};

struct Netlist {
  std::vector<NetNode> nodes;  ///< engine modules first (in registration
                               ///< order), then extras, environment last
  NodeId environment = 0;
  std::vector<Storage> storages;
  std::vector<DataflowEdge> edges;
  std::vector<WakeupEdge> wakeups;
  /// Declared signal-from-register derivations (keys are global).
  std::vector<sim::SignalDerivation> derivations;

  [[nodiscard]] const NetNode& node(NodeId id) const { return nodes[id]; }
  [[nodiscard]] bool has_wakeup(NodeId src, NodeId dst) const;
  /// Storage index for a key, or npos if never declared.
  [[nodiscard]] std::uint32_t storage_of(const void* key) const;

  static constexpr std::uint32_t npos = static_cast<std::uint32_t>(-1);
};

struct CaptureOptions {
  /// Modules the design constructed that may or may not be registered with
  /// the engine; unregistered ones become orphan-module findings.
  std::vector<const sim::Module*> extra_modules;
  /// Testbench-side taps: storage the run loop itself reads (result
  /// harvests, boundary sinks) or writes.  Reads here silence unread-port
  /// findings for genuinely observed outputs.
  sim::PortSet environment;
};

/// Rebuild the dataflow graph of a fully elaborated engine.
[[nodiscard]] Netlist capture(const sim::Engine& engine,
                              const CaptureOptions& opts = {});

}  // namespace sysdp::analysis
