// Static verifier over compiled flat-netlist tapes.
//
// The compiled backend's correctness evidence so far is dynamic: checked
// replay against recorded oracle values, differential sweeps, sanitizer
// jobs.  TapeVerifier adds the static half — machine-checked structural
// proofs over a compile::CompiledNetlist that hold before a single cycle
// is replayed, the same treatment the netlist linter (analysis/lint.hpp)
// gives elaborated designs.  Nine checks:
//
//   tape-structure      — the tape is safely traversable at all: CSR cycle
//                         index well-formed (monotone offsets, first 0,
//                         last == op count), every slot reference in
//                         range (incl. kRelax pair halves), op kinds
//                         valid, expected-value array parallel to the
//                         tape.  Failing this skips the deeper checks —
//                         nothing below may index a corrupt tape.
//   def-before-use      — every operand read resolves to *some*
//                         definition (SlotInit or an op); a slot read but
//                         never written anywhere is dangling.  kRelax
//                         pair operands must have both halves defined by
//                         the same definition.
//   level-schedule      — the race-freedom proof for the batched SIMD
//                         replay: every operand's definition lies in a
//                         strictly earlier dependency level, or earlier
//                         in the same level within a same-kind in-place
//                         chain (which the batch executor's stable
//                         kind-major partition preserves).  Reading a def
//                         from a later level/op is a schedule violation
//                         (error); a cross-kind in-level chain demotes
//                         the level to the batch executor's original-
//                         order fallback (warning).  Also accounts
//                         dependence depth vs. levels: ops scheduled
//                         later than their dependence-minimal level carry
//                         *transport slack* — the physical array's data
//                         movement, erased by copy elision — reported as
//                         stats (and bounded on demand via
//                         TapeVerifyOptions::max_transport_slack).
//   single-assignment   — SSA on uncompacted tapes: no slot is written
//                         twice (kRelax's dst/dst+1 double write is one
//                         definition of a pair group, not a violation).
//                         Compacted tapes reuse slots by design; their
//                         write discipline is compaction-safety's job.
//   output-reachability — every declared Output slot has a definition
//                         (error), and every op transitively feeds some
//                         declared output through resolved def-use edges
//                         (a dead op is a warning: the tape carries work
//                         the outputs never observe).
//   value-range         — abstract interpretation over (MIN,+)/(MAX,+):
//                         per-slot intervals (finite range + may-be-inf
//                         flags) propagated from SlotInit and immediate
//                         weights through every kernel.  Certifies that
//                         no finite-by-finite addition can saturate into
//                         the infinity sentinels (error if it can — the
//                         kernels would silently clamp a real cost) and
//                         that every reachable finite value fits the
//                         configured bound (default: int32), so
//                         narrow-lane SIMD kernels are provably lossless
//                         for this tape.
//   compaction-safety   — after live-range compaction no two overlapping
//                         live ranges share a slot: every redefinition of
//                         a slot happens in a strictly later level than
//                         the previous definition's last touch.  The
//                         verifier's own per-definition scan is
//                         cross-checked group by group against
//                         compile/live_range.hpp — the very analysis that
//                         drives compact_slots() — so the pass and its
//                         proof cannot drift apart silently.
//   bind-plane          — parameter-plane consistency on parameterised
//                         tapes: every op's parameter index in range, the
//                         baked immediates equal to the oracle binding
//                         (the batched engine's oracle-bound fast path
//                         reads the immediates and must see the same
//                         weights), and any rebinding table offered for
//                         verification shaped to the plane.  A
//                         non-parameterised tape must carry no plane.
//   provenance          — slot→port provenance consistency: the op→lane
//                         attribution parallel to the tape (or absent),
//                         every lane/slot/module index in range, bind
//                         events sorted by stamp with stamps inside the
//                         replayed cycle range, and — on uncompacted
//                         tapes, where a slot has one definition — every
//                         bind sampling its slot no earlier than the
//                         level that defines it.  An empty table passes
//                         trivially: provenance is optional, but never
//                         silently wrong.
//
// Severities are per-check and overridable; reports render as human text
// or JSON (schema sysdp-tapelint-v1, emitted by sysdp_lint --tape).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "compile/program.hpp"
#include "semiring/cost.hpp"

namespace sysdp::analysis {

/// What the verifier measured while proving — the quantitative half of
/// the report, carried alongside the diagnostics.
struct TapeVerifyStats {
  std::uint64_t ops = 0;
  std::uint64_t slots = 0;
  std::uint64_t levels = 0;           ///< dependency levels (oracle cycles)
  std::uint64_t nonempty_levels = 0;
  std::uint64_t outputs = 0;
  bool compacted = false;
  bool parameterised = false;
  /// Same-level same-kind RAW reads (in-place fold chains) — the reads the
  /// batch executor's stable kind-major partition must preserve.
  std::uint64_t in_level_chains = 0;
  /// Longest def-use chain through the tape, in ops.  The tape can never
  /// replay in fewer steps than this, whatever the schedule.
  std::uint64_t dependence_depth = 0;
  /// Ops scheduled later than their dependence-minimal level, and the
  /// largest such gap.  On the paper designs this is the physical array's
  /// transport latency (flits travelling between PEs), erased from the
  /// tape by copy elision.
  std::uint64_t transport_slack_ops = 0;
  std::uint64_t max_transport_slack = 0;
  std::uint64_t dead_ops = 0;
  /// Largest |finite value| any slot can hold under the verified binding,
  /// per the abstract interpretation; int32_safe records whether it (and
  /// every intermediate) fits TapeVerifyOptions::value_bound.
  Cost max_abs_finite = 0;
  bool int32_safe = false;
  /// Provenance table shape: narrated lanes, bind events, and how many
  /// ops carry a lane attribution (0 everywhere when the table is empty).
  std::uint64_t provenance_lanes = 0;
  std::uint64_t provenance_binds = 0;
  std::uint64_t ops_attributed = 0;
};

struct TapeVerifyReport {
  std::string design;
  TapeVerifyStats stats;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept {
    return count(Severity::kError);
  }
  [[nodiscard]] std::size_t warnings() const noexcept {
    return count(Severity::kWarning);
  }
  /// True if no diagnostic at or above `fail_at` was produced.
  [[nodiscard]] bool clean(Severity fail_at = Severity::kError) const noexcept;

  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"design": ..., "tape": {...stats...},
  /// "counts": ..., "diagnostics": [...]}.
  [[nodiscard]] std::string to_json() const;
};

struct TapeVerifyOptions {
  /// Verify under this weight binding instead of the baked immediates
  /// (parameterised tapes only): value-range intervals are propagated
  /// from these weights, proving the rebound replay safe, not just the
  /// oracle's.  Length must equal the tape's parameter count.
  std::vector<Cost> bound_weights;
  /// Upper bound on per-op transport slack; an op scheduled more than
  /// this many levels after its dependence-minimal level is an error.
  /// Negative disables the bound (the default — slack is reported as
  /// stats either way).
  std::int64_t max_transport_slack = -1;
  /// Finite-magnitude certification bound for value-range (default: the
  /// int32 range, proving narrow-lane kernels lossless).
  Cost value_bound = 2147483647;
};

class TapeVerifier {
 public:
  static constexpr std::string_view kTapeStructure = "tape-structure";
  static constexpr std::string_view kDefBeforeUse = "def-before-use";
  static constexpr std::string_view kLevelSchedule = "level-schedule";
  static constexpr std::string_view kSingleAssignment = "single-assignment";
  static constexpr std::string_view kOutputReachability =
      "output-reachability";
  static constexpr std::string_view kValueRange = "value-range";
  static constexpr std::string_view kCompactionSafety = "compaction-safety";
  static constexpr std::string_view kBindPlane = "bind-plane";
  static constexpr std::string_view kProvenance = "provenance";

  /// All nine checks enabled at their default severities.
  TapeVerifier();

  /// Override the principal severity of one check.  Unknown check names
  /// throw std::invalid_argument listing the known ones.
  void set_severity(std::string_view check, Severity s);

  [[nodiscard]] TapeVerifyReport run(const compile::CompiledNetlist& net,
                                     std::string design_name,
                                     const TapeVerifyOptions& opt = {}) const;

 private:
  [[nodiscard]] Severity severity_of(std::string_view check) const;

  struct CheckSeverity {
    std::string_view check;
    Severity severity;
  };
  std::vector<CheckSeverity> severities_;
};

/// One-call form: run all checks at default severities.
[[nodiscard]] TapeVerifyReport verify_tape(const compile::CompiledNetlist& net,
                                           std::string design_name,
                                           const TapeVerifyOptions& opt = {});

/// Debug-path entry point (the static analogue of run_all_checked):
/// verify and throw std::logic_error carrying the full text report if any
/// error-severity finding is present.  Checked-replay harnesses call this
/// before spending cycles on a tape that is provably broken.
void verify_tape_or_throw(const compile::CompiledNetlist& net,
                          std::string design_name,
                          const TapeVerifyOptions& opt = {});

}  // namespace sysdp::analysis
