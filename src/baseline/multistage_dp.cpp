#include "baseline/multistage_dp.hpp"

#include <stdexcept>

namespace sysdp {

std::vector<Cost> forward_costs(const MultistageGraph& g, std::size_t k,
                                OpCount* ops) {
  const std::size_t last = g.num_stages() - 1;
  if (k > last) throw std::out_of_range("forward_costs");
  // f(last) = 0 for every final node (any sink is acceptable, Figure 1b).
  std::vector<Cost> f(g.stage_size(last), 0);
  for (std::size_t s = last; s-- > k;) {
    f = mat_vec<MinPlus>(g.costs(s), f, ops);
  }
  return f;
}

std::vector<Cost> backward_costs(const MultistageGraph& g, std::size_t k,
                                 OpCount* ops) {
  if (k >= g.num_stages()) throw std::out_of_range("backward_costs");
  std::vector<Cost> h(g.stage_size(0), 0);
  for (std::size_t s = 0; s < k; ++s) {
    h = vec_mat<MinPlus>(h, g.costs(s), ops);
  }
  return h;
}

ShortestPathResult solve_multistage(const MultistageGraph& g) {
  ShortestPathResult res;
  const std::size_t last = g.num_stages() - 1;
  // Backward sweep keeping, for every node, the predecessor that achieved
  // its h value, so one optimal path can be traced after the sweep.
  std::vector<std::vector<std::size_t>> pred(g.num_stages());
  std::vector<Cost> h(g.stage_size(0), 0);
  for (std::size_t s = 0; s < last; ++s) {
    std::vector<std::size_t> arg;
    h = vec_mat<MinPlus>(h, g.costs(s), &res.ops, &arg);
    pred[s + 1] = std::move(arg);
  }
  std::size_t best = 0;
  res.cost = reduce<MinPlus>(h, &best);
  res.ops.mac += h.size();  // the final m-way comparison
  if (is_inf(res.cost)) return res;
  res.path.assign(g.num_stages(), 0);
  res.path[last] = best;
  for (std::size_t s = last; s-- > 0;) {
    res.path[s] = pred[s + 1][res.path[s + 1]];
  }
  return res;
}

ShortestPathResult solve_multistage_minimax(const MultistageGraph& g) {
  ShortestPathResult res;
  const std::size_t last = g.num_stages() - 1;
  std::vector<std::vector<std::size_t>> pred(g.num_stages());
  std::vector<Cost> h(g.stage_size(0), MinMax::one());
  for (std::size_t s = 0; s < last; ++s) {
    std::vector<std::size_t> arg;
    h = vec_mat<MinMax>(h, g.costs(s), &res.ops, &arg);
    pred[s + 1] = std::move(arg);
  }
  std::size_t best = 0;
  res.cost = reduce<MinMax>(h, &best);
  res.ops.mac += h.size();
  if (is_inf(res.cost)) return res;
  res.path.assign(g.num_stages(), 0);
  res.path[last] = best;
  for (std::size_t s = last; s-- > 0;) {
    res.path[s] = pred[s + 1][res.path[s + 1]];
  }
  return res;
}

Matrix<Cost> stage_pair_costs(const MultistageGraph& g, std::size_t i,
                              std::size_t j, OpCount* ops) {
  if (i >= j || j >= g.num_stages()) {
    throw std::invalid_argument("stage_pair_costs: need i < j < stages");
  }
  Matrix<Cost> acc = g.costs(i);
  for (std::size_t s = i + 1; s < j; ++s) {
    acc = mat_mul<MinPlus>(acc, g.costs(s), ops);
  }
  return acc;
}

std::uint64_t serial_steps_design12(std::uint64_t N, std::uint64_t m) {
  return (N - 2) * m * m + m;
}

std::uint64_t serial_steps_design3(std::uint64_t N, std::uint64_t m) {
  return (N - 1) * m * m + m;
}

}  // namespace sysdp
