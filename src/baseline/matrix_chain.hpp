// Sequential polyadic-nonserial references (Section 2.1 / eq. 6).
//
// Optimal matrix-chain parenthesisation and the optimal binary search tree
// are the paper's two named examples of polyadic formulations.  Both are
// solved here by the classic O(n^3) table DP; the AND/OR-graph searches and
// the GKT systolic array are validated against these tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"
#include "semiring/ops.hpp"

namespace sysdp {

/// Solution of the matrix-chain problem over dimensions r_0..r_n
/// (M_i is r_{i-1} x r_i, 1-based as in the paper).
struct ChainResult {
  /// cost(i,j), 0-based over matrices [i..j]: minimum scalar-multiplication
  /// cost of computing M_{i+1} x ... x M_{j+1} in the paper's numbering.
  Matrix<Cost> cost;
  /// split(i,j): the k (0-based, i <= k < j) achieving cost(i,j).
  Matrix<std::size_t> split;
  OpCount ops;

  [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }

  /// Fully parenthesised rendering, e.g. "((M1 M2)(M3 M4))".
  [[nodiscard]] std::string parenthesization() const;
};

/// Eq. (6): m_{i,j} = 0 if i==j else min_k (m_{i,k} + m_{k+1,j} +
/// r_{i-1} r_k r_j).
[[nodiscard]] ChainResult matrix_chain_order(const std::vector<Cost>& dims);

/// Cost of evaluating the chain with a *fixed* parenthesisation given by a
/// split table (used to verify that recovered orders are consistent).
[[nodiscard]] Cost chain_cost_of_splits(const std::vector<Cost>& dims,
                                        const Matrix<std::size_t>& split);

/// Optimal binary search tree over keys with access frequencies `freq`
/// (successful searches only).  Returns the expected weighted depth table;
/// root(i,j) gives the chosen root.  Structurally the same polyadic DP as
/// eq. (6) with a different AND-node cost, which is why the same systolic
/// structures apply.
struct BstResult {
  Matrix<Cost> cost;
  Matrix<std::size_t> root;
  OpCount ops;

  [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
};

[[nodiscard]] BstResult optimal_bst(const std::vector<Cost>& freq);

}  // namespace sysdp
