// Sequential (single-processor) multistage-graph DP: the reference every
// systolic design is validated against, and the numerator of every
// processor-utilisation formula in the paper.
//
// forward  = eq. (1): f1(i) = min_j [ c_{i,j} + f1(j) ]   (cost to sink side)
// backward = eq. (2)/(12): h(i) = min_j [ h(j) + c_{j,i} ] (cost from source)
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multistage_graph.hpp"
#include "semiring/ops.hpp"

namespace sysdp {

/// Result of a sequential multistage shortest-path evaluation.
struct ShortestPathResult {
  Cost cost = kInfCost;      ///< optimal end-to-end cost
  StagePath path;            ///< one optimal path (node index per stage)
  OpCount ops;               ///< sequential multiply-accumulate steps
};

/// Best cost from every node of stage k to the best final-stage node
/// (forward functional equation, evaluated right-to-left).
[[nodiscard]] std::vector<Cost> forward_costs(const MultistageGraph& g,
                                              std::size_t k,
                                              OpCount* ops = nullptr);

/// Best cost from the best stage-0 node to every node of stage k
/// (backward functional equation, h(x_k) of eq. 12).
[[nodiscard]] std::vector<Cost> backward_costs(const MultistageGraph& g,
                                               std::size_t k,
                                               OpCount* ops = nullptr);

/// Full solve: optimal cost over all (source, sink) pairs plus one optimal
/// path recovered by predecessor traceback.
[[nodiscard]] ShortestPathResult solve_multistage(const MultistageGraph& g);

/// Minimax variant over the (MIN, MAX) semiring: the cost of a path is its
/// *largest* edge and the optimum minimises it — the multistage form of a
/// Phi = max objective (eq. 5 with the maximum as the monotone combiner).
[[nodiscard]] ShortestPathResult solve_multistage_minimax(
    const MultistageGraph& g);

/// All-pairs optimal costs between stage `i` and stage `j` nodes — the
/// polyadic cost matrix f3(V_i, V_j) of eq. (15), computed as the product of
/// the intervening stage matrices.
[[nodiscard]] Matrix<Cost> stage_pair_costs(const MultistageGraph& g,
                                            std::size_t i, std::size_t j,
                                            OpCount* ops = nullptr);

/// Closed-form sequential step count the paper uses for Designs 1/2
/// (Section 3.2): (N-2)m^2 + m iterations for an (N+1)-stage graph with
/// single source/sink and m nodes per intermediate stage.
[[nodiscard]] std::uint64_t serial_steps_design12(std::uint64_t N,
                                                  std::uint64_t m);

/// Closed-form sequential step count for Design 3: (N-1)m^2 + m for an
/// N-stage node-value graph with m values per stage.
[[nodiscard]] std::uint64_t serial_steps_design3(std::uint64_t N,
                                                 std::uint64_t m);

}  // namespace sysdp
