#include "baseline/matrix_chain.hpp"

#include <stdexcept>

namespace sysdp {

namespace {

void render_parens(const Matrix<std::size_t>& split, std::size_t i,
                   std::size_t j, std::string& out) {
  if (i == j) {
    out += "M" + std::to_string(i + 1);
    return;
  }
  out += '(';
  const std::size_t k = split(i, j);
  render_parens(split, i, k, out);
  out += ' ';
  render_parens(split, k + 1, j, out);
  out += ')';
}

Cost splits_cost(const std::vector<Cost>& dims,
                 const Matrix<std::size_t>& split, std::size_t i,
                 std::size_t j) {
  if (i == j) return 0;
  const std::size_t k = split(i, j);
  return sat_add(sat_add(splits_cost(dims, split, i, k),
                         splits_cost(dims, split, k + 1, j)),
                 dims[i] * dims[k + 1] * dims[j + 1]);
}

}  // namespace

std::string ChainResult::parenthesization() const {
  std::string out;
  if (cost.rows() == 0) return out;
  render_parens(split, 0, cost.cols() - 1, out);
  return out;
}

ChainResult matrix_chain_order(const std::vector<Cost>& dims) {
  if (dims.size() < 2) {
    throw std::invalid_argument("matrix_chain_order: need >= 1 matrix");
  }
  const std::size_t n = dims.size() - 1;  // number of matrices
  ChainResult res{Matrix<Cost>(n, n, 0), Matrix<std::size_t>(n, n, 0), {}};
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      Cost best = kInfCost;
      std::size_t best_k = i;
      for (std::size_t k = i; k < j; ++k) {
        const Cost cand =
            sat_add(sat_add(res.cost(i, k), res.cost(k + 1, j)),
                    dims[i] * dims[k + 1] * dims[j + 1]);
        ++res.ops.mac;
        if (cand < best) {
          best = cand;
          best_k = k;
        }
      }
      res.cost(i, j) = best;
      res.split(i, j) = best_k;
    }
  }
  return res;
}

Cost chain_cost_of_splits(const std::vector<Cost>& dims,
                          const Matrix<std::size_t>& split) {
  if (dims.size() < 2) return 0;
  return splits_cost(dims, split, 0, dims.size() - 2);
}

BstResult optimal_bst(const std::vector<Cost>& freq) {
  if (freq.empty()) throw std::invalid_argument("optimal_bst: no keys");
  const std::size_t n = freq.size();
  BstResult res{Matrix<Cost>(n, n, 0), Matrix<std::size_t>(n, n, 0), {}};
  // weight(i,j) = sum of freq[i..j]; prefix sums make it O(1).
  std::vector<Cost> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + freq[i];
  const auto weight = [&](std::size_t i, std::size_t j) {
    return prefix[j + 1] - prefix[i];
  };
  for (std::size_t i = 0; i < n; ++i) {
    res.cost(i, i) = freq[i];
    res.root(i, i) = i;
  }
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      Cost best = kInfCost;
      std::size_t best_r = i;
      for (std::size_t r = i; r <= j; ++r) {
        const Cost left = r > i ? res.cost(i, r - 1) : 0;
        const Cost right = r < j ? res.cost(r + 1, j) : 0;
        const Cost cand = sat_add(sat_add(left, right), weight(i, j));
        ++res.ops.mac;
        if (cand < best) {
          best = cand;
          best_r = r;
        }
      }
      res.cost(i, j) = best;
      res.root(i, j) = best_r;
    }
  }
  return res;
}

}  // namespace sysdp
