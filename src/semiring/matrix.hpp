// Dense row-major matrix over an arbitrary element type.
//
// Stage-to-stage cost matrices (eq. 8) are small and dense (m x m for m
// quantised values per stage), so a simple contiguous layout is both the
// fastest and the most faithful model of the systolic data streams, which
// read rows/columns in order.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace sysdp {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Brace construction from rows; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      if (r.size() != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer");
      }
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access for callers handling untrusted indices.
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<T> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
  }
  [[nodiscard]] std::vector<T> col(std::size_t c) const {
    assert(c < cols_);
    std::vector<T> out;
    out.reserve(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out.push_back((*this)(r, c));
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace sysdp
