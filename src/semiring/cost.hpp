// Saturating cost arithmetic used throughout the library.
//
// The paper (Section 3.1) defines dynamic programming over the closed
// semiring (R, MIN, +, +inf, 0).  A faithful software model needs an
// "infinity" that is absorbing under the semiring multiplication (+): the
// cost of a non-existent edge plus anything must remain non-existent.  We
// use a sentinel near the top of the integer range and saturate additions so
// that inf + x == inf without signed overflow (which would be UB).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace sysdp {

/// Edge/path cost.  Integer costs keep every systolic simulation exactly
/// comparable with its sequential baseline (no floating-point ties).
using Cost = std::int64_t;

/// Additive identity of MIN / absorbing element of +: "no path".
/// Chosen at a quarter of the representable range so that sums of a few
/// finite costs can never collide with it.
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

/// Negative infinity, used by the (MAX,+) semiring.
inline constexpr Cost kNegInfCost = -kInfCost;

/// True if `c` represents "no path" in a (MIN,+) setting.
[[nodiscard]] constexpr bool is_inf(Cost c) noexcept { return c >= kInfCost; }

/// True if `c` represents "no path" in a (MAX,+) setting.
[[nodiscard]] constexpr bool is_neg_inf(Cost c) noexcept {
  return c <= kNegInfCost;
}

/// Saturating addition: infinities are absorbing in both directions and the
/// result is clamped into [kNegInfCost, kInfCost].
[[nodiscard]] constexpr Cost sat_add(Cost a, Cost b) noexcept {
  if (a >= kInfCost || b >= kInfCost) return kInfCost;
  if (a <= kNegInfCost || b <= kNegInfCost) return kNegInfCost;
  const Cost sum = a + b;  // |a|,|b| < max/4 so this cannot overflow.
  if (sum >= kInfCost) return kInfCost;
  if (sum <= kNegInfCost) return kNegInfCost;
  return sum;
}

/// Render a cost for reports: "inf"/"-inf" for the sentinels.
[[nodiscard]] std::string cost_to_string(Cost c);

}  // namespace sysdp
