// Tight scalar kernels for the hot PE inner loops.
//
// Module::eval is reached through virtual dispatch, but the arithmetic
// inside it must not be: these are the non-virtual, always-inline scalar
// kernels every array model shares for its inner min-plus products.  One
// "step" of the paper's iteration accounting is exactly one of these —
// a multiply-accumulate over (MIN, +) for the string-product designs
// (Designs 1 and 2), an add-compare relaxation for Design 3, and a
// two-operand candidate fold for the interval-DP triangle (GKT / BST /
// polygon).  Keeping them here gives the flattened PE arenas one shared,
// branch-light implementation instead of N copies spread across eval
// bodies.
#pragma once

#include <cstddef>

#include "semiring/closed_semiring.hpp"
#include "semiring/cost.hpp"

namespace sysdp::kern {

/// One semiring multiply-accumulate: acc (+)= w (x) x.  The generic form
/// used wherever the semiring is a template parameter.
template <Semiring S>
[[nodiscard]] constexpr typename S::value_type mac(
    typename S::value_type acc, typename S::value_type w,
    typename S::value_type x) noexcept {
  return S::plus(acc, S::times(w, x));
}

/// Min-plus multiply-accumulate: min(acc, w + x), saturating at infinity.
/// The scalar inner step of Designs 1 and 2.
[[nodiscard]] constexpr Cost minplus_mac(Cost acc, Cost w, Cost x) noexcept {
  return MinPlus::plus(acc, MinPlus::times(w, x));
}

/// Interval-DP candidate cost: left + right + local weight, saturating.
/// The scalar step of the GKT / BST / polygon triangular cells.
[[nodiscard]] constexpr Cost interval_candidate(Cost left, Cost right,
                                                Cost local) noexcept {
  return sat_add(sat_add(left, right), local);
}

/// Fold `cand` into a running (best, arg) pair; true if it improved.  The
/// comparator half of the add-compare step (Design 3's C unit, the
/// triangular cells' two-comparison fold).
constexpr bool fold_min(Cost cand, std::size_t k, Cost& best,
                        std::size_t& arg) noexcept {
  if (cand < best) {
    best = cand;
    arg = k;
    return true;
  }
  return false;
}

/// Min-plus inner product over contiguous rows — the dense form of the
/// same kernel, for reference evaluators that hold a whole row.
[[nodiscard]] constexpr Cost minplus_inner(const Cost* w, const Cost* x,
                                           std::size_t n) noexcept {
  Cost acc = MinPlus::zero();
  for (std::size_t i = 0; i < n; ++i) acc = minplus_mac(acc, w[i], x[i]);
  return acc;
}

}  // namespace sysdp::kern
