// Semiring matrix operations and string products (Section 3.1).
//
// Equation (8) reduces a backward monadic-serial DP evaluation to
// f(A) = A . (B . (C . D)): a right-to-left string of matrix-vector
// products over (MIN,+).  These routines are the functional reference that
// every systolic design in src/arrays is validated against, and they count
// scalar semiring operations so processor-utilisation formulas (eq. 9) can
// be computed from first principles.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "semiring/closed_semiring.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

/// Count of scalar semiring operations performed by a routine.  One "step"
/// in the paper's iteration accounting is one times() followed by one
/// plus() (a multiply-accumulate), so `mac` is the comparable unit.
struct OpCount {
  std::uint64_t mac = 0;

  OpCount& operator+=(const OpCount& o) {
    mac += o.mac;
    return *this;
  }
};

/// y = M (x) over S:  y_i = plus_j times(M(i,j), x_j).
/// Optionally reports the arg that achieved each y_i (for path recovery).
template <Semiring S>
std::vector<typename S::value_type> mat_vec(
    const Matrix<typename S::value_type>& M,
    const std::vector<typename S::value_type>& x, OpCount* ops = nullptr,
    std::vector<std::size_t>* arg = nullptr) {
  using V = typename S::value_type;
  if (M.cols() != x.size()) throw std::invalid_argument("mat_vec: shape");
  std::vector<V> y(M.rows(), S::zero());
  if (arg) arg->assign(M.rows(), 0);
  for (std::size_t i = 0; i < M.rows(); ++i) {
    for (std::size_t j = 0; j < M.cols(); ++j) {
      const V cand = S::times(M(i, j), x[j]);
      if (arg && S::improves(cand, y[i])) (*arg)[i] = j;
      y[i] = S::plus(y[i], cand);
      if (ops) ++ops->mac;
    }
  }
  return y;
}

/// y = (x) M over S:  y_j = plus_i times(x_i, M(i,j)).
template <Semiring S>
std::vector<typename S::value_type> vec_mat(
    const std::vector<typename S::value_type>& x,
    const Matrix<typename S::value_type>& M, OpCount* ops = nullptr,
    std::vector<std::size_t>* arg = nullptr) {
  using V = typename S::value_type;
  if (M.rows() != x.size()) throw std::invalid_argument("vec_mat: shape");
  std::vector<V> y(M.cols(), S::zero());
  if (arg) arg->assign(M.cols(), 0);
  for (std::size_t j = 0; j < M.cols(); ++j) {
    for (std::size_t i = 0; i < M.rows(); ++i) {
      const V cand = S::times(x[i], M(i, j));
      if (arg && S::improves(cand, y[j])) (*arg)[j] = i;
      y[j] = S::plus(y[j], cand);
      if (ops) ++ops->mac;
    }
  }
  return y;
}

/// C = A (x) B over S:  C(i,j) = plus_k times(A(i,k), B(k,j)).
template <Semiring S>
Matrix<typename S::value_type> mat_mul(const Matrix<typename S::value_type>& A,
                                       const Matrix<typename S::value_type>& B,
                                       OpCount* ops = nullptr) {
  using V = typename S::value_type;
  if (A.cols() != B.rows()) throw std::invalid_argument("mat_mul: shape");
  Matrix<V> C(A.rows(), B.cols(), S::zero());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t k = 0; k < A.cols(); ++k) {
      const V a = A(i, k);
      for (std::size_t j = 0; j < B.cols(); ++j) {
        C(i, j) = S::plus(C(i, j), S::times(a, B(k, j)));
        if (ops) ++ops->mac;
      }
    }
  }
  return C;
}

/// Right-associated string product applied to a final vector:
/// M_0 (x) (M_1 (x) (... (M_{n-1} (x) v))).  This is exactly the order a
/// backward monadic-serial evaluation uses (eq. 8c) and the order Designs 1
/// and 2 implement in hardware.
template <Semiring S>
std::vector<typename S::value_type> string_mat_vec(
    const std::vector<Matrix<typename S::value_type>>& mats,
    std::vector<typename S::value_type> v, OpCount* ops = nullptr) {
  for (auto it = mats.rbegin(); it != mats.rend(); ++it) {
    v = mat_vec<S>(*it, v, ops);
  }
  return v;
}

/// Left-associated full product of a matrix string: ((M_0 M_1) M_2) ...
/// Used by the divide-and-conquer reference (Section 4) and by tests of the
/// polyadic formulation (eq. 15), where intermediate products are matrices.
template <Semiring S>
Matrix<typename S::value_type> string_mat_mul(
    const std::vector<Matrix<typename S::value_type>>& mats,
    OpCount* ops = nullptr) {
  if (mats.empty()) throw std::invalid_argument("string_mat_mul: empty");
  Matrix<typename S::value_type> acc = mats.front();
  for (std::size_t i = 1; i < mats.size(); ++i) {
    acc = mat_mul<S>(acc, mats[i], ops);
  }
  return acc;
}

/// Balanced (divide-and-conquer) product of a matrix string: the complete
/// binary AND-tree of Section 4.  Result equals string_mat_mul by
/// associativity; the tree shape is what the granularity analysis studies.
template <Semiring S>
Matrix<typename S::value_type> balanced_string_mat_mul(
    const std::vector<Matrix<typename S::value_type>>& mats, std::size_t lo,
    std::size_t hi, OpCount* ops = nullptr) {
  if (lo + 1 == hi) return mats[lo];
  const std::size_t mid = lo + (hi - lo + 1) / 2;  // left half gets the ceil
  return mat_mul<S>(balanced_string_mat_mul<S>(mats, lo, mid, ops),
                    balanced_string_mat_mul<S>(mats, mid, hi, ops), ops);
}

template <Semiring S>
Matrix<typename S::value_type> balanced_string_mat_mul(
    const std::vector<Matrix<typename S::value_type>>& mats,
    OpCount* ops = nullptr) {
  if (mats.empty()) throw std::invalid_argument("balanced_string_mat_mul: empty");
  return balanced_string_mat_mul<S>(mats, 0, mats.size(), ops);
}

/// plus-reduction of a vector (the final comparison of h(X_N) in Section 3.2).
template <Semiring S>
typename S::value_type reduce(const std::vector<typename S::value_type>& v,
                              std::size_t* arg = nullptr) {
  typename S::value_type best = S::zero();
  if (arg) *arg = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (arg && S::improves(v[i], best)) *arg = i;
    best = S::plus(best, v[i]);
  }
  return best;
}

}  // namespace sysdp
