#include "semiring/cost.hpp"

namespace sysdp {

std::string cost_to_string(Cost c) {
  if (is_inf(c)) return "inf";
  if (is_neg_inf(c)) return "-inf";
  return std::to_string(c);
}

}  // namespace sysdp
