// Closed-semiring abstraction (Section 3.1 of the paper).
//
// A monadic-serial DP problem is evaluated as a string of matrix products
// over a closed semiring (R, plus, times, zero, one) where `plus` is the
// comparison operator of the functional equation (MIN for shortest paths)
// and `times` combines a partial solution with an edge cost (+ for additive
// costs).  All array designs in src/arrays are templated on one of these
// semirings so the same hardware model solves shortest path, longest path,
// bottleneck path, and reachability problems.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>

#include "semiring/cost.hpp"

namespace sysdp {

/// A closed semiring: `plus` selects among alternatives (idempotent for
/// optimisation semirings), `times` extends a solution, `zero()` is the
/// identity of `plus` and absorbing for `times`, `one()` the identity of
/// `times`.
template <typename S>
concept Semiring = requires(typename S::value_type a, typename S::value_type b) {
  { S::zero() } -> std::same_as<typename S::value_type>;
  { S::one() } -> std::same_as<typename S::value_type>;
  { S::plus(a, b) } -> std::same_as<typename S::value_type>;
  { S::times(a, b) } -> std::same_as<typename S::value_type>;
};

/// (MIN, +, +inf, 0): shortest paths; the semiring of eq. (8).
struct MinPlus {
  using value_type = Cost;
  static constexpr Cost zero() noexcept { return kInfCost; }
  static constexpr Cost one() noexcept { return 0; }
  static constexpr Cost plus(Cost a, Cost b) noexcept { return std::min(a, b); }
  static constexpr Cost times(Cost a, Cost b) noexcept { return sat_add(a, b); }
  /// True if `a` strictly improves on `b` (used for arg tracking).
  static constexpr bool improves(Cost a, Cost b) noexcept { return a < b; }
};

/// (MAX, +, -inf, 0): longest paths / maximum-profit sequential decisions.
struct MaxPlus {
  using value_type = Cost;
  static constexpr Cost zero() noexcept { return kNegInfCost; }
  static constexpr Cost one() noexcept { return 0; }
  static constexpr Cost plus(Cost a, Cost b) noexcept { return std::max(a, b); }
  static constexpr Cost times(Cost a, Cost b) noexcept { return sat_add(a, b); }
  static constexpr bool improves(Cost a, Cost b) noexcept { return a > b; }
};

/// (MIN, MAX, +inf, -inf): minimax / bottleneck paths.  The "cost" of a path
/// is its widest edge; the optimum is the narrowest such path.
struct MinMax {
  using value_type = Cost;
  static constexpr Cost zero() noexcept { return kInfCost; }
  static constexpr Cost one() noexcept { return kNegInfCost; }
  static constexpr Cost plus(Cost a, Cost b) noexcept { return std::min(a, b); }
  static constexpr Cost times(Cost a, Cost b) noexcept { return std::max(a, b); }
  static constexpr bool improves(Cost a, Cost b) noexcept { return a < b; }
};

/// (MAX, MIN, -inf, +inf): maximin / widest ("capacity") paths.
struct MaxMin {
  using value_type = Cost;
  static constexpr Cost zero() noexcept { return kNegInfCost; }
  static constexpr Cost one() noexcept { return kInfCost; }
  static constexpr Cost plus(Cost a, Cost b) noexcept { return std::max(a, b); }
  static constexpr Cost times(Cost a, Cost b) noexcept { return std::min(a, b); }
  static constexpr bool improves(Cost a, Cost b) noexcept { return a > b; }
};

/// (OR, AND, false, true): reachability through a multistage graph.
struct BoolOrAnd {
  using value_type = bool;
  static constexpr bool zero() noexcept { return false; }
  static constexpr bool one() noexcept { return true; }
  static constexpr bool plus(bool a, bool b) noexcept { return a || b; }
  static constexpr bool times(bool a, bool b) noexcept { return a && b; }
  static constexpr bool improves(bool a, bool b) noexcept { return a && !b; }
};

/// (+, *, 0, 1) over unsigned counters: number of distinct source-sink paths.
/// Not an optimisation semiring (plus is not idempotent) but still closed,
/// and useful to validate that array data movement visits every combination
/// exactly once.
struct CountPaths {
  using value_type = std::uint64_t;
  static constexpr std::uint64_t zero() noexcept { return 0; }
  static constexpr std::uint64_t one() noexcept { return 1; }
  static constexpr std::uint64_t plus(std::uint64_t a, std::uint64_t b) noexcept {
    return a + b;
  }
  static constexpr std::uint64_t times(std::uint64_t a, std::uint64_t b) noexcept {
    return a * b;
  }
  static constexpr bool improves(std::uint64_t, std::uint64_t) noexcept {
    return false;  // no notion of "better": arg tracking is meaningless here
  }
};

/// Value of the shortest-path-counting semiring: the optimal cost together
/// with the number of distinct optimal solutions.
struct CostCount {
  Cost cost = kInfCost;
  std::uint64_t count = 0;

  friend bool operator==(const CostCount&, const CostCount&) = default;
};

/// (MIN,+) lifted to count ties: plus keeps the better cost and merges
/// counts on equality; times adds costs and multiplies counts.  A closed
/// commutative semiring (the classic shortest-path-counting construction),
/// so every array design counts optimal solutions with zero hardware
/// changes beyond widening the data path.
struct MinPlusCount {
  using value_type = CostCount;
  static constexpr CostCount zero() noexcept { return {kInfCost, 0}; }
  static constexpr CostCount one() noexcept { return {0, 1}; }
  static constexpr CostCount plus(const CostCount& a,
                                  const CostCount& b) noexcept {
    if (a.cost < b.cost) return a;
    if (b.cost < a.cost) return b;
    return {a.cost, a.count + b.count};
  }
  static constexpr CostCount times(const CostCount& a,
                                   const CostCount& b) noexcept {
    return {sat_add(a.cost, b.cost), a.count * b.count};
  }
  static constexpr bool improves(const CostCount& a,
                                 const CostCount& b) noexcept {
    return a.cost < b.cost;
  }
};

static_assert(Semiring<MinPlus>);
static_assert(Semiring<MaxPlus>);
static_assert(Semiring<MinMax>);
static_assert(Semiring<MaxMin>);
static_assert(Semiring<BoolOrAnd>);
static_assert(Semiring<CountPaths>);
static_assert(Semiring<MinPlusCount>);

}  // namespace sysdp
