#include "io/problem_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sysdp {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("problem_io: " + what);
}

/// Next whitespace-separated token; throws with context if the stream ends.
std::string next_token(std::istream& is, const char* context) {
  std::string tok;
  if (!(is >> tok)) fail(std::string("unexpected end of input reading ") + context);
  return tok;
}

Cost next_cost(std::istream& is, const char* context) {
  const std::string tok = next_token(is, context);
  if (tok == "inf") return kInfCost;
  if (tok == "-inf") return kNegInfCost;
  try {
    return static_cast<Cost>(std::stoll(tok));
  } catch (const std::exception&) {
    fail("expected a cost value for " + std::string(context) + ", got '" +
         tok + "'");
  }
}

std::size_t next_size(std::istream& is, const char* context) {
  const Cost v = next_cost(is, context);
  if (v < 0 || is_inf(v)) {
    fail("expected a nonnegative count for " + std::string(context));
  }
  return static_cast<std::size_t>(v);
}

void put_cost(std::ostream& os, Cost c) {
  if (is_inf(c)) {
    os << "inf";
  } else if (is_neg_inf(c)) {
    os << "-inf";
  } else {
    os << c;
  }
}

void expect_keyword(std::istream& is, const char* keyword) {
  const std::string tok = next_token(is, "problem kind");
  if (tok != keyword) {
    fail("expected '" + std::string(keyword) + "', got '" + tok + "'");
  }
}

MultistageGraph read_multistage_body(std::istream& is);
std::vector<Cost> read_chain_body(std::istream& is);
NonserialObjective read_objective_body(std::istream& is);

}  // namespace

void write_multistage(std::ostream& os, const MultistageGraph& g) {
  os << "multistage\n" << g.num_stages() << '\n';
  for (std::size_t k = 0; k < g.num_stages(); ++k) {
    os << g.stage_size(k) << (k + 1 < g.num_stages() ? ' ' : '\n');
  }
  for (std::size_t k = 0; k + 1 < g.num_stages(); ++k) {
    for (std::size_t i = 0; i < g.stage_size(k); ++i) {
      for (std::size_t j = 0; j < g.stage_size(k + 1); ++j) {
        put_cost(os, g.edge(k, i, j));
        os << (j + 1 < g.stage_size(k + 1) ? ' ' : '\n');
      }
    }
  }
}

MultistageGraph read_multistage(std::istream& is) {
  expect_keyword(is, "multistage");
  return read_multistage_body(is);
}

namespace {
MultistageGraph read_multistage_body(std::istream& is) {
  const std::size_t stages = next_size(is, "stage count");
  if (stages < 2) fail("multistage graph needs >= 2 stages");
  std::vector<std::size_t> sizes(stages);
  for (auto& s : sizes) s = next_size(is, "stage size");
  MultistageGraph g(sizes);
  for (std::size_t k = 0; k + 1 < stages; ++k) {
    for (std::size_t i = 0; i < sizes[k]; ++i) {
      for (std::size_t j = 0; j < sizes[k + 1]; ++j) {
        g.set_edge(k, i, j, next_cost(is, "edge cost"));
      }
    }
  }
  return g;
}
}  // namespace

void write_chain(std::ostream& os, const std::vector<Cost>& dims) {
  os << "chain\n" << dims.size() - 1 << '\n';
  for (std::size_t i = 0; i < dims.size(); ++i) {
    put_cost(os, dims[i]);
    os << (i + 1 < dims.size() ? ' ' : '\n');
  }
}

std::vector<Cost> read_chain(std::istream& is) {
  expect_keyword(is, "chain");
  return read_chain_body(is);
}

namespace {
std::vector<Cost> read_chain_body(std::istream& is) {
  const std::size_t n = next_size(is, "matrix count");
  if (n == 0) fail("chain needs >= 1 matrix");
  std::vector<Cost> dims(n + 1);
  for (auto& d : dims) {
    d = next_cost(is, "chain dimension");
    if (d <= 0 || is_inf(d)) fail("chain dimensions must be positive");
  }
  return dims;
}
}  // namespace

void write_objective(std::ostream& os, const NonserialObjective& obj) {
  os << "objective\n" << obj.num_variables() << '\n';
  for (std::size_t v = 0; v < obj.num_variables(); ++v) {
    os << obj.domain(v) << (v + 1 < obj.num_variables() ? ' ' : '\n');
  }
  os << obj.terms().size() << '\n';
  for (const Term& t : obj.terms()) {
    os << "term " << t.scope.size();
    for (std::size_t v : t.scope) os << ' ' << v;
    for (Cost c : t.table) {
      os << ' ';
      put_cost(os, c);
    }
    os << '\n';
  }
}

NonserialObjective read_objective(std::istream& is) {
  expect_keyword(is, "objective");
  return read_objective_body(is);
}

namespace {
NonserialObjective read_objective_body(std::istream& is) {
  const std::size_t nvars = next_size(is, "variable count");
  if (nvars == 0) fail("objective needs >= 1 variable");
  std::vector<std::size_t> domains(nvars);
  for (auto& d : domains) d = next_size(is, "domain size");
  NonserialObjective obj(domains);
  const std::size_t nterms = next_size(is, "term count");
  for (std::size_t t = 0; t < nterms; ++t) {
    const std::string kw = next_token(is, "term keyword");
    if (kw != "term") fail("expected 'term', got '" + kw + "'");
    const std::size_t arity = next_size(is, "term arity");
    TermScope scope(arity);
    std::size_t table_size = 1;
    for (auto& v : scope) {
      v = next_size(is, "term variable");
      if (v >= nvars) fail("term variable out of range");
      table_size *= domains[v];
    }
    std::vector<Cost> table(table_size);
    for (auto& c : table) c = next_cost(is, "term table entry");
    obj.add_term(std::move(scope), std::move(table));
  }
  return obj;
}
}  // namespace

AnyProblem read_problem(std::istream& is) {
  const std::string kind = next_token(is, "problem kind");
  if (kind == "multistage") return read_multistage_body(is);
  if (kind == "chain") return read_chain_body(is);
  if (kind == "objective") return read_objective_body(is);
  fail("unknown problem kind '" + kind + "'");
}

AnyProblem load_problem(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return read_problem(in);
}

void save_problem(const std::string& path, const AnyProblem& problem) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  std::visit(
      [&out](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, MultistageGraph>) {
          write_multistage(out, p);
        } else if constexpr (std::is_same_v<T, std::vector<Cost>>) {
          write_chain(out, p);
        } else {
          write_objective(out, p);
        }
      },
      problem);
  if (!out) fail("write to '" + path + "' failed");
}

}  // namespace sysdp
