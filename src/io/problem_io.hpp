// Text serialisation of problem instances.
//
// A small line-oriented format so instances can be generated once, stored,
// diffed, and fed to the CLI tool or other implementations:
//
//   multistage            chain              objective
//   <S>                   <n>                <num_vars>
//   <size_0 .. size_S-1>  <r_0 .. r_n>       <domain_0 .. domain_{V-1}>
//   <edge rows per                           <num_terms>
//    transition, "inf"                       term <arity> <vars..> <table..>
//    for missing edges>
//
// Values are whitespace-separated; "inf" encodes kInfCost.  Readers
// validate shapes and throw std::runtime_error with a line-accurate message
// on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>

#include "graph/multistage_graph.hpp"
#include "nonserial/objective.hpp"

namespace sysdp {

void write_multistage(std::ostream& os, const MultistageGraph& g);
[[nodiscard]] MultistageGraph read_multistage(std::istream& is);

void write_chain(std::ostream& os, const std::vector<Cost>& dims);
[[nodiscard]] std::vector<Cost> read_chain(std::istream& is);

void write_objective(std::ostream& os, const NonserialObjective& obj);
[[nodiscard]] NonserialObjective read_objective(std::istream& is);

/// Any supported problem, dispatched on the header keyword.
using AnyProblem =
    std::variant<MultistageGraph, std::vector<Cost>, NonserialObjective>;
[[nodiscard]] AnyProblem read_problem(std::istream& is);

/// Convenience file wrappers.
[[nodiscard]] AnyProblem load_problem(const std::string& path);
void save_problem(const std::string& path, const AnyProblem& problem);

}  // namespace sysdp
