#include "sim/engine.hpp"

namespace sysdp::sim {

void Engine::step() {
  for (Module* m : modules_) m->eval(now_);
  for (Module* m : modules_) m->commit();
  ++now_;
}

void Engine::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

bool Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles; ++i) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace sysdp::sim
