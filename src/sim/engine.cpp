#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/observer.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp::sim {

namespace {

/// Below this many parallel-safe modules a fork-join per phase costs more
/// than it saves; small arrays silently run serially.
constexpr std::size_t kMinParallelModules = 8;

constexpr Cycle kQuiescencePeriod = Engine::kQuiescencePeriod;

}  // namespace

void Engine::add(Module& m) {
  const auto idx = static_cast<std::uint32_t>(modules_.size());
  modules_.push_back(&m);
  module_index_.emplace(&m, idx);
  wake_.emplace_back();
  active_.push_back(1);  // every module evaluates in its first cycle
  is_driver_.push_back(m.combinational() ? 1 : 0);
  if (m.combinational()) {
    drivers_.push_back(&m);
    driver_idx_.push_back(idx);
  } else {
    parallel_.push_back(&m);
    parallel_idx_.push_back(idx);
  }
  gated_init_ = false;  // active lists are rebuilt on the next gated step
}

std::size_t Engine::index_of(const Module& m) const {
  const auto it = module_index_.find(&m);
  if (it == module_index_.end()) {
    throw std::invalid_argument("Engine::add_wakeup: module not registered");
  }
  return it->second;
}

void Engine::add_wakeup(const Module& src, const Module& dst) {
  if (now_ > 0) {
    throw std::logic_error(
        "Engine::add_wakeup: wakeup edges must be declared before the first "
        "step() — a module may already have gone quiescent without this "
        "edge's protection (edge " +
        src.name() + " -> " + dst.name() + " declared at cycle " +
        std::to_string(now_) + ")");
  }
  wake_[index_of(src)].push_back(static_cast<std::uint32_t>(index_of(dst)));
  gated_init_ = false;  // the CSR edge view is stale
}

void Engine::add_observer(EngineObserver* obs) {
  if (obs == nullptr) {
    throw std::invalid_argument("Engine::add_observer: null observer");
  }
  if (now_ > 0) {
    throw std::logic_error(
        "Engine::add_observer: observers must attach before the first "
        "step() — on_elaborated has already fired (now at cycle " +
        std::to_string(now_) + ")");
  }
  observers_.push_back(obs);
}

std::vector<std::pair<const Module*, const Module*>> Engine::wakeup_edges()
    const {
  std::vector<std::pair<const Module*, const Module*>> edges;
  for (std::size_t i = 0; i < wake_.size(); ++i) {
    for (const std::uint32_t d : wake_[i]) {
      edges.emplace_back(modules_[i], modules_[d]);
    }
  }
  return edges;
}

void Engine::step_serial() {
  for (Module* m : modules_) m->eval(now_);
  for (Module* m : modules_) m->commit();
  active_evals_ += modules_.size();
}

void Engine::step_parallel() {
  // Phase 1a: combinational drivers, serially, in registration order —
  // their outputs must be stable before any listener evaluates.
  for (Module* m : drivers_) m->eval(now_);
  // Phase 1b: register-only modules read committed state (plus the driver
  // outputs fixed above) and stage writes to their own registers only, so
  // any order — including concurrent — yields bit-identical staging.
  pool_->parallel_for(parallel_.size(),
                      [this](std::size_t i) { parallel_[i]->eval(now_); });
  // Phase 2 (after the implicit barrier): every module latches only its
  // own registers, so the clock edge parallelises over all modules.
  pool_->parallel_for(modules_.size(),
                      [this](std::size_t i) { modules_[i]->commit(); });
  active_evals_ += modules_.size();
}

void Engine::init_gated() {
  active_drivers_.clear();
  active_regs_.clear();
  for (const std::uint32_t i : driver_idx_) {
    if (active_[i]) active_drivers_.push_back(i);
  }
  for (const std::uint32_t i : parallel_idx_) {
    if (active_[i]) active_regs_.push_back(i);
  }
  wake_off_.assign(modules_.size() + 1, 0);
  wake_edges_.clear();
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    wake_edges_.insert(wake_edges_.end(), wake_[i].begin(), wake_[i].end());
    wake_off_[i + 1] = static_cast<std::uint32_t>(wake_edges_.size());
  }
  gated_init_ = true;
}

void Engine::step_serial_gated() {
  if (!gated_init_) init_gated();
  for (const std::uint32_t i : active_drivers_) modules_[i]->eval(now_);
  for (const std::uint32_t i : active_regs_) modules_[i]->eval(now_);
  for (const std::uint32_t i : active_drivers_) modules_[i]->commit();
  for (const std::uint32_t i : active_regs_) modules_[i]->commit();
  active_evals_ += active_drivers_.size() + active_regs_.size();
  refresh_active();
}

void Engine::step_parallel_gated() {
  if (!gated_init_) init_gated();
  // Same three phases as step_parallel, restricted to the active set.  The
  // set is frozen for the whole cycle (refresh_active runs after commit),
  // so the concurrent indexing below races with nothing.
  for (const std::uint32_t i : active_drivers_) modules_[i]->eval(now_);
  pool_->parallel_for(active_regs_.size(), [this](std::size_t i) {
    modules_[active_regs_[i]]->eval(now_);
  });
  for (const std::uint32_t i : active_drivers_) modules_[i]->commit();
  pool_->parallel_for(active_regs_.size(), [this](std::size_t i) {
    modules_[active_regs_[i]]->commit();
  });
  active_evals_ += active_drivers_.size() + active_regs_.size();
  refresh_active();
}

void Engine::refresh_active() {
  // Phase 1 — demotion, only every kQuiescencePeriod cycles: polling the
  // virtual quiescent() per active module per cycle would eat the savings
  // of the skipped evals, and a module demoted late only runs extra no-op
  // evals (quiescence contract), so results are unchanged.  Sleeping
  // modules are never re-queried: quiescent() depends only on self-mutated
  // state, which cannot have changed while asleep.
  if ((now_ % kQuiescencePeriod) == 0) {
    // Adaptive fallback: refresh_active runs inside cycle now_'s step, after
    // its evals were counted, so the window (mark_cycle, now_] is exactly
    // now_ - mark_cycle cycles of active_evals_ growth.  If that window ran
    // at or above kDenseFallbackActivity of a dense sweep, gating is pure
    // bookkeeping overhead — revert to dense stepping for good.
    if (now_ > fallback_mark_cycle_ || fallback_mark_evals_ > 0) {
      const std::uint64_t window_active = active_evals_ - fallback_mark_evals_;
      const std::uint64_t window_dense =
          static_cast<std::uint64_t>(modules_.size()) *
          (now_ + 1 - fallback_mark_cycle_);
      if (window_dense > 0 &&
          static_cast<double>(window_active) >=
              kDenseFallbackActivity * static_cast<double>(window_dense)) {
        dense_fallback_ = true;
        fallback_cycle_ = now_;
        return;  // no more demotion or wakeup bookkeeping needed
      }
    }
    fallback_mark_evals_ = active_evals_;
    fallback_mark_cycle_ = now_ + 1;
    std::size_t kept = 0;
    for (const std::uint32_t i : active_drivers_) {  // keep driver order
      if (modules_[i]->quiescent()) {
        active_[i] = 0;
      } else {
        active_drivers_[kept++] = i;
      }
    }
    active_drivers_.resize(kept);
    kept = 0;
    for (const std::uint32_t i : active_regs_) {
      if (modules_[i]->quiescent()) {
        active_[i] = 0;
      } else {
        active_regs_[kept++] = i;
      }
    }
    active_regs_.resize(kept);
  }
  // Phase 2 — wakeup: every module still active fires its declared edges;
  // a sleeping target is appended to the active set for the next cycle.
  // Iterating the post-demotion lists matches the eager semantics on poll
  // cycles (only non-quiescent modules wake successors); between polls the
  // set is a superset of the eager one, which is harmless — the extra
  // members are quiescent, so their evals are no-ops.  Steady-state cost
  // is one flag test per edge; appends happen only on sleep->active
  // transitions.
  // Newly woken modules are collected first (they must not fire their own
  // edges until the cycle *they* are active in) and appended after.
  woken_.clear();
  const auto fire = [this](const std::vector<std::uint32_t>& list) {
    for (const std::uint32_t i : list) {
      const std::uint32_t hi = wake_off_[i + 1];
      for (std::uint32_t e = wake_off_[i]; e < hi; ++e) {
        const std::uint32_t d = wake_edges_[e];
        if (!active_[d]) {
          active_[d] = 1;
          woken_.push_back(d);
        }
      }
    }
  };
  fire(active_drivers_);
  fire(active_regs_);
  if (woken_.empty()) return;
  // Both active lists are kept sorted by module index (registration
  // order): drivers need it for bus visibility, and for the register-only
  // sweep an in-order walk keeps the per-module state accesses streaming —
  // an unordered active set defeats the hardware prefetcher and costs more
  // than the gating saves.
  std::sort(woken_.begin(), woken_.end());
  const auto regs_mid = static_cast<std::ptrdiff_t>(active_regs_.size());
  for (const std::uint32_t d : woken_) {
    if (is_driver_[d]) {
      auto pos = active_drivers_.begin();
      while (pos != active_drivers_.end() && *pos < d) ++pos;
      active_drivers_.insert(pos, d);
    } else {
      active_regs_.push_back(d);
    }
  }
  std::inplace_merge(active_regs_.begin(), active_regs_.begin() + regs_mid,
                     active_regs_.end());
}

void Engine::step() {
  if (now_ == 0) {
    if (elaboration_check_) {
      // One-shot: the netlist is complete (add/add_wakeup reject changes
      // once time starts), so the verdict cannot change on later cycles.
      const auto check = std::move(elaboration_check_);
      elaboration_check_ = nullptr;
      check(*this);
    }
    for (EngineObserver* obs : observers_) obs->on_elaborated(*this);
  }
  const bool pooled =
      pool_ != nullptr && parallel_.size() >= kMinParallelModules;
  if (gating_ == Gating::kSparse && !dense_fallback_) {
    if (pooled) {
      step_parallel_gated();
    } else {
      step_serial_gated();
    }
  } else {
    if (pooled) {
      step_parallel();
    } else {
      step_serial();
    }
  }
  ++now_;
  dense_evals_ += modules_.size();
  if (!observers_.empty()) {
    // now_ - 1 just completed: registers hold their post-edge values.
    for (EngineObserver* obs : observers_) obs->on_cycle(*this, now_ - 1);
  }
}

void Engine::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

RunUntilResult Engine::run_until(const std::function<bool()>& done,
                                 Cycle max_cycles) {
  if (done()) return {true, 0};
  for (Cycle i = 1; i <= max_cycles; ++i) {
    step();
    if (done()) return {true, i};
  }
  return {false, max_cycles};
}

}  // namespace sysdp::sim
