#include "sim/engine.hpp"

#include "sim/thread_pool.hpp"

namespace sysdp::sim {

namespace {

/// Below this many parallel-safe modules a fork-join per phase costs more
/// than it saves; small arrays silently run serially.
constexpr std::size_t kMinParallelModules = 8;

}  // namespace

void Engine::step_serial() {
  for (Module* m : modules_) m->eval(now_);
  for (Module* m : modules_) m->commit();
}

void Engine::step_parallel() {
  // Phase 1a: combinational drivers, serially, in registration order —
  // their outputs must be stable before any listener evaluates.
  for (Module* m : drivers_) m->eval(now_);
  // Phase 1b: register-only modules read committed state (plus the driver
  // outputs fixed above) and stage writes to their own registers only, so
  // any order — including concurrent — yields bit-identical staging.
  pool_->parallel_for(parallel_.size(),
                      [this](std::size_t i) { parallel_[i]->eval(now_); });
  // Phase 2 (after the implicit barrier): every module latches only its
  // own registers, so the clock edge parallelises over all modules.
  pool_->parallel_for(modules_.size(),
                      [this](std::size_t i) { modules_[i]->commit(); });
}

void Engine::step() {
  if (pool_ != nullptr && parallel_.size() >= kMinParallelModules) {
    step_parallel();
  } else {
    step_serial();
  }
  ++now_;
  evals_ += modules_.size();
}

void Engine::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

RunUntilResult Engine::run_until(const std::function<bool()>& done,
                                 Cycle max_cycles) {
  if (done()) return {true, 0};
  for (Cycle i = 1; i <= max_cycles; ++i) {
    step();
    if (done()) return {true, i};
  }
  return {false, max_cycles};
}

}  // namespace sysdp::sim
