// Fixed-size worker pool for the parallel simulation backend.
//
// Two usage patterns, both fork-join:
//
//   * parallel_for(n, body): split [0, n) into contiguous chunks, one per
//     lane (workers + the calling thread), run them concurrently and block
//     until every index is done.  The per-cycle eval/commit phases of
//     ParallelEngine are built on this; the chunk split is static and
//     deterministic so a run is reproducible regardless of scheduling.
//   * submit(fn) -> future: enqueue an independent task.  BatchRunner uses
//     this to spread whole simulations (sweep points) across the pool,
//     which is where the embarrassingly-parallel wall-clock win lives.
//
// The pool never spins: idle workers sleep on a condition variable.  A
// pool of size 0 is legal and means "no worker threads": parallel_for and
// submit both degenerate to inline execution on the caller, which keeps
// thread-count sweeps (including 1) trivial to express.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sysdp::sim {

/// Host-layer telemetry hook: receives wall-clock spans of pool activity
/// so chrome-trace exporters can show where BatchSpeedup's time goes.
///
///   * kChunk       — one lane executing its parallel_for chunk
///   * kTask        — one submit()ted task executing on a worker
///   * kBarrierWait — the calling thread blocked on the parallel_for
///                    barrier after finishing its own chunk (work vs.
///                    wait, the number that explains fork-join overhead)
///
/// on_span is called concurrently from every lane; implementations must be
/// thread-safe.  Timestamps are steady-clock nanoseconds (same epoch for
/// every span of one process, so spans are directly comparable).
class PoolObserver {
 public:
  enum class SpanKind : std::uint8_t { kChunk, kTask, kBarrierWait };

  virtual ~PoolObserver() = default;
  virtual void on_span(std::size_t lane, SpanKind kind, std::uint64_t t0_ns,
                      std::uint64_t t1_ns) = 0;
};

class ThreadPool {
 public:
  /// `workers` worker threads in addition to the calling thread;
  /// `default_workers()` picks hardware_concurrency - 1.
  explicit ThreadPool(std::size_t workers = default_workers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (the calling thread adds one more
  /// lane during parallel_for).
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  /// Concurrent lanes available to parallel_for: workers + caller.
  [[nodiscard]] std::size_t num_lanes() const noexcept {
    return workers_.size() + 1;
  }

  [[nodiscard]] static std::size_t default_workers() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }

  /// Run body(i) for every i in [0, n), blocking until all are done.  The
  /// range is split into num_lanes() contiguous chunks; the caller executes
  /// one chunk itself.  body must not recursively call parallel_for on the
  /// same pool.  Exceptions thrown by body terminate (the simulation
  /// modules it drives are noexcept in practice; buses throw only on
  /// design bugs).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but lanes *claim* `grain`-sized index blocks off a
  /// shared counter instead of receiving one static chunk each.  The static
  /// split is right for the engine's eval/commit phases (uniform work, one
  /// cache-friendly range per lane) but wrong for batch sweeps, where jobs
  /// have wildly different costs and one slow job serialises its whole
  /// chunk behind it.  Dynamic claiming keeps every lane busy until the
  /// work runs out, at the cost of one atomic fetch-add per block —
  /// which is why tiny jobs should be claimed several at a time (grain).
  /// `grain == 0` picks a heuristic; which indices run on which lane is
  /// scheduling-dependent, so bodies must not care (BatchRunner's
  /// index-addressed result slots satisfy this by construction).
  void parallel_for_dynamic(std::size_t n,
                            const std::function<void(std::size_t)>& body,
                            std::size_t grain = 0);

  /// Attach (or detach, with nullptr) the telemetry observer.  Borrowed,
  /// not owned.  Not synchronised: set it while no parallel_for or
  /// submitted task is in flight, and only from the owning thread.
  void set_observer(PoolObserver* obs) noexcept { observer_ = obs; }
  [[nodiscard]] PoolObserver* observer() const noexcept { return observer_; }

  /// Steady-clock nanoseconds on the epoch PoolObserver spans use.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Enqueue one independent task; returns a future for its result.  With
  /// an observer attached the task is timed and reported as a kTask span.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    if (observer_ != nullptr) {
      return submit_impl<R>([this, fn = std::forward<Fn>(fn)]() mutable -> R {
        const std::uint64_t t0 = now_ns();
        if constexpr (std::is_void_v<R>) {
          fn();
          note_span(PoolObserver::SpanKind::kTask, t0, now_ns());
        } else {
          R r = fn();
          note_span(PoolObserver::SpanKind::kTask, t0, now_ns());
          return r;
        }
      });
    }
    return submit_impl<R>(std::forward<Fn>(fn));
  }

 private:
  struct ForJob;
  struct DynJob;

  template <typename R, typename Fn>
  std::future<R> submit_impl(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // no workers: run inline
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  void worker_loop(std::size_t lane);
  /// Forward a span to the observer, stamping the calling thread's lane.
  void note_span(PoolObserver::SpanKind kind, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) const;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  PoolObserver* observer_ = nullptr;
};

}  // namespace sysdp::sim
