// Fixed-size worker pool for the parallel simulation backend.
//
// Two usage patterns, both fork-join:
//
//   * parallel_for(n, body): split [0, n) into contiguous chunks, one per
//     lane (workers + the calling thread), run them concurrently and block
//     until every index is done.  The per-cycle eval/commit phases of
//     ParallelEngine are built on this; the chunk split is static and
//     deterministic so a run is reproducible regardless of scheduling.
//   * submit(fn) -> future: enqueue an independent task.  BatchRunner uses
//     this to spread whole simulations (sweep points) across the pool,
//     which is where the embarrassingly-parallel wall-clock win lives.
//
// The pool never spins: idle workers sleep on a condition variable.  A
// pool of size 0 is legal and means "no worker threads": parallel_for and
// submit both degenerate to inline execution on the caller, which keeps
// thread-count sweeps (including 1) trivial to express.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sysdp::sim {

class ThreadPool {
 public:
  /// `workers` worker threads in addition to the calling thread;
  /// `default_workers()` picks hardware_concurrency - 1.
  explicit ThreadPool(std::size_t workers = default_workers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (the calling thread adds one more
  /// lane during parallel_for).
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  /// Concurrent lanes available to parallel_for: workers + caller.
  [[nodiscard]] std::size_t num_lanes() const noexcept {
    return workers_.size() + 1;
  }

  [[nodiscard]] static std::size_t default_workers() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }

  /// Run body(i) for every i in [0, n), blocking until all are done.  The
  /// range is split into num_lanes() contiguous chunks; the caller executes
  /// one chunk itself.  body must not recursively call parallel_for on the
  /// same pool.  Exceptions thrown by body terminate (the simulation
  /// modules it drives are noexcept in practice; buses throw only on
  /// design bugs).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Enqueue one independent task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // no workers: run inline
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  struct ForJob;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace sysdp::sim
