// Clocked simulation engine.
//
// Runs a set of modules through eval/commit phases.  Two execution modes
// share one Engine type:
//
//   * Serial (default): modules are evaluated in registration order
//     (drivers of combinational buses first); registers make all PE-to-PE
//     links sequential, so ordering only matters for bus designs.
//   * Parallel (construct with a ThreadPool): the synchronous two-phase
//     register semantics make eval order-independent for purely registered
//     designs, so the eval phase fans all non-combinational modules across
//     the pool, with a barrier before the commit phase, which is likewise
//     parallel (each module latches only its own registers).  Modules that
//     drive same-cycle combinational state (Module::combinational()) are
//     evaluated serially, in registration order, before the parallel fan-
//     out, so bus designs stay deterministic and results are bit-identical
//     to a serial run.
//
// The engine never owns modules: array models own their PEs and register
// them for stepping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class ThreadPool;

/// Outcome of Engine::run_until: whether the predicate fired and how many
/// cycles were consumed getting there (0 if it already held at entry).
struct RunUntilResult {
  bool satisfied = false;
  Cycle cycles = 0;
};

class Engine {
 public:
  /// Serial engine.
  Engine() = default;

  /// Parallel engine: eval/commit phases fan out across `pool` (nullptr
  /// falls back to serial).  The pool is borrowed, not owned, so one pool
  /// can serve many engines (and the batch runner) at once.
  explicit Engine(ThreadPool* pool) : pool_(pool) {}

  /// Register a module.  Order matters for combinational bus visibility:
  /// drivers first, listeners after.
  void add(Module& m) {
    modules_.push_back(&m);
    if (m.combinational()) {
      drivers_.push_back(&m);
    } else {
      parallel_.push_back(&m);
    }
  }

  /// Advance one clock cycle.
  void step();

  /// Advance `n` cycles.
  void run(Cycle n);

  /// Step until `done()` returns true, up to `max_cycles`.  The predicate
  /// is checked once at entry (0 cycles consumed if it already holds) and
  /// once after each cycle — never twice for the same machine state.
  [[nodiscard]] RunUntilResult run_until(const std::function<bool()>& done,
                                         Cycle max_cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_modules() const noexcept {
    return modules_.size();
  }

  /// True if this engine fans eval/commit across a thread pool.
  [[nodiscard]] bool parallel() const noexcept { return pool_ != nullptr; }

  /// Module evaluations performed so far (modules x cycles stepped), the
  /// numerator of the PE-evals/sec throughput metric.
  [[nodiscard]] std::uint64_t module_evals() const noexcept { return evals_; }

 private:
  void step_serial();
  void step_parallel();

  std::vector<Module*> modules_;   ///< all, in registration order
  std::vector<Module*> drivers_;   ///< combinational: serial eval prefix
  std::vector<Module*> parallel_;  ///< register-only: parallel-safe eval
  ThreadPool* pool_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t evals_ = 0;
};

}  // namespace sysdp::sim
