// Clocked simulation engine.
//
// Runs a set of modules through eval/commit phases.  Two execution modes
// share one Engine type:
//
//   * Serial (default): modules are evaluated in registration order
//     (drivers of combinational buses first); registers make all PE-to-PE
//     links sequential, so ordering only matters for bus designs.
//   * Parallel (construct with a ThreadPool): the synchronous two-phase
//     register semantics make eval order-independent for purely registered
//     designs, so the eval phase fans all non-combinational modules across
//     the pool, with a barrier before the commit phase, which is likewise
//     parallel (each module latches only its own registers).  Modules that
//     drive same-cycle combinational state (Module::combinational()) are
//     evaluated serially, in registration order, before the parallel fan-
//     out, so bus designs stay deterministic and results are bit-identical
//     to a serial run.
//
// Orthogonal to serial/parallel is the *gating* mode:
//
//   * Gating::kDense: every module evaluates and commits every cycle (the
//     classic cycle-accurate sweep).
//   * Gating::kSparse: the engine keeps an active set.  After each commit
//     phase it asks every evaluated module Module::quiescent(); a
//     quiescent module is dropped from the set and is neither evaluated
//     nor committed again until a wakeup edge (add_wakeup) fires — i.e.
//     until a declared predecessor ends a cycle non-quiescent.  Because a
//     quiescent module's eval is an observational no-op by contract, and
//     every input that can reactivate it is covered by an edge, the gated
//     run is bit-identical to the dense run (in both serial and pooled
//     mode) while skipping the virtual-dispatch cost of idle PEs — the
//     work-efficiency analogue of the paper's processor-utilisation
//     analysis, where large PE fractions idle during pipeline fill/drain.
//
// The engine never owns modules: array models own their PEs and register
// them for stepping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class EngineObserver;
class OpRecorder;
class ThreadPool;

/// Outcome of Engine::run_until: whether the predicate fired and how many
/// cycles were consumed getting there (0 if it already held at entry).
struct RunUntilResult {
  bool satisfied = false;
  Cycle cycles = 0;
};

/// Execution mode of the eval/commit sweep: dense (every module, every
/// cycle) or sparse (skip quiescent modules, neighbour wakeup).
enum class Gating : std::uint8_t { kDense, kSparse };

class Engine {
 public:
  /// Serial dense engine.
  Engine() = default;

  /// Serial engine with an explicit gating mode.
  explicit Engine(Gating gating) : gating_(gating) {}

  /// Parallel engine: eval/commit phases fan out across `pool` (nullptr
  /// falls back to serial).  The pool is borrowed, not owned, so one pool
  /// can serve many engines (and the batch runner) at once.
  explicit Engine(ThreadPool* pool, Gating gating = Gating::kDense)
      : pool_(pool), gating_(gating) {}

  /// Register a module.  Order matters for combinational bus visibility:
  /// drivers first, listeners after.
  void add(Module& m);

  /// Declare a wakeup edge for Gating::kSparse: whenever `src` ends a
  /// cycle active and non-quiescent, `dst` is evaluated the next cycle.
  /// Array builders declare one edge per register-dataflow arc that can
  /// carry a reactivating value (left PE -> right PE, host -> first PE,
  /// tail -> feedback consumer, ...).  Both modules must already be
  /// add()ed; throws std::invalid_argument otherwise.  Ignored (harmless)
  /// in dense mode.
  ///
  /// Elaboration must be complete before time starts: once step() has run,
  /// a module may already have been demoted without the new edge's
  /// protection, so add_wakeup throws std::logic_error instead of letting
  /// the late edge silently fail to guard the cycles that already passed.
  void add_wakeup(const Module& src, const Module& dst);

  /// Install a check that runs once, at the first step(), after the
  /// netlist is fully elaborated and before any module evaluates.  The
  /// analysis layer uses this for the opt-in debug mode that lints every
  /// engine at elaboration and fails fast (analysis::attach_debug_lint);
  /// the hook keeps sim free of a dependency on the analysis library.
  /// Throwing from the check aborts the run before cycle 0.
  void set_elaboration_check(std::function<void(const Engine&)> check) {
    elaboration_check_ = std::move(check);
  }

  /// Attach a telemetry probe (see sim/observer.hpp).  The observer is
  /// borrowed, not owned, and must outlive the engine's stepping.  Must be
  /// called before the first step() — on_elaborated fires exactly once, at
  /// cycle 0, so a late observer would silently miss it; add_observer
  /// throws std::logic_error instead (mirroring add_wakeup).  With no
  /// observers attached the per-cycle cost is a single empty()-check.
  void add_observer(EngineObserver* obs);

  /// Attached observers, in attachment (= notification) order.
  [[nodiscard]] const std::vector<EngineObserver*>& observers()
      const noexcept {
    return observers_;
  }

  /// Attach an op recorder (sim/record.hpp) for trace-based lowering.  The
  /// recorder is borrowed, not owned.  Array models query recorder() during
  /// elaboration and narrate their semiring ops and register writes into
  /// it; with none attached every narration site is a single never-taken
  /// branch.  Must be set before elaboration (the first add()) so no write
  /// escapes the narration; throws std::logic_error otherwise.
  void set_recorder(OpRecorder* rec) {
    if (!modules_.empty() || now_ > 0) {
      throw std::logic_error(
          "Engine::set_recorder: attach before elaboration — modules bind "
          "the recorder when they register");
    }
    recorder_ = rec;
  }

  /// The attached op recorder, or nullptr.
  [[nodiscard]] OpRecorder* recorder() const noexcept { return recorder_; }

  /// Advance one clock cycle.
  void step();

  /// Advance `n` cycles.
  void run(Cycle n);

  /// Step until `done()` returns true, up to `max_cycles`.  The predicate
  /// is checked once at entry (0 cycles consumed if it already holds) and
  /// once after each cycle — never twice for the same machine state.
  [[nodiscard]] RunUntilResult run_until(const std::function<bool()>& done,
                                         Cycle max_cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_modules() const noexcept {
    return modules_.size();
  }

  /// Registered modules in registration (= evaluation) order.  Read-only
  /// connectivity introspection for the analysis layer.
  [[nodiscard]] const std::vector<Module*>& modules() const noexcept {
    return modules_;
  }

  /// Declared wakeup edges as (src, dst) module pairs, in declaration
  /// order per source.  Read-only view for the analysis layer.
  [[nodiscard]] std::vector<std::pair<const Module*, const Module*>>
  wakeup_edges() const;

  /// True if this engine fans eval/commit across a thread pool.
  [[nodiscard]] bool parallel() const noexcept { return pool_ != nullptr; }

  [[nodiscard]] Gating gating() const noexcept { return gating_; }

  /// Window activity at or above which a sparse engine stops gating: the
  /// per-module bookkeeping of Gating::kSparse is pure overhead when almost
  /// nothing sleeps (measured: design3_traffic at 99% activity ran 0.79x
  /// dense speed under gating).  15/16 keeps genuinely sparse phases —
  /// pipeline fill/drain, wavefronts — comfortably below the trigger.
  static constexpr double kDenseFallbackActivity = 0.9375;

  /// Quiescence is polled every this many cycles.  Between polls an active
  /// module stays active unconditionally, so a module sleeps up to
  /// kQuiescencePeriod - 1 cycles late — by the quiescence contract those
  /// extra evals are observational no-ops, and idle phases worth gating
  /// (pipeline fill/drain) last O(array width) cycles, so the amortised
  /// saving dwarfs the delay.  The adaptive fallback judges its first
  /// activity window — and can first trip — at the second poll, cycle
  /// kQuiescencePeriod.
  static constexpr Cycle kQuiescencePeriod = 4;

  /// True once a Gating::kSparse engine has reverted to dense sweeps
  /// because measured window activity reached kDenseFallbackActivity.  The
  /// fallback is one-way: an instance hot enough to trip it has already
  /// shown its sleepers are not worth tracking.  Results are unchanged —
  /// dense stepping is the gated path's own correctness oracle.
  [[nodiscard]] bool dense_fallback() const noexcept {
    return dense_fallback_;
  }

  /// Cycle at which the fallback engaged (meaningful if dense_fallback()).
  [[nodiscard]] Cycle dense_fallback_cycle() const noexcept {
    return fallback_cycle_;
  }

  /// The gating mode actually steering step(): requested mode until the
  /// adaptive fallback trips, kDense after.
  [[nodiscard]] Gating effective_gating() const noexcept {
    return dense_fallback_ ? Gating::kDense : gating_;
  }

  /// Module evaluations actually performed so far.  In dense mode this is
  /// modules x cycles; in sparse mode only active modules count.
  [[nodiscard]] std::uint64_t module_evals() const noexcept {
    return active_evals_;
  }
  /// Same as module_evals() — the numerator of activity().
  [[nodiscard]] std::uint64_t active_evals() const noexcept {
    return active_evals_;
  }
  /// What a dense sweep would have cost: modules x cycles stepped.
  [[nodiscard]] std::uint64_t dense_evals() const noexcept {
    return dense_evals_;
  }
  /// Measured engine activity: active evals / dense evals in [0, 1].  The
  /// simulator-side counterpart of the paper's processor utilisation,
  /// though with a different denominator (every registered module, not
  /// just PEs): an active module is not always doing a useful MAC, and
  /// every useful MAC happens inside an active eval.
  [[nodiscard]] double activity() const noexcept {
    return dense_evals_ > 0 ? static_cast<double>(active_evals_) /
                                  static_cast<double>(dense_evals_)
                            : 1.0;
  }

 private:
  void step_serial();
  void step_parallel();
  void step_serial_gated();
  void step_parallel_gated();
  /// Build the persistent active lists from the active_ flags.
  void init_gated();
  /// Post-commit bookkeeping: every active module wakes its declared
  /// successors each cycle (sleeping targets are appended to the active
  /// lists); quiescence is polled — and sleepers demoted — only every
  /// kQuiescencePeriod cycles, keeping the virtual quiescent() call off
  /// the per-cycle critical path.  A late demotion only runs extra no-op
  /// evals, so results are unchanged.
  void refresh_active();
  [[nodiscard]] std::size_t index_of(const Module& m) const;

  std::vector<Module*> modules_;   ///< all, in registration order
  /// Module -> registration index, so add_wakeup on an n-PE array costs
  /// O(edges) instead of O(edges * n) linear scans.
  std::unordered_map<const Module*, std::uint32_t> module_index_;
  std::vector<Module*> drivers_;   ///< combinational: serial eval prefix
  std::vector<Module*> parallel_;  ///< register-only: parallel-safe eval
  std::vector<std::uint32_t> driver_idx_;    ///< modules_ index per driver
  std::vector<std::uint32_t> parallel_idx_;  ///< modules_ index per parallel
  std::vector<std::vector<std::uint32_t>> wake_;  ///< wakeup successors
  /// CSR view of wake_, rebuilt by init_gated: successors of module i are
  /// wake_edges_[wake_off_[i] .. wake_off_[i+1]) — one contiguous walk per
  /// refresh instead of a pointer chase per active module.
  std::vector<std::uint32_t> wake_off_, wake_edges_;
  std::vector<std::uint8_t> active_;     ///< active flag per module
  std::vector<std::uint8_t> is_driver_;  ///< combinational flag per module
  /// Persistent active sets, maintained incrementally (wake appends,
  /// demote removes).  Both are kept sorted by registration index: drivers
  /// need it for bus visibility; register-only modules don't need it for
  /// correctness (two-phase registers make their eval order unobservable)
  /// but an in-order sweep keeps per-module state accesses streaming for
  /// the hardware prefetcher.
  std::vector<std::uint32_t> active_drivers_;
  std::vector<std::uint32_t> active_regs_;
  std::vector<std::uint32_t> woken_;  ///< refresh_active scratch
  bool gated_init_ = false;
  std::function<void(const Engine&)> elaboration_check_;
  std::vector<EngineObserver*> observers_;
  OpRecorder* recorder_ = nullptr;
  ThreadPool* pool_ = nullptr;
  Gating gating_ = Gating::kDense;
  Cycle now_ = 0;
  std::uint64_t active_evals_ = 0;
  std::uint64_t dense_evals_ = 0;
  /// Adaptive fallback bookkeeping: active_evals_ / now_ as of the last
  /// quiescence poll, so each poll judges only the window since the one
  /// before it (a dense fill phase must not poison a long sparse tail).
  bool dense_fallback_ = false;
  Cycle fallback_cycle_ = 0;
  std::uint64_t fallback_mark_evals_ = 0;
  Cycle fallback_mark_cycle_ = 0;
};

}  // namespace sysdp::sim
