// Clocked simulation engine.
//
// Runs a set of modules through eval/commit phases.  Modules are evaluated
// in registration order (drivers of combinational buses first); registers
// make all PE-to-PE links sequential, so ordering only matters for bus
// designs.  The engine never owns modules: array models own their PEs and
// register them for stepping.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class Engine {
 public:
  /// Register a module.  Order matters for combinational bus visibility:
  /// drivers first, listeners after.
  void add(Module& m) { modules_.push_back(&m); }

  /// Advance one clock cycle.
  void step();

  /// Advance `n` cycles.
  void run(Cycle n);

  /// Step until `done()` returns true, up to `max_cycles`.  Returns true if
  /// the predicate fired (checked after each full cycle).
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_modules() const noexcept {
    return modules_.size();
  }

 private:
  std::vector<Module*> modules_;
  Cycle now_ = 0;
};

}  // namespace sysdp::sim
