// Op-recording hook for trace-based lowering.
//
// The compiled backend (src/compile) does not re-implement any array's
// control logic.  Instead it runs the modular design once on a serial,
// dense Engine — the oracle — with an OpRecorder attached, and the array
// models narrate every value-carrying action they perform: each semiring
// operation becomes a tape op, each register write of an unmodified value
// becomes a compile-time binding update (a copy elided from the tape).
// Because all five paper designs steer data by tags, counters and validity
// bits — never by comparing cost values — the recorded schedule is valid
// for every cost assignment with the same instance structure, and the
// replay is bit-identical and cycle-exact by construction.
//
// The model is SSA over a flat slot file:
//
//   * A SlotId names one immutable 64-bit value cell.  Constants are
//     interned; every recorded op allocates a fresh destination slot.
//   * A *lane* is a storage key (the same `const void*` keys modules
//     declare through sim/port.hpp) currently *bound* to a slot.  Copying
//     a value through a register rebinds the destination lane — no tape op
//     is emitted.  `bind_staged` follows two-phase register semantics and
//     takes effect at end of cycle; `bind_now` is for state that is
//     legitimately visible within the cycle that wrote it (combinational
//     buses, a cell folding into its own running best).
//   * Pair slots model Design 3's travelling (cost, argmin) tokens: the
//     arg rides in the slot adjacent to the value, so one SlotId moves
//     both halves.
//
// sim knows only this abstract interface; the concrete Recorder that turns
// the narration into a CompiledNetlist lives in src/compile.  Arrays guard
// every call behind a null check, so a run without a recorder pays one
// predictable branch per site.
#pragma once

#include <cstdint>
#include <string_view>

namespace sysdp::sim {

/// Index of one immutable value cell in the compiled slot file.  32-bit by
/// design: four slot ids fit in one cache line's worth of op descriptor.
using SlotId = std::uint32_t;

class OpRecorder {
 public:
  OpRecorder() = default;
  OpRecorder(const OpRecorder&) = delete;
  OpRecorder& operator=(const OpRecorder&) = delete;
  virtual ~OpRecorder() = default;

  // --- slots --------------------------------------------------------------
  /// Interned constant value; repeated calls with the same value return the
  /// same slot.
  virtual SlotId constant(std::int64_t value) = 0;
  /// Interned (value, arg) pair occupying two adjacent slots; returns the
  /// value slot, the arg lives at the returned id + 1.
  virtual SlotId constant_pair(std::int64_t value, std::int64_t arg) = 0;
  /// Slot currently bound to `key`.  An unbound lane is initialised to an
  /// interned constant holding `live` — the value the oracle just observed
  /// there — so reset state is captured without per-array bookkeeping.
  virtual SlotId lane(const void* key, std::int64_t live) = 0;
  /// Pair-slot variant of lane(); auto-initialises to constant_pair.
  virtual SlotId lane_pair(const void* key, std::int64_t live,
                           std::int64_t arg) = 0;
  /// Slot staged for `key` this cycle if any, else the current binding.
  /// Mirrors a commit phase reading a register it just latched.
  virtual SlotId pending(const void* key, std::int64_t live) = 0;

  // --- bindings -----------------------------------------------------------
  /// Rebind `key` to `slot`, visible to reads later in the same cycle.
  virtual void bind_now(const void* key, SlotId slot) = 0;
  /// Rebind `key` to `slot` at end of cycle (two-phase register write).
  virtual void bind_staged(const void* key, SlotId slot) = 0;

  // --- ops (each returns the fresh destination slot) ----------------------
  /// dst = base (+) (w (x) x) — the Design 1/2 multiply-accumulate.
  virtual SlotId mac(SlotId base, std::int64_t w, SlotId x) = 0;
  /// dst = best (+) (left (x) right (x) local) — the triangular candidate
  /// fold (kern::interval_candidate then in-place min).
  virtual SlotId fold(SlotId best, SlotId left, SlotId right,
                      std::int64_t local) = 0;
  /// Pair relaxation (Design 3's add-compare): cand = kh (x) edge; if cand
  /// improves pair's value, dst pair = (cand, station), else dst pair =
  /// src pair.  `pair` and the result are pair slots.
  virtual SlotId relax(SlotId pair, SlotId kh, std::int64_t edge,
                       std::int64_t station) = 0;

  // --- results ------------------------------------------------------------
  /// Declare that the design's result `tag[index]` is the value in `slot`;
  /// `observed` is the value the oracle produced, kept as the built-in
  /// differential expectation.  Last declaration per (tag, index) wins,
  /// mirroring a harvest loop overwriting an output cell.
  virtual void output(std::string_view tag, std::uint64_t index, SlotId slot,
                      std::int64_t observed) = 0;
  /// Same, but for the arg half of pair slot `pair`.
  virtual void output_arg(std::string_view tag, std::uint64_t index,
                          SlotId pair, std::int64_t observed) = 0;
};

}  // namespace sysdp::sim
