// Two-phase (master-slave) register model.
//
// Systolic arrays are synchronous: every PE reads its neighbours' outputs
// *as they were at the previous clock edge* and presents new outputs at the
// next edge.  Register<T> gives exactly that semantics: read() returns the
// committed value, write() stages the next value, and the engine calls
// commit() on all registers only after every module has evaluated.  The
// result is a deterministic simulation independent of module ordering (for
// purely registered designs).
#pragma once

#include <utility>

namespace sysdp::sim {

template <typename T>
class Register {
 public:
  Register() = default;
  explicit Register(T initial) : current_(initial), next_(initial) {}

  /// Committed value, as of the last clock edge.
  [[nodiscard]] const T& read() const noexcept { return current_; }

  /// Stage a value for the next clock edge.  The last write in a cycle wins
  /// (matching a multiplexed register input).
  void write(T v) noexcept {
    next_ = std::move(v);
    written_ = true;
  }

  /// Latch the staged value.  If nothing was written this cycle the
  /// register holds (like a register with a clock-enable).
  void commit() noexcept {
    if (written_) {
      current_ = next_;
      written_ = false;
    }
  }

  /// Immediate (non-staged) load, for initialisation before time starts.
  void reset(T v) noexcept {
    current_ = v;
    next_ = v;
    written_ = false;
  }

 private:
  T current_{};
  T next_{};
  bool written_ = false;
};

}  // namespace sysdp::sim
