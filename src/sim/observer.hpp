// Telemetry hooks for the clocked engine.
//
// Observability is opt-in and composable: an EngineObserver attaches to an
// Engine before time starts and is notified once after elaboration and once
// per completed cycle.  The engine guards every notification behind a single
// empty()-check, so an engine with no observers pays one branch per cycle —
// the "zero overhead when off" contract the bench gate enforces.
//
// Two roles, deliberately separate:
//
//   * EngineObserver — a *clocked* probe.  It sees the engine after each
//     commit phase, when all registers hold their new values, and samples
//     whatever it cares about (VCD writers sample declared ports, timeline
//     sinks sample busy counters).  Observers are passive: they must not
//     mutate modules or the engine.
//   * EventSink — a destination for named scalar events, the replacement
//     for the ad-hoc `Trace*` plumbing array models used to carry.  Sinks
//     own their bounding policy and report how many events they discarded,
//     so overflow is an explicit, queryable fact instead of a latent flag.
//
// sim::Trace implements EventSink, so existing call sites keep working;
// src/obs builds richer sinks (VCD, timelines, chrome traces) on top of
// EngineObserver.
#pragma once

#include <cstdint>
#include <string>

#include "sim/module.hpp"

namespace sysdp::sim {

class Engine;

/// Passive per-cycle probe attached via Engine::add_observer.  Attach
/// before the first step(); the engine rejects late attachment because
/// on_elaborated would never fire for a late observer.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// Fired once, at the first step(), after the netlist is complete and any
  /// elaboration check has passed, before any module evaluates.  This is
  /// where a probe walks Module::describe_ports and builds its sample plan.
  virtual void on_elaborated(const Engine& engine) { (void)engine; }

  /// Fired after cycle `t` fully completed (eval + commit done, so all
  /// registers hold their post-edge values; Engine::now() == t + 1).
  virtual void on_cycle(const Engine& engine, Cycle t) {
    (void)engine;
    (void)t;
  }
};

/// Destination for named (cycle, signal, value) events.  Implementations
/// choose their own bounding policy and account for discarded events.
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void record(Cycle t, std::string signal, std::int64_t value) = 0;

  /// Events this sink had to discard under its bounding policy; 0 for
  /// unbounded sinks.  Array models propagate this into RunResult so a
  /// truncated trace is visible at the API surface.
  [[nodiscard]] virtual std::uint64_t dropped_events() const noexcept {
    return 0;
  }
};

}  // namespace sysdp::sim
