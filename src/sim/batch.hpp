// Batched sweep runner: many independent simulations across one pool.
//
// Every bench sweep (N-sweeps, K-sweeps, design ablations) runs a set of
// simulations that share nothing — each job builds its own array model,
// engine and stats — so they are embarrassingly parallel and this is where
// the big wall-clock win of the parallel backend lives.  BatchRunner keeps
// the sweep code shaped exactly like the serial loop it replaces: jobs are
// indexed 0..n-1, results come back in index order, and a pool with zero
// workers (or a null pool) degenerates to the serial loop, so thread-count
// sweeps including 1 need no special casing.
//
// Determinism: jobs must not share mutable state (each sweep point owns
// its instance); under that contract the result vector is bit-identical to
// the serial loop regardless of scheduling, which the determinism tests
// assert for Designs 1-3, the GKT array and the triangular family.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp::sim {

class BatchRunner {
 public:
  /// `pool == nullptr` means run every job inline on the caller.
  explicit BatchRunner(ThreadPool* pool) : pool_(pool) {}

  [[nodiscard]] std::size_t lanes() const noexcept {
    return pool_ != nullptr ? pool_->num_lanes() : 1;
  }

  /// Run `make(i)` for i in [0, n); returns results in index order.
  template <typename Fn>
  auto run(std::size_t n, Fn&& make)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<R>> slots(n);
    auto body = [&](std::size_t i) { slots[i].emplace(make(i)); };
    if (pool_ != nullptr) {
      // Dynamic claiming, one job per claim: sweep points differ wildly in
      // cost (a 96-PE design next to a 4-PE one), so the static per-lane
      // split used for engine phases serialises slow jobs behind each
      // other and loses at small grain.  Which lane runs which job is
      // scheduling-dependent; results stay bit-identical because slots are
      // addressed by index.
      pool_->parallel_for_dynamic(n, body, 1);
    } else {
      for (std::size_t i = 0; i < n; ++i) body(i);
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Run `chunk(first, count)` over ⌈n/width⌉ contiguous chunks of
  /// [0, n) — every chunk is `width` jobs except a possibly-short tail —
  /// and return the chunk results in chunk-index order.  This is the lane
  /// path for SIMD-batched executors (compile::BatchedCompiledEngine):
  /// each chunk becomes one batched replay of `count` lanes on one pool
  /// lane, so pool parallelism multiplies with in-chunk vectorisation
  /// instead of competing with it.
  template <typename Fn>
  auto run_chunks(std::size_t n, std::size_t width, Fn&& chunk)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, std::size_t>> {
    const std::size_t w = width == 0 ? 1 : width;
    const std::size_t chunks = (n + w - 1) / w;
    return run(chunks, [&](std::size_t c) {
      const std::size_t first = c * w;
      return chunk(first, std::min(w, n - first));
    });
  }

 private:
  ThreadPool* pool_;
};

/// Time one sweep twice — serial loop, then batched across `pool` — and
/// report the measured speedup.  Results of the batched run are returned
/// through `out` (if non-null) so callers can cross-check bit-identity
/// with the serial pass.
template <typename Fn>
[[nodiscard]] BatchSpeedup measure_batch_speedup(
    ThreadPool& pool, std::size_t jobs, Fn&& make,
    std::vector<std::invoke_result_t<Fn&, std::size_t>>* out = nullptr) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  BatchSpeedup s;
  s.jobs = jobs;
  s.lanes = pool.num_lanes();

  BatchRunner serial(nullptr);
  WallTimer t1;
  std::vector<R> base = serial.run(jobs, make);
  s.serial_seconds = t1.seconds();

  BatchRunner batched(&pool);
  WallTimer t2;
  std::vector<R> par = batched.run(jobs, make);
  s.batch_seconds = t2.seconds();

  if (out != nullptr) *out = std::move(par);
  (void)base;
  return s;
}

}  // namespace sysdp::sim
