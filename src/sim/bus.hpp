// Broadcast bus model (Design 2, Figure 4; Section 6.2 broadcast mapping).
//
// A bus is combinational: the value driven in cycle t is visible to every
// listener in the same cycle.  To keep the simulation deterministic the
// driver must be evaluated before the listeners; the engine evaluates
// modules in registration order, so designs register bus drivers first.
// The bus checks the single-driver-per-cycle invariant that real tri-state
// or multiplexed buses must obey.
#pragma once

#include <optional>
#include <stdexcept>

#include "sim/module.hpp"

namespace sysdp::sim {

template <typename T>
class Bus {
 public:
  /// Drive the bus for the current cycle.  Throws if two drivers collide.
  void drive(Cycle t, T v) {
    if (cycle_ == t && value_.has_value()) {
      throw std::logic_error("Bus: two drivers in one cycle");
    }
    cycle_ = t;
    value_ = std::move(v);
    ++drive_count_;
  }

  /// Value on the bus in cycle `t`, if any driver spoke this cycle.
  [[nodiscard]] std::optional<T> sample(Cycle t) const {
    if (cycle_ == t) return value_;
    return std::nullopt;
  }

  /// Number of bus transactions so far (one scalar moved per drive), used
  /// for the I/O-bandwidth experiments (E2).
  [[nodiscard]] std::uint64_t drive_count() const noexcept {
    return drive_count_;
  }

  /// Most recent value ever driven, regardless of cycle (default-initial
  /// before the first drive).  Telemetry probes use this: a waveform shows
  /// the bus holding its last transaction, which is what a latched bus
  /// monitor on real hardware would capture.
  [[nodiscard]] T last_value() const { return value_.value_or(T{}); }

 private:
  Cycle cycle_ = static_cast<Cycle>(-1);
  std::optional<T> value_;
  std::uint64_t drive_count_ = 0;
};

}  // namespace sysdp::sim
