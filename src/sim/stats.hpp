// Activity statistics for measured processor utilisation.
//
// The paper's PU formulas (eq. 9 and Proposition 1) are analytic; the
// simulator additionally *measures* PU by counting, per PE, the cycles in
// which useful work (a multiply-accumulate / add-compare step) was done.
// Measured PU = busy-PE-cycles / (elapsed cycles * number of PEs), which is
// exactly the paper's "ratio of serial iterations to (parallel iterations *
// processors)" when one iteration does one unit of work.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class ActivityStats {
 public:
  explicit ActivityStats(std::size_t num_pes) : busy_(num_pes, 0) {}

  /// Record that PE `pe` did one unit of useful work this cycle.
  void mark_busy(std::size_t pe) { ++busy_.at(pe); }

  [[nodiscard]] std::size_t num_pes() const noexcept { return busy_.size(); }
  [[nodiscard]] std::uint64_t busy_cycles(std::size_t pe) const {
    return busy_.at(pe);
  }
  [[nodiscard]] std::uint64_t total_busy() const noexcept {
    std::uint64_t t = 0;
    for (auto b : busy_) t += b;
    return t;
  }

  /// Measured processor utilisation over `elapsed` cycles.
  [[nodiscard]] double utilization(Cycle elapsed) const noexcept {
    if (elapsed == 0 || busy_.empty()) return 0.0;
    return static_cast<double>(total_busy()) /
           (static_cast<double>(elapsed) * static_cast<double>(busy_.size()));
  }

  void reset() {
    for (auto& b : busy_) b = 0;
  }

 private:
  std::vector<std::uint64_t> busy_;
};

}  // namespace sysdp::sim
