// Activity statistics for measured processor utilisation.
//
// The paper's PU formulas (eq. 9 and Proposition 1) are analytic; the
// simulator additionally *measures* PU by counting, per PE, the cycles in
// which useful work (a multiply-accumulate / add-compare step) was done.
// Measured PU = busy-PE-cycles / (elapsed cycles * number of PEs), which is
// exactly the paper's "ratio of serial iterations to (parallel iterations *
// processors)" when one iteration does one unit of work.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class ActivityStats {
 public:
  explicit ActivityStats(std::size_t num_pes) : busy_(num_pes, 0) {}

  // The atomic total_ makes the class non-copyable by default; runs hand
  // their stats to RunResult by value, so restore copying explicitly.
  ActivityStats(const ActivityStats& o)
      : busy_(o.busy_), total_(o.total_.load(std::memory_order_relaxed)) {}
  ActivityStats& operator=(const ActivityStats& o) {
    busy_ = o.busy_;
    total_.store(o.total_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Record that PE `pe` did one unit of useful work this cycle.
  ///
  /// Under the parallel engine, PEs eval on different pool workers against
  /// the same stats object: the per-PE slots are distinct locations (one
  /// writer each), but total_ is shared, so its increment must be atomic.
  /// Relaxed ordering suffices — a sum is order-independent, and readers
  /// only consume it after the engine's end-of-phase barrier.
  void mark_busy(std::size_t pe) {
    ++busy_.at(pe);  // at() first: an out-of-range pe must not bump total_
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_pes() const noexcept { return busy_.size(); }
  [[nodiscard]] std::uint64_t busy_cycles(std::size_t pe) const {
    return busy_.at(pe);
  }
  /// Incrementally maintained sum of busy_cycles over all PEs — O(1), so
  /// per-cycle callers (utilisation timelines, benches) don't pay an
  /// O(num_pes) sweep per query.
  [[nodiscard]] std::uint64_t total_busy() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// Measured processor utilisation over `elapsed` cycles.
  [[nodiscard]] double utilization(Cycle elapsed) const noexcept {
    if (elapsed == 0 || busy_.empty()) return 0.0;
    return static_cast<double>(total_busy()) /
           (static_cast<double>(elapsed) * static_cast<double>(busy_.size()));
  }

  void reset() {
    for (auto& b : busy_) b = 0;
    total_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> busy_;
  /// Cached sum of busy_, kept by mark_busy (atomic: see mark_busy).
  std::atomic<std::uint64_t> total_{0};
};

/// Monotonic wall-clock stopwatch for the throughput counters below.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction (or the last restart()).
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Simulator throughput over one run: how fast the *simulator* chewed
/// through virtual time, as opposed to ActivityStats, which measures the
/// *simulated hardware's* utilisation.  This is what the parallel backend
/// is meant to improve, so benches record it alongside the paper metrics.
struct ThroughputStats {
  Cycle cycles = 0;                ///< virtual cycles simulated
  std::uint64_t module_evals = 0;  ///< module (PE/host) evals performed
  double wall_seconds = 0.0;       ///< host wall-clock consumed

  [[nodiscard]] double cycles_per_sec() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(cycles) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double evals_per_sec() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(module_evals) / wall_seconds
               : 0.0;
  }

  ThroughputStats& operator+=(const ThroughputStats& o) noexcept {
    cycles += o.cycles;
    module_evals += o.module_evals;
    wall_seconds += o.wall_seconds;
    return *this;
  }
};

/// Wall-clock comparison of one sweep run serially and through the batch
/// runner — the headline number BENCH_SIM.json records.
struct BatchSpeedup {
  std::size_t jobs = 0;
  std::size_t lanes = 1;          ///< pool lanes used by the batched run
  double serial_seconds = 0.0;
  double batch_seconds = 0.0;

  [[nodiscard]] double speedup() const noexcept {
    return batch_seconds > 0.0 ? serial_seconds / batch_seconds : 0.0;
  }
};

}  // namespace sysdp::sim
