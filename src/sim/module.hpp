// Module base class for clocked hardware models.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace sysdp::sim {

class PortSet;

/// Clock cycle index.
using Cycle = std::uint64_t;

/// How a module uses quiescence under Gating::kSparse — declared alongside
/// quiescent() so the static wakeup-coverage check knows which modules need
/// their inputs covered by Engine::add_wakeup edges.
enum class SleepMode : std::uint8_t {
  /// quiescent() is never true (the Module default): the module runs every
  /// cycle, so no incoming dataflow needs wakeup coverage.
  kNever,
  /// Once quiescent, quiescent forever (a drained PE, an exhausted feed):
  /// no input can ever reactivate it, so none needs coverage.
  kRetire,
  /// May go quiescent and later reactivate: every incoming dataflow edge
  /// must be covered by a wakeup edge, or the gated run can diverge.
  kWakeable,
};

/// A clocked hardware block.  Each cycle the engine calls eval() on every
/// module (combinational phase: read registers/buses, stage register
/// writes), then commit() on every module (clock edge: latch registers).
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Combinational phase for cycle `t`.
  virtual void eval(Cycle t) = 0;

  /// Clock edge: latch all registers staged during eval().
  virtual void commit() = 0;

  /// True if eval() *produces* state other modules read in the same cycle
  /// (bus drivers, host input feeds).  The parallel engine evaluates all
  /// such drivers serially, in registration order, before fanning the
  /// remaining modules out across threads; modules that only *read*
  /// same-cycle driver outputs (bus listeners) stay parallel-safe because
  /// every driver has already spoken by the time they run.  Registered
  /// state (Register<T>) never needs this flag: reads see committed values
  /// only.
  [[nodiscard]] virtual bool combinational() const noexcept { return false; }

  /// Quiescence hook for the activity-gated engine (Gating::kSparse).
  /// Return true only when BOTH hold:
  ///
  ///   1. eval()/commit() are observational no-ops right now: they would
  ///      change no committed register value, drive no bus, mark no stats
  ///      and write no state another module reads.  (A PE holding no valid
  ///      token whose inputs are invalid is the canonical case.)
  ///   2. That stays true until a module with a declared wakeup edge into
  ///      this one (Engine::add_wakeup) goes non-quiescent — i.e. every
  ///      input that could re-activate this module is covered by an edge.
  ///
  /// The answer must depend only on state this module itself mutates (its
  /// own registers/counters): the engine queries it after the commit phase
  /// and caches the result while the module sleeps.  Default: never
  /// quiescent, which is always safe (the module simply never gets
  /// skipped).
  [[nodiscard]] virtual bool quiescent() const noexcept { return false; }

  /// Declared counterpart of quiescent(): a module that overrides
  /// quiescent() must also report how it sleeps (kRetire or kWakeable), or
  /// the wakeup-coverage lint check cannot see that its inputs need edges.
  [[nodiscard]] virtual SleepMode sleep_mode() const noexcept {
    return SleepMode::kNever;
  }

  /// Connectivity introspection: declare every register/signal this module
  /// reads or writes (see sim/port.hpp).  The default declares nothing,
  /// which keeps hand-rolled test modules working but makes the module
  /// opaque to the static-analysis layer.
  virtual void describe_ports(PortSet& ports) const { (void)ports; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace sysdp::sim
