// Bounded signal trace for debugging and for the worked examples.
//
// Records (cycle, signal, value) tuples up to a capacity; renders as CSV.
// Array models expose an optional Trace* so unit tests and examples can
// inspect the data movement that the paper's figures illustrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/module.hpp"

namespace sysdp::sim {

class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void record(Cycle t, std::string signal, std::int64_t value) {
    if (events_.size() >= capacity_) {
      dropped_ = true;
      return;
    }
    events_.push_back(Event{t, std::move(signal), value});
  }

  struct Event {
    Cycle cycle;
    std::string signal;
    std::int64_t value;
  };

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool dropped() const noexcept { return dropped_; }

  /// CSV rendering: "cycle,signal,value" lines.
  [[nodiscard]] std::string to_csv() const {
    std::string out = "cycle,signal,value\n";
    for (const auto& e : events_) {
      out += std::to_string(e.cycle);
      out += ',';
      out += e.signal;
      out += ',';
      out += std::to_string(e.value);
      out += '\n';
    }
    return out;
  }

 private:
  std::size_t capacity_;
  bool dropped_ = false;
  std::vector<Event> events_;
};

}  // namespace sysdp::sim
