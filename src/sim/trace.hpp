// Bounded signal trace for debugging and for the worked examples.
//
// Records (cycle, signal, value) tuples up to a capacity; renders as CSV.
// Array models expose an optional EventSink* so unit tests and examples can
// inspect the data movement that the paper's figures illustrate.  Trace is
// the vector-backed reference sink: bounded, with an *explicit* overflow
// policy.  Historically it silently stopped recording at capacity and only
// set a latent flag; overflow is now a chosen policy and a counted,
// queryable fact (dropped_events(), surfaced through the EventSink
// interface so array models can propagate it into RunResult).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/observer.hpp"

namespace sysdp::sim {

/// What a full Trace does with the next event.
enum class TraceOverflow : std::uint8_t {
  /// Discard the incoming event and count it (the default — keeps the
  /// *earliest* events, which is what fill-phase debugging wants).
  kDropNewest,
  /// Overwrite the oldest retained event (ring buffer) and count the
  /// displacement — keeps the *latest* events, for drain-phase debugging.
  kKeepLatest,
  /// Throw std::runtime_error: for tests and tools where truncation would
  /// invalidate the analysis and must abort instead.
  kThrow,
};

class Trace : public EventSink {
 public:
  explicit Trace(std::size_t capacity = 1 << 16,
                 TraceOverflow policy = TraceOverflow::kDropNewest)
      : capacity_(capacity), policy_(policy) {}

  void record(Cycle t, std::string signal, std::int64_t value) override {
    if (events_.size() < capacity_) {
      events_.push_back(Event{t, std::move(signal), value});
      return;
    }
    switch (policy_) {
      case TraceOverflow::kDropNewest:
        ++dropped_;
        return;
      case TraceOverflow::kKeepLatest:
        if (capacity_ == 0) {  // nothing retainable; count and move on
          ++dropped_;
          return;
        }
        events_[start_] = Event{t, std::move(signal), value};
        start_ = (start_ + 1) % capacity_;
        ++dropped_;
        return;
      case TraceOverflow::kThrow:
        throw std::runtime_error("Trace: capacity " +
                                 std::to_string(capacity_) +
                                 " exceeded recording '" + signal +
                                 "' at cycle " + std::to_string(t));
    }
  }

  struct Event {
    Cycle cycle;
    std::string signal;
    std::int64_t value;
  };

  /// Retained events in chronological order (under kKeepLatest the ring is
  /// rotated into order on access, which is why the storage is mutable).
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    if (start_ != 0) {
      std::rotate(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(start_),
                  events_.end());
      start_ = 0;
    }
    return events_;
  }
  /// True if any event was discarded or displaced.
  [[nodiscard]] bool dropped() const noexcept { return dropped_ > 0; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept override {
    return dropped_;
  }
  [[nodiscard]] TraceOverflow policy() const noexcept { return policy_; }

  /// CSV rendering: "cycle,signal,value" lines.
  [[nodiscard]] std::string to_csv() const {
    std::string out = "cycle,signal,value\n";
    for (const auto& e : events()) {
      out += std::to_string(e.cycle);
      out += ',';
      out += e.signal;
      out += ',';
      out += std::to_string(e.value);
      out += '\n';
    }
    return out;
  }

 private:
  std::size_t capacity_;
  TraceOverflow policy_;
  std::uint64_t dropped_ = 0;
  mutable std::size_t start_ = 0;  ///< ring head under kKeepLatest
  mutable std::vector<Event> events_;
};

}  // namespace sysdp::sim
