// Connectivity introspection: modules declare the storage they touch.
//
// The engine simulates netlists whose correctness rests on structural
// invariants (single drivers, registered PE-to-PE links, wakeup edges
// covering every reactivating input).  Those invariants are facts about
// *connectivity*, so they can be checked statically — but the C++ object
// graph hides connectivity inside eval() bodies.  PortSet makes it
// explicit: Module::describe_ports reports every piece of shared storage
// the module reads or writes, identified by address.  The identity is a
// plain `const void*` key on purpose: array models keep hot state in
// struct-of-arrays arenas where "one register" is a lane across several
// vectors, and the address of any one stable element (conventionally the
// value field) names the lane.  Two modules that pass the same key are
// connected; that is the whole model.
//
// Port kinds mirror the engine's two timing domains:
//
//   * kRegister — two-phase state: written during eval (or staged for a
//     peer's commit) and observable from the *next* cycle.  Register<T>,
//     arena register rails, and cross-module launch/staging slots that a
//     peer latches at its clock edge all belong here.
//   * kSignal — combinational state: driven during eval and observable by
//     later modules in the *same* cycle.  Bus<T> and host-feed outputs
//     belong here; drivers must report Module::combinational().
//
// A combinational output that merely re-presents a registered value one
// cycle later (a bus driven from a register, a delivery latch) declares
// that with derives(): the analysis layer uses it to accept wakeup edges
// that originate at the register's writer instead of at the signal driver
// — the retiming argument (Leiserson & Saxe) made checkable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sysdp::sim {

template <typename T>
class Register;
template <typename T>
class Bus;

/// Timing domain of a declared port.  See the file comment.
enum class PortKind : std::uint8_t { kRegister, kSignal };

/// Direction relative to the declaring module: kIn is read, kOut is
/// written/driven.
enum class PortDir : std::uint8_t { kIn, kOut };

/// One declared storage access.  `storage` is the identity key: equal keys
/// mean the same physical register/signal.
struct Port {
  const void* storage = nullptr;
  PortKind kind = PortKind::kRegister;
  PortDir dir = PortDir::kIn;
  std::string label;  ///< human-readable name, e.g. "r[3]" or "bus"
};

/// A combinational output re-presenting a registered value: `signal` is a
/// kSignal out-port key, `reg` the kRegister key it is derived from.
struct SignalDerivation {
  const void* signal = nullptr;
  const void* reg = nullptr;
};

/// Collector passed to Module::describe_ports (and, for testbench-side
/// taps, filled directly by array models' describe_environment).
class PortSet {
 public:
  /// Raw-key declarations — use these for arena lanes, naming the lane by
  /// the address of one stable element (conventionally the value field).
  void reads_register(const void* key, std::string label) {
    add(key, PortKind::kRegister, PortDir::kIn, std::move(label));
  }
  void writes_register(const void* key, std::string label) {
    add(key, PortKind::kRegister, PortDir::kOut, std::move(label));
  }
  void reads_signal(const void* key, std::string label) {
    add(key, PortKind::kSignal, PortDir::kIn, std::move(label));
  }
  void drives_signal(const void* key, std::string label) {
    add(key, PortKind::kSignal, PortDir::kOut, std::move(label));
  }

  /// Typed conveniences for the discrete primitives.
  template <typename T>
  void reads(const Register<T>& r, std::string label) {
    reads_register(&r, std::move(label));
  }
  template <typename T>
  void writes(const Register<T>& r, std::string label) {
    writes_register(&r, std::move(label));
  }
  template <typename T>
  void reads(const Bus<T>& b, std::string label) {
    reads_signal(&b, std::move(label));
  }
  template <typename T>
  void drives(const Bus<T>& b, std::string label) {
    drives_signal(&b, std::move(label));
  }

  /// Declare that out-signal `signal` is a combinational function of the
  /// committed value of register `reg` (and of nothing else that can
  /// reactivate a consumer).  Wakeup-coverage then accepts an edge from
  /// the register's writer in place of one from the signal driver.
  void derives(const void* signal, const void* reg) {
    derivations_.push_back(SignalDerivation{signal, reg});
  }

  [[nodiscard]] const std::vector<Port>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] const std::vector<SignalDerivation>& derivations()
      const noexcept {
    return derivations_;
  }

 private:
  void add(const void* key, PortKind kind, PortDir dir, std::string label) {
    ports_.push_back(Port{key, kind, dir, std::move(label)});
  }

  std::vector<Port> ports_;
  std::vector<SignalDerivation> derivations_;
};

}  // namespace sysdp::sim
