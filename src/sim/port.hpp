// Connectivity introspection: modules declare the storage they touch.
//
// The engine simulates netlists whose correctness rests on structural
// invariants (single drivers, registered PE-to-PE links, wakeup edges
// covering every reactivating input).  Those invariants are facts about
// *connectivity*, so they can be checked statically — but the C++ object
// graph hides connectivity inside eval() bodies.  PortSet makes it
// explicit: Module::describe_ports reports every piece of shared storage
// the module reads or writes, identified by address.  The identity is a
// plain `const void*` key on purpose: array models keep hot state in
// struct-of-arrays arenas where "one register" is a lane across several
// vectors, and the address of any one stable element (conventionally the
// value field) names the lane.  Two modules that pass the same key are
// connected; that is the whole model.
//
// Port kinds mirror the engine's two timing domains:
//
//   * kRegister — two-phase state: written during eval (or staged for a
//     peer's commit) and observable from the *next* cycle.  Register<T>,
//     arena register rails, and cross-module launch/staging slots that a
//     peer latches at its clock edge all belong here.
//   * kSignal — combinational state: driven during eval and observable by
//     later modules in the *same* cycle.  Bus<T> and host-feed outputs
//     belong here; drivers must report Module::combinational().
//
// A combinational output that merely re-presents a registered value one
// cycle later (a bus driven from a register, a delivery latch) declares
// that with derives(): the analysis layer uses it to accept wakeup edges
// that originate at the register's writer instead of at the signal driver
// — the retiming argument (Leiserson & Saxe) made checkable.
//
// Ports double as *probe points* for the telemetry layer: each port may
// carry a Sampler, a closure returning the storage's committed value as an
// int64.  Declarations whose key is a pointer to an arithmetic type (the
// arena-lane convention) get a sampler automatically; struct-valued lanes
// attach one explicitly via the three-argument overloads, or stay opaque
// (empty sampler) — the probe-coverage lint check reports opaque written
// storage so unprobeable state is a visible, reviewed fact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace sysdp::sim {

template <typename T>
class Register;
template <typename T>
class Bus;

/// Timing domain of a declared port.  See the file comment.
enum class PortKind : std::uint8_t { kRegister, kSignal };

/// Direction relative to the declaring module: kIn is read, kOut is
/// written/driven.
enum class PortDir : std::uint8_t { kIn, kOut };

/// Probe closure: returns the storage's committed value widened to int64.
/// Must be safe to call whenever the engine is between cycles (after any
/// commit phase); an empty Sampler marks the port as opaque to probes.
using Sampler = std::function<std::int64_t()>;

/// One declared storage access.  `storage` is the identity key: equal keys
/// mean the same physical register/signal.
struct Port {
  const void* storage = nullptr;
  PortKind kind = PortKind::kRegister;
  PortDir dir = PortDir::kIn;
  std::string label;  ///< human-readable name, e.g. "r[3]" or "bus"
  Sampler sample;     ///< optional probe; empty when the lane is opaque
};

/// A combinational output re-presenting a registered value: `signal` is a
/// kSignal out-port key, `reg` the kRegister key it is derived from.
struct SignalDerivation {
  const void* signal = nullptr;
  const void* reg = nullptr;
};

/// Collector passed to Module::describe_ports (and, for testbench-side
/// taps, filled directly by array models' describe_environment).
class PortSet {
 public:
  /// Raw-key declarations — use these for arena lanes, naming the lane by
  /// the address of one stable element (conventionally the value field).
  /// Arithmetic-typed keys get an automatic sampler (the key *is* the
  /// value field); other key types stay opaque unless the three-argument
  /// overloads below attach an explicit one.
  template <typename T>
  void reads_register(const T* key, std::string label) {
    add(key, PortKind::kRegister, PortDir::kIn, std::move(label),
        auto_sampler(key));
  }
  template <typename T>
  void writes_register(const T* key, std::string label) {
    add(key, PortKind::kRegister, PortDir::kOut, std::move(label),
        auto_sampler(key));
  }
  template <typename T>
  void reads_signal(const T* key, std::string label) {
    add(key, PortKind::kSignal, PortDir::kIn, std::move(label),
        auto_sampler(key));
  }
  template <typename T>
  void drives_signal(const T* key, std::string label) {
    add(key, PortKind::kSignal, PortDir::kOut, std::move(label),
        auto_sampler(key));
  }

  /// Explicit-sampler declarations for struct-valued lanes (a flit, a
  /// token): the closure projects whatever scalar is worth waveform space.
  template <typename T>
  void reads_register(const T* key, std::string label, Sampler sample) {
    add(key, PortKind::kRegister, PortDir::kIn, std::move(label),
        std::move(sample));
  }
  template <typename T>
  void writes_register(const T* key, std::string label, Sampler sample) {
    add(key, PortKind::kRegister, PortDir::kOut, std::move(label),
        std::move(sample));
  }
  template <typename T>
  void reads_signal(const T* key, std::string label, Sampler sample) {
    add(key, PortKind::kSignal, PortDir::kIn, std::move(label),
        std::move(sample));
  }
  template <typename T>
  void drives_signal(const T* key, std::string label, Sampler sample) {
    add(key, PortKind::kSignal, PortDir::kOut, std::move(label),
        std::move(sample));
  }

  /// Typed conveniences for the discrete primitives.  Integer-valued
  /// registers and buses sample themselves; other payloads stay opaque.
  template <typename T>
  void reads(const Register<T>& r, std::string label) {
    add(&r, PortKind::kRegister, PortDir::kIn, std::move(label),
        register_sampler(r));
  }
  template <typename T>
  void writes(const Register<T>& r, std::string label) {
    add(&r, PortKind::kRegister, PortDir::kOut, std::move(label),
        register_sampler(r));
  }
  template <typename T>
  void reads(const Bus<T>& b, std::string label) {
    add(&b, PortKind::kSignal, PortDir::kIn, std::move(label),
        bus_sampler(b));
  }
  template <typename T>
  void drives(const Bus<T>& b, std::string label) {
    add(&b, PortKind::kSignal, PortDir::kOut, std::move(label),
        bus_sampler(b));
  }

  /// Declare that out-signal `signal` is a combinational function of the
  /// committed value of register `reg` (and of nothing else that can
  /// reactivate a consumer).  Wakeup-coverage then accepts an edge from
  /// the register's writer in place of one from the signal driver.
  void derives(const void* signal, const void* reg) {
    derivations_.push_back(SignalDerivation{signal, reg});
  }

  [[nodiscard]] const std::vector<Port>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] const std::vector<SignalDerivation>& derivations()
      const noexcept {
    return derivations_;
  }

 private:
  template <typename T>
  [[nodiscard]] static Sampler auto_sampler(const T* key) {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
      return [key]() -> std::int64_t {
        return static_cast<std::int64_t>(*key);
      };
    } else {
      (void)key;  // opaque lane (struct payload or type-erased void key)
      return {};
    }
  }

  template <typename T>
  [[nodiscard]] static Sampler register_sampler(const Register<T>& r) {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
      return [&r]() -> std::int64_t {
        return static_cast<std::int64_t>(r.read());
      };
    } else {
      (void)r;
      return {};
    }
  }

  template <typename T>
  [[nodiscard]] static Sampler bus_sampler(const Bus<T>& b) {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
      return [&b]() -> std::int64_t {
        return static_cast<std::int64_t>(b.last_value());
      };
    } else {
      (void)b;
      return {};
    }
  }

  void add(const void* key, PortKind kind, PortDir dir, std::string label,
           Sampler sample) {
    ports_.push_back(Port{key, kind, dir, std::move(label),
                          std::move(sample)});
  }

  std::vector<Port> ports_;
  std::vector<SignalDerivation> derivations_;
};

}  // namespace sysdp::sim
