#include "sim/thread_pool.hpp"

#include <atomic>

namespace sysdp::sim {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

/// Shared state of one parallel_for call: a static chunk split plus a
/// countdown the caller blocks on.  Chunks are contiguous so each lane
/// touches a disjoint, cache-friendly index range and the work assignment
/// is deterministic.
struct ThreadPool::ForJob {
  const std::function<void(std::size_t)>* body;
  std::size_t n;
  std::size_t chunks;
  std::atomic<std::size_t> remaining;
  std::mutex done_mu;
  std::condition_variable done_cv;

  void run_chunk(std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    for (std::size_t i = lo; i < hi; ++i) (*body)(i);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_one();
    }
  }
};

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, num_lanes());
  auto job = std::make_shared<ForJob>();
  job->body = &body;
  job->n = n;
  job->chunks = chunks;
  job->remaining.store(chunks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      queue_.push([job, c] { job->run_chunk(c); });
    }
  }
  cv_.notify_all();
  job->run_chunk(0);  // the caller is lane 0
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace sysdp::sim
