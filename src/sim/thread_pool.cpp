#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace sysdp::sim {

namespace {

/// Lane of the current thread: 0 for any non-pool thread (including the
/// parallel_for caller), 1..workers for pool workers.  Thread-local so a
/// span reported from inside a task lands on the lane that ran it.
thread_local std::size_t tl_lane = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint64_t ThreadPool::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadPool::note_span(PoolObserver::SpanKind kind, std::uint64_t t0_ns,
                           std::uint64_t t1_ns) const {
  if (observer_ != nullptr) observer_->on_span(tl_lane, kind, t0_ns, t1_ns);
}

void ThreadPool::worker_loop(std::size_t lane) {
  tl_lane = lane;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

/// Shared state of one parallel_for call: a static chunk split plus a
/// countdown the caller blocks on.  Chunks are contiguous so each lane
/// touches a disjoint, cache-friendly index range and the work assignment
/// is deterministic.
struct ThreadPool::ForJob {
  const std::function<void(std::size_t)>* body;
  std::size_t n;
  std::size_t chunks;
  const ThreadPool* pool;  ///< for span reporting; nullptr-observer safe
  std::atomic<std::size_t> remaining;
  std::mutex done_mu;
  std::condition_variable done_cv;

  void run_chunk(std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    const bool timed = pool->observer() != nullptr;
    const std::uint64_t t0 = timed ? ThreadPool::now_ns() : 0;
    for (std::size_t i = lo; i < hi; ++i) (*body)(i);
    if (timed) {
      pool->note_span(PoolObserver::SpanKind::kChunk, t0,
                      ThreadPool::now_ns());
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_one();
    }
  }
};

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    const bool timed = observer_ != nullptr;
    const std::uint64_t t0 = timed ? now_ns() : 0;
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (timed) note_span(PoolObserver::SpanKind::kChunk, t0, now_ns());
    return;
  }
  const std::size_t chunks = std::min(n, num_lanes());
  auto job = std::make_shared<ForJob>();
  job->body = &body;
  job->n = n;
  job->chunks = chunks;
  job->pool = this;
  job->remaining.store(chunks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      queue_.push([job, c] { job->run_chunk(c); });
    }
  }
  cv_.notify_all();
  job->run_chunk(0);  // the caller is lane 0
  // Everything after the caller's own chunk is barrier wait: the time the
  // fork-join structure costs the critical path, reported as its own span
  // so work/wait ratios fall straight out of the trace.
  const bool timed = observer_ != nullptr;
  const std::uint64_t w0 = timed ? now_ns() : 0;
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  if (timed) {
    lock.unlock();
    note_span(PoolObserver::SpanKind::kBarrierWait, w0, now_ns());
  }
}

/// Shared state of one parallel_for_dynamic call: a monotone claim counter
/// lanes race on, plus the same countdown barrier ForJob uses.  A lane's
/// whole participation (all blocks it claimed) is reported as one kChunk
/// span — the trace shows lane occupancy, not per-block noise.
struct ThreadPool::DynJob {
  const std::function<void(std::size_t)>* body;
  std::size_t n;
  std::size_t grain;
  const ThreadPool* pool;
  std::atomic<std::size_t> next;
  std::atomic<std::size_t> remaining;  ///< lanes still running
  std::mutex done_mu;
  std::condition_variable done_cv;

  void run_lane() {
    const bool timed = pool->observer() != nullptr;
    const std::uint64_t t0 = timed ? ThreadPool::now_ns() : 0;
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= n) break;
      const std::size_t hi = std::min(lo + grain, n);
      for (std::size_t i = lo; i < hi; ++i) (*body)(i);
    }
    if (timed) {
      pool->note_span(PoolObserver::SpanKind::kChunk, t0,
                      ThreadPool::now_ns());
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_one();
    }
  }
};

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    // Enough blocks for ~8 claims per lane (load balance) without paying an
    // atomic per index when n is large.
    grain = std::max<std::size_t>(1, n / (num_lanes() * 8));
  }
  if (workers_.empty() || n == 1) {
    const bool timed = observer_ != nullptr;
    const std::uint64_t t0 = timed ? now_ns() : 0;
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (timed) note_span(PoolObserver::SpanKind::kChunk, t0, now_ns());
    return;
  }
  // More lanes than blocks would only queue tasks that claim nothing.
  const std::size_t lanes =
      std::min(num_lanes(), (n + grain - 1) / grain);
  auto job = std::make_shared<DynJob>();
  job->body = &body;
  job->n = n;
  job->grain = grain;
  job->pool = this;
  job->next.store(0, std::memory_order_relaxed);
  job->remaining.store(lanes, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t c = 1; c < lanes; ++c) {
      queue_.push([job] { job->run_lane(); });
    }
  }
  cv_.notify_all();
  job->run_lane();  // the caller is lane 0
  const bool timed = observer_ != nullptr;
  const std::uint64_t w0 = timed ? now_ns() : 0;
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  if (timed) {
    lock.unlock();
    note_span(PoolObserver::SpanKind::kBarrierWait, w0, now_ns());
  }
}

}  // namespace sysdp::sim
