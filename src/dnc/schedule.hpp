// List scheduling of the AND-tree on K systolic arrays (Section 4).
//
// Each internal node is one matrix product taking T_1 = 1 time unit on any
// of the K identical arrays.  The scheduler is highest-level-first (critical
// path): at every step the K arrays take the ready products whose subtree is
// deepest.  The run is split into the paper's two phases — the computation
// phase, while at least K products are in flight, and the wind-down phase,
// when data dependences leave some arrays idle.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dnc/and_tree.hpp"
#include "semiring/matrix.hpp"
#include "semiring/ops.hpp"

namespace sysdp {

/// Ready-task selection policy — an ablation of the scheduler design.
/// Highest-level-first (critical path) is the natural choice for AND-trees;
/// FIFO models a naive work queue; lowest-level-first is the adversarial
/// baseline that starves the critical path.
enum class SchedulePolicy {
  kHighestLevelFirst,
  kFifo,
  kLowestLevelFirst,
};

struct ScheduleResult {
  std::uint64_t makespan = 0;       ///< total steps (units of T_1)
  std::uint64_t computation = 0;    ///< steps with all K arrays busy
  std::uint64_t wind_down = 0;      ///< steps with at least one idle array
  std::uint64_t tasks = 0;          ///< products executed (= N - 1)
  std::vector<std::uint64_t> busy_per_step;  ///< arrays busy at each step

  /// PU(k, N): tasks / (K * makespan), the paper's utilisation of k arrays.
  [[nodiscard]] double utilization(std::uint64_t k) const noexcept {
    if (makespan == 0 || k == 0) return 1.0;
    return static_cast<double>(tasks) /
           (static_cast<double>(k) * static_cast<double>(makespan));
  }
  /// K * T^2 in units of T_1^2.
  [[nodiscard]] double kt2(std::uint64_t k) const noexcept {
    const double t = static_cast<double>(makespan);
    return static_cast<double>(k) * t * t;
  }
};

/// One executed product as a busy span for the telemetry layer: array
/// `array` (0-based of the K) ran AND-tree node `node` during scheduler
/// step [start, start + 1) — each task takes exactly T_1 = 1.  Spans are
/// what the chrome-trace exporter draws, and summing them per array
/// reconstructs busy_per_step (and hence eq. 29's utilisation) exactly.
struct ScheduleSpan {
  std::uint64_t array = 0;  ///< batch position, i.e. which of the K arrays
  std::uint64_t start = 0;  ///< step index (units of T_1)
  std::size_t node = 0;     ///< AND-tree node id executed
};

/// Reusable scratch for schedule_and_tree: bench sweeps call the scheduler
/// thousands of times with the same N, and rebuilding the AND-tree plus
/// the ready-set buckets dominated the per-call cost.  Contents between
/// calls are unspecified; one workspace must not be shared across threads.
struct ScheduleWorkspace {
  std::optional<AndTree> tree;  ///< memoised for the last num_leaves seen
  std::size_t tree_leaves = 0;
  std::vector<std::size_t> missing;
  std::vector<std::deque<std::size_t>> buckets;
  std::deque<std::size_t> fifo;
  std::vector<std::size_t> batch;
};

/// Simulate list scheduling of the AND-tree for `num_leaves` matrices on
/// `k` arrays under the given policy (default: highest-level-first).  Also
/// records, per step, how many arrays were busy, so benches can plot the
/// phase structure.  The workspace-free overload reuses a thread-local
/// workspace, so repeated bench iterations hit warm buffers.
[[nodiscard]] ScheduleResult schedule_and_tree(
    std::size_t num_leaves, std::uint64_t k,
    SchedulePolicy policy = SchedulePolicy::kHighestLevelFirst);
/// `spans`, when non-null, receives one ScheduleSpan per executed task —
/// opt-in so the hot bench path (null default) pays only a pointer test.
[[nodiscard]] ScheduleResult schedule_and_tree(
    std::size_t num_leaves, std::uint64_t k, SchedulePolicy policy,
    ScheduleWorkspace& ws, std::vector<ScheduleSpan>* spans = nullptr);

/// Execute the schedule functionally: multiply the actual matrix string in
/// schedule order with `k` workers and return the product (equals the
/// sequential string product by associativity).  `steps_out`, if non-null,
/// receives the makespan for cross-checking against schedule_and_tree.
[[nodiscard]] Matrix<Cost> execute_dnc(const std::vector<Matrix<Cost>>& mats,
                                       std::uint64_t k, OpCount* ops = nullptr,
                                       std::uint64_t* steps_out = nullptr);

/// Cycle-grounded execution: every product in the schedule is evaluated on
/// the 2-D systolic mesh of arrays/matmul_array.hpp (3m - 2 cycles per
/// m x m product), so the abstract time unit T_1 of Section 4 becomes a
/// concrete cycle count and the end-to-end latency is makespan * T_1.
struct TimedDncResult {
  Matrix<Cost> product;
  std::uint64_t makespan = 0;      ///< steps, as in schedule_and_tree
  std::uint64_t t1_cycles = 0;     ///< cycles per product on the mesh
  std::uint64_t total_cycles = 0;  ///< makespan * t1_cycles
  std::uint64_t mesh_macs = 0;     ///< multiply-accumulates on the meshes
};
[[nodiscard]] TimedDncResult execute_dnc_timed(
    const std::vector<Matrix<Cost>>& mats, std::uint64_t k,
    SchedulePolicy policy = SchedulePolicy::kHighestLevelFirst);

}  // namespace sysdp
