#include "dnc/schedule.hpp"

#include "arrays/matmul_array.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace sysdp {

namespace {

/// Ready queue ordered by Hu's level (distance to the root) descending;
/// ties by node index for determinism.  For in-trees this priority is the
/// classic optimal list schedule.
struct ByLevel {
  const AndTree* tree;
  bool operator()(std::size_t a, std::size_t b) const {
    const auto da = tree->node(a).depth;
    const auto db = tree->node(b).depth;
    if (da != db) return da < db;  // max-heap on depth
    return a > b;
  }
};

/// Policy-polymorphic ready set over the AND-tree.  Hu levels (depths) are
/// tiny (<= log2 N), so per-level FIFO buckets give O(1) amortised
/// selection for every policy; within one level, insertion order is
/// preserved.  The bucket/FIFO storage lives in the caller's workspace so
/// repeated runs reuse the deque allocations.
class ReadySet {
 public:
  ReadySet(const AndTree& tree, SchedulePolicy policy, ScheduleWorkspace& ws)
      : tree_(tree), policy_(policy), buckets_(ws.buckets), fifo_(ws.fifo) {
    buckets_.resize(tree.height() + 1);
    for (auto& b : buckets_) b.clear();
    fifo_.clear();
  }

  void push(std::size_t id) {
    buckets_[tree_.node(id).depth].push_back(id);
    ++size_;
    if (policy_ == SchedulePolicy::kFifo) fifo_.push_back(id);
  }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  std::size_t pop() {
    --size_;
    if (policy_ == SchedulePolicy::kFifo) {
      const std::size_t id = fifo_.front();
      fifo_.pop_front();
      auto& bucket = buckets_[tree_.node(id).depth];
      bucket.pop_front();  // same order as fifo_ within a height
      return id;
    }
    if (policy_ == SchedulePolicy::kHighestLevelFirst) {
      for (std::size_t h = buckets_.size(); h-- > 0;) {
        if (!buckets_[h].empty()) {
          const std::size_t id = buckets_[h].front();
          buckets_[h].pop_front();
          return id;
        }
      }
    } else {
      for (auto& bucket : buckets_) {
        if (!bucket.empty()) {
          const std::size_t id = bucket.front();
          bucket.pop_front();
          return id;
        }
      }
    }
    throw std::logic_error("ReadySet::pop on empty set");
  }

 private:
  const AndTree& tree_;
  SchedulePolicy policy_;
  std::vector<std::deque<std::size_t>>& buckets_;
  std::deque<std::size_t>& fifo_;
  std::size_t size_ = 0;
};

}  // namespace

ScheduleResult schedule_and_tree(std::size_t num_leaves, std::uint64_t k,
                                 SchedulePolicy policy) {
  thread_local ScheduleWorkspace ws;
  return schedule_and_tree(num_leaves, k, policy, ws);
}

ScheduleResult schedule_and_tree(std::size_t num_leaves, std::uint64_t k,
                                 SchedulePolicy policy, ScheduleWorkspace& ws,
                                 std::vector<ScheduleSpan>* spans) {
  if (k == 0) throw std::invalid_argument("schedule_and_tree: k == 0");
  if (!ws.tree.has_value() || ws.tree_leaves != num_leaves) {
    ws.tree.emplace(num_leaves);
    ws.tree_leaves = num_leaves;
  }
  const AndTree& tree = *ws.tree;
  ScheduleResult res;
  if (num_leaves <= 1) return res;

  std::vector<std::size_t>& missing = ws.missing;
  missing.assign(tree.size(), 0);
  ReadySet ready(tree, policy, ws);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_leaf()) continue;
    missing[i] = (tree.node(n.left).is_leaf() ? 0u : 1u) +
                 (tree.node(n.right).is_leaf() ? 0u : 1u);
    if (missing[i] == 0) ready.push(i);
  }

  std::vector<std::size_t>& batch = ws.batch;
  while (!ready.empty()) {
    batch.clear();
    for (std::uint64_t s = 0; s < k && !ready.empty(); ++s) {
      batch.push_back(ready.pop());
    }
    if (spans != nullptr) {
      for (std::size_t s = 0; s < batch.size(); ++s) {
        spans->push_back(ScheduleSpan{s, res.makespan, batch[s]});
      }
    }
    res.busy_per_step.push_back(batch.size());
    ++res.makespan;
    if (batch.size() == k) {
      ++res.computation;
    } else {
      ++res.wind_down;
    }
    res.tasks += batch.size();
    for (std::size_t done : batch) {
      const std::size_t parent = tree.node(done).parent;
      if (parent != AndTreeNode::kNone && --missing[parent] == 0) {
        ready.push(parent);
      }
    }
  }
  return res;
}

Matrix<Cost> execute_dnc(const std::vector<Matrix<Cost>>& mats,
                         std::uint64_t k, OpCount* ops,
                         std::uint64_t* steps_out) {
  if (mats.empty()) throw std::invalid_argument("execute_dnc: empty string");
  if (k == 0) throw std::invalid_argument("execute_dnc: k == 0");
  AndTree tree(mats.size());
  std::vector<Matrix<Cost>> value(tree.size());
  std::vector<std::size_t> missing(tree.size(), 0);
  std::priority_queue<std::size_t, std::vector<std::size_t>, ByLevel> ready(
      ByLevel{&tree});
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_leaf()) {
      value[i] = mats[n.lo];
      continue;
    }
    missing[i] = (tree.node(n.left).is_leaf() ? 0u : 1u) +
                 (tree.node(n.right).is_leaf() ? 0u : 1u);
    if (missing[i] == 0) ready.push(i);
  }
  std::uint64_t steps = 0;
  std::vector<std::size_t> batch;
  while (!ready.empty()) {
    batch.clear();
    for (std::uint64_t s = 0; s < k && !ready.empty(); ++s) {
      batch.push_back(ready.top());
      ready.pop();
    }
    ++steps;
    for (std::size_t i : batch) {
      const auto& n = tree.node(i);
      value[i] = mat_mul<MinPlus>(value[n.left], value[n.right], ops);
      // Free children eagerly: peak memory tracks the frontier, as a real
      // K-array system would hold only in-flight operands.
      value[n.left] = Matrix<Cost>();
      value[n.right] = Matrix<Cost>();
      if (n.parent != AndTreeNode::kNone && --missing[n.parent] == 0) {
        ready.push(n.parent);
      }
    }
  }
  if (steps_out) *steps_out = steps;
  return std::move(value[tree.root()]);
}

TimedDncResult execute_dnc_timed(const std::vector<Matrix<Cost>>& mats,
                                 std::uint64_t k, SchedulePolicy policy) {
  if (mats.empty()) {
    throw std::invalid_argument("execute_dnc_timed: empty string");
  }
  if (k == 0) throw std::invalid_argument("execute_dnc_timed: k == 0");
  const std::size_t m = mats.front().rows();
  for (const auto& mat : mats) {
    if (mat.rows() != m || mat.cols() != m) {
      throw std::invalid_argument("execute_dnc_timed: need square m x m");
    }
  }
  AndTree tree(mats.size());
  std::vector<Matrix<Cost>> value(tree.size());
  std::vector<std::size_t> missing(tree.size(), 0);
  ScheduleWorkspace ws;
  ReadySet ready(tree, policy, ws);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_leaf()) {
      value[i] = mats[n.lo];
      continue;
    }
    missing[i] = (tree.node(n.left).is_leaf() ? 0u : 1u) +
                 (tree.node(n.right).is_leaf() ? 0u : 1u);
    if (missing[i] == 0) ready.push(i);
  }
  TimedDncResult res;
  res.t1_cycles = MatmulArray<MinPlus>::completion_cycles(m);
  std::vector<std::size_t> batch;
  while (!ready.empty()) {
    batch.clear();
    for (std::uint64_t s = 0; s < k && !ready.empty(); ++s) {
      batch.push_back(ready.pop());
    }
    ++res.makespan;
    for (std::size_t i : batch) {
      const auto& n = tree.node(i);
      MatmulArray<MinPlus> mesh(value[n.left], value[n.right]);
      auto product = mesh.run();
      res.mesh_macs += product.stats.busy_steps;
      value[i] = std::move(product.c);
      value[n.left] = Matrix<Cost>();
      value[n.right] = Matrix<Cost>();
      if (n.parent != AndTreeNode::kNone && --missing[n.parent] == 0) {
        ready.push(n.parent);
      }
    }
  }
  res.total_cycles = res.makespan * res.t1_cycles;
  res.product = std::move(value[tree.root()]);
  return res;
}

}  // namespace sysdp
