// Closed-form models from Section 4: eq. (25), eq. (29), eq. (30),
// Proposition 1, and the KT^2 / AT^2 figures of merit.
#pragma once

#include <cmath>
#include <cstdint>

namespace sysdp {

/// Eq. (29): exact time (in units of T_1) to multiply N m x m matrices with
/// K arrays: T = floor((N-1)/K) + floor(log2(N + K - 1 - K floor((N-1)/K))).
[[nodiscard]] std::uint64_t dnc_time_eq29(std::uint64_t n, std::uint64_t k);

/// Eq. (30): the large-N approximation T ~ N/K - 1 + log2 K.
[[nodiscard]] double dnc_time_eq30(double n, double k);

/// Eq. (25): the lower bound T >= N/S - 1 + log2 S used in Theorem 1.
[[nodiscard]] double dnc_time_lower_bound(double n, double s);

/// K * T^2 with T from eq. (29).
[[nodiscard]] double kt2_eq29(std::uint64_t n, std::uint64_t k);

/// S * T^2 with T from the Theorem 1 lower bound (eq. 26 integrand).
[[nodiscard]] double st2_lower_bound(double n, double s);

/// PU(k, N) = (N - 1) / (k * T) with T from eq. (29) — the quantity whose
/// asymptotics Proposition 1 characterises.
[[nodiscard]] double pu_eq29(std::uint64_t n, std::uint64_t k);

/// Proposition 1's limit: lim PU = 1 / (1 + c_inf) where
/// c_inf = lim k(N) / (N / log2 N); returns the predicted limit for a
/// finite c_inf (c_inf = 0 -> 1, c_inf -> inf handled by the caller).
[[nodiscard]] double prop1_limit(double c_inf);

/// Brute-force argmin over K in [1, k_max] of K * T^2(K) via eq. (29) —
/// regenerates the minimum of Figure 6.
struct Kt2Minimum {
  std::uint64_t k = 1;
  double kt2 = 0.0;
};
[[nodiscard]] Kt2Minimum minimize_kt2(std::uint64_t n, std::uint64_t k_max);

}  // namespace sysdp
