// Complete binary AND-tree over a matrix string (Section 4).
//
// A polyadic-serial DP problem lets the matrix string be multiplied
// recursively: the leaves are the N stage matrices and every internal node
// is one matrix product evaluated by one systolic array in T_1 time.  The
// tree shape (left subtree takes the ceiling half) matches
// balanced_string_mat_mul, so executing the tree reproduces the sequential
// result exactly.
#pragma once

#include <cstddef>
#include <vector>

namespace sysdp {

struct AndTreeNode {
  std::size_t lo = 0;       ///< [lo, hi) range of leaf matrices covered
  std::size_t hi = 0;
  std::size_t left = kNone;   ///< child indices (kNone for leaves)
  std::size_t right = kNone;
  std::size_t parent = kNone;
  std::size_t height = 0;   ///< longest path to a leaf (leaves: 0)
  std::size_t depth = 0;    ///< distance from the root (root: 0) — Hu's
                            ///< level for in-tree scheduling

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] bool is_leaf() const noexcept { return left == kNone; }
};

/// The AND-tree for a string of `num_leaves` matrices.
class AndTree {
 public:
  explicit AndTree(std::size_t num_leaves);

  [[nodiscard]] std::size_t num_leaves() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t num_internal() const noexcept {
    return leaves_ - 1;
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const AndTreeNode& node(std::size_t i) const {
    return nodes_.at(i);
  }
  [[nodiscard]] std::size_t root() const noexcept { return root_; }

  /// Height of the tree: ceil(log2(num_leaves)).
  [[nodiscard]] std::size_t height() const { return nodes_.at(root_).height; }

 private:
  std::size_t build(std::size_t lo, std::size_t hi);

  std::size_t leaves_;
  std::size_t root_ = 0;
  std::vector<AndTreeNode> nodes_;
};

}  // namespace sysdp
