// Dataflow execution of a fixed parenthesisation (end of Section 4).
//
// When the chain's matrices have different dimensions, the multiplication
// order fixes a binary task tree whose node durations differ (one product
// of an a x b by a b x c matrix costs a*b*c scalar operations), and the
// paper notes the tree "can be treated as a dataflow graph" executed
// asynchronously by the available arrays.  This module schedules such a
// tree on k workers (critical-path priority, event driven) so the effect of
// the *secondary optimisation* — choosing the order — on parallel makespan
// can be measured, not just the sequential operation count eq. (6)
// minimises.
#pragma once

#include <cstdint>
#include <vector>

#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

struct DataflowResult {
  /// Total scalar multiply-accumulates = sum of r_i r_k r_j over the tree
  /// (equals the eq. 6 cost of this parenthesisation).
  std::uint64_t scalar_ops = 0;
  /// Completion time with k workers, in scalar-operation time units.
  std::uint64_t makespan = 0;
  /// Longest root-ward duration chain: the unbounded-k lower bound.
  std::uint64_t critical_path = 0;

  [[nodiscard]] double utilization(std::uint64_t k) const noexcept {
    if (makespan == 0 || k == 0) return 1.0;
    return static_cast<double>(scalar_ops) /
           (static_cast<double>(k) * static_cast<double>(makespan));
  }
};

/// Schedule the parenthesisation given by `split` (as produced by
/// matrix_chain_order / GktArray) over chain dimensions `dims` on `k`
/// workers.
[[nodiscard]] DataflowResult execute_chain_dataflow(
    const std::vector<Cost>& dims, const Matrix<std::size_t>& split,
    std::uint64_t k);

/// Split table of the naive left-to-right order ((M1 M2) M3) ...
[[nodiscard]] Matrix<std::size_t> split_left_assoc(std::size_t n);

/// Split table of the shape-balanced order (ignores dimensions).
[[nodiscard]] Matrix<std::size_t> split_balanced(std::size_t n);

}  // namespace sysdp
