#include "dnc/metrics.hpp"

#include <bit>
#include <stdexcept>

namespace sysdp {

namespace {

/// floor(log2(x)) for x >= 1.
std::uint64_t floor_log2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("floor_log2(0)");
  return static_cast<std::uint64_t>(std::bit_width(x) - 1);
}

}  // namespace

std::uint64_t dnc_time_eq29(std::uint64_t n, std::uint64_t k) {
  if (n < 2) return 0;
  if (k == 0) throw std::invalid_argument("dnc_time_eq29: k == 0");
  const std::uint64_t tc = (n - 1) / k;
  const std::uint64_t residue = n + k - 1 - k * tc;
  return tc + floor_log2(residue);
}

double dnc_time_eq30(double n, double k) {
  return n / k - 1.0 + std::log2(k);
}

double dnc_time_lower_bound(double n, double s) {
  return n / s - 1.0 + std::log2(s);
}

double kt2_eq29(std::uint64_t n, std::uint64_t k) {
  const double t = static_cast<double>(dnc_time_eq29(n, k));
  return static_cast<double>(k) * t * t;
}

double st2_lower_bound(double n, double s) {
  const double t = dnc_time_lower_bound(n, s);
  return s * t * t;
}

double pu_eq29(std::uint64_t n, std::uint64_t k) {
  if (n < 2) return 1.0;
  const double t = static_cast<double>(dnc_time_eq29(n, k));
  return static_cast<double>(n - 1) / (static_cast<double>(k) * t);
}

double prop1_limit(double c_inf) { return 1.0 / (1.0 + c_inf); }

Kt2Minimum minimize_kt2(std::uint64_t n, std::uint64_t k_max) {
  Kt2Minimum best{1, kt2_eq29(n, 1)};
  for (std::uint64_t k = 2; k <= k_max; ++k) {
    const double v = kt2_eq29(n, k);
    if (v < best.kt2) best = {k, v};
  }
  return best;
}

}  // namespace sysdp
