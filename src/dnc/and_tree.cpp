#include "dnc/and_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

AndTree::AndTree(std::size_t num_leaves) : leaves_(num_leaves) {
  if (num_leaves == 0) throw std::invalid_argument("AndTree: no leaves");
  nodes_.reserve(2 * num_leaves - 1);
  root_ = build(0, num_leaves);
  // Pre-order construction puts every parent before its children, so one
  // forward pass assigns depths.
  for (auto& n : nodes_) {
    if (n.parent != AndTreeNode::kNone) n.depth = nodes_[n.parent].depth + 1;
  }
}

std::size_t AndTree::build(std::size_t lo, std::size_t hi) {
  const std::size_t idx = nodes_.size();
  nodes_.push_back(AndTreeNode{lo, hi, AndTreeNode::kNone, AndTreeNode::kNone,
                               AndTreeNode::kNone, 0, 0});
  if (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;  // left gets the ceiling
    const std::size_t l = build(lo, mid);
    const std::size_t r = build(mid, hi);
    nodes_[idx].left = l;
    nodes_[idx].right = r;
    nodes_[l].parent = idx;
    nodes_[r].parent = idx;
    nodes_[idx].height = 1 + std::max(nodes_[l].height, nodes_[r].height);
  }
  return idx;
}

}  // namespace sysdp
