#include "dnc/dataflow.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace sysdp {

namespace {

struct Task {
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint64_t duration = 0;
  std::size_t parent = kNone;
  std::size_t missing = 0;       ///< children still incomplete
  std::uint64_t blevel = 0;      ///< duration + path of ancestors to root

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/// Build the task tree for interval [i, j]; returns the task index or
/// kNone for single matrices (no work).
std::size_t build(const std::vector<Cost>& dims,
                  const Matrix<std::size_t>& split, std::size_t i,
                  std::size_t j, std::vector<Task>& tasks) {
  if (i == j) return Task::kNone;
  const std::size_t k = split(i, j);
  if (k < i || k >= j) throw std::invalid_argument("dataflow: bad split");
  const std::size_t idx = tasks.size();
  tasks.push_back(Task{});
  tasks[idx].i = i;
  tasks[idx].j = j;
  tasks[idx].duration = static_cast<std::uint64_t>(dims[i]) *
                        static_cast<std::uint64_t>(dims[k + 1]) *
                        static_cast<std::uint64_t>(dims[j + 1]);
  const std::size_t l = build(dims, split, i, k, tasks);
  const std::size_t r = build(dims, split, k + 1, j, tasks);
  std::size_t missing = 0;
  if (l != Task::kNone) {
    tasks[l].parent = idx;
    ++missing;
  }
  if (r != Task::kNone) {
    tasks[r].parent = idx;
    ++missing;
  }
  tasks[idx].missing = missing;
  return idx;
}

}  // namespace

DataflowResult execute_chain_dataflow(const std::vector<Cost>& dims,
                                      const Matrix<std::size_t>& split,
                                      std::uint64_t k) {
  if (dims.size() < 2) throw std::invalid_argument("dataflow: empty chain");
  if (k == 0) throw std::invalid_argument("dataflow: k == 0");
  const std::size_t n = dims.size() - 1;
  DataflowResult res;
  if (n == 1) return res;

  std::vector<Task> tasks;
  tasks.reserve(n - 1);
  const std::size_t root = build(dims, split, 0, n - 1, tasks);

  // Bottom levels (parents precede children in `tasks`): blevel = own
  // duration + blevel of the parent.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    tasks[t].blevel = tasks[t].duration +
                      (tasks[t].parent == Task::kNone
                           ? 0
                           : tasks[tasks[t].parent].blevel);
    res.scalar_ops += tasks[t].duration;
    res.critical_path = std::max(res.critical_path, tasks[t].blevel);
  }
  (void)root;

  // Event-driven list schedule, critical-path (highest blevel) priority.
  const auto by_blevel = [&](std::size_t a, std::size_t b) {
    if (tasks[a].blevel != tasks[b].blevel) {
      return tasks[a].blevel < tasks[b].blevel;  // max-heap
    }
    return a > b;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(by_blevel)>
      ready(by_blevel);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].missing == 0) ready.push(t);
  }
  // Running tasks: (finish time, task id) min-heap.
  using Running = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::uint64_t now = 0;
  std::size_t remaining = tasks.size();
  while (remaining > 0) {
    while (!ready.empty() && running.size() < k) {
      const std::size_t t = ready.top();
      ready.pop();
      running.emplace(now + tasks[t].duration, t);
    }
    if (running.empty()) {
      throw std::logic_error("dataflow: deadlock (malformed tree)");
    }
    const auto [finish, t] = running.top();
    running.pop();
    now = finish;
    --remaining;
    const std::size_t parent = tasks[t].parent;
    if (parent != Task::kNone && --tasks[parent].missing == 0) {
      ready.push(parent);
    }
  }
  res.makespan = now;
  return res;
}

Matrix<std::size_t> split_left_assoc(std::size_t n) {
  Matrix<std::size_t> split(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) split(i, j) = j - 1;
  }
  return split;
}

Matrix<std::size_t> split_balanced(std::size_t n) {
  Matrix<std::size_t> split(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t len = j - i + 1;
      split(i, j) = i + (len + 1) / 2 - 1;  // left half takes the ceiling
    }
  }
  return split;
}

}  // namespace sysdp
