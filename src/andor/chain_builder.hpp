// AND/OR-graph for the optimal matrix-multiplication order (Figure 2).
//
// One OR-node per subchain [i, j] (comparison of alternative splits), one
// AND-node per split k (the addition m_{i,k} + m_{k+1,j} + r_{i-1} r_k r_j
// of eq. 6), and one leaf per single matrix.  Layered drawing: the OR-node
// of a size-s subchain sits at level 2(s-1) with its AND-children one level
// below, so any split other than (s-1, 1)/(1, s-1) creates an arc that
// skips levels — which is exactly why the formulation is polyadic-
// *nonserial* (Section 2.2) and why Figure 8 adds dummy nodes.
#pragma once

#include <vector>

#include "andor/andor_graph.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

struct ChainAndOr {
  AndOrGraph graph;
  /// or_id(i,j): node id of the OR (or leaf, when i == j) for subchain
  /// [i, j], 0-based over matrices.
  Matrix<std::size_t> or_id;
  std::size_t root = 0;

  [[nodiscard]] Cost solve(OpCount* ops = nullptr) const {
    return graph.value_of(root, ops);
  }
};

/// Build the Figure 2 graph for chain dimensions r_0..r_n.
[[nodiscard]] ChainAndOr build_chain_andor(const std::vector<Cost>& dims);

}  // namespace sysdp
