#include "andor/level_evaluate.hpp"

#include <stdexcept>

namespace sysdp {

LevelEvalResult evaluate_by_levels(const AndOrGraph& g, std::uint64_t p) {
  if (p == 0) throw std::invalid_argument("evaluate_by_levels: p == 0");
  LevelEvalResult res;
  res.values.assign(g.size(), kInfCost);

  // Bucket nodes by level; leaves (and anything at level 0) are inputs.
  std::size_t height = g.height();
  std::vector<std::vector<std::size_t>> by_level(height + 1);
  for (std::size_t i = 0; i < g.size(); ++i) {
    by_level[g.node(i).level].push_back(i);
  }

  for (std::size_t l = 0; l <= height; ++l) {
    std::uint64_t evaluated = 0;
    for (std::size_t id : by_level[l]) {
      const AndOrNode& n = g.node(id);
      switch (n.type) {
        case AndOrType::kLeaf:
          res.values[id] = n.leaf_value;
          continue;  // inputs, not processor work
        case AndOrType::kDummy:
          res.values[id] = res.values[n.children.front()];
          break;
        case AndOrType::kAnd: {
          Cost sum = n.local;
          for (std::size_t c : n.children) {
            if (g.node(c).level >= l) {
              throw std::invalid_argument(
                  "evaluate_by_levels: child not below its parent's level");
            }
            sum = sat_add(sum, res.values[c]);
          }
          res.values[id] = sum;
          break;
        }
        case AndOrType::kOr: {
          Cost best = kInfCost;
          for (std::size_t c : n.children) {
            if (g.node(c).level >= l) {
              throw std::invalid_argument(
                  "evaluate_by_levels: child not below its parent's level");
            }
            best = std::min(best, res.values[c]);
          }
          res.values[id] = best;
          break;
        }
      }
      ++evaluated;
    }
    if (evaluated > 0) {
      ++res.levels;
      res.node_ops += evaluated;
      res.steps += (evaluated + p - 1) / p;  // ceil(nodes / p)
    }
  }
  return res;
}

}  // namespace sysdp
