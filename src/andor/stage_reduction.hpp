// Stage reduction for *irregular* multistage graphs (Section 5, after
// Theorem 2; Section 4's "secondary optimization problem").
//
// When stage sizes differ, the comparison count of reducing the graph
// depends on the order in which intermediate stages are eliminated.
// Eliminating stage k between stages i and j costs m_i * m_k * m_j
// comparisons — structurally identical to eq. (6) with the stage sizes as
// chain dimensions, so the optimal elimination order *is* a matrix-chain
// parenthesisation (the paper: "finding the optimal order of multiplying a
// string of matrices with different dimensions is itself a
// polyadic-nonserial DP problem, the so-called secondary optimization
// problem").  The paper's worked comparison of 3-arc versus 2-arc AND-nodes
// for stages (m1, m2, m3, m4) falls out as a special case.
#pragma once

#include <cstdint>
#include <vector>

#include "andor/andor_graph.hpp"
#include "graph/multistage_graph.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

struct StageReductionPlan {
  /// Comparisons needed by the best binary (2-arc AND) elimination order.
  std::uint64_t best_binary_comparisons = 0;
  /// Comparisons of the naive left-to-right binary order.
  std::uint64_t left_to_right_comparisons = 0;
  /// Comparisons of the single p-arc AND reduction that eliminates all
  /// intermediate stages at once (the brute-force end of Theorem 2).
  std::uint64_t single_step_comparisons = 0;
  /// Elimination order: indices of the intermediate stages (1..S-2) in the
  /// order they should be removed.
  std::vector<std::size_t> elimination_order;
};

/// Plan the optimal reduction of a multistage graph with the given stage
/// sizes to a single (first-stage x last-stage) cost table.
[[nodiscard]] StageReductionPlan plan_stage_reduction(
    const std::vector<std::size_t>& stage_sizes);

/// Execute a binary elimination order on an actual graph, returning the
/// all-pairs cost table between the first and last stages and counting the
/// comparisons performed.  The result is order-independent (associativity);
/// the work is not.
[[nodiscard]] Matrix<Cost> reduce_stages(const MultistageGraph& g,
                                         const std::vector<std::size_t>& order,
                                         std::uint64_t* comparisons = nullptr);

/// Build the binary AND/OR-graph realising a given elimination order on an
/// irregular multistage graph: one OR-node (over m_i * m_j AND pairs) per
/// entry of every merged segment table, leaves = raw edge costs.  The node
/// count depends on the order — the irregular counterpart of Theorem 2's
/// u(p) analysis — while the evaluated top table is order-independent.
struct ReductionAndOr {
  AndOrGraph graph;
  Matrix<std::size_t> top_id;  ///< (first-stage x last-stage) entry nodes
};
[[nodiscard]] ReductionAndOr build_reduction_andor(
    const MultistageGraph& g, const std::vector<std::size_t>& order);

/// The paper's worked example: eliminating stages 2 and 3 of a 4-stage
/// segment with one 3-arc AND costs m1 m2 m3 m4 comparisons, versus
/// m1 m3 (m2 + m4) or m2 m4 (m1 + m3) for the two binary orders.
struct FourStageCosts {
  std::uint64_t three_arc = 0;
  std::uint64_t binary_mid_first = 0;   ///< eliminate stage 2 first
  std::uint64_t binary_last_first = 0;  ///< eliminate stage 3 first
};
[[nodiscard]] FourStageCosts four_stage_comparison(std::uint64_t m1,
                                                   std::uint64_t m2,
                                                   std::uint64_t m3,
                                                   std::uint64_t m4);

}  // namespace sysdp
