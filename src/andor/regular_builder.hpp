// Regular AND/OR-graph for p-way partitioning of a multistage graph
// (Figure 7, Theorem 2).
//
// An (N+1)-stage graph (N = p^Q segments of edges, m nodes per stage) is
// reduced to a single stage by repeatedly fusing p consecutive segments:
// each fused segment needs, per (entry, exit) node pair, one OR-node over
// the m^{p-1} AND-nodes that enumerate the intermediate boundary nodes.
// The resulting graph has height 2 log_p N and exactly
//     u(p) = (N-1)/(p-1) m^{p+1} + (N p - 1)/(p-1) m^2
// nodes (eq. 32) — the quantity Theorem 2 proves is minimised by p = 2.
#pragma once

#include <cstdint>
#include <vector>

#include "andor/andor_graph.hpp"
#include "graph/multistage_graph.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

struct RegularAndOr {
  AndOrGraph graph;
  /// Node ids of the top segment's m x m cost entries: top_id(i, j) is the
  /// optimal stage-0-node-i to stage-N-node-j cost.
  Matrix<std::size_t> top_id;
  std::size_t p = 2;
  std::size_t rounds = 0;  ///< Q = log_p N
};

/// Build the reduction graph for the given multistage graph, which must
/// have N = p^Q edge segments and uniform width m.
[[nodiscard]] RegularAndOr build_regular_andor(const MultistageGraph& g,
                                               std::size_t p);

/// Eq. (32): the closed-form node count u(p).
[[nodiscard]] std::uint64_t u_formula(std::uint64_t n_segments,
                                      std::uint64_t p, std::uint64_t m);

}  // namespace sysdp
