#include "andor/pipeline_array.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

namespace {

/// A candidate waiting at an OR processor: the cycle its operands finish
/// climbing the dummy chains, and the split it represents.
struct Pending {
  sim::Cycle arrival;
  std::size_t k;
};

}  // namespace

SerializedChainArray::SerializedChainArray(std::vector<Cost> dims)
    : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("SerializedChainArray: need >= 1 matrix");
  }
  for (Cost d : dims_) {
    if (d <= 0) {
      throw std::invalid_argument("SerializedChainArray: dims must be > 0");
    }
  }
}

SerializedChainArray::Result SerializedChainArray::run() const {
  const std::size_t n = num_matrices();
  Result out{Matrix<Cost>(n, n, kInfCost), Matrix<sim::Cycle>(n, n, 0), {}};
  out.stats.num_pes = n * (n + 1) / 2;
  out.stats.input_scalars = dims_.size();

  // Per-cell pending candidate queues (kept sorted by arrival) and
  // remaining-candidate counters.
  std::vector<std::vector<std::vector<Pending>>> pending(
      n, std::vector<std::vector<Pending>>(n));
  std::vector<std::vector<std::size_t>> remaining(
      n, std::vector<std::size_t>(n, 0));
  std::vector<std::vector<Cost>> best(n, std::vector<Cost>(n, kInfCost));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) remaining[i][j] = j - i;
  }

  // When cell (a, b) completes, announce the split candidates whose second
  // operand is now also done.  A size-c value consumed at level s arrives
  // after climbing s - c dummy/entry registers, one per cycle.
  const auto announce = [&](std::size_t a, std::size_t b) {
    const sim::Cycle done_ab = out.done(a, b);
    // As left operand m_{a,b} of parents (a, j), split b, sibling (b+1, j).
    for (std::size_t j = b + 1; j < n; ++j) {
      const bool sibling_done = (out.done(b + 1, j) != 0);
      if (!sibling_done) continue;
      const std::size_t s = j - a + 1;
      const sim::Cycle arr =
          std::max(done_ab + (s - (b - a + 1)),
                   out.done(b + 1, j) + (s - (j - b)));
      pending[a][j].push_back(Pending{arr, b});
    }
    // As right operand m_{a,b} of parents (i, b), split a - 1, sibling
    // (i, a - 1).
    if (a > 0) {
      for (std::size_t i = 0; i < a; ++i) {
        const bool sibling_done = (out.done(i, a - 1) != 0);
        if (!sibling_done) continue;
        const std::size_t s = b - i + 1;
        const sim::Cycle arr = std::max(out.done(i, a - 1) + (s - (a - i)),
                                        done_ab + (s - (b - a + 1)));
        pending[i][b].push_back(Pending{arr, a - 1});
      }
    }
  };

  // Leaves complete at cycle 2 (the T_p(1) = 2 start-up of Prop. 3).
  // Completing (and announcing) them one at a time keeps the
  // exactly-once candidate announcement invariant: the second operand of a
  // pair to complete is the one that announces it.
  for (std::size_t i = 0; i < n; ++i) {
    out.cost(i, i) = 0;
    out.done(i, i) = 2;
    announce(i, i);
  }

  std::size_t open_cells = n * (n - 1) / 2;
  sim::Cycle c = 2;
  const sim::Cycle limit = 4 * static_cast<sim::Cycle>(n) + 16;
  while (open_cells > 0 && c <= limit) {
    ++c;
    for (std::size_t d = 1; d < n; ++d) {
      for (std::size_t i = 0; i + d < n; ++i) {
        const std::size_t j = i + d;
        if (out.done(i, j) != 0) continue;
        auto& queue = pending[i][j];
        if (queue.empty()) continue;
        std::sort(queue.begin(), queue.end(),
                  [](const Pending& x, const Pending& y) {
                    return x.arrival < y.arrival;
                  });
        // The processor's two adders and two comparators fold up to two
        // candidates whose operands arrived before this cycle.
        std::size_t taken = 0;
        while (!queue.empty() && taken < 2 && queue.front().arrival <= c - 1) {
          const std::size_t k = queue.front().k;
          queue.erase(queue.begin());
          const Cost cand =
              sat_add(sat_add(out.cost(i, k), out.cost(k + 1, j)),
                      dims_[i] * dims_[k + 1] * dims_[j + 1]);
          best[i][j] = std::min(best[i][j], cand);
          ++out.stats.busy_steps;
          ++taken;
          --remaining[i][j];
        }
        if (taken > 0 && remaining[i][j] == 0) {
          out.cost(i, j) = best[i][j];
          out.done(i, j) = c;
          --open_cells;
          announce(i, j);
        }
      }
    }
  }
  if (open_cells > 0) {
    throw std::logic_error("SerializedChainArray: did not converge");
  }
  out.stats.cycles = out.completion();
  return out;
}

}  // namespace sysdp
