// Clocked execution of the serialised matrix-chain AND/OR-graph
// (Section 6.2, Figure 8) — the hardware model behind Proposition 3.
//
// One processor per subchain [i, j] at level s = j - i + 1, each containing
// the OR comparator and its AND adders (as the paper maps them); dummy
// registers forward values upward one level per cycle.  Per cycle the model
//  * moves every completed value one level up its dummy chains,
//  * fires AND nodes whose two operands are present (one addition each),
//  * lets every OR processor fold up to two arrived candidates (the
//    two-adder/two-comparator PE of Section 6.2).
// Unlike the closed-form schedule in level_schedule.cpp this is a
// discrete-time machine carrying the actual m_{i,j} costs, so it validates
// value and timing together: completion equals t_pipelined(n) = 2n and the
// root value equals the eq. (6) table DP.
#pragma once

#include <cstdint>
#include <vector>

#include "arrays/run_result.hpp"
#include "semiring/cost.hpp"
#include "semiring/matrix.hpp"

namespace sysdp {

class SerializedChainArray {
 public:
  /// Chain dimensions r_0..r_n as in eq. (6).
  explicit SerializedChainArray(std::vector<Cost> dims);

  struct Result {
    Matrix<Cost> cost;            ///< completed m_{i,j} values
    Matrix<sim::Cycle> done;      ///< completion cycle per subchain
    RunResult<Cost> stats;

    [[nodiscard]] Cost total() const { return cost(0, cost.cols() - 1); }
    [[nodiscard]] sim::Cycle completion() const {
      return done(0, done.cols() - 1);
    }
  };

  [[nodiscard]] Result run() const;

  [[nodiscard]] std::size_t num_matrices() const noexcept {
    return dims_.size() - 1;
  }

 private:
  std::vector<Cost> dims_;
};

}  // namespace sysdp
