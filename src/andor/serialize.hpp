// Serialisation of a nonserial AND/OR-graph (Section 6.2, Figure 8).
//
// A nonserial AND/OR-graph has arcs that skip levels; a systolic (planar,
// nearest-neighbour) implementation requires every arc to connect adjacent
// levels.  The transform inserts chains of dummy nodes along every
// level-skipping arc — "the additional connections represented as dotted
// lines in Figure 8" — preserving all node values while making the graph
// serial.  The dummy count is the "redundant hardware" and the longest
// dummy chain the "additional delay" the paper says the transformation
// introduces.
#pragma once

#include <cstdint>

#include "andor/andor_graph.hpp"

namespace sysdp {

struct SerializedAndOr {
  AndOrGraph graph;
  /// new id of every original node (indexed by old id).
  std::vector<std::size_t> remap;
  std::uint64_t dummies_added = 0;
  std::uint64_t longest_chain = 0;  ///< extra delay in levels on any arc
};

/// Insert dummy nodes so that every arc connects adjacent levels.  Node
/// values (hence the DP solution) are unchanged; the result satisfies
/// AndOrGraph::is_serial().
[[nodiscard]] SerializedAndOr serialize_andor(const AndOrGraph& g);

}  // namespace sysdp
