#include "andor/stage_reduction.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/matrix_chain.hpp"
#include "semiring/ops.hpp"

namespace sysdp {

namespace {

/// Post-order walk of the split tree: eliminating the boundary stage of the
/// final merge last.
void elimination_postorder(const Matrix<std::size_t>& split, std::size_t i,
                           std::size_t j, std::vector<std::size_t>& out) {
  if (i == j) return;
  const std::size_t k = split(i, j);
  elimination_postorder(split, i, k, out);
  elimination_postorder(split, k + 1, j, out);
  out.push_back(k + 1);  // matrix boundary k|k+1 is stage k+1
}

}  // namespace

StageReductionPlan plan_stage_reduction(
    const std::vector<std::size_t>& stage_sizes) {
  if (stage_sizes.size() < 2) {
    throw std::invalid_argument("plan_stage_reduction: need >= 2 stages");
  }
  StageReductionPlan plan;
  std::vector<Cost> dims(stage_sizes.begin(), stage_sizes.end());
  const auto chain = matrix_chain_order(dims);
  plan.best_binary_comparisons =
      static_cast<std::uint64_t>(chain.total());

  // Naive left-to-right binary order: ((T_0 T_1) T_2) ...
  std::uint64_t ltr = 0;
  for (std::size_t j = 2; j + 1 <= stage_sizes.size(); ++j) {
    ltr += static_cast<std::uint64_t>(stage_sizes[0]) * stage_sizes[j - 1] *
           stage_sizes[j];
  }
  plan.left_to_right_comparisons = ltr;

  // One (S-1)-arc AND node: enumerate every stage combination.
  std::uint64_t single = 1;
  for (std::size_t s : stage_sizes) single *= s;
  plan.single_step_comparisons = single;

  if (stage_sizes.size() > 2) {
    elimination_postorder(chain.split, 0, stage_sizes.size() - 2,
                          plan.elimination_order);
  }
  return plan;
}

Matrix<Cost> reduce_stages(const MultistageGraph& g,
                           const std::vector<std::size_t>& order,
                           std::uint64_t* comparisons) {
  const std::size_t S = g.num_stages();
  if (order.size() + 2 != S) {
    throw std::invalid_argument(
        "reduce_stages: order must name every intermediate stage once");
  }
  // remaining[i]: is stage i still present; table[l]: cost matrix from
  // remaining stage l to the next remaining stage.
  std::vector<bool> remaining(S, true);
  std::vector<Matrix<Cost>> table(S - 1);
  for (std::size_t k = 0; k + 1 < S; ++k) table[k] = g.costs(k);

  OpCount ops;
  for (std::size_t s : order) {
    if (s == 0 || s + 1 >= S || !remaining[s]) {
      throw std::invalid_argument("reduce_stages: bad elimination order");
    }
    std::size_t left = s;
    do {
      --left;
    } while (!remaining[left]);
    table[left] = mat_mul<MinPlus>(table[left], table[s], &ops);
    remaining[s] = false;
  }
  if (comparisons != nullptr) *comparisons = ops.mac;
  return table[0];
}

ReductionAndOr build_reduction_andor(const MultistageGraph& g,
                                     const std::vector<std::size_t>& order) {
  const std::size_t S = g.num_stages();
  if (order.size() + 2 != S) {
    throw std::invalid_argument(
        "build_reduction_andor: order must name every intermediate stage");
  }
  ReductionAndOr out;
  // Segment tables of node ids, keyed by their left stage; level grows by
  // two (AND + OR) per merge, tracked per segment.
  std::vector<bool> remaining(S, true);
  std::vector<Matrix<std::size_t>> table(S - 1);
  std::vector<std::size_t> level(S - 1, 0);
  for (std::size_t k = 0; k + 1 < S; ++k) {
    Matrix<std::size_t> ids(g.stage_size(k), g.stage_size(k + 1), 0);
    for (std::size_t i = 0; i < ids.rows(); ++i) {
      for (std::size_t j = 0; j < ids.cols(); ++j) {
        ids(i, j) = out.graph.add_leaf(g.edge(k, i, j), 0);
      }
    }
    table[k] = std::move(ids);
  }

  for (std::size_t s : order) {
    if (s == 0 || s + 1 >= S || !remaining[s]) {
      throw std::invalid_argument("build_reduction_andor: bad order");
    }
    std::size_t left = s;
    do {
      --left;
    } while (!remaining[left]);
    const auto& a = table[left];
    const auto& b = table[s];
    const std::size_t merge_level = std::max(level[left], level[s]);
    Matrix<std::size_t> merged(a.rows(), b.cols(), 0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        std::vector<std::size_t> alts;
        alts.reserve(a.cols());
        for (std::size_t mid = 0; mid < a.cols(); ++mid) {
          alts.push_back(out.graph.add_and({a(i, mid), b(mid, j)}, 0,
                                           merge_level + 1));
        }
        merged(i, j) = out.graph.add_or(std::move(alts), merge_level + 2);
      }
    }
    table[left] = std::move(merged);
    level[left] = merge_level + 2;
    remaining[s] = false;
  }
  out.top_id = table[0];
  return out;
}

FourStageCosts four_stage_comparison(std::uint64_t m1, std::uint64_t m2,
                                     std::uint64_t m3, std::uint64_t m4) {
  FourStageCosts out;
  out.three_arc = m1 * m2 * m3 * m4;
  out.binary_mid_first = m1 * m3 * (m2 + m4);
  out.binary_last_first = m2 * m4 * (m1 + m3);
  return out;
}

}  // namespace sysdp
