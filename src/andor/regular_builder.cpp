#include "andor/regular_builder.hpp"

#include <cmath>
#include <stdexcept>

namespace sysdp {

namespace {

/// N = p^Q exactly?  Returns Q or throws.
std::size_t exact_log(std::size_t n, std::size_t p) {
  std::size_t q = 0;
  std::size_t acc = 1;
  while (acc < n) {
    acc *= p;
    ++q;
  }
  if (acc != n) {
    throw std::invalid_argument(
        "build_regular_andor: segments must be a power of p");
  }
  return q;
}

std::uint64_t ipow(std::uint64_t b, std::uint64_t e) {
  std::uint64_t r = 1;
  while (e-- > 0) r *= b;
  return r;
}

}  // namespace

RegularAndOr build_regular_andor(const MultistageGraph& g, std::size_t p) {
  if (p < 2) throw std::invalid_argument("build_regular_andor: p < 2");
  if (!g.uniform_width()) {
    throw std::invalid_argument("build_regular_andor: non-uniform width");
  }
  const std::size_t n_seg = g.num_stages() - 1;
  const std::size_t m = g.stage_size(0);
  const std::size_t q_rounds = exact_log(n_seg, p);

  RegularAndOr out;
  out.p = p;
  out.rounds = q_rounds;

  // seg[r] holds the m x m table of node ids for segment r of the current
  // round (leaves for round 0: the raw edge costs).
  std::vector<Matrix<std::size_t>> seg;
  seg.reserve(n_seg);
  for (std::size_t r = 0; r < n_seg; ++r) {
    Matrix<std::size_t> ids(m, m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        ids(i, j) = out.graph.add_leaf(g.edge(r, i, j), 0);
      }
    }
    seg.push_back(std::move(ids));
  }

  for (std::size_t t = 1; t <= q_rounds; ++t) {
    const std::size_t and_level = 2 * t - 1;
    const std::size_t or_level = 2 * t;
    std::vector<Matrix<std::size_t>> fused;
    fused.reserve(seg.size() / p);
    for (std::size_t r = 0; r + p <= seg.size(); r += p) {
      Matrix<std::size_t> ids(m, m, 0);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          // Enumerate the m^{p-1} choices of intermediate boundary nodes.
          std::vector<std::size_t> alts;
          std::vector<std::size_t> mid(p - 1, 0);
          for (;;) {
            std::vector<std::size_t> children;
            children.reserve(p);
            std::size_t prev = i;
            for (std::size_t b = 0; b < p; ++b) {
              const std::size_t next = (b + 1 == p) ? j : mid[b];
              children.push_back(seg[r + b](prev, next));
              prev = next;
            }
            alts.push_back(
                out.graph.add_and(std::move(children), 0, and_level));
            // Odometer increment over mid[].
            std::size_t d = 0;
            while (d < mid.size() && ++mid[d] == m) {
              mid[d] = 0;
              ++d;
            }
            if (d == mid.size()) break;
          }
          ids(i, j) = out.graph.add_or(std::move(alts), or_level);
        }
      }
      fused.push_back(std::move(ids));
    }
    seg = std::move(fused);
  }
  out.top_id = seg.front();
  return out;
}

std::uint64_t u_formula(std::uint64_t n_segments, std::uint64_t p,
                        std::uint64_t m) {
  const std::uint64_t and_nodes =
      (n_segments - 1) / (p - 1) * ipow(m, p + 1);
  const std::uint64_t or_and_leaf_nodes =
      (n_segments * p - 1) / (p - 1) * (m * m);
  return and_nodes + or_and_leaf_nodes;
}

}  // namespace sysdp
