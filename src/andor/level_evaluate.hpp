// Level-synchronous parallel bottom-up evaluation (Section 6.2's
// "breadth-first bottom-up fashion, which expands nodes by levels").
//
// With p processors, each level of the layered AND/OR-graph takes
// ceil(nodes_at_level / p) steps (one node operation per processor per
// step); levels are barriers because a node may depend on anything below.
// This is the generic parallel evaluator for arbitrary AND/OR-graphs —
// the systolic mappings of level_schedule.cpp specialise it for the chain
// structure — and it quantifies the PU of the dedicated-processor
// alternative the paper contrasts with dataflow machines.
#pragma once

#include <cstdint>

#include "andor/andor_graph.hpp"

namespace sysdp {

struct LevelEvalResult {
  std::vector<Cost> values;     ///< node values (== AndOrGraph::evaluate)
  std::uint64_t steps = 0;      ///< parallel steps with p processors
  std::uint64_t node_ops = 0;   ///< total node evaluations (levels > 0)
  std::size_t levels = 0;       ///< number of non-leaf levels processed

  [[nodiscard]] double utilization(std::uint64_t p) const noexcept {
    if (steps == 0 || p == 0) return 1.0;
    return static_cast<double>(node_ops) /
           (static_cast<double>(p) * static_cast<double>(steps));
  }
};

/// Evaluate `g` with `p` processors, level by level.
[[nodiscard]] LevelEvalResult evaluate_by_levels(const AndOrGraph& g,
                                                 std::uint64_t p);

}  // namespace sysdp
