#include "andor/chain_builder.hpp"

#include <stdexcept>

namespace sysdp {

ChainAndOr build_chain_andor(const std::vector<Cost>& dims) {
  if (dims.size() < 2) {
    throw std::invalid_argument("build_chain_andor: need >= 1 matrix");
  }
  const std::size_t n = dims.size() - 1;
  ChainAndOr out;
  out.or_id = Matrix<std::size_t>(n, n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    out.or_id(i, i) = out.graph.add_leaf(0, 0);  // m_{i,i} = 0
  }
  for (std::size_t s = 2; s <= n; ++s) {
    const std::size_t or_level = 2 * (s - 1);
    for (std::size_t i = 0; i + s <= n; ++i) {
      const std::size_t j = i + s - 1;
      std::vector<std::size_t> alts;
      alts.reserve(s - 1);
      for (std::size_t k = i; k < j; ++k) {
        const Cost arc = dims[i] * dims[k + 1] * dims[j + 1];
        alts.push_back(out.graph.add_and(
            {out.or_id(i, k), out.or_id(k + 1, j)}, arc, or_level - 1));
      }
      out.or_id(i, j) = out.graph.add_or(std::move(alts), or_level);
    }
  }
  out.root = out.or_id(0, n - 1);
  return out;
}

}  // namespace sysdp
