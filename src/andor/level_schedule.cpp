#include "andor/level_schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace sysdp {

namespace {

ChainScheduleResult simulate_chain(std::size_t n, bool pipelined) {
  if (n == 0) throw std::invalid_argument("simulate_chain: n == 0");
  ChainScheduleResult out;
  out.done = Matrix<sim::Cycle>(n, n, 0);
  out.processors = n * (n - 1) / 2;

  const sim::Cycle leaf_done = pipelined ? 2 : 1;
  for (std::size_t i = 0; i < n; ++i) out.done(i, i) = leaf_done;

  for (std::size_t s = 2; s <= n; ++s) {
    for (std::size_t i = 0; i + s <= n; ++i) {
      const std::size_t j = i + s - 1;
      std::vector<sim::Cycle> arrivals;
      arrivals.reserve(s - 1);
      for (std::size_t k = i; k < j; ++k) {
        const std::size_t c_left = k - i + 1;   // size of left child
        const std::size_t c_right = j - k;      // size of right child
        sim::Cycle left = out.done(i, k);
        sim::Cycle right = out.done(k + 1, j);
        if (pipelined) {
          left += s - c_left;    // ripple up one level per cycle
          right += s - c_right;
        }
        arrivals.push_back(std::max(left, right));
        // A child more than one size-level below the target needs either a
        // broadcast bus (direct mapping) or a dummy chain (serialised).
        if (c_left + 1 != s) ++out.long_arcs;
        if (c_right + 1 != s) ++out.long_arcs;
      }
      std::sort(arrivals.begin(), arrivals.end());
      // Two additions and two comparisons per step: fold up to two
      // candidates per time unit, never before their data has arrived.
      sim::Cycle t = 0;
      std::size_t idx = 0;
      while (idx < arrivals.size()) {
        t = std::max(t, arrivals[idx]) + 1;
        std::size_t taken = 0;
        while (idx < arrivals.size() && taken < 2 && arrivals[idx] <= t - 1) {
          ++idx;
          ++taken;
        }
      }
      out.done(i, j) = t;
    }
  }
  out.completion = out.done(0, n - 1);
  return out;
}

}  // namespace

ChainScheduleResult simulate_chain_broadcast(std::size_t n) {
  return simulate_chain(n, /*pipelined=*/false);
}

ChainScheduleResult simulate_chain_pipelined(std::size_t n) {
  return simulate_chain(n, /*pipelined=*/true);
}

}  // namespace sysdp
