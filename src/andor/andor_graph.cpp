#include "andor/andor_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

std::size_t AndOrGraph::add_node(AndOrNode n) {
  for (std::size_t c : n.children) {
    if (c >= nodes_.size()) {
      throw std::invalid_argument("AndOrGraph: children must precede parents");
    }
  }
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

std::size_t AndOrGraph::add_leaf(Cost value, std::size_t level) {
  AndOrNode n;
  n.type = AndOrType::kLeaf;
  n.leaf_value = value;
  n.level = level;
  return add_node(std::move(n));
}

std::size_t AndOrGraph::add_and(std::vector<std::size_t> children, Cost local,
                                std::size_t level) {
  if (children.empty()) throw std::invalid_argument("AND node needs children");
  AndOrNode n;
  n.type = AndOrType::kAnd;
  n.children = std::move(children);
  n.local = local;
  n.level = level;
  return add_node(std::move(n));
}

std::size_t AndOrGraph::add_or(std::vector<std::size_t> children,
                               std::size_t level) {
  if (children.empty()) throw std::invalid_argument("OR node needs children");
  AndOrNode n;
  n.type = AndOrType::kOr;
  n.children = std::move(children);
  n.level = level;
  return add_node(std::move(n));
}

std::size_t AndOrGraph::add_dummy(std::size_t child, std::size_t level) {
  AndOrNode n;
  n.type = AndOrType::kDummy;
  n.children = {child};
  n.level = level;
  return add_node(std::move(n));
}

std::size_t AndOrGraph::count(AndOrType t) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [t](const AndOrNode& n) { return n.type == t; }));
}

std::size_t AndOrGraph::height() const {
  std::size_t h = 0;
  for (const auto& n : nodes_) h = std::max(h, n.level);
  return h;
}

bool AndOrGraph::is_serial() const {
  for (const auto& n : nodes_) {
    for (std::size_t c : n.children) {
      if (nodes_[c].level + 1 != n.level) return false;
    }
  }
  return true;
}

std::vector<Cost> AndOrGraph::evaluate(OpCount* ops) const {
  std::vector<Cost> val(nodes_.size(), kInfCost);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const AndOrNode& n = nodes_[i];
    switch (n.type) {
      case AndOrType::kLeaf:
        val[i] = n.leaf_value;
        break;
      case AndOrType::kDummy:
        val[i] = val[n.children.front()];
        break;
      case AndOrType::kAnd: {
        Cost sum = n.local;
        for (std::size_t c : n.children) {
          sum = sat_add(sum, val[c]);
          if (ops) ++ops->mac;
        }
        val[i] = sum;
        break;
      }
      case AndOrType::kOr: {
        Cost best = kInfCost;
        for (std::size_t c : n.children) {
          best = std::min(best, val[c]);
          if (ops) ++ops->mac;
        }
        val[i] = best;
        break;
      }
    }
  }
  return val;
}

Cost AndOrGraph::value_of(std::size_t root, OpCount* ops) const {
  if (root >= nodes_.size()) throw std::out_of_range("value_of");
  return evaluate(ops)[root];
}

}  // namespace sysdp
