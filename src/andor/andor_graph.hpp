// AND/OR-graphs (Sections 5 and 6.2).
//
// A polyadic DP problem is the search for a minimum-cost solution tree in an
// additive AND/OR-graph (Martelli-Montanari): AND-nodes combine subproblem
// solutions (here: addition plus a local arc cost), OR-nodes choose the best
// alternative (minimisation), leaves carry given values, and dummy nodes —
// introduced by the serialisation transform of Figure 8 — forward a single
// child unchanged.  Nodes are stored bottom-up (children strictly precede
// parents), so evaluation is a single forward sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "semiring/cost.hpp"
#include "semiring/ops.hpp"

namespace sysdp {

enum class AndOrType : std::uint8_t { kLeaf, kAnd, kOr, kDummy };

struct AndOrNode {
  AndOrType type = AndOrType::kLeaf;
  std::vector<std::size_t> children;
  Cost local = 0;        ///< arc cost added by an AND-node
  Cost leaf_value = 0;   ///< value of a leaf
  std::size_t level = 0; ///< level in the layered drawing (leaves lowest)
};

class AndOrGraph {
 public:
  [[nodiscard]] std::size_t add_leaf(Cost value, std::size_t level = 0);
  [[nodiscard]] std::size_t add_and(std::vector<std::size_t> children,
                                    Cost local, std::size_t level);
  [[nodiscard]] std::size_t add_or(std::vector<std::size_t> children,
                                   std::size_t level);
  [[nodiscard]] std::size_t add_dummy(std::size_t child, std::size_t level);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const AndOrNode& node(std::size_t i) const {
    return nodes_.at(i);
  }

  [[nodiscard]] std::size_t count(AndOrType t) const;

  /// Largest level in the graph (the height of the layered drawing).
  [[nodiscard]] std::size_t height() const;

  /// True if every arc connects adjacent levels only — the structural
  /// definition of a *serial* AND/OR-graph (Section 2.2).
  [[nodiscard]] bool is_serial() const;

  /// Bottom-up breadth-first evaluation (Section 6.2): returns the value of
  /// every node; ops counts one step per AND-addition and per OR-comparison.
  [[nodiscard]] std::vector<Cost> evaluate(OpCount* ops = nullptr) const;

  /// Evaluate and return the value of a single node (typically the root).
  [[nodiscard]] Cost value_of(std::size_t root, OpCount* ops = nullptr) const;

 private:
  std::size_t add_node(AndOrNode n);
  std::vector<AndOrNode> nodes_;
};

}  // namespace sysdp
