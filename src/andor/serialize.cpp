#include "andor/serialize.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysdp {

SerializedAndOr serialize_andor(const AndOrGraph& g) {
  SerializedAndOr out;
  out.remap.reserve(g.size());
  // One shared dummy chain per source node (Figure 8 draws a single dotted
  // chain from each skipped node): chains[c][d-1] forwards c's value to
  // level(c) + d.
  std::vector<std::vector<std::size_t>> chains(g.size());

  for (std::size_t i = 0; i < g.size(); ++i) {
    const AndOrNode& n = g.node(i);
    std::vector<std::size_t> children;
    children.reserve(n.children.size());
    for (std::size_t c : n.children) {
      const std::size_t child_level = g.node(c).level;
      if (child_level >= n.level) {
        throw std::invalid_argument(
            "serialize_andor: child level must be below parent level");
      }
      const std::size_t gap = n.level - child_level - 1;
      auto& chain = chains[c];
      while (chain.size() < gap) {
        const std::size_t below =
            chain.empty() ? out.remap[c] : chain.back();
        chain.push_back(
            out.graph.add_dummy(below, child_level + chain.size() + 1));
        ++out.dummies_added;
      }
      out.longest_chain = std::max<std::uint64_t>(out.longest_chain, gap);
      children.push_back(gap == 0 ? out.remap[c] : chain[gap - 1]);
    }
    std::size_t id = 0;
    switch (n.type) {
      case AndOrType::kLeaf:
        id = out.graph.add_leaf(n.leaf_value, n.level);
        break;
      case AndOrType::kAnd:
        id = out.graph.add_and(std::move(children), n.local, n.level);
        break;
      case AndOrType::kOr:
        id = out.graph.add_or(std::move(children), n.level);
        break;
      case AndOrType::kDummy:
        id = out.graph.add_dummy(children.front(), n.level);
        break;
    }
    out.remap.push_back(id);
  }
  return out;
}

}  // namespace sysdp
