#include "andor/search.hpp"

#include <stdexcept>

namespace sysdp {

namespace {

Cost visit(const AndOrGraph& g, std::size_t id, std::vector<Cost>& memo,
           std::vector<bool>& seen, TopDownResult& out) {
  if (seen[id]) return memo[id];
  seen[id] = true;
  ++out.visited;
  const AndOrNode& n = g.node(id);
  Cost v = kInfCost;
  switch (n.type) {
    case AndOrType::kLeaf:
      v = n.leaf_value;
      break;
    case AndOrType::kDummy:
      v = visit(g, n.children.front(), memo, seen, out);
      break;
    case AndOrType::kAnd: {
      v = n.local;
      for (std::size_t c : n.children) {
        v = sat_add(v, visit(g, c, memo, seen, out));
      }
      break;
    }
    case AndOrType::kOr: {
      for (std::size_t pos = 0; pos < n.children.size(); ++pos) {
        const Cost cv = visit(g, n.children[pos], memo, seen, out);
        if (cv < v) {
          v = cv;
          out.chosen[id] = pos;
        }
      }
      break;
    }
  }
  memo[id] = v;
  return v;
}

void collect(const AndOrGraph& g, std::size_t id, const TopDownResult& r,
             std::vector<bool>& in_tree, std::vector<std::size_t>& out) {
  if (in_tree[id]) return;
  in_tree[id] = true;
  out.push_back(id);
  const AndOrNode& n = g.node(id);
  switch (n.type) {
    case AndOrType::kLeaf:
      break;
    case AndOrType::kDummy:
      collect(g, n.children.front(), r, in_tree, out);
      break;
    case AndOrType::kAnd:
      for (std::size_t c : n.children) collect(g, c, r, in_tree, out);
      break;
    case AndOrType::kOr:
      collect(g, n.children.at(r.chosen[id]), r, in_tree, out);
      break;
  }
}

}  // namespace

TopDownResult solve_top_down(const AndOrGraph& g, std::size_t root) {
  if (root >= g.size()) throw std::out_of_range("solve_top_down");
  TopDownResult out;
  out.chosen.assign(g.size(), 0);
  std::vector<Cost> memo(g.size(), kInfCost);
  std::vector<bool> seen(g.size(), false);
  out.value = visit(g, root, memo, seen, out);
  return out;
}

std::vector<std::size_t> extract_solution_tree(const AndOrGraph& g,
                                               std::size_t root,
                                               const TopDownResult& r) {
  std::vector<bool> in_tree(g.size(), false);
  std::vector<std::size_t> out;
  collect(g, root, r, in_tree, out);
  return out;
}

}  // namespace sysdp
