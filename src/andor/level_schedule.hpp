// Parallel evaluation schedules for the chain AND/OR-graph
// (Propositions 2 and 3).
//
// Both models map one processor to each OR-node together with its AND
// children (Section 6.2); a processor performs two additions and two
// comparisons per step, i.e. folds two split candidates per time unit.
//  * Broadcast mapping (eq. 42): results reach every consumer instantly
//    over dedicated broadcast buses, so candidate (i,k | k+1,j) is
//    available the moment both children finish; T_d(N) = N.
//  * Pipelined/serialised mapping (eq. 43, Figure 8): the graph is first
//    made serial with dummy nodes, so a child's result ripples upward one
//    level per cycle — a size-c result needs s - c cycles to reach the
//    size-s processor; T_p(N) = 2N.  The doubling is the price of planar
//    nearest-neighbour wiring, which is the trade-off Section 6.2 studies.
#pragma once

#include <cstdint>

#include "semiring/matrix.hpp"
#include "sim/module.hpp"

namespace sysdp {

struct ChainScheduleResult {
  Matrix<sim::Cycle> done;     ///< completion time per subchain (i, j)
  sim::Cycle completion = 0;   ///< done(0, n-1)
  std::size_t processors = 0;  ///< OR-node processors: n(n-1)/2
  /// Arcs that skip levels (each needs a broadcast bus in the direct
  /// mapping; each becomes a dummy-node chain in the serialised mapping).
  std::uint64_t long_arcs = 0;
};

/// Greedy two-candidates-per-step schedule with instant (broadcast) data
/// movement.  simulate_chain_broadcast(n).completion == t_broadcast(n) == n.
[[nodiscard]] ChainScheduleResult simulate_chain_broadcast(std::size_t n);

/// Same schedule with one-level-per-cycle (pipelined) data movement.
/// simulate_chain_pipelined(n).completion == t_pipelined(n) == 2n.
[[nodiscard]] ChainScheduleResult simulate_chain_pipelined(std::size_t n);

}  // namespace sysdp
