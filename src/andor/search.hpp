// Top-down search of additive AND/OR-graphs (Section 5).
//
// Martelli-Montanari showed polyadic DP equals finding a minimum-cost
// solution tree in an additive AND/OR-graph, searchable top-down as well as
// bottom-up (the AO*-style procedure Nilsson describes).  This module
// provides the top-down counterpart to AndOrGraph::evaluate: a memoised
// depth-first descent that visits only the subgraph reachable from the
// root, records the chosen alternative at every OR-node, and can extract
// the solution tree itself.
#pragma once

#include <cstdint>
#include <vector>

#include "andor/andor_graph.hpp"

namespace sysdp {

struct TopDownResult {
  Cost value = kInfCost;
  /// chosen[i]: for an OR-node i, the child index (position in children)
  /// that achieves the minimum; unused otherwise.
  std::vector<std::size_t> chosen;
  /// Nodes actually visited (<= graph size; strictly fewer when the root
  /// does not reach the whole graph).
  std::uint64_t visited = 0;
};

/// Memoised top-down evaluation from `root`.
[[nodiscard]] TopDownResult solve_top_down(const AndOrGraph& g,
                                           std::size_t root);

/// Node ids of the minimum-cost solution tree (root, the chosen OR branches
/// and all AND children, transitively).
[[nodiscard]] std::vector<std::size_t> extract_solution_tree(
    const AndOrGraph& g, std::size_t root, const TopDownResult& r);

}  // namespace sysdp
