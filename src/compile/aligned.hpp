// Cache-line-aligned storage for the compiled backend's hot arrays.
//
// The batched executor streams over the slot file and the op tape with
// lane-contiguous vector loads; starting every array on a 64-byte boundary
// keeps those loads from straddling lines and makes the SoA stride maths
// (`slot * lanes + lane`) line up with the hardware the way the layout
// comments claim it does.  C++17 aligned operator new does the work — no
// platform allocator calls, no over-allocate-and-offset tricks.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sysdp::compile {

/// One cache line, the alignment unit for slot files and op tapes.
inline constexpr std::size_t kCacheLine = 64;

/// Minimal allocator that hands out kCacheLine-aligned blocks.  Equality
/// is universal (the allocator is stateless), so containers can swap and
/// move storage freely.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <typename U>
  explicit CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLine}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is always cache-line aligned.
template <typename T>
using AlignedVec = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace sysdp::compile
