// Slot-group liveness over a compiled tape — the analysis half of
// live-range compaction (compile/compact.cpp), exported so other passes
// can consume the same facts.
//
// Two consumers share this header:
//
//   * compact_slots() drives its linear-scan allocator off the group
//     structure and last-touch levels computed here;
//   * analysis::TapeVerifier cross-checks its own per-definition liveness
//     scan against this group-level summary, so the compaction pass and
//     the verifier cannot drift apart silently — a disagreement between
//     the two is itself a finding.
//
// Everything is header-only on purpose: src/analysis may not link against
// sysdp_compile (the compile library already links sysdp_analysis for
// netlist capture), so the shared analysis must live entirely in inline
// code over compile/program.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "compile/program.hpp"

namespace sysdp::compile {

/// Group-level liveness facts for one tape.  kRelax ops address slot
/// pairs (dst/dst+1, a/a+1), so paired slots form one *group* that lives
/// and dies together; scalar slots are singleton groups.
struct TapeLiveness {
  /// Sentinel for `last`: the group is pinned (a declared output lives in
  /// it) and must survive to the end of the tape.
  static constexpr std::uint32_t kPinned = 0xffffffffu;

  /// base[s] — first slot of the group containing slot s.
  std::vector<std::uint32_t> base;
  /// extent[g] — group size in slots; meaningful only where base[g] == g.
  std::vector<std::uint32_t> extent;
  /// last[g] — last dependency level that reads or writes any slot of
  /// group g, or kPinned; meaningful only where base[g] == g.  A group
  /// nothing ever touches keeps 0 — indistinguishable from "last touched
  /// at level 0" by design, exactly as the compaction pass treats it.
  std::vector<std::uint32_t> last;
};

/// Compute the group structure and last-touch level of every slot group,
/// exactly as compact_slots() sees them.  Safe on any tape whose slot
/// references are in range (callers validating untrusted tapes must bound
/// -check first).
[[nodiscard]] inline TapeLiveness compute_liveness(const CompiledNetlist& net) {
  TapeLiveness lv;
  const std::uint32_t n = net.num_slots;
  lv.base.resize(n);
  lv.extent.assign(n, 0);
  lv.last.assign(n, 0);
  if (n == 0) return lv;

  // Grouping: kRelax addresses dst/dst+1 and a/a+1 as pairs, so those
  // slots must stay contiguous.  joined[s] means s and s+1 share a group;
  // groups are the maximal runs of joined slots.
  std::vector<std::uint8_t> joined(n, 0);
  for (const Op& op : net.ops) {
    if (op.kind == OpKind::kRelax) {
      joined[op.dst] = 1;
      joined[op.a] = 1;
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    lv.base[s] = (s > 0 && joined[s - 1] != 0) ? lv.base[s - 1] : s;
    ++lv.extent[lv.base[s]];
  }

  // Last touch: the latest dependency level that reads or writes any slot
  // of the group.  Output slots are pinned (verify_outputs reads them
  // after the run).
  const auto touch = [&](sim::SlotId s, std::uint32_t lvl) {
    std::uint32_t& l = lv.last[lv.base[s]];
    if (l < lvl) l = lvl;
  };
  const auto cycles = static_cast<std::uint32_t>(net.cycles());
  for (std::uint32_t t = 0; t < cycles; ++t) {
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      const Op& op = net.ops[i];
      touch(op.dst, t);  // dst+1 / a+1 share the dst / a group
      touch(op.a, t);
      touch(op.b, t);
      if (op.kind == OpKind::kFold) touch(op.c, t);
    }
  }
  for (const Output& o : net.outputs) {
    lv.last[lv.base[o.slot]] = TapeLiveness::kPinned;
  }
  return lv;
}

}  // namespace sysdp::compile
