#include "compile/profile.hpp"

#include <algorithm>

namespace sysdp::compile {

void ReplayProfiler::on_replay_begin(const CompiledNetlist& net,
                                     const Cost* slots, std::uint32_t lanes) {
  (void)slots;
  finish();
  if (levels_.size() < net.cycles()) levels_.resize(net.cycles());
  cur_ = {};
  cur_.lanes = lanes == 0 ? 1 : lanes;
  in_replay_ = true;
  level_start_ = std::chrono::steady_clock::now();
}

void ReplayProfiler::on_level(const CompiledNetlist& net, sim::Cycle t,
                              std::uint32_t lo, std::uint32_t hi,
                              const Cost* slots, std::uint32_t lanes) {
  (void)slots;
  const auto now = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - level_start_)
          .count());
  level_start_ = now;
  if (t >= levels_.size()) levels_.resize(t + 1);
  LevelAgg& agg = levels_[t];
  ++agg.visits;
  agg.wall_ns += ns;
  const std::uint64_t width = lanes == 0 ? 1 : lanes;
  const std::uint64_t op_lanes = static_cast<std::uint64_t>(hi - lo) * width;
  agg.ops += op_lanes;
  for (std::uint32_t i = lo; i < hi; ++i) {
    switch (net.ops[i].kind) {
      case OpKind::kMac:
        agg.mac_ops += width;
        total_mac_ += width;
        break;
      case OpKind::kFold:
        agg.fold_ops += width;
        total_fold_ += width;
        break;
      case OpKind::kRelax:
        agg.relax_ops += width;
        total_relax_ += width;
        break;
    }
  }
  total_ops_ += op_lanes;
  total_wall_ns_ += ns;
  if (in_replay_) {
    cur_.ops += op_lanes;
    cur_.wall_ns += ns;
    if (t + 1 > cur_.levels) cur_.levels = t + 1;
  }
}

void ReplayProfiler::on_replay_end(const CompiledNetlist& net) {
  (void)net;
  finish();
}

void ReplayProfiler::finish() {
  if (!in_replay_) return;
  in_replay_ = false;
  replays_.push_back(cur_);
  cur_ = {};
}

double ReplayProfiler::replay_skew() const {
  if (replays_.size() < 2) return 0.0;
  std::vector<std::uint64_t> wall;
  wall.reserve(replays_.size());
  for (const Replay& r : replays_) wall.push_back(r.wall_ns);
  std::sort(wall.begin(), wall.end());
  const std::uint64_t median = wall[wall.size() / 2];
  if (median == 0) return 0.0;
  return static_cast<double>(wall.back() - wall.front()) /
         static_cast<double>(median);
}

}  // namespace sysdp::compile
