// Concrete OpRecorder: turns one oracle run's narration into a
// CompiledNetlist.
//
// The recorder is both halves of the lowering contract:
//
//   * as sim::OpRecorder it receives the narration — lane reads, register
//     binds, semiring ops — from the array models while the serial dense
//     oracle steps;
//   * as sim::EngineObserver it hears the clock: on_cycle closes a
//     dependency level (cycle_off boundary) and applies the two-phase
//     staged binds, exactly when the oracle's commit edge made those
//     values visible.
//
// It shadow-executes everything: each slot carries the concrete value the
// oracle produced for it, every lane() / pending() / output() call is
// verified against the live value the caller just observed, and every op's
// result is recorded as the tape's expected value.  A mis-narrated model
// therefore fails loudly at lowering time with the first inconsistent
// site, instead of producing a tape that silently diverges.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "compile/program.hpp"
#include "semiring/cost.hpp"
#include "sim/observer.hpp"
#include "sim/record.hpp"

namespace sysdp::compile {

class Recorder final : public sim::OpRecorder, public sim::EngineObserver {
 public:
  Recorder() = default;

  // --- sim::OpRecorder ----------------------------------------------------
  sim::SlotId constant(std::int64_t value) override;
  sim::SlotId constant_pair(std::int64_t value, std::int64_t arg) override;
  sim::SlotId lane(const void* key, std::int64_t live) override;
  sim::SlotId lane_pair(const void* key, std::int64_t live,
                        std::int64_t arg) override;
  sim::SlotId pending(const void* key, std::int64_t live) override;
  void bind_now(const void* key, sim::SlotId slot) override;
  void bind_staged(const void* key, sim::SlotId slot) override;
  sim::SlotId mac(sim::SlotId base, std::int64_t w, sim::SlotId x) override;
  sim::SlotId fold(sim::SlotId best, sim::SlotId left, sim::SlotId right,
                   std::int64_t local) override;
  sim::SlotId relax(sim::SlotId pair, sim::SlotId kh, std::int64_t edge,
                    std::int64_t station) override;
  void output(std::string_view tag, std::uint64_t index, sim::SlotId slot,
              std::int64_t observed) override;
  void output_arg(std::string_view tag, std::uint64_t index, sim::SlotId pair,
                  std::int64_t observed) override;

  // --- sim::EngineObserver ------------------------------------------------
  /// Clock edge: apply staged binds, close the current dependency level.
  void on_cycle(const sim::Engine& engine, sim::Cycle t) override;

  /// Distinct storage keys narrated so far (for netlist name matching).
  [[nodiscard]] std::vector<const void*> lane_keys() const;

  /// Storage key per provenance lane, indexed by lane id.  Valid after
  /// finish() too — lowering resolves lane names against the captured
  /// netlist once the tape is sealed.
  [[nodiscard]] const std::vector<const void*>& lane_key_table() const {
    return lane_key_of_;
  }

  /// Seal the tape.  Call after the oracle run completes; the recorder is
  /// spent afterwards.  With `parameterise`, the tape additionally carries
  /// its parameter plane (one weight parameter per op, initialised to the
  /// oracle binding) so executors can rebind per-instance weight tables.
  [[nodiscard]] CompiledNetlist finish(bool parameterise = false);

 private:
  sim::SlotId alloc(Cost concrete);
  [[nodiscard]] Cost concrete(sim::SlotId slot, const char* site) const;
  void check_live(sim::SlotId slot, std::int64_t live, const char* site) const;
  /// Provenance: lane id for `key` (interning on first sight), one bind
  /// event at `stamp`, and first-bind-wins op attribution via the bound
  /// slot's defining op.
  void record_bind(const void* key, sim::SlotId slot, std::uint32_t stamp);

  std::vector<Cost> concrete_;          ///< shadow value per slot
  std::vector<std::uint8_t> pair_head_; ///< slot is the value half of a pair
  std::unordered_map<const void*, sim::SlotId> bound_;
  std::vector<std::pair<const void*, sim::SlotId>> staged_;
  std::unordered_map<std::int64_t, sim::SlotId> const_cache_;
  std::map<std::pair<std::int64_t, std::int64_t>, sim::SlotId>
      const_pair_cache_;
  std::vector<SlotInit> init_;
  AlignedVec<Op> ops_;
  std::vector<Cost> expected_;
  std::vector<std::uint32_t> cycle_off_{0};
  std::vector<Output> outputs_;
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> output_index_;
  std::uint64_t copies_elided_ = 0;
  std::uint64_t consts_interned_ = 0;
  // Provenance plane: lane interning, bind events in narration order
  // (stamp 0 = reset, stamp t+1 = committed at end of cycle t), the
  // defining op of each slot, and the lane each op's dst first bound to.
  std::unordered_map<const void*, std::uint32_t> lane_id_;
  std::vector<const void*> lane_key_of_;
  std::vector<std::uint32_t> lane_slot_;  ///< last recorded slot per lane
  std::vector<ProvenanceBind> binds_;
  std::vector<std::uint32_t> slot_op_;  ///< defining op per slot, or kNone
  std::vector<std::uint32_t> op_lane_;  ///< parallel to ops_
  bool finished_ = false;
};

}  // namespace sysdp::compile
