#include "compile/compact.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compile/live_range.hpp"

namespace sysdp::compile {

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;
constexpr std::uint32_t kPinned = TapeLiveness::kPinned;

}  // namespace

CompactStats compact_slots(CompiledNetlist& net) {
  CompactStats cs;
  cs.slots_before = net.num_slots;
  cs.slots_after = net.num_slots;
  const std::uint32_t n = net.num_slots;
  if (n == 0) {
    net.stats.compacted = true;
    return cs;
  }

  // --- grouping + liveness (compile/live_range.hpp): pair groups, plus
  // the last dependency level that touches each group.  Output slots are
  // pinned (verify_outputs reads them after the run).
  const TapeLiveness lv = compute_liveness(net);
  const std::vector<std::uint32_t>& base = lv.base;
  const std::vector<std::uint32_t>& extent = lv.extent;
  std::vector<std::uint32_t> last = lv.last;
  const auto cycles = static_cast<std::uint32_t>(net.cycles());

  // Provenance binds sample their slot at the end of level stamp-1 (the
  // VCD semantics in program.hpp), which can be after the op tape's own
  // last read — an elided copy keeps the *old* slot bound until the next
  // commit.  Extend each sampled group's range so the waveform adapters
  // always read the index before it is recycled.  kPinned groups stay
  // pinned (max() keeps the sentinel).
  for (const ProvenanceBind& b : net.provenance.binds) {
    if (b.stamp == 0 || b.slot >= n) continue;
    const std::uint32_t g = base[b.slot];
    last[g] = std::max(last[g], b.stamp - 1);
  }

  // --- expiry schedule: non-pinned groups in last-touch order, released
  // just before the first level past their last touch begins.
  std::vector<std::uint32_t> expiry;
  expiry.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (base[s] == s && last[s] != kPinned) expiry.push_back(s);
  }
  std::stable_sort(expiry.begin(), expiry.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return last[a] < last[b];
                   });

  // --- linear scan: allocate groups at their defining write (init entry
  // or op destination), recycle indices from expired groups, exact-size
  // free lists.  A virtual slot keeps its one physical index for the whole
  // tape; release only recycles the index for groups defined later.
  std::vector<std::uint32_t> new_of(n, kNone);
  std::vector<std::vector<std::uint32_t>> free_by_size(3);
  std::uint32_t next_phys = 0;
  const auto acquire = [&](std::uint32_t g) {
    if (new_of[g] != kNone) return;
    const std::uint32_t k = extent[g];
    std::uint32_t phys;
    if (k < free_by_size.size() && !free_by_size[k].empty()) {
      phys = free_by_size[k].back();
      free_by_size[k].pop_back();
    } else {
      phys = next_phys;
      next_phys += k;
    }
    for (std::uint32_t j = 0; j < k; ++j) new_of[g + j] = phys + j;
  };

  for (const SlotInit& si : net.init) acquire(base[si.slot]);
  std::size_t expired = 0;
  for (std::uint32_t t = 0; t < cycles; ++t) {
    while (expired < expiry.size() && last[expiry[expired]] < t) {
      const std::uint32_t g = expiry[expired++];
      if (new_of[g] == kNone) continue;  // touched but never defined: bail
                                         // below at the rewrite instead
      const std::uint32_t k = extent[g];
      if (free_by_size.size() <= k) free_by_size.resize(k + 1);
      free_by_size[k].push_back(new_of[g]);
    }
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      acquire(base[net.ops[i].dst]);
    }
  }

  // --- rewrite every slot reference through the new naming.
  const auto map = [&](sim::SlotId s) -> sim::SlotId {
    if (new_of[s] == kNone) {
      throw std::logic_error(
          "compile::compact_slots: slot " + std::to_string(s) +
          " is read but never written — broken lowering");
    }
    return new_of[s];
  };
  for (Op& op : net.ops) {
    op.dst = map(op.dst);
    op.a = map(op.a);
    op.b = map(op.b);
    // kFold's c is a slot; kRelax's c is a station immediate and kMac
    // leaves c unused — only the first is renamed.
    if (op.kind == OpKind::kFold) op.c = map(op.c);
  }
  for (SlotInit& si : net.init) si.slot = map(si.slot);
  for (Output& o : net.outputs) o.slot = map(o.slot);
  // Carry the provenance table through the renaming: every bound slot is
  // an init entry or an op destination, so it was acquired above.
  for (ProvenanceBind& b : net.provenance.binds) b.slot = map(b.slot);

  net.num_slots = next_phys;
  net.stats.compacted = true;
  net.stats.slots_uncompacted = cs.slots_before;
  cs.slots_after = next_phys;
  return cs;
}

}  // namespace sysdp::compile
