#include "compile/compact.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sysdp::compile {

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;
constexpr std::uint32_t kPinned = 0xffffffffu;

}  // namespace

CompactStats compact_slots(CompiledNetlist& net) {
  CompactStats cs;
  cs.slots_before = net.num_slots;
  cs.slots_after = net.num_slots;
  const std::uint32_t n = net.num_slots;
  if (n == 0) return cs;

  // --- grouping: kRelax addresses dst/dst+1 and a/a+1 as pairs, so those
  // slots must stay contiguous.  joined[s] means s and s+1 share a group;
  // groups are the maximal runs of joined slots.
  std::vector<std::uint8_t> joined(n, 0);
  for (const Op& op : net.ops) {
    if (op.kind == OpKind::kRelax) {
      joined[op.dst] = 1;
      joined[op.a] = 1;
    }
  }
  std::vector<std::uint32_t> base(n);
  std::vector<std::uint32_t> extent(n, 0);
  for (std::uint32_t s = 0; s < n; ++s) {
    base[s] = (s > 0 && joined[s - 1] != 0) ? base[s - 1] : s;
    ++extent[base[s]];
  }

  // --- liveness: the last dependency level that touches each group.
  // Output slots are pinned (verify_outputs reads them after the run).
  std::vector<std::uint32_t> last(n, 0);
  const auto touch = [&](sim::SlotId s, std::uint32_t lvl) {
    std::uint32_t& l = last[base[s]];
    if (l < lvl) l = lvl;
  };
  const auto cycles = static_cast<std::uint32_t>(net.cycles());
  for (std::uint32_t t = 0; t < cycles; ++t) {
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      const Op& op = net.ops[i];
      touch(op.dst, t);  // dst+1 / a+1 share the dst / a group
      touch(op.a, t);
      touch(op.b, t);
      if (op.kind == OpKind::kFold) touch(op.c, t);
    }
  }
  for (const Output& o : net.outputs) last[base[o.slot]] = kPinned;

  // --- expiry schedule: non-pinned groups in last-touch order, released
  // just before the first level past their last touch begins.
  std::vector<std::uint32_t> expiry;
  expiry.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (base[s] == s && last[s] != kPinned) expiry.push_back(s);
  }
  std::stable_sort(expiry.begin(), expiry.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return last[a] < last[b];
                   });

  // --- linear scan: allocate groups at their defining write (init entry
  // or op destination), recycle indices from expired groups, exact-size
  // free lists.  A virtual slot keeps its one physical index for the whole
  // tape; release only recycles the index for groups defined later.
  std::vector<std::uint32_t> new_of(n, kNone);
  std::vector<std::vector<std::uint32_t>> free_by_size(3);
  std::uint32_t next_phys = 0;
  const auto acquire = [&](std::uint32_t g) {
    if (new_of[g] != kNone) return;
    const std::uint32_t k = extent[g];
    std::uint32_t phys;
    if (k < free_by_size.size() && !free_by_size[k].empty()) {
      phys = free_by_size[k].back();
      free_by_size[k].pop_back();
    } else {
      phys = next_phys;
      next_phys += k;
    }
    for (std::uint32_t j = 0; j < k; ++j) new_of[g + j] = phys + j;
  };

  for (const SlotInit& si : net.init) acquire(base[si.slot]);
  std::size_t expired = 0;
  for (std::uint32_t t = 0; t < cycles; ++t) {
    while (expired < expiry.size() && last[expiry[expired]] < t) {
      const std::uint32_t g = expiry[expired++];
      if (new_of[g] == kNone) continue;  // touched but never defined: bail
                                         // below at the rewrite instead
      const std::uint32_t k = extent[g];
      if (free_by_size.size() <= k) free_by_size.resize(k + 1);
      free_by_size[k].push_back(new_of[g]);
    }
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      acquire(base[net.ops[i].dst]);
    }
  }

  // --- rewrite every slot reference through the new naming.
  const auto map = [&](sim::SlotId s) -> sim::SlotId {
    if (new_of[s] == kNone) {
      throw std::logic_error(
          "compile::compact_slots: slot " + std::to_string(s) +
          " is read but never written — broken lowering");
    }
    return new_of[s];
  };
  for (Op& op : net.ops) {
    op.dst = map(op.dst);
    op.a = map(op.a);
    op.b = map(op.b);
    // kFold's c is a slot; kRelax's c is a station immediate and kMac
    // leaves c unused — only the first is renamed.
    if (op.kind == OpKind::kFold) op.c = map(op.c);
  }
  for (SlotInit& si : net.init) si.slot = map(si.slot);
  for (Output& o : net.outputs) o.slot = map(o.slot);

  net.num_slots = next_phys;
  net.stats.slots_uncompacted = cs.slots_before;
  cs.slots_after = next_phys;
  return cs;
}

}  // namespace sysdp::compile
