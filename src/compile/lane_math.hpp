// Branchless lane arithmetic shared by the SIMD-batched executors.
//
// BatchedCompiledEngine and ParallelCompiledEngine both replay one op tape
// over B lanes with the slot file laid out lane-major; their hot loops are
// built from the same primitives: a mask-select (`sel`) the vectoriser
// cannot jump-thread, a branchless saturating add bit-identical to
// sysdp::sat_add, and the weight-class lift that moves lane-invariant
// sentinel compares out of the lane loop.  Extracted here so the two
// executors share one proven implementation — the lane-exactness suites
// depend on these being bit-identical to the scalar kernels.
//
// Also hosts the shared codegen macros: SYSDP_LANE_IVDEP asserts the
// independence SSA destinations guarantee but the compiler cannot prove
// (every row pointer derives from one slot-file base), and
// SYSDP_LANE_CLONES applies per-ISA function multiversioning with the TSan
// opt-out (the ifunc resolver runs before TSan's runtime is initialised).
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "semiring/cost.hpp"

#if defined(__clang__)
#define SYSDP_LANE_IVDEP \
  _Pragma("clang loop vectorize(assume_safety) interleave(assume_safety)")
#elif defined(__GNUC__)
#define SYSDP_LANE_IVDEP _Pragma("GCC ivdep")
#else
#define SYSDP_LANE_IVDEP
#endif

#if defined(__SANITIZE_THREAD__)
#define SYSDP_LANE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SYSDP_LANE_TSAN 1
#endif
#endif
#if defined(__x86_64__) && defined(__gnu_linux__) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(SYSDP_LANE_TSAN)
#define SYSDP_LANE_CLONES \
  __attribute__((flatten, target_clones("avx512f", "avx2", "default")))
#else
#define SYSDP_LANE_CLONES
#endif

namespace sysdp::compile::lanes {

/// Branch-proof select: all-ones/all-zero mask from the condition, then
/// bitwise blend.  A plain `cond ? a : b` is usually if-converted, but
/// when several selects chain over correlated sentinel compares (two
/// sat_adds back to back), jump threading turns them into real control
/// flow first and the loop vectoriser then refuses the loop outright.
/// Masks cannot be threaded, so the lane loops stay branch-free.
[[nodiscard]] inline Cost sel(bool cond, Cost a, Cost b) noexcept {
  const Cost m = -static_cast<Cost>(cond);
  return (a & m) | (b & ~m);
}

/// Branchless sat_add, bit-identical to sysdp::sat_add for every input
/// pair (the lane-exactness suites depend on this).  The scalar version
/// early-returns on the sentinels; here the same priorities are applied as
/// selects — +inf checked last so it wins over -inf, exactly like the
/// scalar's first early return — and the operands are clamped before the
/// raw add so the sum cannot overflow (|clamped| <= max/4).  Every
/// operation is a compare, mask-select, min, max or add: the lane loops
/// built from this vectorise with no intrinsics.
[[nodiscard]] inline Cost lane_sat_add(Cost a, Cost b) noexcept {
  const Cost ca = std::min(std::max(a, kNegInfCost), kInfCost);
  const Cost cb = std::min(std::max(b, kNegInfCost), kInfCost);
  Cost sum = ca + cb;
  sum = std::min(std::max(sum, kNegInfCost), kInfCost);
  sum = sel((a <= kNegInfCost) | (b <= kNegInfCost), kNegInfCost, sum);
  sum = sel((a >= kInfCost) | (b >= kInfCost), kInfCost, sum);
  return sum;
}

/// Sentinel class of a scalar weight.  On the baked-immediate path the
/// weight is lane-invariant, and leaving its sentinel compares inside the
/// lane loop is ruinous: the vectoriser if-converts them into per-op
/// scalar-boolean mask materialisation (dozens of scalar ops smearing one
/// bit across a vector mask).  Classifying w once per op and branching
/// OUTSIDE the lane loop leaves only vector-vector compares inside.
enum class WClass : std::uint8_t { kNegInf, kFinite, kInf };

[[nodiscard]] inline WClass classify_w(Cost w) noexcept {
  if (w >= kInfCost) return WClass::kInf;
  if (w <= kNegInfCost) return WClass::kNegInf;
  return WClass::kFinite;
}

/// lane_sat_add(x, w) with w's sentinel class a compile-time constant.
/// Bit-identical to lane_sat_add (which is symmetric) for every x whenever
/// classify_w(w) == kWC: the w-side clamps and overrides are resolved at
/// compile time, the x-side ones stay as vector-friendly selects.
template <WClass kWC>
[[nodiscard]] inline Cost lane_sat_add_w([[maybe_unused]] Cost x,
                                         [[maybe_unused]] Cost w) noexcept {
  if constexpr (kWC == WClass::kInf) {
    return kInfCost;  // +inf wins over everything, -inf included
  } else if constexpr (kWC == WClass::kNegInf) {
    return sel(x >= kInfCost, kInfCost, kNegInfCost);
  } else {
    // w is strictly between the sentinels, so clamp(w) == w and the
    // w-side override conditions are statically false.
    const Cost cx = std::min(std::max(x, kNegInfCost), kInfCost);
    Cost sum = cx + w;
    sum = std::min(std::max(sum, kNegInfCost), kInfCost);
    sum = sel(x <= kNegInfCost, kNegInfCost, sum);
    sum = sel(x >= kInfCost, kInfCost, sum);
    return sum;
  }
}

/// Invoke `f` with w's class lifted to a compile-time constant — the
/// three-way branch each kernel wraps around its lane loop.
template <typename F>
inline void with_w_class(Cost w, F&& f) {
  switch (classify_w(w)) {
    case WClass::kNegInf:
      f(std::integral_constant<WClass, WClass::kNegInf>{});
      break;
    case WClass::kFinite:
      f(std::integral_constant<WClass, WClass::kFinite>{});
      break;
    case WClass::kInf:
      f(std::integral_constant<WClass, WClass::kInf>{});
      break;
  }
}

}  // namespace sysdp::compile::lanes
