#include "compile/batch_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "compile/lane_math.hpp"
#include "semiring/closed_semiring.hpp"

namespace sysdp::compile {

// The branchless lane primitives (sel / lane_sat_add / the weight-class
// lift) and the SYSDP_LANE_IVDEP / SYSDP_LANE_CLONES codegen macros live
// in compile/lane_math.hpp, shared with ParallelCompiledEngine.
using lanes::lane_sat_add;
using lanes::lane_sat_add_w;
using lanes::with_w_class;

namespace {

[[nodiscard]] constexpr std::uint8_t kind_rank(OpKind k) noexcept {
  return static_cast<std::uint8_t>(k);
}

/// True if stable-partitioning this level's ops by kind would invert a
/// writer→reader pair, i.e. some op reads a slot written earlier in the
/// level by an op of a LATER partition rank.  SSA rules out WAW and WAR
/// entirely (every destination is freshly allocated after its readers'
/// sources), so RAW inversion is the only hazard.  Same-kind pairs keep
/// their order under a stable partition, so only cross-kind pairs count.
[[nodiscard]] bool cross_kind_raw(const CompiledNetlist& net, std::uint32_t lo,
                                  std::uint32_t hi) {
  std::unordered_map<sim::SlotId, OpKind> writer;
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Op& op = net.ops[i];
    const auto inverted = [&](sim::SlotId src) {
      const auto it = writer.find(src);
      return it != writer.end() && kind_rank(op.kind) < kind_rank(it->second);
    };
    if (inverted(op.a) || inverted(op.b)) return true;
    if (op.kind == OpKind::kFold && inverted(op.c)) return true;
    if (op.kind == OpKind::kRelax && inverted(op.a + 1)) return true;
    writer[op.dst] = op.kind;
    if (op.kind == OpKind::kRelax) writer[op.dst + 1] = op.kind;
  }
  return false;
}

}  // namespace

BatchedCompiledEngine::BatchedCompiledEngine(const CompiledNetlist& net,
                                             std::uint32_t lanes)
    : net_(&net), lanes_(lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("BatchedCompiledEngine: zero lanes");
  }
  slots_.resize(std::size_t{net.num_slots} * lanes, 0);
  if (net.parameterised) {
    weights_.resize(net.params.size() * lanes);
    for (std::size_t p = 0; p < net.params.size(); ++p) {
      for (std::uint32_t l = 0; l < lanes; ++l) {
        weights_[p * lanes + l] = net.params[p];
      }
    }
  }
  oracle_bound_.assign(lanes, 1);

  // Partition each level into kind-major runs (see class comment).  The
  // execution order is a permutation of op indices; runs delimit the
  // homogeneous spans a single monomorphic kernel sweeps.
  order_.reserve(net.ops.size());
  level_run_off_.reserve(net.cycle_off.size());
  level_run_off_.push_back(0);
  for (std::uint32_t t = 0; t + 1 < net.cycle_off.size(); ++t) {
    const std::uint32_t lo = net.cycle_off[t];
    const std::uint32_t hi = net.cycle_off[t + 1];
    if (hi > lo) {
      live_levels_.push_back(t);
      const auto seg = static_cast<std::uint32_t>(order_.size());
      if (!cross_kind_raw(net, lo, hi)) {
        for (const OpKind k :
             {OpKind::kMac, OpKind::kFold, OpKind::kRelax}) {
          for (std::uint32_t i = lo; i < hi; ++i) {
            if (net.ops[i].kind == k) order_.push_back(i);
          }
        }
      } else {
        ++fallback_levels_;
        for (std::uint32_t i = lo; i < hi; ++i) order_.push_back(i);
      }
      // Emit runs at kind boundaries of the (possibly reordered) segment.
      std::uint32_t run_lo = seg;
      for (std::uint32_t k = seg + 1; k < order_.size(); ++k) {
        if (net.ops[order_[k]].kind != net.ops[order_[run_lo]].kind) {
          runs_.push_back({run_lo, k, net.ops[order_[run_lo]].kind});
          run_lo = k;
        }
      }
      runs_.push_back({run_lo, static_cast<std::uint32_t>(order_.size()),
                       net.ops[order_[run_lo]].kind});
    }
    level_run_off_.push_back(static_cast<std::uint32_t>(runs_.size()));
  }
  reset();
}

void BatchedCompiledEngine::reset() {
  for (const SlotInit& in : net_->init) {
    Cost* const row = slots_.data() + std::size_t{in.slot} * lanes_;
    for (std::uint32_t l = 0; l < lanes_; ++l) row[l] = in.value;
  }
  now_ = 0;
  ops_executed_ = 0;
  levels_executed_ = 0;
  levels_skipped_ = 0;
  mac_ops_ = 0;
  fold_ops_ = 0;
  relax_ops_ = 0;
  for (ReplayObserver* obs : observers_) {
    obs->on_replay_begin(*net_, slots_.data(), lanes_);
  }
}

void BatchedCompiledEngine::add_observer(ReplayObserver* obs) {
  if (obs == nullptr) {
    throw std::invalid_argument(
        "BatchedCompiledEngine::add_observer: null observer");
  }
  if (now_ != 0) {
    throw std::logic_error(
        "BatchedCompiledEngine::add_observer: observers attach at cycle 0 "
        "only — reset() first");
  }
  observers_.push_back(obs);
  obs->on_replay_begin(*net_, slots_.data(), lanes_);
}

void BatchedCompiledEngine::notify_level(sim::Cycle t) {
  const std::uint32_t lo = net_->cycle_off[t];
  const std::uint32_t hi = net_->cycle_off[t + 1];
  for (ReplayObserver* obs : observers_) {
    obs->on_level(*net_, t, lo, hi, slots_.data(), lanes_);
  }
}

void BatchedCompiledEngine::notify_end() {
  if (observers_.empty() || now_ < cycles()) return;
  for (ReplayObserver* obs : observers_) obs->on_replay_end(*net_);
}

void BatchedCompiledEngine::bind(std::uint32_t lane,
                                 const std::vector<Cost>& weights) {
  if (!net_->parameterised) {
    throw std::invalid_argument(
        "BatchedCompiledEngine::bind: tape was lowered without a parameter "
        "plane (LowerOptions::parameterise)");
  }
  if (lane >= lanes_) {
    throw std::invalid_argument("BatchedCompiledEngine::bind: lane " +
                                std::to_string(lane) + " out of range");
  }
  if (weights.size() != net_->params.size()) {
    throw std::invalid_argument(
        "BatchedCompiledEngine::bind: weight table has " +
        std::to_string(weights.size()) + " entries, tape has " +
        std::to_string(net_->params.size()) + " parameters");
  }
  for (std::size_t p = 0; p < weights.size(); ++p) {
    weights_[p * lanes_ + lane] = weights[p];
  }
  set_oracle_bound(lane, weights == net_->params);
}

void BatchedCompiledEngine::bind_oracle(std::uint32_t lane) {
  if (lane >= lanes_) {
    throw std::invalid_argument("BatchedCompiledEngine::bind_oracle: lane " +
                                std::to_string(lane) + " out of range");
  }
  for (std::size_t p = 0; p < net_->params.size(); ++p) {
    weights_[p * lanes_ + lane] = net_->params[p];
  }
  set_oracle_bound(lane, true);
}

void BatchedCompiledEngine::set_oracle_bound(std::uint32_t lane, bool bound) {
  if ((oracle_bound_[lane] != 0) != bound) {
    if (bound) {
      --rebound_lanes_;
    } else {
      ++rebound_lanes_;
    }
  }
  oracle_bound_[lane] = bound ? 1 : 0;
}

namespace {

/// Everything a lane kernel touches, gathered so the kernels can be free
/// functions (function multiversioning cannot apply to member templates).
struct RunCtx {
  Cost* slots;
  const Cost* wtab;
  const Op* ops;
  const std::uint32_t* ord;
  const KindRun* runs;
  std::uint32_t lanes;
};

// The batched hot loop.  Outer loop over a homogeneous run of ops, inner
// loop over lanes: every iteration of the lane loop touches contiguous,
// 64-byte-aligned, mutually non-aliasing rows (SSA makes the destination
// fresh), carries no dependence, and performs only add/min/max/compare/
// mask-select on int64 — the exact shape -O2/-O3 auto-vectorisers compile
// to SIMD.  The arithmetic mirrors CompiledEngine::exec_level kernel for
// kernel; for TapeSemiring's two semirings S::times IS sat_add, realised
// here branchlessly (lane_sat_add) with identical results bit for bit.
template <typename S, bool kParam, std::uint32_t kW>
inline void exec_runs_impl(const RunCtx& ctx, std::uint32_t rlo,
                           std::uint32_t rhi) {
  // kW == 0 is the any-width fallback; a nonzero kW makes the lane count a
  // compile-time constant, so the lane loops below fully unroll into
  // straight-line vector code with no trip-count or remainder logic.
  const std::uint32_t B = kW != 0 ? kW : ctx.lanes;
  Cost* const slots = ctx.slots;
  const Cost* const wtab = ctx.wtab;
  const Op* const ops = ctx.ops;
  const std::uint32_t* const ord = ctx.ord;
  for (std::uint32_t r = rlo; r < rhi; ++r) {
    const KindRun& run = ctx.runs[r];
    switch (run.kind) {
      case OpKind::kMac:
        for (std::uint32_t k = run.lo; k < run.hi; ++k) {
          const Op& op = ops[ord[k]];
          const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
          const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
          Cost* const __restrict d = slots + std::size_t{op.dst} * B;
          if constexpr (kParam) {
            const Cost* const __restrict wrow =
                wtab + std::size_t{op.param} * B;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              d[l] = S::plus(pa[l], lane_sat_add(wrow[l], pb[l]));
            }
          } else {
            with_w_class(op.w, [&](auto wc) {
              const Cost wi = op.w;
              SYSDP_LANE_IVDEP
              for (std::uint32_t l = 0; l < B; ++l) {
                d[l] = S::plus(pa[l],
                               lane_sat_add_w<decltype(wc)::value>(pb[l], wi));
              }
            });
          }
        }
        break;
      case OpKind::kFold:
        for (std::uint32_t k = run.lo; k < run.hi; ++k) {
          const Op& op = ops[ord[k]];
          const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
          const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
          const Cost* const __restrict pc = slots + std::size_t{op.c} * B;
          Cost* const __restrict d = slots + std::size_t{op.dst} * B;
          if constexpr (kParam) {
            const Cost* const __restrict wrow =
                wtab + std::size_t{op.param} * B;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              const Cost cand =
                  lane_sat_add(lane_sat_add(pb[l], pc[l]), wrow[l]);
              const Cost prev = pa[l];
              d[l] = S::improves(cand, prev) ? cand : prev;
            }
          } else {
            with_w_class(op.w, [&](auto wc) {
              const Cost wi = op.w;
              SYSDP_LANE_IVDEP
              for (std::uint32_t l = 0; l < B; ++l) {
                const Cost cand = lane_sat_add_w<decltype(wc)::value>(
                    lane_sat_add(pb[l], pc[l]), wi);
                const Cost prev = pa[l];
                d[l] = S::improves(cand, prev) ? cand : prev;
              }
            });
          }
        }
        break;
      case OpKind::kRelax:
        for (std::uint32_t k = run.lo; k < run.hi; ++k) {
          const Op& op = ops[ord[k]];
          const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
          const Cost* const __restrict paarg =
              slots + (std::size_t{op.a} + 1) * B;
          const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
          Cost* const __restrict d = slots + std::size_t{op.dst} * B;
          Cost* const __restrict darg =
              slots + (std::size_t{op.dst} + 1) * B;
          const Cost station = static_cast<Cost>(op.c);
          if constexpr (kParam) {
            const Cost* const __restrict wrow =
                wtab + std::size_t{op.param} * B;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              const Cost cand = lane_sat_add(pb[l], wrow[l]);
              const Cost prev = pa[l];
              const bool better = S::improves(cand, prev);
              d[l] = better ? cand : prev;
              darg[l] = better ? station : paarg[l];
            }
          } else {
            with_w_class(op.w, [&](auto wc) {
              const Cost wi = op.w;
              SYSDP_LANE_IVDEP
              for (std::uint32_t l = 0; l < B; ++l) {
                const Cost cand =
                    lane_sat_add_w<decltype(wc)::value>(pb[l], wi);
                const Cost prev = pa[l];
                const bool better = S::improves(cand, prev);
                d[l] = better ? cand : prev;
                darg[l] = better ? station : paarg[l];
              }
            });
          }
        }
        break;
    }
  }
}

// Function multiversioning (SYSDP_LANE_CLONES, lane_math.hpp): one entry
// point, compiled once per ISA level (AVX-512F / AVX2 / baseline) with
// load-time ifunc dispatch, so the same binary runs everywhere yet the
// hot loops use the widest vectors the host has.  int64 compare/min/max
// only vectorise profitably from AVX2 up, and widest from AVX-512F
// (vpminsq/vpcmpq on 8 lanes) — with baseline x86-64 codegen the lane
// loops are scalar-equivalent.  `flatten` force-inlines the kernel
// templates (and everything below them) into each clone so their loops
// are vectorised under the clone's ISA rather than compiled once at
// baseline.  ThreadSanitizer cannot run under multiversioning: the ifunc
// resolver that picks a clone executes during relocation, before TSan's
// runtime is initialised, and the interposed resolver segfaults.  TSan
// builds fall back to the baseline kernels — they exercise the same
// source.
SYSDP_LANE_CLONES
void exec_runs_dispatch(const RunCtx& ctx, std::uint32_t rlo,
                        std::uint32_t rhi, TapeSemiring semiring,
                        bool param) {
  if (semiring == TapeSemiring::kMinPlus) {
    switch (ctx.lanes) {
      case 8:
        param ? exec_runs_impl<MinPlus, true, 8>(ctx, rlo, rhi)
              : exec_runs_impl<MinPlus, false, 8>(ctx, rlo, rhi);
        break;
      case 16:
        param ? exec_runs_impl<MinPlus, true, 16>(ctx, rlo, rhi)
              : exec_runs_impl<MinPlus, false, 16>(ctx, rlo, rhi);
        break;
      default:
        param ? exec_runs_impl<MinPlus, true, 0>(ctx, rlo, rhi)
              : exec_runs_impl<MinPlus, false, 0>(ctx, rlo, rhi);
        break;
    }
  } else {
    switch (ctx.lanes) {
      case 8:
        param ? exec_runs_impl<MaxPlus, true, 8>(ctx, rlo, rhi)
              : exec_runs_impl<MaxPlus, false, 8>(ctx, rlo, rhi);
        break;
      case 16:
        param ? exec_runs_impl<MaxPlus, true, 16>(ctx, rlo, rhi)
              : exec_runs_impl<MaxPlus, false, 16>(ctx, rlo, rhi);
        break;
      default:
        param ? exec_runs_impl<MaxPlus, true, 0>(ctx, rlo, rhi)
              : exec_runs_impl<MaxPlus, false, 0>(ctx, rlo, rhi);
        break;
    }
  }
}

}  // namespace

void BatchedCompiledEngine::exec_level(std::uint32_t level) {
  const std::uint32_t rlo = level_run_off_[level];
  const std::uint32_t rhi = level_run_off_[level + 1];
  if (rlo == rhi) return;
  // Weight-table reads are pure overhead while every lane still replays
  // the oracle binding: the lane-major table equals the baked immediates
  // row for row, but streaming it costs lanes*8 bytes per op — on long
  // tapes that is megabytes per replay and turns the hot loop memory-
  // bound.  So the parameter path switches on only once some lane actually
  // deviates from the oracle's weights; results are bit-identical either
  // way.
  const bool param = !weights_.empty() && rebound_lanes_ != 0;
  const RunCtx ctx{slots_.data(), param ? weights_.data() : nullptr,
                   net_->ops.data(), order_.data(), runs_.data(), lanes_};
  exec_runs_dispatch(ctx, rlo, rhi, net_->semiring, param);
  ops_executed_ += std::uint64_t{net_->cycle_off[level + 1] -
                                 net_->cycle_off[level]} *
                   lanes_;
  // Per-kind accounting off the run table: runs are kind-homogeneous, so
  // a level costs at most a handful of adds however many ops it carries.
  ++levels_executed_;
  for (std::uint32_t r = rlo; r < rhi; ++r) {
    const std::uint64_t n = std::uint64_t{runs_[r].hi - runs_[r].lo} * lanes_;
    switch (runs_[r].kind) {
      case OpKind::kMac:
        mac_ops_ += n;
        break;
      case OpKind::kFold:
        fold_ops_ += n;
        break;
      case OpKind::kRelax:
        relax_ops_ += n;
        break;
    }
  }
}

void BatchedCompiledEngine::step() {
  if (now_ + 1 < net_->cycle_off.size()) {
    exec_level(static_cast<std::uint32_t>(now_));
    if (!observers_.empty()) {
      notify_level(static_cast<std::uint32_t>(now_));
    }
  }
  ++now_;
}

void BatchedCompiledEngine::run(sim::Cycle n) {
  // Observed replays visit every level (provenance bind events land on
  // empty levels); the detached skip-list path below is untouched.
  if (!observers_.empty()) {
    const sim::Cycle target = now_ + n;
    while (now_ < target) step();
    return;
  }
  const sim::Cycle target = now_ + n;
  const sim::Cycle end = std::min<sim::Cycle>(target, cycles());
  auto it = std::lower_bound(live_levels_.begin(), live_levels_.end(), now_);
  sim::Cycle from = now_;
  for (; it != live_levels_.end() && *it < end; ++it) {
    exec_level(*it);
    levels_skipped_ += *it - from;
    from = *it + 1;
  }
  if (end > from) levels_skipped_ += end - from;
  now_ = target;
}

void BatchedCompiledEngine::run_all() {
  run(cycles() > now_ ? cycles() - now_ : 0);
  notify_end();
}

Divergence BatchedCompiledEngine::verify_outputs(std::uint32_t lane) const {
  if (!oracle_bound(lane)) {
    throw std::logic_error(
        "BatchedCompiledEngine::verify_outputs: lane " + std::to_string(lane) +
        " is not oracle-bound; recorded expectations describe the oracle's "
        "weight binding only");
  }
  for (std::uint64_t i = 0; i < net_->outputs.size(); ++i) {
    const Output& out = net_->outputs[i];
    const Cost got = value(out.slot, lane);
    if (got != out.expected) {
      Divergence d;
      d.found = true;
      d.index = i;
      d.got = got;
      d.expected = out.expected;
      return d;
    }
  }
  return {};
}

Cost BatchedCompiledEngine::output(std::string_view tag, std::uint64_t index,
                                   std::uint32_t lane) const {
  for (const Output& out : net_->outputs) {
    if (out.index == index && out.tag == tag) return value(out.slot, lane);
  }
  throw std::out_of_range("BatchedCompiledEngine::output: no output " +
                          std::string(tag) + "[" + std::to_string(index) +
                          "]");
}

}  // namespace sysdp::compile
