// Batched executor: one compiled tape replayed across B instances at once.
//
// The scalar CompiledEngine already removed dispatch and pointer chasing;
// what is left per op is a handful of scalar int64 operations — too little
// work to feed a superscalar core from one instance.  BatchedCompiledEngine
// widens the data instead of the code: it replays ONE op tape over B lanes
// (instances) simultaneously, with the slot file laid out lane-major
// (`slots[slot*B + lane]`, 64-byte aligned) so that executing an op is a
// loop over B contiguous, independent int64 elements — the shape
// auto-vectorisers turn into SIMD without a single intrinsic.
//
// Two structural facts make this sound:
//
//   * the designs' control is value-independent (tags, counters, validity
//     bits), so every lane follows the identical schedule — there is no
//     divergence to mask; and
//   * lowering is SSA (every op's destination is a fresh slot), so the
//     destination row never aliases a source row and the lane loops carry
//     no loop-carried dependence.
//
// At load time each dependency level's ops are stable-partitioned into
// kind-major runs (all kMac, then all kFold, then all kRelax) so the lane
// loops stay monomorphic — same kernel, thousands of iterations, no
// branch in sight.  Stable partition preserves the order of same-kind ops,
// which is where all in-level RAW dependences live (in-place fold chains
// recorded in oracle order); if a level ever carries a cross-kind RAW that
// the partition would invert, construction detects it and falls back to
// original-order homogeneous runs for that level (none of the paper
// designs trigger this — each lowers to a single op kind — but the check
// keeps the reordering honest for future tapes).
//
// Lanes bind weight tables independently on parameterised tapes
// (compile/lower.hpp, LowerOptions::parameterise): one lowering of a
// family shape serves B different weight assignments per replay, and
// thousands across replays — amortising the oracle run that produced the
// tape.  Per-lane results are bit-identical to a scalar CompiledEngine
// replay of the same binding; the differential suite proves it lane by
// lane.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "compile/aligned.hpp"
#include "compile/engine.hpp"  // Divergence
#include "compile/program.hpp"
#include "semiring/cost.hpp"
#include "sim/module.hpp"

namespace sysdp::compile {

/// One homogeneous span of a batched execution order: ops order[lo..hi)
/// are all of `kind`, executed back to back by one monomorphic lane
/// kernel.  Namespace-scope (not nested in the engine) because the lane
/// kernels are free functions compiled per ISA via function
/// multiversioning (batch_engine.cpp) and need to name the type.
struct KindRun {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  OpKind kind = OpKind::kMac;
};

class BatchedCompiledEngine {
 public:
  /// Borrows `net`, which must outlive the engine.  `lanes` is the batch
  /// width B; every lane starts oracle-bound.  Throws std::invalid_argument
  /// if `lanes` is zero.
  BatchedCompiledEngine(const CompiledNetlist& net, std::uint32_t lanes);

  [[nodiscard]] std::uint32_t lanes() const noexcept { return lanes_; }

  /// Rewind every lane to cycle 0 and restore the initial slot image.
  /// Per-lane weight bindings survive, like CompiledEngine::reset().
  void reset();

  /// Execute one dependency level across all lanes.  No-op past the end.
  void step();

  /// Execute `n` levels via the non-empty-level skip-list.
  void run(sim::Cycle n);

  /// Execute the whole tape.
  void run_all();

  [[nodiscard]] sim::Cycle now() const noexcept { return now_; }
  [[nodiscard]] sim::Cycle cycles() const noexcept { return net_->cycles(); }

  /// Lane `lane`'s value of `slot`.
  [[nodiscard]] Cost value(sim::SlotId slot, std::uint32_t lane) const {
    return slots_[std::size_t{slot} * lanes_ + lane];
  }

  /// Lane `lane`'s value of output `tag[index]`; throws std::out_of_range
  /// if absent.
  [[nodiscard]] Cost output(std::string_view tag, std::uint64_t index,
                            std::uint32_t lane) const;

  /// Install a per-instance weight table on one lane (parameterised tapes
  /// only).  Throws std::invalid_argument on a non-parameterised tape, a
  /// bad lane, or a wrong-length table.
  void bind(std::uint32_t lane, const std::vector<Cost>& weights);

  /// Restore lane `lane` to the oracle's weight binding.
  void bind_oracle(std::uint32_t lane);

  /// True while lane `lane` replays the oracle's own weight binding.
  [[nodiscard]] bool oracle_bound(std::uint32_t lane) const {
    return oracle_bound_[lane] != 0;
  }

  /// Compare lane `lane`'s declared outputs with the oracle's observed
  /// values.  Throws std::logic_error if the lane is not oracle-bound —
  /// the recorded expectations describe the oracle binding only.
  [[nodiscard]] Divergence verify_outputs(std::uint32_t lane) const;

  /// Op-lane executions retired (ops per level × lanes).
  [[nodiscard]] std::uint64_t ops_executed() const noexcept {
    return ops_executed_;
  }
  /// Empty levels bypassed by run()/run_all() via the skip-list.
  [[nodiscard]] std::uint64_t levels_skipped() const noexcept {
    return levels_skipped_;
  }
  /// Kind-major runs the tape was partitioned into at load time.
  [[nodiscard]] std::uint64_t kind_runs() const noexcept {
    return runs_.size();
  }
  /// Levels where a cross-kind in-level RAW forced original-order runs.
  [[nodiscard]] std::uint64_t fallback_levels() const noexcept {
    return fallback_levels_;
  }

  /// Activity accounting so far, in op-lane executions (ops × lanes) like
  /// ops_executed(), matching CompiledEngine::result()'s shape.
  [[nodiscard]] ReplayResult result() const noexcept {
    return {now_,     lanes_,   ops_executed_, levels_executed_,
            levels_skipped_, mac_ops_, fold_ops_,     relax_ops_};
  }

  /// Attach a replay observer — the same contract as
  /// CompiledEngine::add_observer: cycle 0 only, on_replay_begin fires at
  /// attach and on every reset(), observed runs visit every level, the
  /// detached path is unchanged.  on_level's slot image is lane-major.
  void add_observer(ReplayObserver* obs);

 private:
  void exec_level(std::uint32_t level);
  void set_oracle_bound(std::uint32_t lane, bool bound);
  void notify_level(sim::Cycle t);
  void notify_end();

  const CompiledNetlist* net_;
  std::uint32_t lanes_;
  /// Lane-major slot file: `slots_[slot*lanes_ + lane]`, 64-byte aligned
  /// so every row starts SIMD-friendly.
  AlignedVec<Cost> slots_;
  /// Lane-major weight tables on parameterised tapes:
  /// `weights_[param*lanes_ + lane]`.  Empty on non-parameterised tapes.
  AlignedVec<Cost> weights_;
  std::vector<std::uint8_t> oracle_bound_;
  /// Lanes whose binding differs from the oracle's.  While zero, execution
  /// takes the baked-immediate path and never streams `weights_` — the
  /// table is bit-identical to the immediates then, and skipping it keeps
  /// oracle-bound replays compute-bound instead of bandwidth-bound.
  std::uint32_t rebound_lanes_ = 0;
  /// Kind-major execution order: permutation of op indices, level by level.
  std::vector<std::uint32_t> order_;
  std::vector<KindRun> runs_;
  /// CSR over levels into `runs_`: level t executes runs
  /// [level_run_off_[t], level_run_off_[t+1]).
  std::vector<std::uint32_t> level_run_off_;
  std::vector<std::uint32_t> live_levels_;
  std::vector<ReplayObserver*> observers_;
  sim::Cycle now_ = 0;
  std::uint64_t ops_executed_ = 0;
  std::uint64_t levels_executed_ = 0;
  std::uint64_t levels_skipped_ = 0;
  std::uint64_t mac_ops_ = 0;
  std::uint64_t fold_ops_ = 0;
  std::uint64_t relax_ops_ = 0;
  std::uint64_t fallback_levels_ = 0;
};

}  // namespace sysdp::compile
