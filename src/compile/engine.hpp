// Executor for compiled flat-netlist programs.
//
// CompiledEngine replays a CompiledNetlist's op tape level by level.  It
// is the third engine mode next to the serial and pooled interpreters: the
// same cycle semantics (now() advances one dependency level per step, and
// a value changes on exactly the cycle it changed in the modular oracle),
// but the per-cycle work is a tight loop over packed 32-byte ops and one
// flat value array — no virtual eval/commit dispatch, no module state, no
// two-phase staging (lowering already resolved it into SSA slots).
//
// Everything is bounds-resolved at lowering time, so the hot loop indexes
// raw arrays; `step_checked` additionally compares every op result with
// the oracle's recorded value, which the differential suite runs on every
// design instance.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "compile/aligned.hpp"
#include "compile/program.hpp"
#include "compile/replay_observer.hpp"
#include "semiring/cost.hpp"
#include "sim/engine.hpp"  // sim::RunUntilResult — one loop shape, two engines
#include "sim/module.hpp"

namespace sysdp::compile {

/// First divergence found by a checked replay (op-level) or output
/// verification; index is an op index or output index respectively.
/// Checked replay additionally attributes the diverging op through the
/// tape's provenance tables (module instance + declared port label), so a
/// failing differential test names the design signal, not just a flat op
/// index; both strings stay empty when the tape carries no op_lane plane
/// or the op is an unnamed intermediate.
struct Divergence {
  bool found = false;
  std::uint64_t index = 0;
  Cost got = 0;
  Cost expected = 0;
  std::string module;
  std::string label;
};

class CompiledEngine {
 public:
  /// Borrows `net`, which must outlive the engine.
  explicit CompiledEngine(const CompiledNetlist& net);

  /// Rewind to cycle 0 and restore the initial slot image.  Op-destination
  /// slots keep stale values from a previous run — harmless, since SSA
  /// guarantees every one is rewritten before any op or output reads it.
  void reset();

  /// Execute one dependency level (one oracle cycle).  No-op past the end
  /// of the tape (the oracle's drained tail cycles are empty levels too).
  void step();

  /// Execute `n` levels.
  void run(sim::Cycle n);

  /// Execute the whole tape.
  void run_all();

  /// Step until `done(*this)` holds, checking once at entry and once per
  /// cycle — the same contract as sim::Engine::run_until, so harnesses can
  /// drive either engine through one shape of loop.
  [[nodiscard]] sim::RunUntilResult run_until(
      const std::function<bool(const CompiledEngine&)>& done,
      sim::Cycle max_cycles);

  [[nodiscard]] sim::Cycle now() const noexcept { return now_; }
  [[nodiscard]] sim::Cycle cycles() const noexcept { return net_->cycles(); }
  [[nodiscard]] Cost value(sim::SlotId slot) const { return slots_[slot]; }
  [[nodiscard]] std::uint64_t ops_executed() const noexcept {
    return ops_executed_;
  }
  /// Empty dependency levels bypassed by run()/run_all() through the
  /// precomputed skip-list (gated tapes are mostly empty levels); step()
  /// still visits every level, so stepping callers see 0 here.
  [[nodiscard]] std::uint64_t levels_skipped() const noexcept {
    return levels_skipped_;
  }
  [[nodiscard]] const CompiledNetlist& program() const noexcept {
    return *net_;
  }

  /// Activity accounting so far: levels executed/skipped and the per-kind
  /// op split, matching the interpreted RunResult fields bench_all reads.
  [[nodiscard]] ReplayResult result() const noexcept {
    return {now_,     1,        ops_executed_, levels_executed_,
            levels_skipped_, mac_ops_, fold_ops_,     relax_ops_};
  }

  /// Attach a replay observer (borrowed; must outlive the engine).  Only
  /// legal at cycle 0 — reset() first — mirroring sim::Engine's contract;
  /// fires on_replay_begin immediately and again on every reset().  While
  /// any observer is attached, run()/run_all() visit every level instead
  /// of walking the non-empty skip-list, because provenance bind events
  /// land on empty levels too; the detached path is unchanged.
  void add_observer(ReplayObserver* obs);

  /// Install a per-instance weight table on a parameterised tape: op `i`
  /// replays with `weights[ops[i].param]` instead of the baked immediate.
  /// The schedule, slots and outputs' *locations* are unchanged — only the
  /// values flowing through them.  Throws std::invalid_argument if the
  /// tape is not parameterised or the table length is not num_params().
  void bind(std::vector<Cost> weights);

  /// Restore the weight binding the oracle ran with (the default).
  void bind_oracle();

  /// True while the engine replays the oracle's own weight binding — the
  /// only binding the tape's recorded expectations describe.  Checked
  /// replay and verify_outputs() require this.
  [[nodiscard]] bool oracle_bound() const noexcept { return oracle_bound_; }

  /// Checked variant of step(): every op result is compared against the
  /// oracle value recorded at lowering time.  Returns the first
  /// divergence, if any — a non-divergent full replay is the op-level
  /// proof of cycle-exact bit-identity with the modular engine.  Throws
  /// std::logic_error under a non-oracle weight binding: the recorded
  /// expectations describe the oracle's weights only.
  Divergence step_checked();

  /// run_all + step_checked: replay the whole tape, stop at the first
  /// op-level divergence.
  Divergence run_all_checked();

  /// Compare every declared output slot with the oracle's observed value.
  /// Throws std::logic_error under a non-oracle weight binding.
  [[nodiscard]] Divergence verify_outputs() const;

  /// Value of output `tag[index]`; throws std::out_of_range if absent.
  [[nodiscard]] Cost output(std::string_view tag, std::uint64_t index) const;

 private:
  /// kKind lifts a homogeneous level's op kind to a compile-time constant
  /// (-1 = mixed, per-op switch): single-kind levels — which is every
  /// level the tape optimizer's kind-major reordering produces, and most
  /// recorded ones — run a switch-free loop.
  template <typename S, bool kChecked, bool kParam, int kKind = -1>
  Divergence exec_level(std::uint32_t lo, std::uint32_t hi);
  template <typename S, bool kParam>
  void exec_level_kind(int kind, std::uint32_t lo, std::uint32_t hi);
  void exec_level_dispatch(sim::Cycle t, std::uint32_t lo, std::uint32_t hi);
  /// Attribute an op-level divergence to its design signal via the tape's
  /// provenance plane (no-op when unavailable).
  void annotate_divergence(Divergence& d) const;
  void require_oracle_binding(const char* site) const;
  /// Per-kind accounting for the level at `t` (precomputed triples).
  void account_level(sim::Cycle t);
  void notify_level(sim::Cycle t, std::uint32_t lo, std::uint32_t hi);
  void notify_end();

  const CompiledNetlist* net_;
  AlignedVec<Cost> slots_;
  /// Per-instance weight table (bind()); empty means the baked immediates
  /// (the oracle binding) are in effect.
  std::vector<Cost> weights_;
  /// Skip-list of non-empty dependency levels, precomputed at
  /// construction: run()/run_all() iterate this instead of paying a
  /// per-level comparison on gated tapes' long empty stretches.
  std::vector<std::uint32_t> live_levels_;
  /// Per-level op counts by kind (mac, fold, relax), precomputed at
  /// construction so the executed-level accounting is three adds.
  std::vector<std::array<std::uint32_t, 3>> level_kinds_;
  std::vector<ReplayObserver*> observers_;
  sim::Cycle now_ = 0;
  std::uint64_t ops_executed_ = 0;
  std::uint64_t levels_executed_ = 0;
  std::uint64_t levels_skipped_ = 0;
  std::uint64_t mac_ops_ = 0;
  std::uint64_t fold_ops_ = 0;
  std::uint64_t relax_ops_ = 0;
  bool oracle_bound_ = true;
};

}  // namespace sysdp::compile
