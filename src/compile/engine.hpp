// Executor for compiled flat-netlist programs.
//
// CompiledEngine replays a CompiledNetlist's op tape level by level.  It
// is the third engine mode next to the serial and pooled interpreters: the
// same cycle semantics (now() advances one dependency level per step, and
// a value changes on exactly the cycle it changed in the modular oracle),
// but the per-cycle work is a tight loop over packed 32-byte ops and one
// flat value array — no virtual eval/commit dispatch, no module state, no
// two-phase staging (lowering already resolved it into SSA slots).
//
// Everything is bounds-resolved at lowering time, so the hot loop indexes
// raw arrays; `step_checked` additionally compares every op result with
// the oracle's recorded value, which the differential suite runs on every
// design instance.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "compile/program.hpp"
#include "semiring/cost.hpp"
#include "sim/engine.hpp"  // sim::RunUntilResult — one loop shape, two engines
#include "sim/module.hpp"

namespace sysdp::compile {

/// First divergence found by a checked replay (op-level) or output
/// verification; index is an op index or output index respectively.
struct Divergence {
  bool found = false;
  std::uint64_t index = 0;
  Cost got = 0;
  Cost expected = 0;
};

class CompiledEngine {
 public:
  /// Borrows `net`, which must outlive the engine.
  explicit CompiledEngine(const CompiledNetlist& net);

  /// Rewind to cycle 0 and restore the initial slot image.  Op-destination
  /// slots keep stale values from a previous run — harmless, since SSA
  /// guarantees every one is rewritten before any op or output reads it.
  void reset();

  /// Execute one dependency level (one oracle cycle).  No-op past the end
  /// of the tape (the oracle's drained tail cycles are empty levels too).
  void step();

  /// Execute `n` levels.
  void run(sim::Cycle n);

  /// Execute the whole tape.
  void run_all();

  /// Step until `done(*this)` holds, checking once at entry and once per
  /// cycle — the same contract as sim::Engine::run_until, so harnesses can
  /// drive either engine through one shape of loop.
  [[nodiscard]] sim::RunUntilResult run_until(
      const std::function<bool(const CompiledEngine&)>& done,
      sim::Cycle max_cycles);

  [[nodiscard]] sim::Cycle now() const noexcept { return now_; }
  [[nodiscard]] sim::Cycle cycles() const noexcept { return net_->cycles(); }
  [[nodiscard]] Cost value(sim::SlotId slot) const { return slots_[slot]; }
  [[nodiscard]] std::uint64_t ops_executed() const noexcept {
    return ops_executed_;
  }
  [[nodiscard]] const CompiledNetlist& program() const noexcept {
    return *net_;
  }

  /// Checked variant of step(): every op result is compared against the
  /// oracle value recorded at lowering time.  Returns the first
  /// divergence, if any — a non-divergent full replay is the op-level
  /// proof of cycle-exact bit-identity with the modular engine.
  Divergence step_checked();

  /// run_all + step_checked: replay the whole tape, stop at the first
  /// op-level divergence.
  Divergence run_all_checked();

  /// Compare every declared output slot with the oracle's observed value.
  [[nodiscard]] Divergence verify_outputs() const;

  /// Value of output `tag[index]`; throws std::out_of_range if absent.
  [[nodiscard]] Cost output(std::string_view tag, std::uint64_t index) const;

 private:
  template <typename S, bool kChecked>
  Divergence exec_level(std::uint32_t lo, std::uint32_t hi);

  const CompiledNetlist* net_;
  std::vector<Cost> slots_;
  sim::Cycle now_ = 0;
  std::uint64_t ops_executed_ = 0;
};

}  // namespace sysdp::compile
