// ReplayProfiler: per-level / per-kernel profile of compiled replays.
//
// A ReplayObserver that aggregates, per dependency level, how many op-lane
// executions of each kernel kind ran and how long the level took on the
// wall clock, plus one record per replay (ops, lanes, levels, wall time).
// Several replays through one profiler accumulate: per-level aggregates
// sum across replays (visits counts how many), and the per-replay records
// are what the batched lane-skew figure and the latency histograms in
// obs::MetricsRegistry are computed from.
//
// Counts are deterministic functions of the tape and the replay schedule;
// wall times are not — the sysdp-profile-v1 exporter in src/obs can omit
// them (ProfileJsonOptions) so telemetry-determinism tests can compare
// documents byte for byte.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "compile/replay_observer.hpp"

namespace sysdp::compile {

class ReplayProfiler final : public ReplayObserver {
 public:
  /// Aggregate over every visit of one dependency level.
  struct LevelAgg {
    std::uint64_t visits = 0;    ///< replays that stepped this level
    std::uint64_t ops = 0;       ///< op-lane executions, summed
    std::uint64_t mac_ops = 0;
    std::uint64_t fold_ops = 0;
    std::uint64_t relax_ops = 0;
    std::uint64_t wall_ns = 0;   ///< summed level wall time
  };

  /// One completed (or in-flight-finalised) replay.
  struct Replay {
    std::uint32_t lanes = 1;
    sim::Cycle levels = 0;       ///< levels observed
    std::uint64_t ops = 0;       ///< op-lane executions
    std::uint64_t wall_ns = 0;
  };

  void on_replay_begin(const CompiledNetlist& net, const Cost* slots,
                       std::uint32_t lanes) override;
  void on_level(const CompiledNetlist& net, sim::Cycle t, std::uint32_t lo,
                std::uint32_t hi, const Cost* slots,
                std::uint32_t lanes) override;
  void on_replay_end(const CompiledNetlist& net) override;

  /// Close the in-flight replay, if any.  Idempotent; also called by the
  /// next on_replay_begin, so interleaved reset()/run_all() sequences
  /// record one Replay each without explicit bookkeeping.
  void finish();

  [[nodiscard]] const std::vector<LevelAgg>& levels() const noexcept {
    return levels_;
  }
  [[nodiscard]] const std::vector<Replay>& replays() const noexcept {
    return replays_;
  }
  [[nodiscard]] std::uint64_t total_ops() const noexcept { return total_ops_; }
  [[nodiscard]] std::uint64_t total_mac() const noexcept { return total_mac_; }
  [[nodiscard]] std::uint64_t total_fold() const noexcept {
    return total_fold_;
  }
  [[nodiscard]] std::uint64_t total_relax() const noexcept {
    return total_relax_;
  }
  [[nodiscard]] std::uint64_t total_wall_ns() const noexcept {
    return total_wall_ns_;
  }

  /// Relative spread of replay wall times, (max - min) / median, over the
  /// closed replays — the per-lane skew proxy for batched runs, where the
  /// SIMD lanes advance in lockstep and the variation shows up across
  /// replays rather than inside one.  0 with fewer than two replays.
  [[nodiscard]] double replay_skew() const;

 private:
  std::vector<LevelAgg> levels_;
  std::vector<Replay> replays_;
  Replay cur_;
  bool in_replay_ = false;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_mac_ = 0;
  std::uint64_t total_fold_ = 0;
  std::uint64_t total_relax_ = 0;
  std::uint64_t total_wall_ns_ = 0;
  std::chrono::steady_clock::time_point level_start_{};
};

}  // namespace sysdp::compile
