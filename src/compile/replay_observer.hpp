// Level-granular replay hooks for the compiled executors.
//
// The compiled backend's analogue of sim::EngineObserver: an observer
// attached to a CompiledEngine / BatchedCompiledEngine hears the replay at
// dependency-level granularity — one on_level per level, carrying the op
// span the level executed and the live slot image.  The contract is
// pay-for-use: a detached engine pays exactly one `observers_.empty()`
// branch per executed level (the Release bench gate holds the detached
// path to the telemetry layer's 2% tolerance), while an attached engine
// additionally visits *empty* levels, because provenance bind events
// (elided register copies) land on levels that execute no ops.
//
// Observers attach at cycle 0 only (reset() first), mirroring the
// interpreted engine's add_observer contract, and hear on_replay_begin
// once per replay: at attach and again on every reset().
#pragma once

#include <cstdint>

#include "compile/program.hpp"
#include "sim/module.hpp"

namespace sysdp::compile {

/// Activity accounting of one replay — the compiled counterpart of the
/// interpreted RunResult fields bench_all reports.  For the batched
/// engine every count is in op-lane executions (ops × lanes), consistent
/// with its ops_executed accounting.
struct ReplayResult {
  sim::Cycle cycles = 0;          ///< levels stepped (now())
  std::uint32_t lanes = 1;        ///< batch width (1 for CompiledEngine)
  std::uint64_t ops_executed = 0;
  std::uint64_t levels_executed = 0;  ///< non-empty levels actually run
  std::uint64_t levels_skipped = 0;   ///< empty levels bypassed by run()
  std::uint64_t mac_ops = 0;
  std::uint64_t fold_ops = 0;
  std::uint64_t relax_ops = 0;

  /// Mean op-lane executions per executed level per lane — the tape-level
  /// occupancy figure the per-stage profiles in the GPU-pipeline DP
  /// literature report.
  [[nodiscard]] double level_occupancy() const noexcept {
    const double denom =
        static_cast<double>(levels_executed) * static_cast<double>(lanes);
    return denom > 0.0 ? static_cast<double>(ops_executed) / denom : 0.0;
  }
};

class ReplayObserver {
 public:
  ReplayObserver() = default;
  ReplayObserver(const ReplayObserver&) = default;
  ReplayObserver& operator=(const ReplayObserver&) = default;
  ReplayObserver(ReplayObserver&&) = default;
  ReplayObserver& operator=(ReplayObserver&&) = default;
  virtual ~ReplayObserver() = default;

  /// A replay starts: the engine sits at cycle 0 with the initial slot
  /// image loaded.  `slots` is the lane-major slot file (lanes == 1 for
  /// the scalar engine), borrowed for the duration of the call.
  virtual void on_replay_begin(const CompiledNetlist& net, const Cost* slots,
                               std::uint32_t lanes) {
    (void)net;
    (void)slots;
    (void)lanes;
  }

  /// Dependency level `t` finished: ops [lo, hi) executed (lo == hi for an
  /// empty level) and the slot image reflects every write up to and
  /// including level t — the state the interpreted engine exposes at VCD
  /// time t+1.
  virtual void on_level(const CompiledNetlist& net, sim::Cycle t,
                        std::uint32_t lo, std::uint32_t hi, const Cost* slots,
                        std::uint32_t lanes) {
    (void)net;
    (void)t;
    (void)lo;
    (void)hi;
    (void)slots;
    (void)lanes;
  }

  /// The tape's last level has executed (fired by run_all and a clean
  /// run_all_checked; a replay abandoned mid-tape never ends).
  virtual void on_replay_end(const CompiledNetlist& net) { (void)net; }
};

}  // namespace sysdp::compile
