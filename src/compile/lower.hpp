// Trace-based lowering: modular design -> CompiledNetlist.
//
// lower_array() runs the design once on a serial, dense oracle engine with
// a Recorder attached.  The array models narrate every semiring op and
// register write (sim/record.hpp); the recorder shadow-executes the
// narration and emits the flat tape.  Why this is sound for the paper's
// designs: their control — which PE fires, with which weight, into which
// register, on which cycle — is a function of tags, counters and validity
// bits only, never of the cost values flowing through.  One concrete run
// therefore fixes the complete schedule for the instance, and the tape
// replays it bit-identically, cycle for cycle.
//
// The elaborated dataflow graph rides along: lowering captures
// analysis::capture()'s netlist at the oracle's elaboration point and uses
// it to tie the recorder's lanes back to declared storages (stats +
// diagnostics) — the compiled program is the same netlist, flattened.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/netlist.hpp"
#include "compile/compact.hpp"
#include "compile/optimize.hpp"
#include "compile/program.hpp"
#include "compile/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"

namespace sysdp::compile {

struct LowerOptions {
  /// Capture the analysis netlist at elaboration and resolve lane names.
  bool capture_netlist = true;
  /// Cross-check tape op count against the oracle's busy-step count: every
  /// paper design marks exactly one busy step per semiring op, so a
  /// mismatch means a narration site is missing or duplicated.
  bool check_busy_steps = true;
  /// Rename slots by live-range reuse after lowering (compile/compact.hpp):
  /// the recorder's SSA slot file scales with the op count, compaction
  /// shrinks it to the peak live count so replays — above all the B-lane
  /// batched replay, whose slot traffic is multiplied by the lane count —
  /// stay cache-resident.  Off only for tape-structure forensics.
  bool compact = true;
  /// Emit the parameter plane: weight-parameter indices on every op plus
  /// the oracle's weight table (CompiledNetlist::params), so engines can
  /// bind() per-instance weight tables and one lowering of a family shape
  /// serves any weight assignment.  Same-shape instances lower to
  /// structurally identical tapes (the designs' control depends on tags
  /// and counters, never on cost values), so their parameter planes align
  /// index for index.
  bool parameterise = false;
  /// Tape optimizer level (compile/optimize.hpp): 0 leaves the recorded
  /// schedule untouched, 1 runs the conservative pipeline (dead-op
  /// elimination, edge-free level fusion, kind-major reordering), 2 also
  /// fuses across same-kind chain edges.  Runs after the oracle
  /// cross-checks — the recorded tape is validated, then rewritten — and
  /// before compaction, which requires the SSA slot file.  Replay stays
  /// bit-identical at every level; an optimized tape's now() counts
  /// fused dependency levels, not oracle cycles.
  int optimize = 0;
};

struct Lowered {
  CompiledNetlist net;
  sim::Cycle oracle_cycles = 0;
};

namespace detail {

/// Busy-step count of a run result, whatever shape the family returns.
template <typename R>
[[nodiscard]] std::uint64_t busy_steps_of(const R& r) {
  if constexpr (requires { r.busy_steps; }) {
    return static_cast<std::uint64_t>(r.busy_steps);
  } else if constexpr (requires { r.stats.busy_steps; }) {
    return static_cast<std::uint64_t>(r.stats.busy_steps);
  } else {
    return 0;
  }
}

/// Resolve the recorder's provenance lanes against the captured netlist:
/// each lane's storage key is looked up among the declared storages, its
/// label becomes the declared port label and its module the storage's
/// first writer (or the environment node when nothing writes it).  Module
/// names are interned first-seen into Provenance::modules, which fixes the
/// compiled timeline's PE-row order.  Returns the number of lanes named.
inline std::uint64_t resolve_provenance(Provenance& prov,
                                        const std::vector<const void*>& keys,
                                        const analysis::Netlist& netlist) {
  std::uint64_t named = 0;
  for (std::size_t i = 0; i < prov.lanes.size() && i < keys.size(); ++i) {
    const std::uint32_t s = netlist.storage_of(keys[i]);
    if (s == analysis::Netlist::npos) continue;
    const analysis::Storage& storage = netlist.storages[s];
    ProvenanceLane& lane = prov.lanes[i];
    if (!storage.label.empty()) lane.label = storage.label;
    lane.module = storage.writers.empty()
                      ? netlist.node(netlist.environment).name
                      : netlist.node(storage.writers.front()).name;
    std::uint32_t id = 0;
    while (id < prov.modules.size() && prov.modules[id] != lane.module) ++id;
    if (id == prov.modules.size()) prov.modules.push_back(lane.module);
    lane.module_id = id;
    lane.named = true;
    ++named;
  }
  return named;
}

}  // namespace detail

/// Lower `arr` by oracle run.  The array must be fresh (never run); the
/// oracle engine is internal and serial+dense, the canonical program
/// order.  Throws std::logic_error if the narration is inconsistent with
/// the oracle's live values or the busy-step invariant fails — lowering
/// bugs die here, not in a diverging replay.
template <typename Array>
[[nodiscard]] Lowered lower_array(Array& arr, const LowerOptions& opt = {}) {
  sim::Engine oracle;
  Recorder rec;
  oracle.set_recorder(&rec);
  oracle.add_observer(&rec);
  analysis::Netlist netlist;
  bool captured = false;
  if (opt.capture_netlist) {
    oracle.set_elaboration_check([&](const sim::Engine& e) {
      analysis::CaptureOptions copts;
      arr.describe_environment(copts.environment);
      netlist = analysis::capture(e, copts);
      captured = true;
    });
  }

  const auto result = arr.run(oracle);

  Lowered out;
  out.oracle_cycles = oracle.now();
  out.net = rec.finish(opt.parameterise);
  out.net.stats.oracle_active_evals = oracle.active_evals();
  out.net.stats.oracle_dense_evals = oracle.dense_evals();
  out.net.stats.oracle_busy_steps = detail::busy_steps_of(result);
  if (captured) {
    out.net.stats.named_lanes = detail::resolve_provenance(
        out.net.provenance, rec.lane_key_table(), netlist);
  }
  if (out.net.cycles() != out.oracle_cycles) {
    throw std::logic_error(
        "compile::lower_array: tape has " + std::to_string(out.net.cycles()) +
        " dependency levels but the oracle ran " +
        std::to_string(out.oracle_cycles) + " cycles");
  }
  if (opt.check_busy_steps &&
      out.net.num_ops() != out.net.stats.oracle_busy_steps) {
    throw std::logic_error(
        "compile::lower_array: tape has " + std::to_string(out.net.num_ops()) +
        " ops but the oracle counted " +
        std::to_string(out.net.stats.oracle_busy_steps) +
        " busy steps — a narration site is missing or duplicated");
  }
  if (opt.optimize > 0) {
    OptimizeOptions oo;
    oo.level = opt.optimize;
    optimize_tape(out.net, oo);
  }
  if (opt.compact) compact_slots(out.net);
  return out;
}

}  // namespace sysdp::compile
