// Trace-based lowering: modular design -> CompiledNetlist.
//
// lower_array() runs the design once on a serial, dense oracle engine with
// a Recorder attached.  The array models narrate every semiring op and
// register write (sim/record.hpp); the recorder shadow-executes the
// narration and emits the flat tape.  Why this is sound for the paper's
// designs: their control — which PE fires, with which weight, into which
// register, on which cycle — is a function of tags, counters and validity
// bits only, never of the cost values flowing through.  One concrete run
// therefore fixes the complete schedule for the instance, and the tape
// replays it bit-identically, cycle for cycle.
//
// The elaborated dataflow graph rides along: lowering captures
// analysis::capture()'s netlist at the oracle's elaboration point and uses
// it to tie the recorder's lanes back to declared storages (stats +
// diagnostics) — the compiled program is the same netlist, flattened.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/netlist.hpp"
#include "compile/program.hpp"
#include "compile/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/port.hpp"

namespace sysdp::compile {

struct LowerOptions {
  /// Capture the analysis netlist at elaboration and resolve lane names.
  bool capture_netlist = true;
  /// Cross-check tape op count against the oracle's busy-step count: every
  /// paper design marks exactly one busy step per semiring op, so a
  /// mismatch means a narration site is missing or duplicated.
  bool check_busy_steps = true;
};

struct Lowered {
  CompiledNetlist net;
  sim::Cycle oracle_cycles = 0;
};

namespace detail {

/// Busy-step count of a run result, whatever shape the family returns.
template <typename R>
[[nodiscard]] std::uint64_t busy_steps_of(const R& r) {
  if constexpr (requires { r.busy_steps; }) {
    return static_cast<std::uint64_t>(r.busy_steps);
  } else if constexpr (requires { r.stats.busy_steps; }) {
    return static_cast<std::uint64_t>(r.stats.busy_steps);
  } else {
    return 0;
  }
}

}  // namespace detail

/// Lower `arr` by oracle run.  The array must be fresh (never run); the
/// oracle engine is internal and serial+dense, the canonical program
/// order.  Throws std::logic_error if the narration is inconsistent with
/// the oracle's live values or the busy-step invariant fails — lowering
/// bugs die here, not in a diverging replay.
template <typename Array>
[[nodiscard]] Lowered lower_array(Array& arr, const LowerOptions& opt = {}) {
  sim::Engine oracle;
  Recorder rec;
  oracle.set_recorder(&rec);
  oracle.add_observer(&rec);
  analysis::Netlist netlist;
  bool captured = false;
  if (opt.capture_netlist) {
    oracle.set_elaboration_check([&](const sim::Engine& e) {
      analysis::CaptureOptions copts;
      arr.describe_environment(copts.environment);
      netlist = analysis::capture(e, copts);
      captured = true;
    });
  }

  const auto result = arr.run(oracle);

  Lowered out;
  out.oracle_cycles = oracle.now();
  out.net = rec.finish();
  out.net.stats.oracle_active_evals = oracle.active_evals();
  out.net.stats.oracle_dense_evals = oracle.dense_evals();
  out.net.stats.oracle_busy_steps = detail::busy_steps_of(result);
  if (captured) {
    for (const void* key : rec.lane_keys()) {
      if (netlist.storage_of(key) != analysis::Netlist::npos) {
        ++out.net.stats.named_lanes;
      }
    }
  }
  if (out.net.cycles() != out.oracle_cycles) {
    throw std::logic_error(
        "compile::lower_array: tape has " + std::to_string(out.net.cycles()) +
        " dependency levels but the oracle ran " +
        std::to_string(out.oracle_cycles) + " cycles");
  }
  if (opt.check_busy_steps &&
      out.net.num_ops() != out.net.stats.oracle_busy_steps) {
    throw std::logic_error(
        "compile::lower_array: tape has " + std::to_string(out.net.num_ops()) +
        " ops but the oracle counted " +
        std::to_string(out.net.stats.oracle_busy_steps) +
        " busy steps — a narration site is missing or duplicated");
  }
  return out;
}

}  // namespace sysdp::compile
