#include "compile/parallel_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "compile/lane_math.hpp"
#include "semiring/closed_semiring.hpp"

namespace sysdp::compile {

using lanes::lane_sat_add;
using lanes::lane_sat_add_w;
using lanes::with_w_class;

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

/// Everything a slab kernel touches, gathered so the kernel can be a free
/// function under SYSDP_LANE_CLONES (multiversioning cannot apply to
/// member templates).
struct SpanCtx {
  Cost* slots;
  const Cost* wtab;
  const Op* ops;
  std::uint32_t lanes;
};

// One contiguous op slab in tape order, per-op kind switch, inner lane
// loop — the scalar engine's dispatch shape over the batched engine's
// lane-major data.  On optimizer-reordered tapes (kind-major runs inside
// each level) the switch is perfectly predicted; the lane loops are the
// same branchless kernels the batched engine runs, bit for bit.
template <typename S, bool kParam, std::uint32_t kW>
inline void exec_span_impl(const SpanCtx& ctx, std::uint32_t lo,
                           std::uint32_t hi) {
  const std::uint32_t B = kW != 0 ? kW : ctx.lanes;
  Cost* const slots = ctx.slots;
  const Cost* const wtab = ctx.wtab;
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Op& op = ctx.ops[i];
    switch (op.kind) {
      case OpKind::kMac: {
        const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
        const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
        Cost* const __restrict d = slots + std::size_t{op.dst} * B;
        if constexpr (kParam) {
          const Cost* const __restrict wrow = wtab + std::size_t{op.param} * B;
          SYSDP_LANE_IVDEP
          for (std::uint32_t l = 0; l < B; ++l) {
            d[l] = S::plus(pa[l], lane_sat_add(wrow[l], pb[l]));
          }
        } else {
          with_w_class(op.w, [&](auto wc) {
            const Cost wi = op.w;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              d[l] =
                  S::plus(pa[l], lane_sat_add_w<decltype(wc)::value>(pb[l], wi));
            }
          });
        }
        break;
      }
      case OpKind::kFold: {
        const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
        const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
        const Cost* const __restrict pc = slots + std::size_t{op.c} * B;
        Cost* const __restrict d = slots + std::size_t{op.dst} * B;
        if constexpr (kParam) {
          const Cost* const __restrict wrow = wtab + std::size_t{op.param} * B;
          SYSDP_LANE_IVDEP
          for (std::uint32_t l = 0; l < B; ++l) {
            const Cost cand = lane_sat_add(lane_sat_add(pb[l], pc[l]), wrow[l]);
            const Cost prev = pa[l];
            d[l] = S::improves(cand, prev) ? cand : prev;
          }
        } else {
          with_w_class(op.w, [&](auto wc) {
            const Cost wi = op.w;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              const Cost cand = lane_sat_add_w<decltype(wc)::value>(
                  lane_sat_add(pb[l], pc[l]), wi);
              const Cost prev = pa[l];
              d[l] = S::improves(cand, prev) ? cand : prev;
            }
          });
        }
        break;
      }
      case OpKind::kRelax: {
        const Cost* const __restrict pa = slots + std::size_t{op.a} * B;
        const Cost* const __restrict paarg =
            slots + (std::size_t{op.a} + 1) * B;
        const Cost* const __restrict pb = slots + std::size_t{op.b} * B;
        Cost* const __restrict d = slots + std::size_t{op.dst} * B;
        Cost* const __restrict darg = slots + (std::size_t{op.dst} + 1) * B;
        const Cost station = static_cast<Cost>(op.c);
        if constexpr (kParam) {
          const Cost* const __restrict wrow = wtab + std::size_t{op.param} * B;
          SYSDP_LANE_IVDEP
          for (std::uint32_t l = 0; l < B; ++l) {
            const Cost cand = lane_sat_add(pb[l], wrow[l]);
            const Cost prev = pa[l];
            const bool better = S::improves(cand, prev);
            d[l] = better ? cand : prev;
            darg[l] = better ? station : paarg[l];
          }
        } else {
          with_w_class(op.w, [&](auto wc) {
            const Cost wi = op.w;
            SYSDP_LANE_IVDEP
            for (std::uint32_t l = 0; l < B; ++l) {
              const Cost cand = lane_sat_add_w<decltype(wc)::value>(pb[l], wi);
              const Cost prev = pa[l];
              const bool better = S::improves(cand, prev);
              d[l] = better ? cand : prev;
              darg[l] = better ? station : paarg[l];
            }
          });
        }
        break;
      }
    }
  }
}

SYSDP_LANE_CLONES
void exec_span_dispatch(const SpanCtx& ctx, std::uint32_t lo, std::uint32_t hi,
                        TapeSemiring semiring, bool param) {
  if (semiring == TapeSemiring::kMinPlus) {
    switch (ctx.lanes) {
      case 8:
        param ? exec_span_impl<MinPlus, true, 8>(ctx, lo, hi)
              : exec_span_impl<MinPlus, false, 8>(ctx, lo, hi);
        break;
      default:
        param ? exec_span_impl<MinPlus, true, 0>(ctx, lo, hi)
              : exec_span_impl<MinPlus, false, 0>(ctx, lo, hi);
        break;
    }
  } else {
    switch (ctx.lanes) {
      case 8:
        param ? exec_span_impl<MaxPlus, true, 8>(ctx, lo, hi)
              : exec_span_impl<MaxPlus, false, 8>(ctx, lo, hi);
        break;
      default:
        param ? exec_span_impl<MaxPlus, true, 0>(ctx, lo, hi)
              : exec_span_impl<MaxPlus, false, 0>(ctx, lo, hi);
        break;
    }
  }
}

}  // namespace

ParallelCompiledEngine::ParallelCompiledEngine(const CompiledNetlist& net,
                                               sim::ThreadPool* pool,
                                               Options opt)
    : net_(&net), pool_(pool), lanes_(opt.lanes) {
  if (lanes_ == 0) {
    throw std::invalid_argument("ParallelCompiledEngine: zero lanes");
  }
  participants_ = pool_ != nullptr
                      ? static_cast<std::uint32_t>(pool_->num_lanes())
                      : 1;
  slots_.resize(std::size_t{net.num_slots} * lanes_, 0);
  if (net.parameterised) {
    weights_.resize(net.params.size() * lanes_);
    for (std::size_t p = 0; p < net.params.size(); ++p) {
      for (std::uint32_t l = 0; l < lanes_; ++l) {
        weights_[p * lanes_ + l] = net.params[p];
      }
    }
  }
  oracle_bound_.assign(lanes_, 1);
  for (std::uint64_t i = 0; i < net.ops.size(); ++i) {
    switch (net.ops[i].kind) {
      case OpKind::kMac:
        ++total_mac_;
        break;
      case OpKind::kFold:
        ++total_fold_;
        break;
      case OpKind::kRelax:
        ++total_relax_;
        break;
    }
  }
  total_ops_ = net.ops.size();
  build_plan(opt.min_parallel_width);
  reset();
}

void ParallelCompiledEngine::build_plan(std::uint32_t min_parallel_width) {
  const std::uint64_t cycles = net_->cycles();
  const std::uint32_t n = net_->num_slots;
  const std::uint32_t nslabs = participants_;

  // In-level conflict scratch (sized by the slot file, reset per level via
  // the touched list): the position of the last write to a slot and of the
  // first read since that write.  Any later touch that conflicts forbids
  // every cut between the two positions; forbidding from the FIRST read
  // covers all intermediate reads too, so one position per slot suffices.
  std::vector<std::uint32_t> last_write(n, kNone);
  std::vector<std::uint32_t> first_read(n, kNone);
  std::vector<sim::SlotId> touched;
  // Per-position minimum conflicting earlier position, then its suffix
  // minimum: a cut at local position j is safe iff no position >= j
  // conflicts with anything before j, i.e. suffix_min[j] >= j.
  std::vector<std::uint32_t> min_dep;

  std::uint32_t serial_from = 0;  // start of the pending serial run
  const auto flush_serial = [&](std::uint32_t upto) {
    if (upto > serial_from) {
      segments_.push_back({serial_from, upto, 0, false});
    }
  };

  for (std::uint32_t t = 0; t < cycles; ++t) {
    const std::uint32_t lo = net_->cycle_off[t];
    const std::uint32_t hi = net_->cycle_off[t + 1];
    const std::uint32_t width = hi - lo;
    if (width == 0) continue;  // empty levels ride in the serial runs free
    ++nonempty_levels_;
    if (width < min_parallel_width || nslabs < 2) {
      ++serial_levels_;
      continue;  // stays in the pending serial run
    }

    min_dep.assign(width, kNone);
    touched.clear();
    const auto track = [&](sim::SlotId s) {
      if (s < n && last_write[s] == kNone && first_read[s] == kNone) {
        touched.push_back(s);
      }
    };
    const auto constrain = [&](std::uint32_t earlier, std::uint32_t later) {
      min_dep[later] = std::min(min_dep[later], earlier);
    };
    for (std::uint32_t p = 0; p < width; ++p) {
      const Op& op = net_->ops[lo + p];
      const auto read = [&](sim::SlotId s) {
        if (s >= n) return;
        track(s);
        if (last_write[s] != kNone) constrain(last_write[s], p);
        if (first_read[s] == kNone) first_read[s] = p;
      };
      const auto write = [&](sim::SlotId s) {
        if (s >= n) return;
        track(s);
        if (first_read[s] != kNone) constrain(first_read[s], p);
        if (last_write[s] != kNone) constrain(last_write[s], p);
        last_write[s] = p;
        first_read[s] = kNone;
      };
      read(op.a);
      if (op.kind == OpKind::kRelax) read(op.a + 1);
      read(op.b);
      if (op.kind == OpKind::kFold) read(op.c);
      write(op.dst);
      if (op.kind == OpKind::kRelax) write(op.dst + 1);
    }
    for (const sim::SlotId s : touched) {
      last_write[s] = kNone;
      first_read[s] = kNone;
    }
    // Suffix-minimise in place: after this, min_dep[j] is the earliest
    // position any op at or after j depends on.
    for (std::uint32_t j = width - 1; j > 0; --j) {
      min_dep[j - 1] = std::min(min_dep[j - 1], min_dep[j]);
    }

    // Equal-work boundaries, nudged forward to the nearest safe cut.
    const std::uint32_t cut_off = static_cast<std::uint32_t>(cuts_.size());
    cuts_.push_back(lo);
    std::uint32_t prev = 0;  // local position of the previous boundary
    for (std::uint32_t k = 1; k < nslabs; ++k) {
      std::uint32_t b = std::max<std::uint32_t>(
          prev, static_cast<std::uint32_t>(
                    (std::uint64_t{width} * k) / nslabs));
      const std::uint32_t ideal = b;
      while (b < width && min_dep[b] < b) ++b;
      if (b != ideal) ++cuts_adjusted_;
      cuts_.push_back(lo + b);
      prev = b;
    }
    cuts_.push_back(hi);
    std::uint32_t nonempty_slabs = 0;
    for (std::uint32_t k = 0; k < nslabs; ++k) {
      if (cuts_[cut_off + k + 1] > cuts_[cut_off + k]) ++nonempty_slabs;
    }
    if (nonempty_slabs < 2) {
      // Conflicts (or the nudging) collapsed the level into one slab —
      // threads would only pay the barrier.  Keep it serial.
      cuts_.resize(cut_off);
      ++serial_levels_;
      continue;
    }
    flush_serial(t);
    segments_.push_back({t, t + 1, cut_off, true});
    serial_from = t + 1;
    ++parallel_levels_;
  }
  flush_serial(static_cast<std::uint32_t>(cycles));
}

void ParallelCompiledEngine::reset() {
  for (const SlotInit& in : net_->init) {
    Cost* const row = slots_.data() + std::size_t{in.slot} * lanes_;
    for (std::uint32_t l = 0; l < lanes_; ++l) row[l] = in.value;
  }
  now_ = 0;
  replayed_ = false;
}

void ParallelCompiledEngine::exec_ops(std::uint32_t lo, std::uint32_t hi,
                                      bool param) {
  if (lo == hi) return;
  const SpanCtx ctx{slots_.data(), param ? weights_.data() : nullptr,
                    net_->ops.data(), lanes_};
  exec_span_dispatch(ctx, lo, hi, net_->semiring, param);
}

void ParallelCompiledEngine::run_plan(std::uint32_t participant, bool param) {
  for (const Segment& seg : segments_) {
    if (seg.parallel) {
      const std::uint32_t slo = cuts_[seg.cut_off + participant];
      const std::uint32_t shi = cuts_[seg.cut_off + participant + 1];
      exec_ops(slo, shi, param);
    } else if (participant == 0) {
      for (std::uint32_t t = seg.level_lo; t < seg.level_hi; ++t) {
        exec_ops(net_->cycle_off[t], net_->cycle_off[t + 1], param);
      }
    }
    // Sense-reversing barrier between segments.  The last arriver's RMW on
    // `arrived_` observes every earlier arrival (release sequence), so its
    // release-store of the next generation publishes all participants'
    // slot writes to everyone's acquire-load — the only synchronisation
    // the replay needs.  Spin-then-yield: segments are microseconds apart,
    // and yielding keeps oversubscribed hosts (and the TSan job's 1-core
    // runner) live.
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      std::uint32_t spins = 0;
      while (generation_.load(std::memory_order_acquire) == gen) {
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }
}

void ParallelCompiledEngine::run_all() {
  if (replayed_) return;
  const bool param = !weights_.empty() && rebound_lanes_ != 0;
  const bool any_parallel = parallel_levels_ > 0 && participants_ > 1;
  if (!any_parallel || pool_ == nullptr) {
    // Serial plan (or no pool): no barriers needed, walk the levels once.
    for (std::uint32_t t = 0; t + 1 < net_->cycle_off.size(); ++t) {
      exec_ops(net_->cycle_off[t], net_->cycle_off[t + 1], param);
    }
  } else {
    pool_->parallel_for(participants_, [this, param](std::size_t p) {
      run_plan(static_cast<std::uint32_t>(p), param);
    });
  }
  now_ = net_->cycles();
  replayed_ = true;
}

ReplayResult ParallelCompiledEngine::result() const noexcept {
  if (!replayed_) return {0, lanes_, 0, 0, 0, 0, 0, 0};
  const std::uint64_t empty = net_->cycles() - nonempty_levels_;
  return {now_,
          lanes_,
          total_ops_ * lanes_,
          nonempty_levels_,
          empty,
          total_mac_ * lanes_,
          total_fold_ * lanes_,
          total_relax_ * lanes_};
}

void ParallelCompiledEngine::bind(std::uint32_t lane,
                                  const std::vector<Cost>& weights) {
  if (!net_->parameterised) {
    throw std::invalid_argument(
        "ParallelCompiledEngine::bind: tape was lowered without a parameter "
        "plane (LowerOptions::parameterise)");
  }
  if (lane >= lanes_) {
    throw std::invalid_argument("ParallelCompiledEngine::bind: lane " +
                                std::to_string(lane) + " out of range");
  }
  if (weights.size() != net_->params.size()) {
    throw std::invalid_argument(
        "ParallelCompiledEngine::bind: weight table has " +
        std::to_string(weights.size()) + " entries, tape has " +
        std::to_string(net_->params.size()) + " parameters");
  }
  for (std::size_t p = 0; p < weights.size(); ++p) {
    weights_[p * lanes_ + lane] = weights[p];
  }
  set_oracle_bound(lane, weights == net_->params);
}

void ParallelCompiledEngine::bind_oracle(std::uint32_t lane) {
  if (lane >= lanes_) {
    throw std::invalid_argument("ParallelCompiledEngine::bind_oracle: lane " +
                                std::to_string(lane) + " out of range");
  }
  for (std::size_t p = 0; p < net_->params.size(); ++p) {
    weights_[p * lanes_ + lane] = net_->params[p];
  }
  set_oracle_bound(lane, true);
}

void ParallelCompiledEngine::set_oracle_bound(std::uint32_t lane, bool bound) {
  if ((oracle_bound_[lane] != 0) != bound) {
    if (bound) {
      --rebound_lanes_;
    } else {
      ++rebound_lanes_;
    }
  }
  oracle_bound_[lane] = bound ? 1 : 0;
}

Divergence ParallelCompiledEngine::verify_outputs(std::uint32_t lane) const {
  if (!oracle_bound(lane)) {
    throw std::logic_error(
        "ParallelCompiledEngine::verify_outputs: lane " + std::to_string(lane) +
        " is not oracle-bound; recorded expectations describe the oracle's "
        "weight binding only");
  }
  for (std::uint64_t i = 0; i < net_->outputs.size(); ++i) {
    const Output& out = net_->outputs[i];
    const Cost got = value(out.slot, lane);
    if (got != out.expected) {
      Divergence d;
      d.found = true;
      d.index = i;
      d.got = got;
      d.expected = out.expected;
      return d;
    }
  }
  return {};
}

Cost ParallelCompiledEngine::output(std::string_view tag, std::uint64_t index,
                                    std::uint32_t lane) const {
  for (const Output& out : net_->outputs) {
    if (out.index == index && out.tag == tag) return value(out.slot, lane);
  }
  throw std::out_of_range("ParallelCompiledEngine::output: no output " +
                          std::string(tag) + "[" + std::to_string(index) +
                          "]");
}

}  // namespace sysdp::compile
