// Tape optimizer: a pass pipeline over CompiledNetlist.
//
// Three passes, run on the *uncompacted* SSA tape lowering emits (before
// compact_slots() renames the slot file — every legality argument below
// leans on single assignment):
//
//   1. dead-op elimination — ops no declared output and no provenance
//      bind can observe through any def→use chain are pruned, turning the
//      tape verifier's output-reachability warnings into actual work
//      removed.  Roots are the outputs' defining ops *and* every slot a
//      ProvenanceBind samples: waveform adapters replay bound slots, so
//      an op feeding only a waveform is live, not dead.
//   2. level fusion — adjacent dependency levels merge when every def→use
//      edge crossing the pair boundary is absent (conservative) or
//      same-kind (aggressive): the verifier admits same-level reads of a
//      value produced earlier in the level by a same-kind op (an in-level
//      chain), and the batched executor's kind-major partition is stable
//      within one kind, so chain order survives every executor.  Fused
//      groups are capped at `max_fused_ops`: compaction's slot reuse is
//      level-granular, so one unbounded fused level would hold the whole
//      SSA slot file live and evict the replay's working set — the cap
//      trades the last few level boundaries for a cache-resident slot
//      file.  Provenance bind stamps are remapped monotonically
//      (stamp t+1 samples the end of level t; SSA slots hold their one
//      value from definition onward, so sampling at the fused level's end
//      reads the identical value).
//   3. kind-major + locality reordering — inside each (possibly fused)
//      level, ops regroup kind-major and each single-kind run sorts by
//      destination slot, so the executors' branch-free kernels stream
//      long homogeneous, slot-ascending spans.  Levels with in-level
//      chains keep chain order: a stable partition is applied only when
//      every in-level edge joins same-kind ops, and a run never sorts
//      when one of its own ops is a chain endpoint.
//
// Every pass preserves all nine analysis::TapeVerifier checks and
// bit-identical replay values: op order only changes where SSA proves the
// touched slots disjoint, and op *count* only changes where no output or
// bind can tell.  Pass order matters — DCE first (fewer edges to block
// fusion), fusion second (reordering then sees the final level extents),
// compaction last (outside this module, in lower_array()).
#pragma once

#include <cstdint>

#include "compile/program.hpp"

namespace sysdp::compile {

struct OptimizeOptions {
  /// 0: pipeline disabled.  1: conservative — DCE, edge-free fusion,
  /// in-level reordering; the level structure an observer or parallel
  /// slicer sees keeps its dependence meaning.  2: aggressive — fusion
  /// additionally absorbs same-kind def→use edges as in-level chains,
  /// collapsing systolic pipelines (mac→mac accumulator chains, fold
  /// recurrences) to a handful of wide levels; maximal serial replay
  /// throughput, but fused levels serialise under the parallel engine's
  /// chain-respecting slicer and waveform stamps compress.
  int level = 1;
  /// Upper bound on ops per fused level (see header comment).
  std::uint32_t max_fused_ops = 4096;
};

/// What the pipeline did — bench sections and lint variants report these;
/// the fuzz harness asserts the counts are monotone.
struct OptimizeStats {
  int level = 0;
  std::uint64_t ops_before = 0;
  std::uint64_t ops_after = 0;
  std::uint64_t levels_before = 0;
  std::uint64_t levels_after = 0;
  std::uint64_t ops_pruned = 0;       ///< dead-op elimination
  std::uint64_t levels_fused = 0;     ///< levels merged away
  std::uint64_t levels_reordered = 0; ///< levels whose op order changed
};

/// Run the full pipeline at `opt.level` in place.  Throws std::logic_error
/// on a compacted tape: slot reuse breaks the SSA reasoning every pass
/// depends on, and lowering always optimizes before compacting.
OptimizeStats optimize_tape(CompiledNetlist& net,
                            const OptimizeOptions& opt = {});

// Individual passes, exposed so the fuzz harness can drive each alone.
// All three require an uncompacted tape (std::logic_error otherwise) and
// return the same counter the pipeline aggregates.

/// Prune ops unreachable from every output and provenance bind.  Returns
/// ops removed.
std::uint64_t prune_dead_ops(CompiledNetlist& net);

/// Merge adjacent levels subject to the edge rule; `allow_chain_edges`
/// selects the aggressive variant.  Returns levels removed.
std::uint64_t fuse_levels(CompiledNetlist& net, bool allow_chain_edges,
                          std::uint32_t max_fused_ops = 4096);

/// Kind-major + slot-ascending reordering inside every level.  Returns
/// levels whose order changed.
std::uint64_t reorder_levels(CompiledNetlist& net);

}  // namespace sysdp::compile
