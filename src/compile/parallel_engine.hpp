// Thread-parallel replay of one compiled tape: threads × SIMD lanes.
//
// The systolic arrays the paper builds are level-synchronous by
// construction — every op in a dependency level reads only values settled
// by the end of the previous level — so a level is a data-parallel op set
// and the natural thread decomposition is horizontal: slice each wide
// level into contiguous op slabs, one per pool lane, with one barrier per
// level and no atomics anywhere near the register file.  That is exactly
// the work-efficient DP schedule Ding/Gu/Sun advocate, applied to an
// already-recorded tape instead of a live recurrence.
//
// What makes the static slicing sound is computed, not assumed: at load
// time each level's in-level conflicts (RAW chains from in-place fold
// recurrences and — on compacted tapes — the slot reuse compaction
// introduced) are turned into forbidden cut points, and the ideal
// equal-work slab boundaries are nudged forward to the nearest safe cut.
// Every conflicting pair therefore lands in one slab, executed in tape
// order by one thread; replay is bit-identical to the serial engine on
// EVERY tape, verified or not, because the constraints come from the ops
// themselves.  A level narrower than `min_parallel_width` stays serial:
// the ReplayProfiler's per-level wall-clock shows a fork-join point costs
// roughly a microsecond of barrier latency while a slab of a few hundred
// ops costs the same — below that width, threads only add overhead (the
// fill/drain ramps of every design, where the optimizer's level fusion is
// the right tool instead).
//
// Scheduling: ONE ThreadPool::parallel_for spans the whole replay — each
// participant walks a precomputed segment plan (runs of serial levels
// executed by participant 0, parallel levels executed slab-per-
// participant) and meets the others at a lightweight sense-reversing
// barrier between segments.  Forking the cv-based pool once per level
// would cost more than most levels contain; forking once per REPLAY
// amortises it to nothing, and consecutive serial levels share a single
// barrier.  The engine needs the pool to itself while run_all() is in
// flight (its workers block on the replay barrier).
//
// Lanes compose exactly as in BatchedCompiledEngine: the slot file is
// lane-major (`slots[slot*lanes + lane]`, 64-byte aligned), per-lane
// weight bindings replay parameterised tapes, and each slab's lane loop
// auto-vectorises — threads × lanes.  Observers are deliberately not
// supported: the ReplayObserver contract delivers levels one at a time
// with a settled slot image, which is precisely the serialisation this
// engine exists to remove; profile the serial engines, then replay here.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "compile/aligned.hpp"
#include "compile/engine.hpp"  // Divergence
#include "compile/program.hpp"
#include "compile/replay_observer.hpp"
#include "semiring/cost.hpp"
#include "sim/module.hpp"
#include "sim/thread_pool.hpp"

namespace sysdp::compile {

/// Construction knobs for ParallelCompiledEngine (namespace scope so the
/// constructor can default it — an in-class aggregate with member
/// initialisers cannot appear as its own class's default argument).
struct ParallelReplayOptions {
  /// SIMD batch width B (instances per thread step), as in
  /// BatchedCompiledEngine.  Total parallelism is threads × lanes.
  std::uint32_t lanes = 1;
  /// Levels with fewer ops than this execute serially on participant 0.
  /// Default sized so a slab per lane clearly outweighs one barrier
  /// (~1 µs ≈ a few hundred op-executions on this backend's ~2–3 ns/op).
  std::uint32_t min_parallel_width = 256;
};

class ParallelCompiledEngine {
 public:
  using Options = ParallelReplayOptions;

  /// Borrows `net` and `pool`; both must outlive the engine.  `pool` may
  /// be nullptr (or have zero workers) — the plan then degenerates to one
  /// serial segment and run_all() executes inline, which keeps
  /// worker-count sweeps (0/1/2/...) trivial.  Throws std::invalid_argument
  /// if `opt.lanes` is zero.
  ParallelCompiledEngine(const CompiledNetlist& net, sim::ThreadPool* pool,
                         Options opt = {});

  [[nodiscard]] std::uint32_t lanes() const noexcept { return lanes_; }
  /// Concurrent participants the plan was sliced for (pool lanes:
  /// workers + caller; 1 without a pool).
  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

  /// Rewind every lane to cycle 0 and restore the initial slot image.
  /// Per-lane weight bindings survive, like the other engines' reset().
  void reset();

  /// Replay the whole tape.  Replay granularity is the whole tape by
  /// design — the barrier plan spans it; there is no step().  Requires
  /// exclusive use of the pool for the duration of the call.
  void run_all();

  [[nodiscard]] sim::Cycle now() const noexcept { return now_; }
  [[nodiscard]] sim::Cycle cycles() const noexcept { return net_->cycles(); }

  /// Lane `lane`'s value of `slot`.
  [[nodiscard]] Cost value(sim::SlotId slot, std::uint32_t lane) const {
    return slots_[std::size_t{slot} * lanes_ + lane];
  }

  /// Lane `lane`'s value of output `tag[index]`; throws std::out_of_range
  /// if absent.
  [[nodiscard]] Cost output(std::string_view tag, std::uint64_t index,
                            std::uint32_t lane) const;

  /// Install a per-instance weight table on one lane (parameterised tapes
  /// only); same contract as BatchedCompiledEngine::bind.
  void bind(std::uint32_t lane, const std::vector<Cost>& weights);

  /// Restore lane `lane` to the oracle's weight binding.
  void bind_oracle(std::uint32_t lane);

  /// True while lane `lane` replays the oracle's own weight binding.
  [[nodiscard]] bool oracle_bound(std::uint32_t lane) const {
    return oracle_bound_[lane] != 0;
  }

  /// Compare lane `lane`'s declared outputs with the oracle's observed
  /// values.  Throws std::logic_error if the lane is not oracle-bound.
  [[nodiscard]] Divergence verify_outputs(std::uint32_t lane) const;

  /// Activity accounting, in op-lane executions (ops × lanes) like the
  /// batched engine.  Counts are whole-tape totals once run_all() has
  /// completed, zero before — there is no partial replay to account.
  [[nodiscard]] ReplayResult result() const noexcept;

  // Plan introspection, for the bench sections and the threshold
  // heuristics' validation.

  /// Levels the plan slices across participants.
  [[nodiscard]] std::uint64_t parallel_levels() const noexcept {
    return parallel_levels_;
  }
  /// Non-empty levels the plan keeps serial (too narrow, or no pool).
  [[nodiscard]] std::uint64_t serial_levels() const noexcept {
    return serial_levels_;
  }
  /// Barrier meeting points per replay (one per plan segment).
  [[nodiscard]] std::uint64_t plan_segments() const noexcept {
    return segments_.size();
  }
  /// Slab boundaries moved off their equal-work position to respect an
  /// in-level conflict — nonzero means the conflict analysis actually
  /// constrained the slicing.
  [[nodiscard]] std::uint64_t cuts_adjusted() const noexcept {
    return cuts_adjusted_;
  }

 private:
  /// One entry of the replay plan.  A serial segment covers levels
  /// [level_lo, level_hi) and runs whole on participant 0; a parallel
  /// segment covers exactly one level, pre-sliced into participants_
  /// contiguous op slabs at cuts_[cut_off .. cut_off + participants_].
  struct Segment {
    std::uint32_t level_lo = 0;
    std::uint32_t level_hi = 0;
    std::uint32_t cut_off = 0;
    bool parallel = false;
  };

  void build_plan(std::uint32_t min_parallel_width);
  void exec_ops(std::uint32_t lo, std::uint32_t hi, bool param);
  void run_plan(std::uint32_t participant, bool param);
  void set_oracle_bound(std::uint32_t lane, bool bound);

  const CompiledNetlist* net_;
  sim::ThreadPool* pool_;
  std::uint32_t lanes_;
  std::uint32_t participants_ = 1;
  /// Lane-major slot file: `slots_[slot*lanes_ + lane]`.
  AlignedVec<Cost> slots_;
  /// Lane-major weight tables on parameterised tapes.
  AlignedVec<Cost> weights_;
  std::vector<std::uint8_t> oracle_bound_;
  std::uint32_t rebound_lanes_ = 0;

  std::vector<Segment> segments_;
  /// Slab boundaries (global op indices) of the parallel segments.
  std::vector<std::uint32_t> cuts_;
  std::uint64_t parallel_levels_ = 0;
  std::uint64_t serial_levels_ = 0;
  std::uint64_t cuts_adjusted_ = 0;

  /// Sense-reversing barrier state, reused across segments: arrivals of
  /// the current generation, and the generation counter participants wait
  /// on.  Cache-line sized via AlignedVec would be overkill for two words.
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};

  sim::Cycle now_ = 0;
  bool replayed_ = false;
  /// Whole-tape totals, precomputed at construction (per single lane).
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_mac_ = 0;
  std::uint64_t total_fold_ = 0;
  std::uint64_t total_relax_ = 0;
  std::uint64_t nonempty_levels_ = 0;
};

}  // namespace sysdp::compile
