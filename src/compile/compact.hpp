// Live-range slot compaction for compiled tapes.
//
// The recorder emits SSA: every op writes a fresh slot, so the slot file
// scales with the op count (one 96-wide family lowers to ~150k slots ≈
// 1.2 MB).  A single-lane replay tolerates that — the file stays resident
// across replays — but the batched executor multiplies it by B lanes
// (compile/batch_engine.hpp), and ~10 MB of lane-major slot traffic per
// replay turns a compute problem into a DRAM-bandwidth problem.
//
// compact_slots() renames slots by linear-scan reuse: a slot whose last
// touch (read or write) is in dependency level t is dead from level t+1
// on, and its physical index can be handed to a later op's destination.
// The live set of the paper designs is bounded by the array's registers,
// not the run length, so the slot file shrinks by orders of magnitude and
// every engine's working set — scalar or batched — becomes cache-sized.
//
// Reuse is level-granular on purpose: a freed index is reallocated only in
// a strictly later level than its last touch, so any in-level reordering
// that preserves same-level RAW chains (the batch executor's kind-major
// partition) stays sound — no write in level t can clobber a value still
// read in level t.
//
// kRelax ops address slot pairs (dst/dst+1, a/a+1), so paired slots move
// as one contiguous group.  Output slots are pinned — they must survive to
// verify_outputs() — and `expected` stays valid untouched because it is
// indexed by op, not by slot.
//
// Semantic change worth knowing: after compaction, value(slot) of a
// logically dead slot may show a later value that recycled its index.
// Live reads — every op operand and every declared output — are unchanged.
#pragma once

#include <cstdint>

#include "compile/program.hpp"

namespace sysdp::compile {

struct CompactStats {
  std::uint32_t slots_before = 0;
  std::uint32_t slots_after = 0;
};

/// Rename `net`'s slots in place so indices are reused across dependency
/// levels; shrinks num_slots to the peak live count.  Idempotent.  Throws
/// std::logic_error if the tape reads a slot that is never written — a
/// lowering bug this pass would otherwise silently bury.
CompactStats compact_slots(CompiledNetlist& net);

}  // namespace sysdp::compile
