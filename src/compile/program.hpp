// The compiled flat-netlist program format.
//
// A CompiledNetlist is what trace-based lowering (compile/lower.hpp) emits
// from one oracle run of a modular design: the whole machine reduced to
//
//   * one flat slot file — a struct-of-arrays register image where every
//     value the run ever produces has a fixed 32-bit index (sim::SlotId),
//     constants deduplicated, copies eliminated entirely;
//   * one packed op tape — 32-byte descriptors in a contiguous array, the
//     packed-clause idiom: everything an op touches is named by index, so
//     the executor is a branch-light loop over flat memory with no virtual
//     dispatch, no pointer chasing and no per-module state;
//   * a cycle index — CSR offsets grouping the tape into dependency
//     levels.  Ops inside one level depend only on earlier levels (or on
//     the op immediately before them, for in-place fold chains recorded in
//     oracle order), because that is literally how the two-phase clocked
//     oracle executed them.  Replaying level by level is therefore
//     cycle-exact by construction.
//
// The tape carries its own differential expectations: every op and every
// declared output remembers the value the oracle produced, so "compiled
// matches interpreted" is a property the executor can check about itself
// (CompiledEngine::verify_*) instead of a separate harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compile/aligned.hpp"
#include "semiring/cost.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"

namespace sysdp::compile {

/// Which closed semiring the tape's kernels fold over.  The five paper
/// designs all lower to (MIN,+); (MAX,+) shares every kernel shape with
/// the comparison direction flipped (longest path / critical path DP).
enum class TapeSemiring : std::uint8_t { kMinPlus, kMaxPlus };

/// Op kinds — one per scalar kernel in semiring/kernels.hpp.
enum class OpKind : std::uint8_t {
  /// slot[dst] = slot[a] (+) (w (x) slot[b])          — kern::mac
  kMac,
  /// cand = slot[b] (x) slot[c] (x) w;
  /// slot[dst] = slot[a] (+) cand                     — interval fold
  kFold,
  /// cand = slot[b] (x) w; improved = cand better than slot[a];
  /// slot[dst]   = improved ? cand : slot[a];
  /// slot[dst+1] = improved ? c    : slot[a+1]        — pair relaxation
  kRelax,
};

/// One tape op: 32 bytes, all operands by slot index.  Field meaning
/// depends on kind (see OpKind); `w` is the immediate weight (matrix
/// entry, local candidate weight, edge cost) baked in at lowering time —
/// weights are instance constants, only the DP values flow through slots.
///
/// `param` is the op's index in the tape's *parameter plane* (see
/// CompiledNetlist::params): on a parameterised tape an executor with a
/// bound weight table reads `table[param]` instead of the baked `w`, which
/// is how one lowering of a family shape serves any weight assignment.
/// The recorder currently emits one parameter per op (param == op index);
/// executors must go through `param`, not assume the identity map.
struct Op {
  sim::SlotId dst = 0;
  sim::SlotId a = 0;
  sim::SlotId b = 0;
  sim::SlotId c = 0;
  Cost w = 0;
  OpKind kind = OpKind::kMac;
  std::uint32_t param = 0;
};

// The parameter-plane field must not push the op descriptor past two ops
// per cache line: the hot loops are sized around 32-byte descriptors.
static_assert(sizeof(Op) <= 32, "two ops per cache line");

/// Initial value of one slot (constants and captured reset state).  Slots
/// not listed are op destinations, written before any read by SSA
/// construction.
struct SlotInit {
  sim::SlotId slot = 0;
  Cost value = 0;
};

/// One declared result: the design's `tag[index]` lives in `slot`, and the
/// oracle observed `expected` there.
struct Output {
  std::string tag;
  std::uint64_t index = 0;
  sim::SlotId slot = 0;
  Cost expected = 0;
};

/// Lowering statistics — what the flattening bought.
struct TapeStats {
  std::uint64_t copies_elided = 0;   ///< register writes with no tape op
  std::uint64_t consts_interned = 0; ///< dedup hits on constant()
  std::uint64_t lanes_bound = 0;     ///< distinct storage keys narrated
  std::uint64_t named_lanes = 0;     ///< lanes matched to captured storages
  std::uint64_t oracle_active_evals = 0;
  std::uint64_t oracle_dense_evals = 0;
  std::uint64_t oracle_busy_steps = 0;  ///< must equal ops.size()
  /// True once compact_slots() has renamed the slot file.  Explicit —
  /// `slots_uncompacted == 0` used to double as "never compacted", which
  /// conflated an empty compacted tape with an untouched SSA one and made
  /// the single-assignment property undecidable from the stats alone.
  bool compacted = false;
  /// SSA slot count before live-range compaction (compile/compact.hpp);
  /// meaningful only when `compacted`.  num_slots after compaction is the
  /// peak live count — the executor's true working set.
  std::uint64_t slots_uncompacted = 0;
};

struct CompiledNetlist {
  TapeSemiring semiring = TapeSemiring::kMinPlus;
  std::uint32_t num_slots = 0;
  std::vector<SlotInit> init;
  /// Cycle-major, oracle program order inside a cycle.  Cache-line aligned:
  /// the batch executor streams the tape with wide loads.
  AlignedVec<Op> ops;
  /// CSR dependency levels: cycle t executes ops [cycle_off[t],
  /// cycle_off[t+1]).  Size = cycles + 1; most levels are empty in gated
  /// phases and the executor skips them at one comparison each.
  std::vector<std::uint32_t> cycle_off;
  /// Per-op oracle value (parallel to `ops`): the value the modular engine
  /// computed for this op's destination.  Kept for checked replay; the
  /// bench path never touches it.
  std::vector<Cost> expected;
  std::vector<Output> outputs;
  /// Parameter plane (LowerOptions::parameterise).  When `parameterised`,
  /// `params[p]` holds the weight the oracle ran with for parameter `p`
  /// (the *oracle binding*); executors may install any other same-length
  /// weight table via their bind() APIs and replay the identical schedule
  /// — the tape's control never depends on the values, so one lowering of
  /// a family shape (same sizes and topology) serves every weight
  /// assignment.  `expected` and `Output::expected` are statements about
  /// the oracle binding only.
  bool parameterised = false;
  std::vector<Cost> params;
  TapeStats stats;

  [[nodiscard]] sim::Cycle cycles() const noexcept {
    return cycle_off.empty() ? 0 : cycle_off.size() - 1;
  }
  [[nodiscard]] std::uint64_t num_ops() const noexcept { return ops.size(); }
  [[nodiscard]] std::uint64_t num_params() const noexcept {
    return params.size();
  }
  /// True once live-range compaction has renamed the slot file — the tape
  /// is no longer SSA and slot indices are reused across levels.
  [[nodiscard]] bool compacted() const noexcept { return stats.compacted; }
  /// Dependency level (oracle cycle) op `i` executes in, by binary search
  /// of the CSR cycle index.  Precondition: i < num_ops() and the CSR
  /// index is well-formed (static analyses over untrusted tapes validate
  /// that first).
  [[nodiscard]] sim::Cycle level_of_op(std::uint64_t i) const noexcept {
    // First level whose end offset is past op i.
    std::size_t lo = 0;
    std::size_t hi = cycle_off.empty() ? 0 : cycle_off.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cycle_off[mid + 1] > i) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

}  // namespace sysdp::compile
