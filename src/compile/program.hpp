// The compiled flat-netlist program format.
//
// A CompiledNetlist is what trace-based lowering (compile/lower.hpp) emits
// from one oracle run of a modular design: the whole machine reduced to
//
//   * one flat slot file — a struct-of-arrays register image where every
//     value the run ever produces has a fixed 32-bit index (sim::SlotId),
//     constants deduplicated, copies eliminated entirely;
//   * one packed op tape — 32-byte descriptors in a contiguous array, the
//     packed-clause idiom: everything an op touches is named by index, so
//     the executor is a branch-light loop over flat memory with no virtual
//     dispatch, no pointer chasing and no per-module state;
//   * a cycle index — CSR offsets grouping the tape into dependency
//     levels.  Ops inside one level depend only on earlier levels (or on
//     the op immediately before them, for in-place fold chains recorded in
//     oracle order), because that is literally how the two-phase clocked
//     oracle executed them.  Replaying level by level is therefore
//     cycle-exact by construction.
//
// The tape carries its own differential expectations: every op and every
// declared output remembers the value the oracle produced, so "compiled
// matches interpreted" is a property the executor can check about itself
// (CompiledEngine::verify_*) instead of a separate harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compile/aligned.hpp"
#include "semiring/cost.hpp"
#include "sim/module.hpp"
#include "sim/record.hpp"

namespace sysdp::compile {

/// Which closed semiring the tape's kernels fold over.  The five paper
/// designs all lower to (MIN,+); (MAX,+) shares every kernel shape with
/// the comparison direction flipped (longest path / critical path DP).
enum class TapeSemiring : std::uint8_t { kMinPlus, kMaxPlus };

/// Op kinds — one per scalar kernel in semiring/kernels.hpp.
enum class OpKind : std::uint8_t {
  /// slot[dst] = slot[a] (+) (w (x) slot[b])          — kern::mac
  kMac,
  /// cand = slot[b] (x) slot[c] (x) w;
  /// slot[dst] = slot[a] (+) cand                     — interval fold
  kFold,
  /// cand = slot[b] (x) w; improved = cand better than slot[a];
  /// slot[dst]   = improved ? cand : slot[a];
  /// slot[dst+1] = improved ? c    : slot[a+1]        — pair relaxation
  kRelax,
};

/// One tape op: 32 bytes, all operands by slot index.  Field meaning
/// depends on kind (see OpKind); `w` is the immediate weight (matrix
/// entry, local candidate weight, edge cost) baked in at lowering time —
/// weights are instance constants, only the DP values flow through slots.
///
/// `param` is the op's index in the tape's *parameter plane* (see
/// CompiledNetlist::params): on a parameterised tape an executor with a
/// bound weight table reads `table[param]` instead of the baked `w`, which
/// is how one lowering of a family shape serves any weight assignment.
/// The recorder currently emits one parameter per op (param == op index);
/// executors must go through `param`, not assume the identity map.
struct Op {
  sim::SlotId dst = 0;
  sim::SlotId a = 0;
  sim::SlotId b = 0;
  sim::SlotId c = 0;
  Cost w = 0;
  OpKind kind = OpKind::kMac;
  std::uint32_t param = 0;
};

// The parameter-plane field must not push the op descriptor past two ops
// per cache line: the hot loops are sized around 32-byte descriptors.
static_assert(sizeof(Op) <= 32, "two ops per cache line");

/// Initial value of one slot (constants and captured reset state).  Slots
/// not listed are op destinations, written before any read by SSA
/// construction.
struct SlotInit {
  sim::SlotId slot = 0;
  Cost value = 0;
};

/// One declared result: the design's `tag[index]` lives in `slot`, and the
/// oracle observed `expected` there.
struct Output {
  std::string tag;
  std::uint64_t index = 0;
  sim::SlotId slot = 0;
  Cost expected = 0;
};

/// One provenance lane: a design storage key the oracle run narrated,
/// resolved to its writer module and declared port label when lowering
/// captured the analysis netlist (LowerOptions::capture_netlist).  Lanes
/// whose key matched no declared storage keep a synthetic "lane<N>" label
/// and stay unnamed — the waveform layer skips them so every emitted
/// signal name also exists in the interpreted run's VCD.
struct ProvenanceLane {
  std::string module;  ///< writer module name; empty when unresolved
  std::string label;   ///< declared port label; "lane<N>" when unresolved
  /// Index into Provenance::modules, or Provenance::kNone when unresolved.
  std::uint32_t module_id = 0xffffffffu;
  bool named = false;  ///< resolved against the captured netlist
};

/// One binding event: at VCD time `stamp`, the design register behind
/// `lane` started holding the value in tape slot `slot`.  Stamp 0 is the
/// pre-cycle-0 reset state (obs::VcdSink's `#0` initial dump); stamp t+1
/// is a binding committed at the end of cycle t, matching the interpreted
/// VCD's change stamps exactly.  Sampling `slot` at the end of level
/// stamp-1 (or the initial image, for stamp 0) therefore reproduces the
/// register's waveform — live-range compaction extends slot lifetimes so
/// the sample is always taken before the slot index is recycled.
struct ProvenanceBind {
  std::uint32_t stamp = 0;
  std::uint32_t lane = 0;
  sim::SlotId slot = 0;
};

/// The slot→port provenance table: which design module and described port
/// each tape slot and op originated from.  Emitted by the recorder during
/// lowering, name-resolved against the captured analysis netlist, and
/// carried through compaction via the live-range remap — the compiled
/// backend's link from flat slot indices back to the signal names the
/// interpreted observers (obs::VcdSink, obs::TimelineSink) report.
struct Provenance {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Distinct writer-module names, in first-seen lane order.  The
  /// compiled timeline treats each module as one PE row.
  std::vector<std::string> modules;
  std::vector<ProvenanceLane> lanes;
  /// Sorted by stamp (stable: narration order within one stamp).
  std::vector<ProvenanceBind> binds;
  /// Per-op provenance lane (parallel to CompiledNetlist::ops): the lane
  /// the op's destination slot was first bound to, or kNone for
  /// intermediates no register ever held (e.g. partial fold results).
  std::vector<std::uint32_t> op_lane;

  [[nodiscard]] bool empty() const noexcept { return lanes.empty(); }
  /// Module id op `i` is attributed to, via its destination lane.
  [[nodiscard]] std::uint32_t module_of_op(std::uint64_t i) const noexcept {
    if (i >= op_lane.size() || op_lane[i] == kNone) return kNone;
    return lanes[op_lane[i]].module_id;
  }
};

/// Lowering statistics — what the flattening bought.
struct TapeStats {
  std::uint64_t copies_elided = 0;   ///< register writes with no tape op
  std::uint64_t consts_interned = 0; ///< dedup hits on constant()
  std::uint64_t lanes_bound = 0;     ///< distinct storage keys narrated
  std::uint64_t named_lanes = 0;     ///< lanes matched to captured storages
  std::uint64_t oracle_active_evals = 0;
  std::uint64_t oracle_dense_evals = 0;
  std::uint64_t oracle_busy_steps = 0;  ///< must equal ops.size()
  /// True once compact_slots() has renamed the slot file.  Explicit —
  /// `slots_uncompacted == 0` used to double as "never compacted", which
  /// conflated an empty compacted tape with an untouched SSA one and made
  /// the single-assignment property undecidable from the stats alone.
  bool compacted = false;
  /// SSA slot count before live-range compaction (compile/compact.hpp);
  /// meaningful only when `compacted`.  num_slots after compaction is the
  /// peak live count — the executor's true working set.
  std::uint64_t slots_uncompacted = 0;
  /// Optimizer pipeline record (compile/optimize.hpp): the level the tape
  /// was run through (0 = untouched) and what the passes removed.  After
  /// optimization `oracle_busy_steps == ops.size()` no longer holds — the
  /// pruned-op count closes the books.
  std::uint8_t opt_level = 0;
  std::uint64_t ops_pruned = 0;   ///< dead-op elimination removals
  std::uint64_t levels_fused = 0; ///< dependency levels merged away
};

struct CompiledNetlist {
  TapeSemiring semiring = TapeSemiring::kMinPlus;
  std::uint32_t num_slots = 0;
  std::vector<SlotInit> init;
  /// Cycle-major, oracle program order inside a cycle.  Cache-line aligned:
  /// the batch executor streams the tape with wide loads.
  AlignedVec<Op> ops;
  /// CSR dependency levels: cycle t executes ops [cycle_off[t],
  /// cycle_off[t+1]).  Size = cycles + 1; most levels are empty in gated
  /// phases and the executor skips them at one comparison each.
  std::vector<std::uint32_t> cycle_off;
  /// Per-op oracle value (parallel to `ops`): the value the modular engine
  /// computed for this op's destination.  Kept for checked replay; the
  /// bench path never touches it.
  std::vector<Cost> expected;
  std::vector<Output> outputs;
  /// Parameter plane (LowerOptions::parameterise).  When `parameterised`,
  /// `params[p]` holds the weight the oracle ran with for parameter `p`
  /// (the *oracle binding*); executors may install any other same-length
  /// weight table via their bind() APIs and replay the identical schedule
  /// — the tape's control never depends on the values, so one lowering of
  /// a family shape (same sizes and topology) serves every weight
  /// assignment.  `expected` and `Output::expected` are statements about
  /// the oracle binding only.
  bool parameterised = false;
  std::vector<Cost> params;
  /// Slot→port provenance table (empty when lowering recorded none, e.g.
  /// hand-built or fuzzed tapes — every consumer treats empty as "no
  /// provenance", never as an error).
  Provenance provenance;
  TapeStats stats;

  [[nodiscard]] sim::Cycle cycles() const noexcept {
    return cycle_off.empty() ? 0 : cycle_off.size() - 1;
  }
  [[nodiscard]] std::uint64_t num_ops() const noexcept { return ops.size(); }
  [[nodiscard]] std::uint64_t num_params() const noexcept {
    return params.size();
  }
  /// True once live-range compaction has renamed the slot file — the tape
  /// is no longer SSA and slot indices are reused across levels.
  [[nodiscard]] bool compacted() const noexcept { return stats.compacted; }
  /// Dependency level (oracle cycle) op `i` executes in, by binary search
  /// of the CSR cycle index.  Precondition: i < num_ops() and the CSR
  /// index is well-formed (static analyses over untrusted tapes validate
  /// that first).
  [[nodiscard]] sim::Cycle level_of_op(std::uint64_t i) const noexcept {
    // First level whose end offset is past op i.
    std::size_t lo = 0;
    std::size_t hi = cycle_off.empty() ? 0 : cycle_off.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cycle_off[mid + 1] > i) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

}  // namespace sysdp::compile
