#include "compile/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "semiring/closed_semiring.hpp"
#include "semiring/kernels.hpp"

namespace sysdp::compile {

CompiledEngine::CompiledEngine(const CompiledNetlist& net) : net_(&net) {
  slots_.resize(net.num_slots, 0);
  // Skip-list of non-empty levels: gated tapes spend most of their cycles
  // in empty levels (fill/drain, quiesced phases); run()/run_all() jump
  // straight between the levels that carry ops.
  for (std::uint32_t t = 0; t + 1 < net.cycle_off.size(); ++t) {
    if (net.cycle_off[t + 1] > net.cycle_off[t]) live_levels_.push_back(t);
  }
  level_kinds_.assign(net.cycles(), {0, 0, 0});
  for (std::uint32_t t = 0; t + 1 < net.cycle_off.size(); ++t) {
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      ++level_kinds_[t][static_cast<std::size_t>(net.ops[i].kind)];
    }
  }
  reset();
}

void CompiledEngine::account_level(sim::Cycle t) {
  ++levels_executed_;
  const std::array<std::uint32_t, 3>& k = level_kinds_[t];
  mac_ops_ += k[0];
  fold_ops_ += k[1];
  relax_ops_ += k[2];
}

void CompiledEngine::add_observer(ReplayObserver* obs) {
  if (obs == nullptr) {
    throw std::invalid_argument("CompiledEngine::add_observer: null observer");
  }
  if (now_ != 0) {
    throw std::logic_error(
        "CompiledEngine::add_observer: observers attach at cycle 0 only — "
        "reset() first");
  }
  observers_.push_back(obs);
  obs->on_replay_begin(*net_, slots_.data(), 1);
}

void CompiledEngine::notify_level(sim::Cycle t, std::uint32_t lo,
                                  std::uint32_t hi) {
  for (ReplayObserver* obs : observers_) {
    obs->on_level(*net_, t, lo, hi, slots_.data(), 1);
  }
}

void CompiledEngine::notify_end() {
  if (observers_.empty() || now_ < cycles()) return;
  for (ReplayObserver* obs : observers_) obs->on_replay_end(*net_);
}

void CompiledEngine::reset() {
  for (const SlotInit& in : net_->init) slots_[in.slot] = in.value;
  now_ = 0;
  ops_executed_ = 0;
  levels_executed_ = 0;
  levels_skipped_ = 0;
  mac_ops_ = 0;
  fold_ops_ = 0;
  relax_ops_ = 0;
  // The weight binding survives reset: a rebound engine replays its
  // instance again, exactly like an oracle-bound one replays the oracle's.
  for (ReplayObserver* obs : observers_) {
    obs->on_replay_begin(*net_, slots_.data(), 1);
  }
}

void CompiledEngine::bind(std::vector<Cost> weights) {
  if (!net_->parameterised) {
    throw std::invalid_argument(
        "CompiledEngine::bind: tape was lowered without a parameter plane "
        "(LowerOptions::parameterise)");
  }
  if (weights.size() != net_->params.size()) {
    throw std::invalid_argument(
        "CompiledEngine::bind: weight table has " +
        std::to_string(weights.size()) + " entries, tape has " +
        std::to_string(net_->params.size()) + " parameters");
  }
  oracle_bound_ = weights == net_->params;
  weights_ = std::move(weights);
}

void CompiledEngine::bind_oracle() {
  weights_.clear();
  oracle_bound_ = true;
}

void CompiledEngine::require_oracle_binding(const char* site) const {
  if (!oracle_bound_) {
    throw std::logic_error(std::string("CompiledEngine::") + site +
                           ": recorded expectations describe the oracle's "
                           "weight binding, but another table is bound");
  }
}

// The hot loop.  One pass over a contiguous span of 32-byte ops; all
// operands are direct indices into one flat array.  When the level is
// homogeneous — which construction records per level, and the optimizer's
// kind-major reordering makes the common case — kKind lifts the op kind
// to a compile-time constant and the switch folds away entirely; the
// mixed fallback (kKind == -1) keeps the three-way branch, perfectly
// predicted inside homogeneous spans anyway.  Each arm is the same
// branch-free scalar kernel the interpreter uses — so results are
// bit-identical while the per-op overhead drops from a virtual eval/commit
// round trip to a handful of instructions.  With kParam the weight comes
// from the bound per-instance table via the op's parameter index instead
// of the baked immediate; everything else is identical.
template <typename S, bool kChecked, bool kParam, int kKind>
Divergence CompiledEngine::exec_level(std::uint32_t lo, std::uint32_t hi) {
  Cost* const s = slots_.data();
  const Op* const ops = net_->ops.data();
  const Cost* const wt = kParam ? weights_.data() : nullptr;
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Op& op = ops[i];
    const Cost w = kParam ? wt[op.param] : op.w;
    constexpr int kFixed = kKind >= 0 ? kKind : 0;  // never cast -1
    const OpKind kind = kKind >= 0 ? static_cast<OpKind>(kFixed) : op.kind;
    switch (kind) {
      case OpKind::kMac:
        s[op.dst] = kern::mac<S>(s[op.a], w, s[op.b]);
        break;
      case OpKind::kFold: {
        const Cost cand = S::times(S::times(s[op.b], s[op.c]), w);
        const Cost prev = s[op.a];
        s[op.dst] = S::improves(cand, prev) ? cand : prev;
        break;
      }
      case OpKind::kRelax: {
        const Cost cand = S::times(s[op.b], w);
        const Cost prev = s[op.a];
        const bool better = S::improves(cand, prev);
        s[op.dst] = better ? cand : prev;
        s[op.dst + 1] = better ? static_cast<Cost>(op.c) : s[op.a + 1];
        break;
      }
    }
    if constexpr (kChecked) {
      if (s[op.dst] != net_->expected[i]) {
        Divergence d;
        d.found = true;
        d.index = i;
        d.got = s[op.dst];
        d.expected = net_->expected[i];
        return d;
      }
    }
  }
  ops_executed_ += hi - lo;
  return {};
}

template <typename S, bool kParam>
void CompiledEngine::exec_level_kind(int kind, std::uint32_t lo,
                                     std::uint32_t hi) {
  switch (kind) {
    case 0:
      exec_level<S, false, kParam, 0>(lo, hi);
      break;
    case 1:
      exec_level<S, false, kParam, 1>(lo, hi);
      break;
    case 2:
      exec_level<S, false, kParam, 2>(lo, hi);
      break;
    default:
      exec_level<S, false, kParam, -1>(lo, hi);
      break;
  }
}

void CompiledEngine::exec_level_dispatch(sim::Cycle t, std::uint32_t lo,
                                         std::uint32_t hi) {
  const bool param = !weights_.empty();
  // Homogeneous-level detection is three compares against the counts
  // construction already took; the checked path stays on the mixed
  // instantiation — it is not a throughput path.
  const std::array<std::uint32_t, 3>& k = level_kinds_[t];
  const std::uint32_t width = hi - lo;
  int kind = -1;
  if (k[0] == width) {
    kind = 0;
  } else if (k[1] == width) {
    kind = 1;
  } else if (k[2] == width) {
    kind = 2;
  }
  if (net_->semiring == TapeSemiring::kMinPlus) {
    param ? exec_level_kind<MinPlus, true>(kind, lo, hi)
          : exec_level_kind<MinPlus, false>(kind, lo, hi);
  } else {
    param ? exec_level_kind<MaxPlus, true>(kind, lo, hi)
          : exec_level_kind<MaxPlus, false>(kind, lo, hi);
  }
}

void CompiledEngine::annotate_divergence(Divergence& d) const {
  if (!d.found) return;
  const Provenance& prov = net_->provenance;
  if (prov.op_lane.size() != net_->ops.size()) return;
  const std::uint32_t lane = prov.op_lane[d.index];
  if (lane == Provenance::kNone || lane >= prov.lanes.size()) return;
  d.module = prov.lanes[lane].module;
  d.label = prov.lanes[lane].label;
}

void CompiledEngine::step() {
  if (now_ + 1 < net_->cycle_off.size()) {
    const std::uint32_t lo = net_->cycle_off[now_];
    const std::uint32_t hi = net_->cycle_off[now_ + 1];
    if (hi > lo) {
      exec_level_dispatch(now_, lo, hi);
      account_level(now_);
    }
    if (!observers_.empty()) notify_level(now_, lo, hi);
  }
  ++now_;
}

Divergence CompiledEngine::step_checked() {
  require_oracle_binding("step_checked");
  Divergence d;
  if (now_ + 1 < net_->cycle_off.size()) {
    const std::uint32_t lo = net_->cycle_off[now_];
    const std::uint32_t hi = net_->cycle_off[now_ + 1];
    if (hi > lo) {
      d = net_->semiring == TapeSemiring::kMinPlus
              ? (weights_.empty() ? exec_level<MinPlus, true, false>(lo, hi)
                                  : exec_level<MinPlus, true, true>(lo, hi))
              : (weights_.empty() ? exec_level<MaxPlus, true, false>(lo, hi)
                                  : exec_level<MaxPlus, true, true>(lo, hi));
      annotate_divergence(d);
      account_level(now_);
    }
    if (!observers_.empty() && !d.found) notify_level(now_, lo, hi);
  }
  ++now_;
  return d;
}

void CompiledEngine::run(sim::Cycle n) {
  // Observed replays visit every level: provenance bind events (elided
  // register copies) land on levels with no ops, and the waveform sinks
  // must hear them in order.  The detached path below is untouched.
  if (!observers_.empty()) {
    const sim::Cycle target = now_ + n;
    while (now_ < target) step();
    return;
  }
  // Walk the skip-list from the current position: only the levels that
  // carry ops are visited, the empty stretches between them are accounted
  // once per run instead of one comparison per level.
  const sim::Cycle target = now_ + n;
  const sim::Cycle end = std::min<sim::Cycle>(target, cycles());
  auto it = std::lower_bound(live_levels_.begin(), live_levels_.end(), now_);
  sim::Cycle from = now_;
  for (; it != live_levels_.end() && *it < end; ++it) {
    exec_level_dispatch(*it, net_->cycle_off[*it], net_->cycle_off[*it + 1]);
    account_level(*it);
    levels_skipped_ += *it - from;
    from = *it + 1;
  }
  if (end > from) levels_skipped_ += end - from;
  now_ = target;
}

void CompiledEngine::run_all() {
  run(cycles() > now_ ? cycles() - now_ : 0);
  notify_end();
}

sim::RunUntilResult CompiledEngine::run_until(
    const std::function<bool(const CompiledEngine&)>& done,
    sim::Cycle max_cycles) {
  if (done(*this)) return {true, 0};
  for (sim::Cycle i = 1; i <= max_cycles; ++i) {
    step();
    if (done(*this)) return {true, i};
  }
  return {false, max_cycles};
}

Divergence CompiledEngine::run_all_checked() {
  while (now_ < cycles()) {
    const Divergence d = step_checked();
    if (d.found) return d;
  }
  notify_end();
  return {};
}

Divergence CompiledEngine::verify_outputs() const {
  require_oracle_binding("verify_outputs");
  for (std::uint64_t i = 0; i < net_->outputs.size(); ++i) {
    const Output& out = net_->outputs[i];
    if (slots_[out.slot] != out.expected) {
      Divergence d;
      d.found = true;
      d.index = i;
      d.got = slots_[out.slot];
      d.expected = out.expected;
      return d;
    }
  }
  return {};
}

Cost CompiledEngine::output(std::string_view tag, std::uint64_t index) const {
  for (const Output& out : net_->outputs) {
    if (out.index == index && out.tag == tag) return slots_[out.slot];
  }
  throw std::out_of_range("CompiledEngine::output: no output " +
                          std::string(tag) + "[" + std::to_string(index) +
                          "]");
}

}  // namespace sysdp::compile
