#include "compile/engine.hpp"

#include <stdexcept>
#include <string>

#include "semiring/closed_semiring.hpp"
#include "semiring/kernels.hpp"

namespace sysdp::compile {

CompiledEngine::CompiledEngine(const CompiledNetlist& net) : net_(&net) {
  slots_.resize(net.num_slots, 0);
  reset();
}

void CompiledEngine::reset() {
  for (const SlotInit& in : net_->init) slots_[in.slot] = in.value;
  now_ = 0;
  ops_executed_ = 0;
}

// The hot loop.  One pass over a contiguous span of 32-byte ops; all
// operands are direct indices into one flat array.  The switch compiles to
// a three-way branch that is perfectly predicted inside homogeneous spans
// (a cycle's ops are overwhelmingly one kind), and each arm is the same
// branch-free scalar kernel the interpreter uses — so results are
// bit-identical while the per-op overhead drops from a virtual eval/commit
// round trip to a handful of instructions.
template <typename S, bool kChecked>
Divergence CompiledEngine::exec_level(std::uint32_t lo, std::uint32_t hi) {
  Cost* const s = slots_.data();
  const Op* const ops = net_->ops.data();
  for (std::uint32_t i = lo; i < hi; ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case OpKind::kMac:
        s[op.dst] = kern::mac<S>(s[op.a], op.w, s[op.b]);
        break;
      case OpKind::kFold: {
        const Cost cand = S::times(S::times(s[op.b], s[op.c]), op.w);
        const Cost prev = s[op.a];
        s[op.dst] = S::improves(cand, prev) ? cand : prev;
        break;
      }
      case OpKind::kRelax: {
        const Cost cand = S::times(s[op.b], op.w);
        const Cost prev = s[op.a];
        const bool better = S::improves(cand, prev);
        s[op.dst] = better ? cand : prev;
        s[op.dst + 1] = better ? static_cast<Cost>(op.c) : s[op.a + 1];
        break;
      }
    }
    if constexpr (kChecked) {
      if (s[op.dst] != net_->expected[i]) {
        return {true, i, s[op.dst], net_->expected[i]};
      }
    }
  }
  ops_executed_ += hi - lo;
  return {};
}

void CompiledEngine::step() {
  if (now_ + 1 < net_->cycle_off.size()) {
    const std::uint32_t lo = net_->cycle_off[now_];
    const std::uint32_t hi = net_->cycle_off[now_ + 1];
    if (hi > lo) {
      if (net_->semiring == TapeSemiring::kMinPlus) {
        exec_level<MinPlus, false>(lo, hi);
      } else {
        exec_level<MaxPlus, false>(lo, hi);
      }
    }
  }
  ++now_;
}

Divergence CompiledEngine::step_checked() {
  Divergence d;
  if (now_ + 1 < net_->cycle_off.size()) {
    const std::uint32_t lo = net_->cycle_off[now_];
    const std::uint32_t hi = net_->cycle_off[now_ + 1];
    if (hi > lo) {
      d = net_->semiring == TapeSemiring::kMinPlus
              ? exec_level<MinPlus, true>(lo, hi)
              : exec_level<MaxPlus, true>(lo, hi);
    }
  }
  ++now_;
  return d;
}

void CompiledEngine::run(sim::Cycle n) {
  for (sim::Cycle i = 0; i < n; ++i) step();
}

void CompiledEngine::run_all() { run(cycles() > now_ ? cycles() - now_ : 0); }

sim::RunUntilResult CompiledEngine::run_until(
    const std::function<bool(const CompiledEngine&)>& done,
    sim::Cycle max_cycles) {
  if (done(*this)) return {true, 0};
  for (sim::Cycle i = 1; i <= max_cycles; ++i) {
    step();
    if (done(*this)) return {true, i};
  }
  return {false, max_cycles};
}

Divergence CompiledEngine::run_all_checked() {
  while (now_ < cycles()) {
    const Divergence d = step_checked();
    if (d.found) return d;
  }
  return {};
}

Divergence CompiledEngine::verify_outputs() const {
  for (std::uint64_t i = 0; i < net_->outputs.size(); ++i) {
    const Output& out = net_->outputs[i];
    if (slots_[out.slot] != out.expected) {
      return {true, i, slots_[out.slot], out.expected};
    }
  }
  return {};
}

Cost CompiledEngine::output(std::string_view tag, std::uint64_t index) const {
  for (const Output& out : net_->outputs) {
    if (out.index == index && out.tag == tag) return slots_[out.slot];
  }
  throw std::out_of_range("CompiledEngine::output: no output " +
                          std::string(tag) + "[" + std::to_string(index) +
                          "]");
}

}  // namespace sysdp::compile
