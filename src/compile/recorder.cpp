#include "compile/recorder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "semiring/closed_semiring.hpp"
#include "semiring/kernels.hpp"

namespace sysdp::compile {

namespace {

[[noreturn]] void bail(const char* site, const std::string& what) {
  throw std::logic_error(std::string("compile::Recorder::") + site + ": " +
                         what);
}

}  // namespace

sim::SlotId Recorder::alloc(Cost value) {
  if (concrete_.size() >= std::numeric_limits<sim::SlotId>::max() - 1) {
    bail("alloc", "slot file exceeds 32-bit index space");
  }
  concrete_.push_back(value);
  pair_head_.push_back(0);
  slot_op_.push_back(Provenance::kNone);
  return static_cast<sim::SlotId>(concrete_.size() - 1);
}

void Recorder::record_bind(const void* key, sim::SlotId slot,
                           std::uint32_t stamp) {
  auto [it, inserted] =
      lane_id_.emplace(key, static_cast<std::uint32_t>(lane_key_of_.size()));
  if (inserted) {
    lane_key_of_.push_back(key);
    lane_slot_.push_back(Provenance::kNone);
  }
  const std::uint32_t lane = it->second;
  // Rebinding a lane to the slot it already points at carries no waveform
  // information — skip the event, mirroring the copy-elision dedup.
  if (lane_slot_[lane] == slot) return;
  lane_slot_[lane] = slot;
  binds_.push_back({stamp, lane, slot});
  // First-bind-wins op attribution: the op that defined this slot belongs
  // to the module whose register first captures its result.
  const std::uint32_t def = slot_op_[slot];
  if (def != Provenance::kNone && op_lane_[def] == Provenance::kNone) {
    op_lane_[def] = lane;
  }
}

Cost Recorder::concrete(sim::SlotId slot, const char* site) const {
  if (slot >= concrete_.size()) bail(site, "slot id out of range");
  return concrete_[slot];
}

void Recorder::check_live(sim::SlotId slot, std::int64_t live,
                          const char* site) const {
  if (concrete(slot, site) != live) {
    bail(site,
         "narrated binding disagrees with the oracle's live value (slot "
         "holds " +
             std::to_string(concrete_[slot]) + ", oracle observed " +
             std::to_string(live) + ") — a model mis-narrated a write");
  }
}

sim::SlotId Recorder::constant(std::int64_t value) {
  const auto it = const_cache_.find(value);
  if (it != const_cache_.end()) {
    ++consts_interned_;
    return it->second;
  }
  const sim::SlotId s = alloc(value);
  init_.push_back({s, value});
  const_cache_.emplace(value, s);
  return s;
}

sim::SlotId Recorder::constant_pair(std::int64_t value, std::int64_t arg) {
  const auto key = std::make_pair(value, arg);
  const auto it = const_pair_cache_.find(key);
  if (it != const_pair_cache_.end()) {
    ++consts_interned_;
    return it->second;
  }
  const sim::SlotId s = alloc(value);  // arg must land at s + 1
  const sim::SlotId a = alloc(arg);
  pair_head_[s] = 1;
  init_.push_back({s, value});
  init_.push_back({a, arg});
  const_pair_cache_.emplace(key, s);
  return s;
}

sim::SlotId Recorder::lane(const void* key, std::int64_t live) {
  const auto it = bound_.find(key);
  if (it != bound_.end()) {
    check_live(it->second, live, "lane");
    return it->second;
  }
  // First touch: the oracle observed this lane's reset value — intern it,
  // so initial state is captured without any per-array bookkeeping.  The
  // bind carries stamp 0: the register has held this value since reset.
  const sim::SlotId s = constant(live);
  bound_.emplace(key, s);
  record_bind(key, s, 0);
  return s;
}

sim::SlotId Recorder::lane_pair(const void* key, std::int64_t live,
                                std::int64_t arg) {
  const auto it = bound_.find(key);
  if (it != bound_.end()) {
    const sim::SlotId s = it->second;
    if (pair_head_[s] == 0) {
      bail("lane_pair", "lane is bound to a scalar slot");
    }
    check_live(s, live, "lane_pair");
    check_live(s + 1, arg, "lane_pair(arg)");
    return s;
  }
  const sim::SlotId s = constant_pair(live, arg);
  bound_.emplace(key, s);
  record_bind(key, s, 0);
  return s;
}

sim::SlotId Recorder::pending(const void* key, std::int64_t live) {
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->first == key) {
      check_live(it->second, live, "pending");
      return it->second;
    }
  }
  return lane(key, live);
}

void Recorder::bind_now(const void* key, sim::SlotId slot) {
  (void)concrete(slot, "bind_now");
  const auto [it, inserted] = bound_.emplace(key, slot);
  if (!inserted) {
    if (it->second != slot) ++copies_elided_;
    it->second = slot;
  }
  // During cycle t the cycle index holds t+1 entries, so this stamp is
  // t+1 — the VCD time at which the interpreted run reports the change.
  record_bind(key, slot, static_cast<std::uint32_t>(cycle_off_.size()));
}

void Recorder::bind_staged(const void* key, sim::SlotId slot) {
  (void)concrete(slot, "bind_staged");
  staged_.emplace_back(key, slot);
}

sim::SlotId Recorder::mac(sim::SlotId base, std::int64_t w, sim::SlotId x) {
  const Cost result =
      kern::mac<MinPlus>(concrete(base, "mac"), w, concrete(x, "mac"));
  const sim::SlotId dst = alloc(result);
  ops_.push_back({dst, base, x, 0, w, OpKind::kMac,
                  static_cast<std::uint32_t>(ops_.size())});
  expected_.push_back(result);
  slot_op_[dst] = static_cast<std::uint32_t>(ops_.size() - 1);
  op_lane_.push_back(Provenance::kNone);
  return dst;
}

sim::SlotId Recorder::fold(sim::SlotId best, sim::SlotId left,
                           sim::SlotId right, std::int64_t local) {
  const Cost cand = kern::interval_candidate(
      concrete(left, "fold"), concrete(right, "fold"), local);
  const Cost prev = concrete(best, "fold");
  const Cost result = cand < prev ? cand : prev;
  const sim::SlotId dst = alloc(result);
  ops_.push_back({dst, best, left, right, local, OpKind::kFold,
                  static_cast<std::uint32_t>(ops_.size())});
  expected_.push_back(result);
  slot_op_[dst] = static_cast<std::uint32_t>(ops_.size() - 1);
  op_lane_.push_back(Provenance::kNone);
  return dst;
}

sim::SlotId Recorder::relax(sim::SlotId pair, sim::SlotId kh,
                            std::int64_t edge, std::int64_t station) {
  if (pair_head_[pair] == 0) bail("relax", "source is not a pair slot");
  const Cost cand = sat_add(concrete(kh, "relax"), edge);
  const Cost prev = concrete(pair, "relax");
  const bool better = cand < prev;
  const sim::SlotId dst = alloc(better ? cand : prev);
  const sim::SlotId darg =
      alloc(better ? station : concrete(pair + 1, "relax(arg)"));
  (void)darg;  // adjacency is guaranteed by consecutive alloc calls
  pair_head_[dst] = 1;
  ops_.push_back({dst, pair, kh, static_cast<sim::SlotId>(station), edge,
                  OpKind::kRelax, static_cast<std::uint32_t>(ops_.size())});
  expected_.push_back(concrete_[dst]);
  slot_op_[dst] = static_cast<std::uint32_t>(ops_.size() - 1);
  op_lane_.push_back(Provenance::kNone);
  return dst;
}

void Recorder::output(std::string_view tag, std::uint64_t index,
                      sim::SlotId slot, std::int64_t observed) {
  check_live(slot, observed, "output");
  const auto key = std::make_pair(std::string(tag), index);
  const auto it = output_index_.find(key);
  if (it != output_index_.end()) {
    outputs_[it->second].slot = slot;
    outputs_[it->second].expected = observed;
    return;
  }
  output_index_.emplace(key, outputs_.size());
  outputs_.push_back({key.first, index, slot, observed});
}

void Recorder::output_arg(std::string_view tag, std::uint64_t index,
                          sim::SlotId pair, std::int64_t observed) {
  if (pair_head_[pair] == 0) bail("output_arg", "slot is not a pair head");
  output(tag, index, pair + 1, observed);
}

void Recorder::on_cycle(const sim::Engine& engine, sim::Cycle t) {
  (void)engine;
  (void)t;
  // The commit edge: staged rebinds become visible, in narration order
  // (each lane is staged at most once per cycle by two-phase discipline).
  // Bind stamps are taken before the level closes, so a commit during
  // cycle t lands at stamp t+1 like the bind_now path.
  for (const auto& [key, slot] : staged_) {
    const auto [it, inserted] = bound_.emplace(key, slot);
    if (!inserted) {
      if (it->second != slot) ++copies_elided_;
      it->second = slot;
    }
    record_bind(key, slot, static_cast<std::uint32_t>(cycle_off_.size()));
  }
  staged_.clear();
  cycle_off_.push_back(static_cast<std::uint32_t>(ops_.size()));
}

std::vector<const void*> Recorder::lane_keys() const {
  std::vector<const void*> keys;
  keys.reserve(bound_.size());
  for (const auto& [key, slot] : bound_) keys.push_back(key);
  return keys;
}

CompiledNetlist Recorder::finish(bool parameterise) {
  if (finished_) bail("finish", "recorder already finished");
  finished_ = true;
  if (!staged_.empty()) {
    bail("finish", "staged binds left dangling — oracle stopped mid-cycle");
  }
  if (ops_.size() != expected_.size() ||
      cycle_off_.back() != ops_.size()) {
    bail("finish", "op tape and cycle index disagree");
  }
  CompiledNetlist net;
  net.semiring = TapeSemiring::kMinPlus;
  net.num_slots = static_cast<std::uint32_t>(concrete_.size());
  net.init = std::move(init_);
  net.ops = std::move(ops_);
  net.cycle_off = std::move(cycle_off_);
  net.expected = std::move(expected_);
  net.outputs = std::move(outputs_);
  if (parameterise) {
    // The oracle binding: one parameter per op, holding the weight the
    // oracle ran with.  op.param already names each op's parameter.
    net.parameterised = true;
    net.params.reserve(net.ops.size());
    for (const Op& op : net.ops) net.params.push_back(op.w);
  }
  // Provenance plane: unresolved lane records (lowering resolves names
  // against the captured netlist once the oracle run is sealed), bind
  // events sorted by stamp (stable, so narration order survives within
  // one stamp — first-touch stamp-0 events arrive out of order), and the
  // per-op lane attribution.
  net.provenance.lanes.resize(lane_key_of_.size());
  for (std::size_t i = 0; i < net.provenance.lanes.size(); ++i) {
    net.provenance.lanes[i].label = "lane" + std::to_string(i);
  }
  std::stable_sort(binds_.begin(), binds_.end(),
                   [](const ProvenanceBind& a, const ProvenanceBind& b) {
                     return a.stamp < b.stamp;
                   });
  net.provenance.binds = std::move(binds_);
  net.provenance.op_lane = std::move(op_lane_);
  net.stats.copies_elided = copies_elided_;
  net.stats.consts_interned = consts_interned_;
  net.stats.lanes_bound = bound_.size();
  return net;
}

}  // namespace sysdp::compile
