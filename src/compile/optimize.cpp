#include "compile/optimize.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <vector>

namespace sysdp::compile {

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

void require_uncompacted(const CompiledNetlist& net, const char* pass) {
  if (net.compacted()) {
    throw std::logic_error(std::string("compile::") + pass +
                           ": tape is compacted — slot reuse breaks the SSA "
                           "reasoning; optimize before compact_slots()");
  }
}

/// Visit every slot op `i` reads (mac: a,b; fold: a,b,c; relax: a,a+1,b).
template <typename Fn>
void for_each_read(const Op& op, Fn&& fn) {
  fn(op.a);
  if (op.kind == OpKind::kRelax) fn(op.a + 1);
  fn(op.b);
  if (op.kind == OpKind::kFold) fn(op.c);
}

/// Visit every slot op `i` writes (relax writes the pair half too).
template <typename Fn>
void for_each_write(const Op& op, Fn&& fn) {
  fn(op.dst);
  if (op.kind == OpKind::kRelax) fn(op.dst + 1);
}

}  // namespace

std::uint64_t prune_dead_ops(CompiledNetlist& net) {
  require_uncompacted(net, "prune_dead_ops");
  const std::uint64_t nops = net.ops.size();
  if (nops == 0) return 0;
  const std::uint32_t n = net.num_slots;

  // SSA: at most one defining op per slot (init entries carry no op).
  constexpr std::int64_t kNoDef = -1;
  std::vector<std::int64_t> def_op(n, kNoDef);
  for (std::uint64_t i = 0; i < nops; ++i) {
    for_each_write(net.ops[i], [&](sim::SlotId s) {
      if (s < n) def_op[s] = static_cast<std::int64_t>(i);
    });
  }

  // Roots: outputs and provenance-bound slots — everything the replay's
  // consumers (verify_outputs and the waveform adapters) can observe.
  std::vector<std::uint8_t> live(nops, 0);
  std::vector<std::uint64_t> work;
  const auto root = [&](sim::SlotId s) {
    if (s >= n || def_op[s] < 0) return;
    const auto d = static_cast<std::uint64_t>(def_op[s]);
    if (live[d] == 0) {
      live[d] = 1;
      work.push_back(d);
    }
  };
  for (const Output& o : net.outputs) root(o.slot);
  for (const ProvenanceBind& b : net.provenance.binds) root(b.slot);
  while (!work.empty()) {
    const std::uint64_t i = work.back();
    work.pop_back();
    for_each_read(net.ops[i], root);
  }

  std::uint64_t dead = 0;
  for (std::uint64_t i = 0; i < nops; ++i) {
    if (live[i] == 0) ++dead;
  }
  if (dead == 0) return 0;

  // Filter the op tape and every parallel plane, rebuilding the CSR level
  // index level by level so op order inside a level is untouched.
  const bool has_exp = net.expected.size() == nops;
  const bool has_lane = net.provenance.op_lane.size() == nops;
  AlignedVec<Op> ops2;
  ops2.reserve(nops - dead);
  std::vector<Cost> exp2;
  std::vector<std::uint32_t> lane2;
  if (has_exp) exp2.reserve(nops - dead);
  if (has_lane) lane2.reserve(nops - dead);
  std::vector<std::uint32_t> off2(net.cycle_off.size(), 0);
  for (std::size_t t = 0; t + 1 < net.cycle_off.size(); ++t) {
    for (std::uint32_t i = net.cycle_off[t]; i < net.cycle_off[t + 1]; ++i) {
      if (live[i] == 0) continue;
      ops2.push_back(net.ops[i]);
      if (has_exp) exp2.push_back(net.expected[i]);
      if (has_lane) lane2.push_back(net.provenance.op_lane[i]);
    }
    off2[t + 1] = static_cast<std::uint32_t>(ops2.size());
  }
  net.ops = std::move(ops2);
  net.cycle_off = std::move(off2);
  if (has_exp) net.expected = std::move(exp2);
  if (has_lane) net.provenance.op_lane = std::move(lane2);
  return dead;
}

std::uint64_t fuse_levels(CompiledNetlist& net, bool allow_chain_edges,
                          std::uint32_t max_fused_ops) {
  require_uncompacted(net, "fuse_levels");
  const std::uint64_t cycles = net.cycles();
  if (cycles <= 1) return 0;
  const std::uint32_t n = net.num_slots;

  // One forward walk: a level joins the current fused group unless an op
  // in it reads a value the group defines through a disallowed edge, or
  // the group would outgrow the cap.  def_group/def_kind track, per slot,
  // which group (and kind) last defined it — SSA makes "last" unique.
  std::vector<std::uint32_t> def_group(n, kNone);
  std::vector<std::uint8_t> def_kind(n, 0);
  std::vector<std::uint32_t> new_of(cycles, 0);
  std::uint32_t group = 0;
  std::uint32_t group_ops = 0;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const std::uint32_t lo = net.cycle_off[t];
    const std::uint32_t hi = net.cycle_off[t + 1];
    const std::uint32_t width = hi - lo;
    bool split = false;
    if (t > 0 && width > 0) {
      if (group_ops > 0 && group_ops + width > max_fused_ops) {
        split = true;
      } else {
        for (std::uint32_t i = lo; i < hi && !split; ++i) {
          const Op& op = net.ops[i];
          for_each_read(op, [&](sim::SlotId s) {
            if (s < n && def_group[s] == group &&
                (!allow_chain_edges ||
                 def_kind[s] != static_cast<std::uint8_t>(op.kind))) {
              split = true;
            }
          });
        }
      }
    }
    if (split) {
      ++group;
      group_ops = 0;
    }
    new_of[t] = group;
    group_ops += width;
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Op& op = net.ops[i];
      for_each_write(op, [&](sim::SlotId s) {
        if (s < n) {
          def_group[s] = group;
          def_kind[s] = static_cast<std::uint8_t>(op.kind);
        }
      });
    }
  }

  const std::uint64_t new_cycles = group + 1;
  if (new_cycles == cycles) return 0;

  // Levels concatenate in order, so the fused CSR end offset of group g is
  // the last member level's end offset; the op array itself is untouched.
  std::vector<std::uint32_t> off2(new_cycles + 1, 0);
  for (std::uint64_t t = 0; t < cycles; ++t) {
    off2[new_of[t] + 1] = net.cycle_off[t + 1];
  }
  net.cycle_off = std::move(off2);

  // Bind stamps: stamp t+1 samples the end of old level t, which now ends
  // (at the latest) with fused level new_of[t] — same value under SSA, the
  // slot's one definition is at or before the sample either way.
  for (ProvenanceBind& b : net.provenance.binds) {
    if (b.stamp == 0) continue;
    const std::uint64_t t =
        std::min<std::uint64_t>(b.stamp - 1, cycles - 1);
    b.stamp = new_of[t] + 1;
  }
  return cycles - new_cycles;
}

std::uint64_t reorder_levels(CompiledNetlist& net) {
  require_uncompacted(net, "reorder_levels");
  const std::uint64_t cycles = net.cycles();
  const std::uint32_t n = net.num_slots;
  const bool has_exp = net.expected.size() == net.ops.size();
  const bool has_lane = net.provenance.op_lane.size() == net.ops.size();

  // Per-level scratch, allocated once: in-level def position per slot,
  // reset via the touched list instead of a full clear.
  std::vector<std::uint32_t> def_pos(n, kNone);
  std::vector<sim::SlotId> touched;
  std::vector<std::uint32_t> perm;
  AlignedVec<Op> ops_tmp;
  std::vector<Cost> exp_tmp;
  std::vector<std::uint32_t> lane_tmp;

  std::uint64_t changed_levels = 0;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const std::uint32_t lo = net.cycle_off[t];
    const std::uint32_t hi = net.cycle_off[t + 1];
    const std::uint32_t width = hi - lo;
    if (width < 2) continue;

    touched.clear();
    for (std::uint32_t i = lo; i < hi; ++i) {
      for_each_write(net.ops[i], [&](sim::SlotId s) {
        if (s < n && def_pos[s] == kNone) touched.push_back(s);
        if (s < n) def_pos[s] = i;
      });
    }
    // In-level edges: which kinds participate in a chain, and whether any
    // edge crosses kinds (then order is semantic for the serial fallback
    // and the level must stay exactly as recorded).
    std::array<bool, 3> kind_chained{false, false, false};
    bool cross_kind = false;
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Op& op = net.ops[i];
      for_each_read(op, [&](sim::SlotId s) {
        if (s >= n || def_pos[s] == kNone) return;
        const Op& def = net.ops[def_pos[s]];
        if (def.kind != op.kind) cross_kind = true;
        kind_chained[static_cast<std::size_t>(def.kind)] = true;
        kind_chained[static_cast<std::size_t>(op.kind)] = true;
      });
    }
    for (const sim::SlotId s : touched) def_pos[s] = kNone;
    if (cross_kind) continue;

    // Kind-major stable partition (legal: in-level chains join same-kind
    // ops only, and their relative order survives a stable partition),
    // then slot-ascending order inside runs free of chain endpoints.
    perm.resize(width);
    std::uint32_t next = 0;
    for (std::uint8_t k = 0; k < 3; ++k) {
      const std::uint32_t run_lo = next;
      for (std::uint32_t i = lo; i < hi; ++i) {
        if (static_cast<std::uint8_t>(net.ops[i].kind) == k) {
          perm[next++] = i;
        }
      }
      if (!kind_chained[k]) {
        std::stable_sort(perm.begin() + run_lo, perm.begin() + next,
                         [&](std::uint32_t a, std::uint32_t b) {
                           return net.ops[a].dst < net.ops[b].dst;
                         });
      }
    }
    bool identity = true;
    for (std::uint32_t j = 0; j < width && identity; ++j) {
      identity = perm[j] == lo + j;
    }
    if (identity) continue;

    ops_tmp.assign(width, Op{});
    if (has_exp) exp_tmp.resize(width);
    if (has_lane) lane_tmp.resize(width);
    for (std::uint32_t j = 0; j < width; ++j) {
      ops_tmp[j] = net.ops[perm[j]];
      if (has_exp) exp_tmp[j] = net.expected[perm[j]];
      if (has_lane) lane_tmp[j] = net.provenance.op_lane[perm[j]];
    }
    std::copy(ops_tmp.begin(), ops_tmp.end(), net.ops.begin() + lo);
    if (has_exp) {
      std::copy(exp_tmp.begin(), exp_tmp.end(), net.expected.begin() + lo);
    }
    if (has_lane) {
      std::copy(lane_tmp.begin(), lane_tmp.end(),
                net.provenance.op_lane.begin() + lo);
    }
    ++changed_levels;
  }
  return changed_levels;
}

OptimizeStats optimize_tape(CompiledNetlist& net, const OptimizeOptions& opt) {
  OptimizeStats st;
  st.level = opt.level;
  st.ops_before = net.num_ops();
  st.levels_before = net.cycles();
  if (opt.level > 0) {
    require_uncompacted(net, "optimize_tape");
    st.ops_pruned = prune_dead_ops(net);
    st.levels_fused = fuse_levels(net, opt.level >= 2, opt.max_fused_ops);
    st.levels_reordered = reorder_levels(net);
    net.stats.opt_level = static_cast<std::uint8_t>(opt.level);
    net.stats.ops_pruned = st.ops_pruned;
    net.stats.levels_fused = st.levels_fused;
  }
  st.ops_after = net.num_ops();
  st.levels_after = net.cycles();
  return st;
}

}  // namespace sysdp::compile
