#include "vlsi/area_model.hpp"

#include <vector>

#include "andor/chain_builder.hpp"
#include "andor/serialize.hpp"
#include "semiring/cost.hpp"

namespace sysdp {

double at2(const AreaBill& bill, std::uint64_t cycles, const AreaUnits& u) {
  const double t = static_cast<double>(cycles);
  return static_cast<double>(bill.total(u)) * t * t;
}

AreaBill area_design1(std::uint64_t m) {
  AreaBill b;
  b.pes = m;
  b.registers = 2 * m;        // R_i and A_i per PE
  b.links = m - 1;            // nearest-neighbour pipeline
  b.bus_hops = m;             // the P_{m-1} -> P_0 feedback return wire
  return b;
}

AreaBill area_design2(std::uint64_t m) {
  AreaBill b;
  b.pes = m;
  b.registers = 2 * m;        // ACC_i and S_i per PE
  b.links = 0;                // no neighbour chain: everything is on the bus
  b.bus_hops = 2 * m;         // broadcast span + feedback return span
  return b;
}

AreaBill area_design3(std::uint64_t m, std::uint64_t n_stages,
                      bool path_registers) {
  AreaBill b;
  b.pes = m;
  b.registers = 3 * m;        // R_i, K_i, H_i
  b.links = m - 1;
  b.bus_hops = m;             // single feedback bus (Section 3.2)
  if (path_registers) b.registers += n_stages * m;  // N registers of m words
  return b;
}

AreaBill area_matmul_mesh(std::uint64_t m) {
  AreaBill b;
  b.pes = m * m;
  b.registers = 3 * m * m;    // two moving operands + stationary C per cell
  b.links = 2 * m * (m - 1);  // horizontal + vertical mesh wires
  return b;
}

namespace {

/// Structure-only chain graph: the wiring bill depends on n alone.
ChainAndOr structural_chain(std::uint64_t n) {
  std::vector<Cost> dims(n + 1, 2);
  return build_chain_andor(dims);
}

}  // namespace

AreaBill area_chain_broadcast(std::uint64_t n) {
  const auto chain = structural_chain(n);
  AreaBill b;
  b.pes = chain.graph.count(AndOrType::kOr);
  b.registers = b.pes + n;  // one result register per processor + leaf inputs
  for (std::size_t i = 0; i < chain.graph.size(); ++i) {
    const auto& node = chain.graph.node(i);
    for (std::size_t c : node.children) {
      const std::size_t gap = node.level - chain.graph.node(c).level;
      if (gap == 1) {
        ++b.links;
      } else {
        b.bus_hops += gap;  // a broadcast wire spanning `gap` levels
      }
    }
  }
  return b;
}

AreaBill area_chain_serialized(std::uint64_t n) {
  const auto chain = structural_chain(n);
  const auto ser = serialize_andor(chain.graph);
  AreaBill b;
  b.pes = ser.graph.count(AndOrType::kOr);
  b.registers = b.pes + n + ser.dummies_added;  // dummies are registers
  for (std::size_t i = 0; i < ser.graph.size(); ++i) {
    b.links += ser.graph.node(i).children.size();  // all arcs are local now
  }
  return b;
}

}  // namespace sysdp
