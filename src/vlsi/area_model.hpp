// VLSI area and AT^2 accounting (Section 4's A, K, T criteria).
//
// The paper evaluates architectures by processor count K, time T, and the
// VLSI complexity measures K T^2 and A T^2, where A is silicon area.  This
// model makes A concrete per architecture: every design is costed in
// abstract layout units per component — processing elements (function unit
// + adder + comparator), registers, nearest-neighbour links, broadcast
// wires (length-proportional, the VLSI-theory convention that makes
// broadcast expensive), and dummy/forwarding cells.  The absolute units are
// arbitrary; the *ratios* between architectures are what Section 4 and
// Section 6.2 argue about — e.g. the broadcast AND/OR mapping buys T = N
// with Theta(n^2) bus wiring that the serialised design trades for
// Theta(n^3) dummy registers and T = 2N.
#pragma once

#include <cstdint>

namespace sysdp {

/// Unit areas per component, in abstract layout units.
struct AreaUnits {
  std::uint64_t pe = 12;        ///< function unit + adder + comparator
  std::uint64_t reg = 1;        ///< one word of storage
  std::uint64_t link = 1;       ///< nearest-neighbour wire segment
  std::uint64_t bus_per_hop = 1;  ///< broadcast wire, per PE spanned
};

/// Area inventory of one architecture instance.
struct AreaBill {
  std::uint64_t pes = 0;
  std::uint64_t registers = 0;
  std::uint64_t links = 0;
  std::uint64_t bus_hops = 0;

  [[nodiscard]] std::uint64_t total(const AreaUnits& u = {}) const noexcept {
    return pes * u.pe + registers * u.reg + links * u.link +
           bus_hops * u.bus_per_hop;
  }
};

/// A T^2 figure of merit for a design instance that finishes in `cycles`.
[[nodiscard]] double at2(const AreaBill& bill, std::uint64_t cycles,
                         const AreaUnits& u = {});

/// Design 1 (Figure 3): m PEs, R + A registers each, chain links, no bus.
[[nodiscard]] AreaBill area_design1(std::uint64_t m);

/// Design 2 (Figure 4): m PEs, ACC + S registers, a broadcast bus spanning
/// all m PEs plus the feedback return wire.
[[nodiscard]] AreaBill area_design2(std::uint64_t m);

/// Design 3 (Figure 5): m PEs with R/K/H registers, chain links, the
/// feedback bus, and (for path recovery) N path registers of m words.
[[nodiscard]] AreaBill area_design3(std::uint64_t m, std::uint64_t n_stages,
                                    bool path_registers = true);

/// The 2-D matmul mesh: m^2 PEs, two moving-operand registers each, mesh
/// links.
[[nodiscard]] AreaBill area_matmul_mesh(std::uint64_t m);

/// Direct broadcast mapping of the chain AND/OR-graph (Section 6.2):
/// n(n-1)/2 OR processors and one broadcast bus per level-skipping arc,
/// each spanning the levels it crosses.
[[nodiscard]] AreaBill area_chain_broadcast(std::uint64_t n);

/// Serialised (Figure 8) mapping: the same processors plus shared dummy
/// chains (one register per dummy) and only nearest-neighbour links.
[[nodiscard]] AreaBill area_chain_serialized(std::uint64_t n);

}  // namespace sysdp
