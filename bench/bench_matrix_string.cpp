// E11 — Section 3.1: the O(m^2 N) sequential complexity of solving a
// monadic-serial problem as a string of matrix multiplications (eq. 8), and
// the equivalence of the monadic (right-associated) and polyadic (balanced)
// evaluations.
#include <cinttypes>
#include <cstdio>

#include "baseline/multistage_dp.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "semiring/ops.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# E11: eq. (8) - sequential cost of the matrix-string evaluation\n");
  std::printf("%6s %4s | %12s %12s | %9s\n", "N", "m", "MACs(meas)",
              "m^2(N-1)+m", "agree");
  for (const std::size_t n : {8u, 32u, 128u, 512u}) {
    for (const std::size_t m : {4u, 16u, 32u}) {
      Rng rng(n + m);
      const auto g = random_multistage(n, m, rng);
      const auto res = solve_multistage(g);
      const std::uint64_t model = static_cast<std::uint64_t>(m) * m * (n - 1) + m;
      // Monadic vs polyadic equivalence on the same instance.
      const auto mono = forward_costs(g, 0);
      const auto poly = mat_vec<MinPlus>(
          balanced_string_mat_mul<MinPlus>(g.matrix_string()),
          std::vector<Cost>(g.stage_size(n - 1), 0));
      std::printf("%6zu %4zu | %12" PRIu64 " %12" PRIu64 " | %9s\n", n, m,
                  res.ops.mac, model, mono == poly ? "yes" : "NO");
    }
  }
  std::printf(
      "# paper: sequential complexity O(m^2 N); monadic and polyadic "
      "evaluations of eq. (8)/(15) agree by associativity.\n\n");
}

void bm_string_mat_vec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  const auto mats = random_matrix_string(n, m, rng);
  std::vector<Cost> v(m, 0);
  for (auto _ : state) {
    auto y = string_mat_vec<MinPlus>(mats, v);
    benchmark::DoNotOptimize(y);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n * m * m));
}
BENCHMARK(bm_string_mat_vec)
    ->Args({32, 8})
    ->Args({128, 8})
    ->Args({32, 32})
    ->Args({128, 32});

void bm_balanced_string_mul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(2);
  const auto mats = random_matrix_string(n, m, rng);
  for (auto _ : state) {
    auto prod = balanced_string_mat_mul<MinPlus>(mats);
    benchmark::DoNotOptimize(prod);
  }
}
BENCHMARK(bm_balanced_string_mul)->Args({32, 8})->Args({128, 8});

}  // namespace

SYSDP_BENCH_MAIN(report)
