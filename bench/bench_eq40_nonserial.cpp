// E9 — Section 6.1 / eq. (40): monadic-nonserial elimination step counts
// match the closed form, and the grouping transform (eq. 41) converts the
// banded objective into a serial problem the systolic arrays solve.
#include <cinttypes>
#include <cstdio>

#include "arrays/graph_adapter.hpp"
#include "baseline/multistage_dp.hpp"
#include "bench_util.hpp"
#include "nonserial/elimination.hpp"
#include "nonserial/grouping.hpp"
#include "nonserial/nonserial_generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# E9: eq. (40) - elimination steps for banded nonserial objectives; "
      "grouping transform check\n");
  std::printf("%4s %4s | %10s %10s | %9s | %12s %8s\n", "N", "m",
              "steps(sim)", "steps(40)", "final cmp", "grouped size",
              "optimal");
  for (const std::size_t n : {3u, 5u, 8u, 12u, 16u}) {
    for (const std::size_t m : {2u, 3u, 4u}) {
      Rng rng(n * 100 + m);
      const auto obj = random_banded_objective(n, m, rng);
      const auto elim = solve_by_elimination(obj);
      const std::vector<std::size_t> domains(n, m);
      const auto grouped = group_banded_to_serial(obj);
      const auto serial = solve_multistage(grouped.graph);
      std::printf("%4zu %4zu | %10" PRIu64 " %10" PRIu64 " | %9" PRIu64
                  " | %6zu x %-3zu %8s\n",
                  n, m, elim.steps, eq40_steps(domains),
                  elim.final_comparisons, grouped.graph.num_stages(),
                  grouped.graph.stage_size(0),
                  serial.cost == elim.cost ? "yes" : "NO");
    }
  }
  std::printf(
      "# paper: steps(sim) == eq. (40); the grouped serial problem (m^2 "
      "states/stage) yields the same optimum and runs on Design 1.\n\n");
}

void bm_elimination(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  const auto obj = random_banded_objective(n, m, rng);
  for (auto _ : state) {
    auto res = solve_by_elimination(obj);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_elimination)->Args({8, 4})->Args({16, 4})->Args({16, 8});

void bm_grouping_plus_design1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  const auto obj = random_banded_objective(n, m, rng);
  for (auto _ : state) {
    const auto grouped = group_banded_to_serial(obj);
    auto res = run_design1_shortest(grouped.graph);
    benchmark::DoNotOptimize(res.values);
  }
}
BENCHMARK(bm_grouping_plus_design1)->Args({8, 4})->Args({16, 4});

void bm_brute_force(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto obj = random_banded_objective(n, 3, rng);
  for (auto _ : state) {
    auto res = solve_brute_force(obj);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_brute_force)->Arg(6)->Arg(9);

}  // namespace

SYSDP_BENCH_MAIN(report)
