// E6 — Theorem 2 / eq. (32): total nodes u(p) of the regular AND/OR-graph
// for p-way partitioning; binary partitioning (p = 2) minimises u(p).
// Counts are verified against explicitly constructed graphs.
#include <cinttypes>
#include <cstdio>

#include "andor/regular_builder.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E6: Theorem 2 - u(p) node counts (eq. 32)\n");
  std::printf("%6s %4s | %14s %14s %14s\n", "N", "m", "u(2)", "u(4)",
              "u(8)");
  // N chosen as simultaneous powers of 2, 4 and 8: 64 = 2^6 = 4^3 = 8^2 and
  // 4096 = 2^12 = 4^6 = 8^4, so every column is a legal partition.
  for (const std::uint64_t n : {64u, 4096u}) {
    for (const std::uint64_t m : {2u, 3u, 4u, 6u}) {
      std::printf("%6" PRIu64 " %4" PRIu64 " | %14" PRIu64 " %14" PRIu64
                  " %14" PRIu64 "\n",
                  n, m, u_formula(n, 2, m), u_formula(n, 4, m),
                  u_formula(n, 8, m));
    }
  }
  std::printf(
      "# paper: u(2) <= u(4) <= u(8) for every row (tie at m = 2 between "
      "p = 2 and p = 4).\n");

  // Cross-check formula vs explicit construction on buildable sizes.
  std::printf("\nconstruction cross-check (graph nodes == eq. 32):\n");
  Rng rng(1);
  struct Case {
    std::size_t p, q, m;
  };
  for (const auto& c :
       {Case{2, 4, 2}, Case{2, 3, 3}, Case{4, 2, 2}, Case{3, 2, 3}}) {
    std::size_t n_seg = 1;
    for (std::size_t i = 0; i < c.q; ++i) n_seg *= c.p;
    const auto g = random_multistage(n_seg + 1, c.m, rng);
    const auto reg = build_regular_andor(g, c.p);
    std::printf("  N=%zu p=%zu m=%zu: built %zu nodes, formula %" PRIu64
                " -> %s\n",
                n_seg, c.p, c.m, reg.graph.size(),
                u_formula(n_seg, c.p, c.m),
                reg.graph.size() == u_formula(n_seg, c.p, c.m) ? "match"
                                                               : "MISMATCH");
  }
  std::printf("\n");
}

void bm_build_regular(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  std::size_t n_seg = 1;
  for (std::size_t i = 0; i < q; ++i) n_seg *= p;
  Rng rng(2);
  const auto g = random_multistage(n_seg + 1, 2, rng);
  for (auto _ : state) {
    auto reg = build_regular_andor(g, p);
    benchmark::DoNotOptimize(reg.graph.size());
  }
}
BENCHMARK(bm_build_regular)->Args({2, 6})->Args({4, 3})->Args({8, 2});

void bm_evaluate_regular(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  std::size_t n_seg = 1;
  for (std::size_t i = 0; i < 4; ++i) n_seg *= 2;  // 16 segments
  Rng rng(3);
  const auto g = random_multistage(n_seg + 1, 3, rng);
  const auto reg = build_regular_andor(g, p);
  for (auto _ : state) {
    auto v = reg.graph.evaluate();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(bm_evaluate_regular)->Arg(2)->Arg(4);

}  // namespace

SYSDP_BENCH_MAIN(report)
