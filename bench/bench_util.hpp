// Shared harness glue: every experiment binary prints its paper-shaped
// report first (the reproduction artefact EXPERIMENTS.md quotes), then runs
// its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

/// Define main() for a bench binary: print the report, then run benchmarks.
#define SYSDP_BENCH_MAIN(report_fn)                                  \
  int main(int argc, char** argv) {                                  \
    report_fn();                                                     \
    std::fflush(stdout);                                             \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    return 0;                                                        \
  }
