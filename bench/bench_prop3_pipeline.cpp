// E8 — Proposition 3 / eq. (43) / Figure 8: serialising the AND/OR-graph
// with dummy nodes doubles the search time to T_p(N) = 2N but removes all
// broadcast buses (planar, systolic wiring); the GKT triangular array
// realises the serialised structure, matching Guibas et al.
#include <cinttypes>
#include <cstdio>

#include "andor/chain_builder.hpp"
#include "andor/level_schedule.hpp"
#include "andor/serialize.hpp"
#include "arrays/gkt_array.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/matrix_chain.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# E8: Proposition 3 - serialised (pipelined) AND/OR search, "
      "T_p(N) = 2N; GKT array\n");
  std::printf("%5s | %8s %8s | %8s %8s | %9s %9s | %9s\n", "N", "T_p(sim)",
              "T_p(=2N)", "gkt done", "gkt ok", "dummies", "max chain",
              "gkt cells");
  Rng rng(1);
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto sched = simulate_chain_pipelined(n);
    const auto dims = random_chain_dims(n, rng);
    GktArray arr(dims);
    const auto gkt = arr.run();
    const bool ok = gkt.total() == matrix_chain_order(dims).total();
    const auto ser = serialize_andor(build_chain_andor(dims).graph);
    std::printf("%5zu | %8" PRIu64 " %8" PRIu64 " | %8" PRIu64 " %8s | "
                "%9" PRIu64 " %9" PRIu64 " | %9zu\n",
                n, sched.completion, t_pipelined(n), gkt.completion(),
                ok ? "yes" : "NO", ser.dummies_added, ser.longest_chain,
                arr.num_cells());
  }
  std::printf(
      "# paper: T_p = 2 T_d (the serialisation penalty); the GKT array "
      "finishes within the 2N bound with only nearest-neighbour wiring.\n\n");
}

void bm_pipelined_schedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = simulate_chain_pipelined(n);
    benchmark::DoNotOptimize(res.completion);
  }
}
BENCHMARK(bm_pipelined_schedule)->Arg(64)->Arg(256)->Arg(512);

void bm_gkt_array(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto dims = random_chain_dims(n, rng);
  for (auto _ : state) {
    GktArray arr(dims);
    auto res = arr.run();
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_gkt_array)->Arg(16)->Arg(64)->Arg(128);

void bm_serialize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto chain = build_chain_andor(random_chain_dims(n, rng));
  for (auto _ : state) {
    auto ser = serialize_andor(chain.graph);
    benchmark::DoNotOptimize(ser.dummies_added);
  }
}
BENCHMARK(bm_serialize)->Arg(16)->Arg(64);

}  // namespace

SYSDP_BENCH_MAIN(report)
