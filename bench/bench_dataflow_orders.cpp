// Ablation A4 — the secondary optimisation under parallel execution
// (end of Section 4): the eq. (6) optimal order minimises scalar work, but
// the dataflow makespan on k arrays also depends on tree shape.  This
// bench measures optimal vs left-associated vs balanced orders across k.
#include <cinttypes>
#include <cstdio>

#include "baseline/matrix_chain.hpp"
#include "bench_util.hpp"
#include "dnc/dataflow.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  const std::size_t n = 24;
  Rng rng(2024);
  const auto dims = random_chain_dims(n, rng);
  const auto opt = matrix_chain_order(dims);
  const auto left = split_left_assoc(n);
  const auto bal = split_balanced(n);

  std::printf(
      "# A4: dataflow makespan of parenthesisation orders (N = %zu chain, "
      "scalar-op time units)\n",
      n);
  std::printf("%6s | %12s %12s %12s | %12s %12s %12s\n", "k", "T(opt)",
              "T(left)", "T(bal)", "PU(opt)", "PU(left)", "PU(bal)");
  for (const std::uint64_t k : {1u, 2u, 4u, 8u, 16u, 64u, 1024u}) {
    const auto a = execute_chain_dataflow(dims, opt.split, k);
    const auto b = execute_chain_dataflow(dims, left, k);
    const auto c = execute_chain_dataflow(dims, bal, k);
    std::printf("%6" PRIu64 " | %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " | %12.4f %12.4f %12.4f\n",
                k, a.makespan, b.makespan, c.makespan, a.utilization(k),
                b.utilization(k), c.utilization(k));
  }
  const auto a1 = execute_chain_dataflow(dims, opt.split, 1);
  const auto b1 = execute_chain_dataflow(dims, left, 1);
  const auto c1 = execute_chain_dataflow(dims, bal, 1);
  std::printf(
      "sequential scalar ops: opt %" PRIu64 ", left %" PRIu64 ", balanced %"
      PRIu64 "\ncritical paths:        opt %" PRIu64 ", left %" PRIu64
      ", balanced %" PRIu64 "\n",
      a1.scalar_ops, b1.scalar_ops, c1.scalar_ops, a1.critical_path,
      b1.critical_path, c1.critical_path);
  std::printf(
      "# paper: the optimal order minimises operations (k = 1 column); tree "
      "shape governs the parallel regime — treating the tree 'as a dataflow "
      "graph' exposes exactly this.\n\n");
}

void bm_dataflow(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  Rng rng(7);
  const auto dims = random_chain_dims(64, rng);
  const auto opt = matrix_chain_order(dims);
  for (auto _ : state) {
    auto res = execute_chain_dataflow(dims, opt.split, k);
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(bm_dataflow)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

SYSDP_BENCH_MAIN(report)
