// E12 — eq. (29) vs simulation: the closed-form divide-and-conquer time
// model against the highest-level-first list schedule, across N and K.
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "dnc/metrics.hpp"
#include "dnc/schedule.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E12: eq. (29) model vs list-schedule simulation\n");
  std::printf("%6s %6s | %8s %8s %6s | %8s %8s | %8s\n", "N", "K", "T(sim)",
              "T(eq29)", "diff", "T_c(sim)", "T_w(sim)", "PU(sim)");
  for (const std::size_t n : {256u, 1024u, 4096u, 8192u}) {
    for (const std::uint64_t k : {4u, 16u, 64u, 341u, 1024u}) {
      const auto sim = schedule_and_tree(n, k);
      const auto model = dnc_time_eq29(n, k);
      std::printf("%6zu %6" PRIu64 " | %8" PRIu64 " %8" PRIu64 " %6" PRId64
                  " | %8" PRIu64 " %8" PRIu64 " | %8.4f\n",
                  n, k, sim.makespan, model,
                  static_cast<std::int64_t>(sim.makespan) -
                      static_cast<std::int64_t>(model),
                  sim.computation, sim.wind_down, sim.utilization(k));
    }
  }
  std::printf(
      "# paper: T = T_c + T_w (eq. 29); the list schedule tracks the model "
      "to within a few wind-down steps at every (N, K).\n\n");
}

void bm_list_schedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    auto res = schedule_and_tree(n, k);
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(bm_list_schedule)->Args({4096, 341})->Args({8192, 64});

void bm_model_eval(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 1; k <= 1024; ++k) acc += dnc_time_eq29(8192, k);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_model_eval);

}  // namespace

SYSDP_BENCH_MAIN(report)
