// E4 — Proposition 1: asymptotic processor utilisation PU(k, N) for
// k(N) with c_inf = lim k(N)/(N/log2 N) in {0, finite, infinite}:
//   c_inf = 0        -> PU -> 1        (e.g. k = sqrt(N), k = log2 N)
//   0 < c_inf < inf  -> PU -> 1/(1+c)  (k = c N / log2 N)
//   c_inf = inf      -> PU -> 0        (k = N)
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dnc/metrics.hpp"
#include "dnc/schedule.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E4: Proposition 1 - PU(k, N) along growth laws k(N)\n");
  std::printf("%10s | %10s %10s %10s %10s %10s | %8s\n", "N", "k=log2N",
              "k=sqrtN", "k=N/lgN", "k=2N/lgN", "k=N", "1/(1+c)");
  for (std::uint64_t e = 10; e <= 26; e += 4) {
    const std::uint64_t n = 1ull << e;
    const auto lg = static_cast<std::uint64_t>(e);
    const auto sq = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
    const auto crit = n / lg;
    std::printf(
        "%10" PRIu64 " | %10.4f %10.4f %10.4f %10.4f %10.4f | "
        "{1, 1, %0.2f, %0.2f, 0}\n",
        n, pu_eq29(n, lg), pu_eq29(n, sq), pu_eq29(n, crit),
        pu_eq29(n, 2 * crit), pu_eq29(n, n), prop1_limit(1.0),
        prop1_limit(2.0));
  }
  std::printf(
      "# paper: columns converge to the bracketed limits as N -> inf.\n\n");
}

void bm_pu_sweep(benchmark::State& state) {
  const std::uint64_t n = 1ull << static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    double acc = 0;
    for (std::uint64_t k = 1; k <= 4096; k *= 2) acc += pu_eq29(n, k);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_pu_sweep)->Arg(16)->Arg(24);

void bm_schedule_utilization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = schedule_and_tree(n, static_cast<std::uint64_t>(n) / 12);
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(bm_schedule_utilization)->Arg(4096)->Arg(16384);

}  // namespace

SYSDP_BENCH_MAIN(report)
