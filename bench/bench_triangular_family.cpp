// Ablation A5 — the triangular-array family: the same wavefront timing
// solves every interval DP the paper names (matrix-chain order via GKT,
// optimal BST via TriangularArray<BstRule>), and the clocked serialised
// machine pins Proposition 3 exactly.  Completion scales linearly in N for
// all three.
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <optional>

#include "andor/pipeline_array.hpp"
#include "arrays/gkt_array.hpp"
#include "arrays/paper_metrics.hpp"
#include "arrays/triangular_array.hpp"
#include "baseline/matrix_chain.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/batch.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# A5: triangular-array family - completion cycles vs problem size\n");
  std::printf("%5s | %9s %9s %9s | %8s | %8s\n", "N", "gkt", "serial",
              "bst", "T_p=2N", "cells");
  Rng rng(3);
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const auto dims = random_chain_dims(n, rng);
    GktArray gkt(dims);
    const auto a = gkt.run();
    SerializedChainArray ser(dims);
    const auto b = ser.run();
    std::uniform_int_distribution<Cost> freq(1, 40);
    std::vector<Cost> f(n);
    for (auto& x : f) x = freq(rng);
    const auto c = run_bst_array(f);
    std::printf("%5zu | %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " | %8" PRIu64
                " | %8zu\n",
                n, a.completion(), b.completion(), c.completion(),
                t_pipelined(n), gkt.num_cells());
  }
  std::printf(
      "# all three grow linearly; the clocked serialised machine equals "
      "2N exactly (Prop. 3); GKT and BST run within the same bound with "
      "nearest-neighbour wiring.\n\n");
}

void bm_gkt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto dims = random_chain_dims(n, rng);
  for (auto _ : state) {
    GktArray arr(dims);
    benchmark::DoNotOptimize(arr.run().cost);
  }
}
BENCHMARK(bm_gkt)->Arg(32)->Arg(64);

void bm_serialized_machine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto dims = random_chain_dims(n, rng);
  for (auto _ : state) {
    SerializedChainArray arr(dims);
    benchmark::DoNotOptimize(arr.run().cost);
  }
}
BENCHMARK(bm_serialized_machine)->Arg(32)->Arg(64);

void bm_bst_array(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::uniform_int_distribution<Cost> freq(1, 40);
  std::vector<Cost> f(n);
  for (auto& x : f) x = freq(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bst_array(f).cost);
  }
}
BENCHMARK(bm_bst_array)->Arg(32)->Arg(64);

// The full family sweep (every size x {GKT, serialised, BST}) as one batch
// of independent simulations.  Arg(0) = serial loop baseline; Arg(k) = k
// pool workers + the caller.  This sweep is the headline workload of
// BENCH_SIM.json: sweep points share nothing, so the speedup tracks the
// host's core count.
void bm_family_sweep_batch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t sizes[] = {16, 24, 32, 48, 64, 96, 128};
  constexpr std::size_t kKinds = 3;
  const std::size_t jobs = std::size(sizes) * kKinds;
  const auto job = [&](std::size_t i) -> std::uint64_t {
    const std::size_t n = sizes[i / kKinds];
    Rng rng(i);
    switch (i % kKinds) {
      case 0: {
        GktArray arr(random_chain_dims(n, rng));
        return arr.run().stats.busy_steps;
      }
      case 1: {
        SerializedChainArray arr(random_chain_dims(n, rng));
        return arr.run().stats.busy_steps;
      }
      default: {
        std::uniform_int_distribution<Cost> freq(1, 40);
        std::vector<Cost> f(n);
        for (auto& x : f) x = freq(rng);
        return run_bst_array(f).stats.busy_steps;
      }
    }
  };
  std::optional<sysdp::sim::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  sysdp::sim::BatchRunner runner(pool ? &*pool : nullptr);
  for (auto _ : state) {
    auto results = runner.run(jobs, job);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["lanes"] = static_cast<double>(runner.lanes());
}
BENCHMARK(bm_family_sweep_batch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSDP_BENCH_MAIN(report)
