// E10 — Table 1: one representative problem per formulation class, routed
// through the architecture the paper recommends, with the published table
// regenerated alongside the measured outcome of each route.
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "core/solver.hpp"
#include "core/table1.hpp"
#include "baseline/multistage_dp.hpp"
#include "graph/generators.hpp"
#include "nonserial/elimination.hpp"
#include "nonserial/nonserial_generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E10: Table 1 - formulation -> suitable method\n\n");
  std::printf("%s\n", render_table1().c_str());

  std::printf("one worked instance per class:\n");
  // Monadic-serial: many quantised values per stage.
  {
    Rng rng(1);
    const auto nv = traffic_control_instance(8, 16, rng);
    const auto rep = solve_monadic_serial(nv);
    std::printf("  monadic-serial    : %-60s cost=%" PRId64 " cycles=%" PRIu64
                "\n",
                rep.method.c_str(), rep.cost, rep.cycles);
  }
  // Polyadic-serial: many stages, few values.
  {
    Rng rng(2);
    const auto g = random_multistage(64, 3, rng);
    const auto rep = solve_polyadic_serial(g, 8);
    std::printf("  polyadic-serial   : %-60s cost=%" PRId64 " T/T1=%" PRIu64
                "\n",
                rep.method.c_str(), rep.cost, rep.cycles);
  }
  // Monadic-nonserial: banded objective, variables eliminated one by one.
  {
    Rng rng(3);
    const auto obj = random_banded_objective(7, 3, rng);
    const auto rep = solve_objective(obj);
    std::printf("  monadic-nonserial : %-60s cost=%" PRId64 " steps=%" PRIu64
                "\n",
                rep.method.c_str(), rep.cost, rep.work_steps);
  }
  // Polyadic-nonserial: optimal matrix-multiplication order.
  {
    Rng rng(4);
    const auto dims = random_chain_dims(24, rng);
    const auto rep = solve_chain_order(dims);
    std::printf("  polyadic-nonserial: %-60s cost=%" PRId64 " cycles=%" PRIu64
                "\n\n",
                rep.method.c_str(), rep.cost, rep.cycles);
  }
}

void bm_dispatch_serial_objective(benchmark::State& state) {
  Rng rng(5);
  NonserialObjective obj({4, 4, 4, 4, 4});
  std::uniform_int_distribution<Cost> dist(0, 9);
  for (std::size_t k = 0; k + 1 < 5; ++k) {
    std::vector<Cost> t(16);
    for (auto& c : t) c = dist(rng);
    obj.add_term({k, k + 1}, t);
  }
  for (auto _ : state) {
    auto rep = solve_objective(obj);
    benchmark::DoNotOptimize(rep.cost);
  }
}
BENCHMARK(bm_dispatch_serial_objective);

void bm_dispatch_banded_objective(benchmark::State& state) {
  Rng rng(6);
  const auto obj = random_banded_objective(8, 3, rng);
  for (auto _ : state) {
    auto rep = solve_objective(obj);
    benchmark::DoNotOptimize(rep.cost);
  }
}
BENCHMARK(bm_dispatch_banded_objective);

}  // namespace

SYSDP_BENCH_MAIN(report)
