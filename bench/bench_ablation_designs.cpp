// Ablation A2 — the three monadic-serial array designs on one problem
// family: wall-clock cycles, input scalars, wiring, and utilisation.  This
// is the design-space comparison Section 3 makes qualitatively (pipeline
// skew vs a global broadcast wire vs node-value feedback).
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <optional>

#include "arrays/design1_modular.hpp"
#include "arrays/design2_modular.hpp"
#include "arrays/design3_feedback.hpp"
#include "arrays/design3_modular.hpp"
#include "arrays/graph_adapter.hpp"
#include "bench_util.hpp"
#include "baseline/multistage_dp.hpp"
#include "graph/generators.hpp"
#include "sim/batch.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# A2: design ablation on the traffic-control family (same optimum "
      "from all designs)\n");
  std::printf("%4s %4s | %9s %9s %9s | %10s %10s %10s | %8s %8s %8s\n", "N",
              "m", "d1 cyc", "d2 cyc", "d3 cyc", "d1 in", "d2 in", "d3 in",
              "d1 PU", "d2 PU", "d3 PU");
  for (const std::size_t n : {8u, 16u, 32u}) {
    for (const std::size_t m : {4u, 8u, 16u}) {
      Rng rng(n * 37 + m);
      const auto nv = traffic_control_instance(n, m, rng);
      const auto g = nv.materialize();
      const auto d1 = run_design1_shortest(g);
      const auto d2 = run_design2_shortest(g);
      Design3Feedback arr(nv);
      const auto d3 = arr.run();
      std::printf("%4zu %4zu | %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                  " | %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                  " | %8.4f %8.4f %8.4f\n",
                  n, m, d1.cycles, d2.cycles, d3.stats.cycles,
                  d1.input_scalars, d2.input_scalars,
                  d3.stats.input_scalars, d1.utilization_wall(),
                  d2.utilization_wall(), d3.stats.utilization_wall());
    }
  }
  std::printf(
      "# takeaway: Design 2 trades Design 1's m-1 fill cycles for a global "
      "broadcast wire; Design 3 adds m extra cycles (the final circulation) "
      "but cuts input bandwidth by ~m by streaming node values, and is the "
      "only design that recovers the path in hardware.\n\n");
}

void bm_designs_same_instance(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  Rng rng(99);
  const auto nv = traffic_control_instance(16, 8, rng);
  const auto g = nv.materialize();
  for (auto _ : state) {
    Cost c = 0;
    switch (which) {
      case 0:
        c = run_design1_shortest(g).values[0];
        break;
      case 1:
        c = run_design2_shortest(g).values[0];
        break;
      default: {
        Design3Feedback arr(nv);
        c = arr.run().cost;
        break;
      }
    }
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(bm_designs_same_instance)->Arg(0)->Arg(1)->Arg(2);

// The A2 grid as one batch: every (N, m) point runs all three modular
// designs end to end on its own engine.  Arg(0) = serial loop baseline;
// Arg(k) = k pool workers + the caller.
void bm_ablation_grid_batch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t ns[] = {8, 16, 32};
  const std::size_t ms[] = {4, 8, 16};
  const std::size_t jobs = std::size(ns) * std::size(ms);
  const auto job = [&](std::size_t i) -> std::uint64_t {
    const std::size_t n = ns[i / std::size(ms)];
    const std::size_t m = ms[i % std::size(ms)];
    Rng rng(n * 37 + m);
    const auto nv = traffic_control_instance(n, m, rng);
    const auto g = nv.materialize();
    auto prob = to_string_product(g);
    Design1Modular d1(prob.mats, prob.v);
    Design2Modular d2(prob.mats, prob.v);
    Design3Modular d3(nv);
    return d1.run().busy_steps + d2.run().busy_steps +
           d3.run().stats.busy_steps;
  };
  std::optional<sysdp::sim::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  sysdp::sim::BatchRunner runner(pool ? &*pool : nullptr);
  for (auto _ : state) {
    auto results = runner.run(jobs, job);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["lanes"] = static_cast<double>(runner.lanes());
}
BENCHMARK(bm_ablation_grid_batch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSDP_BENCH_MAIN(report)
