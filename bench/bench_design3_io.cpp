// E2 — Section 3.2, Design 3: (N+1)m iterations, PU ~ 1, and the
// order-of-magnitude input-bandwidth reduction from feeding node values
// (N*m scalars) instead of edge costs ((N-1)*m^2 scalars).
#include <cinttypes>
#include <cstdio>

#include "arrays/design3_feedback.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/multistage_dp.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# E2: Design 3 - iterations, PU, and node-value vs edge-cost I/O\n");
  std::printf("%5s %4s | %9s %9s | %8s %8s | %10s %10s %7s\n", "N", "m",
              "iters", "(N+1)m", "PU(anal)", "PU(meas)", "node I/O",
              "edge I/O", "ratio");
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    for (const std::size_t m : {3u, 6u, 12u, 24u}) {
      Rng rng(n * 1000 + m);
      const auto nv = traffic_control_instance(n, m, rng);
      Design3Feedback arr(nv);
      const auto res = arr.run();
      const double ratio = static_cast<double>(nv.edge_scalars()) /
                           static_cast<double>(nv.input_scalars());
      std::printf(
          "%5zu %4zu | %9" PRIu64 " %9" PRIu64 " | %8.4f %8.4f | %10zu "
          "%10zu %7.2f\n",
          n, m, res.stats.cycles,
          static_cast<std::uint64_t>((n + 1) * m),
          analytic_pu_design3(n, m), res.stats.utilization_wall(),
          nv.input_scalars(), nv.edge_scalars(), ratio);
    }
  }
  std::printf(
      "# paper: (N+1)m iterations; PU ~ 1; I/O ratio ~ m (order of "
      "magnitude).\n\n");
}

void bm_design3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  const auto nv = traffic_control_instance(n, m, rng);
  for (auto _ : state) {
    Design3Feedback arr(nv);
    auto res = arr.run();
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_design3)->Args({16, 8})->Args({64, 8})->Args({64, 32});

void bm_design3_vs_sequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  const auto g = traffic_control_instance(n, m, rng).materialize();
  for (auto _ : state) {
    auto res = solve_multistage(g);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_design3_vs_sequential)->Args({16, 8})->Args({64, 8})->Args({64, 32});

}  // namespace

SYSDP_BENCH_MAIN(report)
