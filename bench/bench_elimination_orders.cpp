// Ablation A7 — elimination order on nonserial objectives (Section 6's
// "favorable pattern of term interactions"): the same optimum from every
// order, but steps and the largest intermediate table (the induced width,
// i.e. the memory a hardware realisation must provide) vary sharply.
#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "nonserial/elimination.hpp"
#include "nonserial/nonserial_generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# A7: elimination-order ablation on random nonserial objectives\n");
  std::printf("%6s %5s %6s | %10s %10s | %12s %12s | %8s\n", "vars", "m",
              "terms", "steps(nat)", "steps(mind)", "table(nat)",
              "table(mind)", "same opt");
  for (const std::size_t n : {6u, 8u, 10u}) {
    for (const std::size_t terms : {n, 2 * n}) {
      Rng rng(n * 1000 + terms);
      const auto obj = random_sparse_objective(n, 3, terms, rng);
      const auto natural = solve_by_elimination(obj);
      const auto mind = solve_by_elimination(obj, min_degree_order(obj));
      std::printf("%6zu %5d %6zu | %10" PRIu64 " %10" PRIu64 " | %12" PRIu64
                  " %12" PRIu64 " | %8s\n",
                  n, 3, terms, natural.steps, mind.steps,
                  natural.largest_table, mind.largest_table,
                  natural.cost == mind.cost ? "yes" : "NO");
    }
  }
  std::printf(
      "# banded objectives (eq. 36) as the structured contrast - both "
      "orders match eq. (40):\n");
  for (const std::size_t n : {8u, 16u}) {
    Rng rng(n);
    const auto obj = random_banded_objective(n, 3, rng);
    const auto natural = solve_by_elimination(obj);
    const auto mind = solve_by_elimination(obj, min_degree_order(obj));
    std::printf("  banded n=%zu: steps %" PRIu64 " vs %" PRIu64
                ", eq40 = %" PRIu64 "\n",
                n, natural.steps, mind.steps,
                eq40_steps(std::vector<std::size_t>(n, 3)));
  }
  std::printf(
      "# takeaway: min-degree keeps intermediate tables small on "
      "unstructured problems; on banded problems the natural order is "
      "already optimal - the structure Table 1's monadic-nonserial row "
      "banks on.\n\n");
}

void bm_elimination_order(benchmark::State& state) {
  const bool smart = state.range(0) != 0;
  Rng rng(42);
  const auto obj = random_sparse_objective(10, 3, 14, rng);
  const auto order = smart ? min_degree_order(obj) : [&] {
    std::vector<std::size_t> o(10);
    std::iota(o.begin(), o.end(), 0);
    return o;
  }();
  for (auto _ : state) {
    auto res = solve_by_elimination(obj, order);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_elimination_order)->Arg(0)->Arg(1);

}  // namespace

SYSDP_BENCH_MAIN(report)
