// E7 — Proposition 2 / eq. (42): the broadcast-mapped AND/OR search of the
// matrix-chain graph completes in T_d(N) = N steps, at the price of
// broadcast buses for every level-skipping arc.
#include <cinttypes>
#include <cstdio>

#include "andor/chain_builder.hpp"
#include "andor/level_schedule.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/matrix_chain.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E7: Proposition 2 - broadcast AND/OR search, T_d(N) = N\n");
  std::printf("%6s | %8s %8s | %10s %10s\n", "N", "T_d(sim)", "T_d(=N)",
              "OR procs", "long arcs");
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto res = simulate_chain_broadcast(n);
    std::printf("%6zu | %8" PRIu64 " %8" PRIu64 " | %10zu %10" PRIu64 "\n",
                n, res.completion, t_broadcast(n), res.processors,
                res.long_arcs);
  }
  std::printf(
      "# paper: T_d(N) = N (Prop. 2); the long-arc count is the broadcast "
      "hardware the serialisation of E8 replaces with dummy nodes.\n\n");
}

void bm_broadcast_schedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = simulate_chain_broadcast(n);
    benchmark::DoNotOptimize(res.completion);
  }
}
BENCHMARK(bm_broadcast_schedule)->Arg(64)->Arg(256)->Arg(512);

void bm_chain_andor_eval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto dims = random_chain_dims(n, rng);
  const auto chain = build_chain_andor(dims);
  for (auto _ : state) {
    auto v = chain.graph.evaluate();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(bm_chain_andor_eval)->Arg(16)->Arg(64)->Arg(128);

void bm_chain_table_dp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto dims = random_chain_dims(n, rng);
  for (auto _ : state) {
    auto res = matrix_chain_order(dims);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_chain_table_dp)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

SYSDP_BENCH_MAIN(report)
