// bench_all — the perf-trajectory driver for the simulation backend.
//
// Runs the batched sweep workloads (the triangular family, the E1 design
// grid and the design ablation grid) through google-benchmark with a JSON
// reporter (the programmatic equivalent of --benchmark_format=json), then
// re-times each sweep directly — serial loop versus the batch runner, in
// the same process and the same run — and aggregates everything into
// BENCH_SIM.json at the path given by --out= (default: ./BENCH_SIM.json).
// Future PRs append to the trajectory by re-running this binary and
// diffing the JSON.
//
//   build/bench/bench_all --out=BENCH_SIM.json [--workers=N] [gbench flags]
//
// Speedup expectations scale with the host: on a >= 4-core machine the
// sweeps are embarrassingly parallel and the batch runner delivers >= 2x;
// the host block records hardware_concurrency so a 1-core container's
// ~1x is distinguishable from a regression.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "andor/pipeline_array.hpp"
#include "arrays/design1_modular.hpp"
#include "arrays/design2_modular.hpp"
#include "arrays/design3_modular.hpp"
#include "arrays/gkt_array.hpp"
#include "arrays/graph_adapter.hpp"
#include "arrays/triangular_array.hpp"
#include "graph/generators.hpp"
#include "sim/batch.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace sysdp;

// ------------------------------------------------------------ sweeps ------
// Each sweep is a named list of independent simulation jobs; the job result
// is a checksum (busy steps) so the compiler cannot elide the run and the
// serial/batch passes can be cross-checked.

struct Sweep {
  const char* name;
  std::size_t jobs;
  std::function<std::uint64_t(std::size_t)> job;
};

Sweep triangular_family_sweep() {
  static const std::size_t sizes[] = {16, 24, 32, 48, 64, 96, 128};
  constexpr std::size_t kKinds = 3;
  return {"triangular_family", std::size(sizes) * kKinds,
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = sizes[i / kKinds];
            Rng rng(i);
            switch (i % kKinds) {
              case 0: {
                GktArray arr(random_chain_dims(n, rng));
                return arr.run().stats.busy_steps;
              }
              case 1: {
                SerializedChainArray arr(random_chain_dims(n, rng));
                return arr.run().stats.busy_steps;
              }
              default: {
                std::uniform_int_distribution<Cost> freq(1, 40);
                std::vector<Cost> f(n);
                for (auto& x : f) x = freq(rng);
                return run_bst_array(f).stats.busy_steps;
              }
            }
          }};
}

Sweep e1_grid_sweep() {
  static const std::size_t ns[] = {4, 8, 16, 32, 64};
  static const std::size_t ms[] = {4, 8, 16};
  return {"design12_e1_grid", std::size(ns) * std::size(ms),
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = ns[i / std::size(ms)];
            const std::size_t m = ms[i % std::size(ms)];
            Rng rng(n * 100 + m);
            const auto g =
                with_single_source_sink(random_multistage(n - 1, m, rng));
            auto prob = to_string_product(g);
            Design1Modular d1(prob.mats, prob.v);
            Design2Modular d2(prob.mats, prob.v);
            return d1.run().busy_steps + d2.run().busy_steps;
          }};
}

Sweep ablation_grid_sweep() {
  static const std::size_t ns[] = {8, 16, 32};
  static const std::size_t ms[] = {4, 8, 16};
  return {"ablation_designs_grid", std::size(ns) * std::size(ms),
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = ns[i / std::size(ms)];
            const std::size_t m = ms[i % std::size(ms)];
            Rng rng(n * 37 + m);
            const auto nv = traffic_control_instance(n, m, rng);
            const auto g = nv.materialize();
            auto prob = to_string_product(g);
            Design1Modular d1(prob.mats, prob.v);
            Design2Modular d2(prob.mats, prob.v);
            Design3Modular d3(nv);
            return d1.run().busy_steps + d2.run().busy_steps +
                   d3.run().stats.busy_steps;
          }};
}

std::vector<Sweep> all_sweeps() {
  std::vector<Sweep> s;
  s.push_back(triangular_family_sweep());
  s.push_back(e1_grid_sweep());
  s.push_back(ablation_grid_sweep());
  return s;
}

std::size_t g_workers = 0;  // resolved in main()

// Register each sweep as a pair of google-benchmark entries so the JSON
// report carries the same workloads the aggregate section summarises.
void register_gbench_sweeps() {
  for (auto& sweep : all_sweeps()) {
    for (const bool batched : {false, true}) {
      const std::string name =
          std::string("bm_sweep_") + sweep.name + (batched ? "/batch" : "/serial");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [sweep, batched](benchmark::State& state) {
            std::optional<sim::ThreadPool> pool;
            if (batched) pool.emplace(g_workers);
            sim::BatchRunner runner(pool ? &*pool : nullptr);
            for (auto _ : state) {
              auto r = runner.run(sweep.jobs, sweep.job);
              benchmark::DoNotOptimize(r);
            }
            state.counters["jobs"] = static_cast<double>(sweep.jobs);
            state.counters["lanes"] = static_cast<double>(runner.lanes());
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// ----------------------------------------------------------- output -------

[[nodiscard]] bool write_json(
    const std::string& path,
    const std::vector<std::pair<Sweep, sim::BatchSpeedup>>& sweeps,
    const sim::ThroughputStats& engine_serial,
    const sim::ThroughputStats& engine_parallel,
    const std::string& gbench_json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_all: cannot write %s\n", path.c_str());
    return false;
  }
  char buf[256];
  out << "{\n";
  out << "  \"schema\": \"sysdp-bench-sim-v1\",\n";
  out << "  \"host\": {\n";
  out << "    \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "    \"pool_workers\": " << g_workers << ",\n";
  out << "    \"pool_lanes\": " << (g_workers + 1) << "\n  },\n";

  out << "  \"batch_sweeps\": [\n";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const auto& [sweep, s] = sweeps[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"jobs\": %zu, \"lanes\": %zu, "
                  "\"serial_seconds\": %.6f, \"batch_seconds\": %.6f, "
                  "\"speedup\": %.3f}%s\n",
                  sweep.name, s.jobs, s.lanes, s.serial_seconds,
                  s.batch_seconds, s.speedup(),
                  i + 1 < sweeps.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";

  const auto engine_entry = [&](const char* name,
                                const sim::ThroughputStats& t,
                                const char* trailer) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cycles\": %llu, "
                  "\"module_evals\": %llu, \"wall_seconds\": %.6f, "
                  "\"evals_per_sec\": %.0f}%s\n",
                  name, static_cast<unsigned long long>(t.cycles),
                  static_cast<unsigned long long>(t.module_evals),
                  t.wall_seconds, t.evals_per_sec(), trailer);
    out << buf;
  };
  out << "  \"engine_throughput\": [\n";
  engine_entry("design1_modular_serial", engine_serial, ",");
  engine_entry("design1_modular_parallel", engine_parallel, "");
  out << "  ],\n";

  // Raw google-benchmark report (--benchmark_format=json equivalent),
  // spliced in verbatim: it is already a JSON object.
  out << "  \"google_benchmark\": "
      << (gbench_json.empty() ? std::string("null") : gbench_json) << "\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_all: write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("bench_all: wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_SIM.json";
  g_workers = std::max<std::size_t>(sim::ThreadPool::default_workers(), 1);

  // Strip our own flags before handing argv to google-benchmark.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      g_workers = static_cast<std::size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());

  register_gbench_sweeps();
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }

  std::printf("# bench_all: google-benchmark pass (JSON captured)\n");
  std::ostringstream gbench_json;
  std::ostringstream gbench_err;
  benchmark::JSONReporter json_reporter;
  json_reporter.SetOutputStream(&gbench_json);
  json_reporter.SetErrorStream(&gbench_err);
  benchmark::RunSpecifiedBenchmarks(&json_reporter);
  benchmark::Shutdown();

  // Direct serial-vs-batch timing, same process, same run: the headline
  // speedup numbers.  The batched pass's results are cross-checked against
  // the serial pass so a racy backend fails loudly here, not just in CI.
  std::printf("# bench_all: aggregate pass (%zu workers + caller)\n",
              g_workers);
  sim::ThreadPool pool(g_workers);
  std::vector<std::pair<Sweep, sim::BatchSpeedup>> measured;
  for (auto& sweep : all_sweeps()) {
    sim::BatchRunner serial(nullptr);
    sim::WallTimer t1;
    const auto base = serial.run(sweep.jobs, sweep.job);
    sim::BatchSpeedup s;
    s.jobs = sweep.jobs;
    s.lanes = pool.num_lanes();
    s.serial_seconds = t1.seconds();
    sim::BatchRunner batched(&pool);
    sim::WallTimer t2;
    const auto par = batched.run(sweep.jobs, sweep.job);
    s.batch_seconds = t2.seconds();
    if (base != par) {
      std::fprintf(stderr, "bench_all: batch results diverge on %s\n",
                   sweep.name);
      return 1;
    }
    std::printf("  %-24s jobs=%3zu serial=%8.3fms batch=%8.3fms speedup=%.2fx\n",
                sweep.name, s.jobs, s.serial_seconds * 1e3,
                s.batch_seconds * 1e3, s.speedup());
    measured.emplace_back(std::move(sweep), s);
  }

  // Engine-level throughput on one wide array (96 PEs): cycles simulated
  // and module-evals/sec, serial engine versus threaded eval/commit.
  Rng rng(42);
  const auto g = with_single_source_sink(random_multistage(7, 96, rng));
  auto prob = to_string_product(g);
  const auto engine_run = [&](sim::ThreadPool* p) {
    sim::ThroughputStats t;
    sim::WallTimer timer;
    Design1Modular arr(prob.mats, prob.v);
    const auto res = arr.run(p);
    t.wall_seconds = timer.seconds();
    t.cycles = res.cycles;
    t.module_evals = res.cycles * (res.num_pes + 1);  // PEs + host feed
    return t;
  };
  const auto eng_serial = engine_run(nullptr);
  const auto eng_parallel = engine_run(&pool);
  std::printf("  engine 96-PE design1: serial %.0f evals/s, parallel %.0f evals/s\n",
              eng_serial.evals_per_sec(), eng_parallel.evals_per_sec());

  if (!write_json(out_path, measured, eng_serial, eng_parallel,
                  gbench_json.str())) {
    return 1;
  }
  return 0;
}
