// bench_all — the perf-trajectory driver for the simulation backend.
//
// Runs the batched sweep workloads (the triangular family, the E1 design
// grid, the design ablation grid and a fill/drain-heavy Design 1 sweep)
// through google-benchmark with a JSON reporter (the programmatic
// equivalent of --benchmark_format=json), then re-times each sweep
// directly — serial loop versus the batch runner, in the same process and
// the same run — and aggregates everything into BENCH_SIM.json at the path
// given by --out= (default: ./BENCH_SIM.json).  Future PRs append to the
// trajectory by re-running this binary and diffing the JSON.
//
//   build/bench/bench_all --out=BENCH_SIM.json [--workers=N]
//                         [--baseline=OLD.json] [--reduced]
//                         [--engine-tolerance=F] [gbench flags]
//
// --baseline=OLD.json compares this run's per-benchmark medians against a
// previously committed BENCH_SIM.json and emits a "regressions" section;
// any benchmark more than 15% slower than its baseline median makes the
// binary exit nonzero, which is how CI gates perf regressions.  --reduced
// skips the google-benchmark pass (the aggregate pass alone carries every
// number the baseline comparison needs), halving CI wall-clock.
//
// --engine-tolerance=F tightens the gate for the engine_throughput and
// compiled_throughput entries (e.g. 0.02 for 2%): the former run with no
// observers attached, so they measure exactly the telemetry layer's
// when-off overhead — the "zero overhead when off" contract of
// sim/observer.hpp — and the latter are flat-tape replays steady enough
// for the same tight comparison.  The design1_modular_observed entry
// carries a no-op observer and is reported for trend-watching at the
// default tolerance.
//
// The compiled_throughput section also carries a baseline-free gate: the
// compiled tape must replay at least 3x faster than the interpreted dense
// serial run on two or more families, else the binary exits nonzero.
//
// The compiled_batch_throughput section measures the batched executor
// (compile::BatchedCompiledEngine): one parameterised lowering per family,
// replayed across B lanes at once, against B independent single-lane
// CompiledEngine replays.  Its gate: per-instance throughput at B >= 8
// must be at least 2x the single-lane replay on two or more families.
// Each family also runs a rebind loop — 128 randomly re-weighted
// instances through the ONE lowering, no re-lowering — demonstrating the
// parameter plane's amortisation and reporting instances/sec.
//
// Speedup expectations scale with the host: on a >= 4-core machine the
// sweeps are embarrassingly parallel and the batch runner delivers >= 2x;
// the host block records hardware_concurrency so a 1-core container's
// ~1x is distinguishable from a regression.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "andor/pipeline_array.hpp"
#include "arrays/design1_modular.hpp"
#include "arrays/design2_modular.hpp"
#include "arrays/design3_modular.hpp"
#include "arrays/gkt_array.hpp"
#include "arrays/gkt_modular.hpp"
#include "arrays/graph_adapter.hpp"
#include "arrays/triangular_array.hpp"
#include "arrays/triangular_modular.hpp"
#include "compile/batch_engine.hpp"
#include "compile/engine.hpp"
#include "compile/lower.hpp"
#include "compile/parallel_engine.hpp"
#include "graph/generators.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace sysdp;

// ------------------------------------------------------------ sweeps ------
// Each sweep is a named list of independent simulation jobs; the job result
// is a checksum (busy steps) so the compiler cannot elide the run and the
// serial/batch passes can be cross-checked.

struct Sweep {
  const char* name;
  std::size_t jobs;
  std::function<std::uint64_t(std::size_t)> job;
};

Sweep triangular_family_sweep() {
  static const std::size_t sizes[] = {16, 24, 32, 48, 64, 96, 128};
  constexpr std::size_t kKinds = 3;
  return {"triangular_family", std::size(sizes) * kKinds,
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = sizes[i / kKinds];
            Rng rng(i);
            switch (i % kKinds) {
              case 0: {
                GktArray arr(random_chain_dims(n, rng));
                return arr.run().stats.busy_steps;
              }
              case 1: {
                SerializedChainArray arr(random_chain_dims(n, rng));
                return arr.run().stats.busy_steps;
              }
              default: {
                std::uniform_int_distribution<Cost> freq(1, 40);
                std::vector<Cost> f(n);
                for (auto& x : f) x = freq(rng);
                return run_bst_array(f).stats.busy_steps;
              }
            }
          }};
}

Sweep e1_grid_sweep() {
  static const std::size_t ns[] = {4, 8, 16, 32, 64};
  static const std::size_t ms[] = {4, 8, 16};
  return {"design12_e1_grid", std::size(ns) * std::size(ms),
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = ns[i / std::size(ms)];
            const std::size_t m = ms[i % std::size(ms)];
            Rng rng(n * 100 + m);
            const auto g =
                with_single_source_sink(random_multistage(n - 1, m, rng));
            auto prob = to_string_product(g);
            Design1Modular d1(prob.mats, prob.v);
            Design2Modular d2(prob.mats, prob.v);
            return d1.run().busy_steps + d2.run().busy_steps;
          }};
}

Sweep ablation_grid_sweep() {
  static const std::size_t ns[] = {8, 16, 32};
  static const std::size_t ms[] = {4, 8, 16};
  return {"ablation_designs_grid", std::size(ns) * std::size(ms),
          [](std::size_t i) -> std::uint64_t {
            const std::size_t n = ns[i / std::size(ms)];
            const std::size_t m = ms[i % std::size(ms)];
            Rng rng(n * 37 + m);
            const auto nv = traffic_control_instance(n, m, rng);
            const auto g = nv.materialize();
            auto prob = to_string_product(g);
            Design1Modular d1(prob.mats, prob.v);
            Design2Modular d2(prob.mats, prob.v);
            Design3Modular d3(nv);
            return d1.run().busy_steps + d2.run().busy_steps +
                   d3.run().stats.busy_steps;
          }};
}

/// Build the Q = 1 wide matrix-vector instance used by the fill/drain
/// sweep and the gating comparison: with a single multiply, PE p is active
/// for only m of the ~2m total cycles (fill while the vector streams in,
/// drain while results stream out), so roughly half of all dense evals are
/// idle — the workload activity gating targets.
std::pair<std::vector<Matrix<Cost>>, std::vector<Cost>> fill_drain_instance(
    std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::uniform_int_distribution<Cost> w(1, 40);
  Matrix<Cost> mat(m, m, 0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) mat(r, c) = w(rng);
  }
  std::vector<Cost> v(m);
  for (auto& x : v) x = w(rng);
  return {std::vector<Matrix<Cost>>{std::move(mat)}, std::move(v)};
}

Sweep fill_drain_sweep() {
  static const std::size_t ms[] = {192, 256, 384};
  return {"design1_fill_drain", std::size(ms),
          [](std::size_t i) -> std::uint64_t {
            const std::size_t m = ms[i];
            auto [mats, v] = fill_drain_instance(m, 9000 + m);
            Design1Modular d1(std::move(mats), std::move(v));
            return d1.run().busy_steps;
          }};
}

std::vector<Sweep> all_sweeps() {
  std::vector<Sweep> s;
  s.push_back(triangular_family_sweep());
  s.push_back(e1_grid_sweep());
  s.push_back(ablation_grid_sweep());
  s.push_back(fill_drain_sweep());
  return s;
}

std::size_t g_workers = 0;  // resolved in main()

// Register each sweep as a pair of google-benchmark entries so the JSON
// report carries the same workloads the aggregate section summarises.
void register_gbench_sweeps() {
  for (auto& sweep : all_sweeps()) {
    for (const bool batched : {false, true}) {
      const std::string name =
          std::string("bm_sweep_") + sweep.name + (batched ? "/batch" : "/serial");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [sweep, batched](benchmark::State& state) {
            std::optional<sim::ThreadPool> pool;
            if (batched) pool.emplace(g_workers);
            sim::BatchRunner runner(pool ? &*pool : nullptr);
            for (auto _ : state) {
              auto r = runner.run(sweep.jobs, sweep.job);
              benchmark::DoNotOptimize(r);
            }
            state.counters["jobs"] = static_cast<double>(sweep.jobs);
            state.counters["lanes"] = static_cast<double>(runner.lanes());
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// ------------------------------------------------------- measurement ------

/// Median of five timed runs of `body` — the unit the sweep and gating
/// baseline comparisons use, so a scheduling hiccup spanning a run or two
/// cannot fail CI.
template <typename F>
double median5_seconds(F&& body) {
  double t[5];
  for (double& x : t) {
    sim::WallTimer w;
    body();
    x = w.seconds();
  }
  std::sort(std::begin(t), std::end(t));
  return t[2];
}

/// Minimum of `reps` timed runs — for the engine_throughput entries, whose
/// gate tolerance (--engine-tolerance, 2% in CI) is far below the run-to-run
/// spread of a millisecond-scale body.  Scheduler noise on wall clock is
/// one-sided (contention only ever adds time), so the minimum is both the
/// least-biased estimate of the true cost and by far the steadiest, which is
/// what a tight cross-run comparison needs.
template <typename F>
double best_seconds(int reps, F&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    sim::WallTimer w;
    body();
    best = std::min(best, w.seconds());
  }
  return best;
}

/// One dense-vs-sparse engine comparison: the same instance run with
/// activity gating off and on, plus the sparse run's eval accounting.
struct GatingEntry {
  std::string name;
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  std::uint64_t active_evals = 0;
  std::uint64_t dense_evals = 0;

  [[nodiscard]] double speedup() const {
    return sparse_seconds > 0.0 ? dense_seconds / sparse_seconds : 0.0;
  }
  [[nodiscard]] double activity() const {
    return dense_evals > 0 ? static_cast<double>(active_evals) /
                                 static_cast<double>(dense_evals)
                           : 1.0;
  }
};

std::vector<GatingEntry> measure_gating() {
  std::vector<GatingEntry> out;
  {
    GatingEntry e;
    e.name = "design1_fill_drain_m384";
    auto [mats, v] = fill_drain_instance(384, 9384);
    std::uint64_t dense_busy = 0, sparse_busy = 0;
    e.dense_seconds = median5_seconds([&] {
      Design1Modular d(mats, v);
      dense_busy = d.run(nullptr, sim::Gating::kDense).busy_steps;
    });
    e.sparse_seconds = median5_seconds([&] {
      Design1Modular d(mats, v);
      const auto r = d.run(nullptr, sim::Gating::kSparse);
      sparse_busy = r.busy_steps;
      e.active_evals = r.active_evals;
      e.dense_evals = r.dense_evals;
    });
    if (dense_busy != sparse_busy) {
      std::fprintf(stderr, "bench_all: gating diverges on %s\n",
                   e.name.c_str());
      std::exit(1);
    }
    out.push_back(std::move(e));
  }
  {
    GatingEntry e;
    e.name = "design3_traffic_n48_m12";
    Rng rng(4812);
    const auto nv = traffic_control_instance(48, 12, rng);
    std::uint64_t dense_busy = 0, sparse_busy = 0;
    e.dense_seconds = median5_seconds([&] {
      Design3Modular d(nv);
      dense_busy = d.run(nullptr, sim::Gating::kDense).stats.busy_steps;
    });
    e.sparse_seconds = median5_seconds([&] {
      Design3Modular d(nv);
      const auto r = d.run(nullptr, sim::Gating::kSparse);
      sparse_busy = r.stats.busy_steps;
      e.active_evals = r.stats.active_evals;
      e.dense_evals = r.stats.dense_evals;
    });
    if (dense_busy != sparse_busy) {
      std::fprintf(stderr, "bench_all: gating diverges on %s\n",
                   e.name.c_str());
      std::exit(1);
    }
    out.push_back(std::move(e));
  }
  {
    // The 2-D GKT array is the headline gating workload: the wavefront
    // keeps only the flit-carrying diagonal band of cells busy (~1/5 of
    // cell-cycles at n=96 — the paper's worst processor-utilisation case),
    // so skipping the idle cells pays far more than on the linear arrays.
    GatingEntry e;
    e.name = "gkt_modular_n96";
    Rng rng(96096);
    const auto dims = random_chain_dims(96, rng);
    GktModularArray arr(dims);
    std::uint64_t dense_busy = 0, sparse_busy = 0;
    Cost dense_total = 0, sparse_total = 0;
    e.dense_seconds = median5_seconds([&] {
      const auto r = arr.run(nullptr, sim::Gating::kDense);
      dense_busy = r.stats.busy_steps;
      dense_total = r.total();
    });
    e.sparse_seconds = median5_seconds([&] {
      const auto r = arr.run(nullptr, sim::Gating::kSparse);
      sparse_busy = r.stats.busy_steps;
      sparse_total = r.total();
      e.active_evals = r.stats.active_evals;
      e.dense_evals = r.stats.dense_evals;
    });
    if (dense_busy != sparse_busy || dense_total != sparse_total) {
      std::fprintf(stderr, "bench_all: gating diverges on %s\n",
                   e.name.c_str());
      std::exit(1);
    }
    out.push_back(std::move(e));
  }
  return out;
}

// ------------------------------------------------- compiled backend -------

/// One compiled-vs-interpreted throughput comparison: the same instance
/// through the modular engine (dense, serial — the semantics the tape
/// replays bit-identically) and through CompiledEngine's flat tape.
/// Lowering runs once, outside the timed region: a tape is replayable, so
/// its one-time cost amortises the way a netlist elaboration does.
struct CompiledSample {
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t num_ops = 0;
  /// Activity accounting from the verification replay (ReplayResult):
  /// non-empty levels actually run, mean op-lanes per executed level, and
  /// how many design modules the tape's provenance attributes work to —
  /// the compiled counterparts of the interpreted utilisation columns.
  std::uint64_t levels_executed = 0;
  double level_occupancy = 0.0;
  std::uint64_t provenance_modules = 0;
  double interpreted_seconds = 0.0;
  double compiled_seconds = 0.0;

  [[nodiscard]] double speedup() const {
    return compiled_seconds > 0.0 ? interpreted_seconds / compiled_seconds
                                  : 0.0;
  }
  [[nodiscard]] double ops_per_sec() const {
    return compiled_seconds > 0.0
               ? static_cast<double>(num_ops) / compiled_seconds
               : 0.0;
  }
};

/// Floor for the in-binary compiled gate: at least two families must
/// replay >= this much faster than their interpreted dense serial run.
/// The measured margin is an order of magnitude beyond this — the floor
/// only has to separate "flat tape" from "accidentally re-interpreting".
constexpr double kCompiledSpeedupFloor = 3.0;

template <typename MakeArray, typename BusyOf>
CompiledSample measure_compiled_one(const char* name, MakeArray&& make,
                                    BusyOf&& busy_of) {
  CompiledSample s;
  s.name = name;
  std::uint64_t busy = 0;
  s.interpreted_seconds = best_seconds(9, [&] {
    auto arr = make();
    busy = busy_of(arr.run(nullptr, sim::Gating::kDense));
  });
  auto arr = make();
  auto low = compile::lower_array(arr);
  s.cycles = low.net.cycles();
  s.num_ops = low.net.num_ops();
  compile::CompiledEngine ce(low.net);
  ce.run_all();
  // The tape must carry exactly the oracle's busy steps and reproduce its
  // recorded outputs — a silent mismatch here would make the timing below
  // a comparison of different computations.
  if (s.num_ops != busy || ce.verify_outputs().found) {
    std::fprintf(stderr, "bench_all: compiled backend diverges on %s\n",
                 name);
    std::exit(1);
  }
  const compile::ReplayResult rres = ce.result();
  if (rres.ops_executed != s.num_ops) {
    std::fprintf(stderr,
                 "bench_all: %s replay accounted %llu ops for a tape of "
                 "%llu\n",
                 name, static_cast<unsigned long long>(rres.ops_executed),
                 static_cast<unsigned long long>(s.num_ops));
    std::exit(1);
  }
  s.levels_executed = rres.levels_executed;
  s.level_occupancy = rres.level_occupancy();
  s.provenance_modules = low.net.provenance.modules.size();
  s.compiled_seconds = best_seconds(9, [&] {
    ce.reset();
    ce.run_all();
    benchmark::DoNotOptimize(ce.now());
  });
  return s;
}

std::vector<CompiledSample> measure_compiled(
    const std::vector<Matrix<Cost>>& mats, const std::vector<Cost>& v) {
  std::vector<CompiledSample> out;
  out.push_back(measure_compiled_one(
      "compiled_design1_96pe",
      [&] { return Design1Modular(mats, v); },
      [](const RunResult<Cost>& r) { return r.busy_steps; }));
  {
    Rng rng(96096);  // same instance as the gkt_modular_n96 gating entry
    const auto dims = random_chain_dims(96, rng);
    out.push_back(measure_compiled_one(
        "compiled_gkt_n96", [&] { return GktModularArray(dims); },
        [](const GktModularArray::Result& r) { return r.stats.busy_steps; }));
  }
  {
    Rng rng(777);
    std::uniform_int_distribution<Cost> freq(1, 40);
    std::vector<Cost> f(96);
    for (auto& x : f) x = freq(rng);
    const BstRule rule(f);
    out.push_back(measure_compiled_one(
        "compiled_bst_n96",
        [&] { return TriangularModularArray<BstRule>(rule, rule.num_keys()); },
        [](const TriangularModularArray<BstRule>::Result& r) {
          return r.stats.busy_steps;
        }));
  }
  return out;
}

// ------------------------------------------------ batched compiled --------

/// One family's batched-replay measurement: a single parameterised
/// lowering, timed single-lane (CompiledEngine) and at B in {8, 16}
/// (BatchedCompiledEngine), plus a rebind loop that pushes 128 randomly
/// re-weighted instances through the same tape without re-lowering.
struct CompiledBatchSample {
  std::string name;
  std::uint64_t num_ops = 0;
  std::uint64_t num_params = 0;
  double single_seconds = 0.0;   ///< one CompiledEngine replay
  double batch8_seconds = 0.0;   ///< one 8-lane batched replay
  double batch16_seconds = 0.0;  ///< one 16-lane batched replay
  std::uint64_t rebound_instances = 0;
  double rebind_seconds = 0.0;

  [[nodiscard]] double per_instance_speedup(double batch_seconds,
                                            std::uint32_t b) const {
    const double per = batch_seconds / static_cast<double>(b);
    return per > 0.0 ? single_seconds / per : 0.0;
  }
  [[nodiscard]] double speedup_b8() const {
    return per_instance_speedup(batch8_seconds, 8);
  }
  [[nodiscard]] double speedup_b16() const {
    return per_instance_speedup(batch16_seconds, 16);
  }
  [[nodiscard]] double rebind_instances_per_sec() const {
    return rebind_seconds > 0.0
               ? static_cast<double>(rebound_instances) / rebind_seconds
               : 0.0;
  }
};

/// Floor for the in-binary batched gate: per-instance throughput at B = 8
/// must reach this multiple of the single-lane compiled replay on two or
/// more families, else the lane-major layout has stopped vectorising.
constexpr double kBatchPerInstanceFloor = 2.0;

template <typename MakeArray>
CompiledBatchSample measure_compiled_batch_one(const char* name,
                                               MakeArray&& make) {
  CompiledBatchSample s;
  s.name = name;
  auto arr = make();
  compile::LowerOptions opt;
  opt.parameterise = true;
  const auto low = compile::lower_array(arr, opt);
  s.num_ops = low.net.num_ops();
  s.num_params = low.net.num_params();

  // Single-lane baseline, after a checked replay so the timing below is a
  // timing of the right computation.
  compile::CompiledEngine ce(low.net);
  ce.run_all_checked();
  if (ce.verify_outputs().found) {
    std::fprintf(stderr, "bench_all: compiled backend diverges on %s\n",
                 name);
    std::exit(1);
  }
  s.single_seconds = best_seconds(9, [&] {
    ce.reset();
    ce.run_all();
    benchmark::DoNotOptimize(ce.now());
  });

  const auto batch_time = [&](std::uint32_t b) {
    compile::BatchedCompiledEngine be(low.net, b);
    be.run_all();
    for (std::uint32_t lane = 0; lane < b; ++lane) {
      if (be.verify_outputs(lane).found || be.fallback_levels() != 0) {
        std::fprintf(stderr,
                     "bench_all: batched replay diverges on %s lane %u\n",
                     name, lane);
        std::exit(1);
      }
    }
    return best_seconds(9, [&] {
      be.reset();
      be.run_all();
      benchmark::DoNotOptimize(be.now());
    });
  };
  s.batch8_seconds = batch_time(8);
  s.batch16_seconds = batch_time(16);

  // Rebind loop: 16 batches x 8 lanes = 128 instances of the family shape
  // with fresh random weight tables, all through the ONE lowering above —
  // the tape is never re-lowered, only rebound.
  {
    constexpr std::uint32_t kLanes = 8;
    constexpr std::uint32_t kBatches = 16;
    compile::BatchedCompiledEngine be(low.net, kLanes);
    Rng rng(0xb1d5 + s.num_ops);
    std::uniform_int_distribution<Cost> wdist(1, 40);
    std::vector<Cost> table(low.net.num_params());
    Cost sink = 0;
    sim::WallTimer wt;
    for (std::uint32_t batch = 0; batch < kBatches; ++batch) {
      for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
        for (auto& x : table) x = wdist(rng);
        be.bind(lane, table);
      }
      be.reset();
      be.run_all();
      for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
        sink ^= be.value(low.net.num_slots - 1, lane);
      }
    }
    s.rebind_seconds = wt.seconds();
    s.rebound_instances = std::uint64_t{kBatches} * kLanes;
    benchmark::DoNotOptimize(sink);
  }
  return s;
}

std::vector<CompiledBatchSample> measure_compiled_batch(
    const std::vector<Matrix<Cost>>& mats, const std::vector<Cost>& v) {
  // The three rebindable 96-wide families (Design 3 and the BST rule pin
  // instance data in interned constants, so they batch under the oracle
  // binding only and are covered by the lane-exactness tests instead).
  std::vector<CompiledBatchSample> out;
  out.push_back(measure_compiled_batch_one(
      "compiled_batch_design1_96pe",
      [&] { return Design1Modular(mats, v); }));
  {
    Rng rng(96096);  // same instance as the compiled_gkt_n96 entry
    const auto dims = random_chain_dims(96, rng);
    out.push_back(measure_compiled_batch_one(
        "compiled_batch_gkt_n96", [&] { return GktModularArray(dims); }));
  }
  {
    Rng rng(96955);
    const auto dims = random_chain_dims(96, rng);
    const ChainRule rule(dims);
    out.push_back(measure_compiled_batch_one(
        "compiled_batch_chain_n96", [&] {
          return TriangularModularArray<ChainRule>(rule,
                                                   rule.num_matrices());
        }));
  }
  return out;
}

// ----------------------------------------------- optimized replay ---------

/// One family's optimizer payoff: the same design lowered twice — once
/// untouched, once through the full opt-2 pipeline (compile/optimize.hpp)
/// — and both tapes replayed.  The families are the narrow string-product
/// pipelines whose fill/drain ramps leave levels nearly empty (occupancy
/// 2–4 op-lanes): exactly where per-level dispatch overhead dominates and
/// level fusion pays.  Wide tapes (gkt, bst) sit near 1.0x here by
/// design — fusion cannot create work, only remove level boundaries.
struct OptimizedSample {
  std::string name;
  std::uint64_t num_ops = 0;
  std::uint64_t levels_opt0 = 0;
  std::uint64_t levels_opt2 = 0;
  std::uint64_t ops_pruned = 0;
  std::uint64_t levels_fused = 0;
  double opt0_seconds = 0.0;
  double opt2_seconds = 0.0;

  [[nodiscard]] double speedup() const {
    return opt2_seconds > 0.0 ? opt0_seconds / opt2_seconds : 0.0;
  }
};

/// Floor for the in-binary optimizer gate: the opt-2 tape must replay at
/// least this much faster than the untouched tape on two or more of the
/// fill/drain-heavy families (measured margins are 1.45–1.74x).
constexpr double kOptimizedSpeedupFloor = 1.3;

template <typename MakeArray>
OptimizedSample measure_optimized_one(const char* name, MakeArray&& make) {
  OptimizedSample s;
  s.name = name;
  auto a0 = make();
  const auto low0 = compile::lower_array(a0);
  auto a2 = make();
  compile::LowerOptions lopt;
  lopt.optimize = 2;
  const auto low2 = compile::lower_array(a2, lopt);
  s.num_ops = low0.net.num_ops();
  s.levels_opt0 = low0.net.cycles();
  s.levels_opt2 = low2.net.cycles();
  s.ops_pruned = low2.net.stats.ops_pruned;
  s.levels_fused = low2.net.stats.levels_fused;
  const auto time_net = [&](const compile::CompiledNetlist& net) {
    compile::CompiledEngine ce(net);
    // Checked replay first: the optimized tape must stay op-for-op
    // bit-identical to the oracle, or the speedup below compares wrong
    // computations.
    if (ce.run_all_checked().found || ce.verify_outputs().found) {
      std::fprintf(stderr, "bench_all: optimized replay diverges on %s\n",
                   name);
      std::exit(1);
    }
    return best_seconds(9, [&] {
      ce.reset();
      ce.run_all();
      benchmark::DoNotOptimize(ce.now());
    });
  };
  s.opt0_seconds = time_net(low0.net);
  s.opt2_seconds = time_net(low2.net);
  return s;
}

std::vector<OptimizedSample> measure_optimized() {
  std::vector<OptimizedSample> out;
  {
    Rng rng(111);
    auto mats = random_matrix_string(96, 4, rng);
    std::uniform_int_distribution<Cost> w(1, 40);
    std::vector<Cost> v(4);
    for (auto& x : v) x = w(rng);
    out.push_back(measure_optimized_one("optimized_design1_q96_m4", [&] {
      return Design1Modular(mats, v);
    }));
    out.push_back(measure_optimized_one("optimized_design2_q96_m4", [&] {
      return Design2Modular(mats, v);
    }));
  }
  {
    Rng rng(642);
    const auto nv = traffic_control_instance(64, 2, rng);
    out.push_back(measure_optimized_one("optimized_design3_s64_w2",
                                        [&] { return Design3Modular(nv); }));
  }
  return out;
}

// ------------------------------------------------ parallel replay ---------

/// One wide-level family replayed serially (CompiledEngine) and through
/// ParallelCompiledEngine on a dedicated 4-worker pool (5 participants).
/// The family must carry wide dependency levels — the plan slices a level
/// only above ParallelReplayOptions::min_parallel_width — so the 2-D gkt
/// wavefront at n=192 (levels hundreds of op-lanes wide) is the shape
/// this decomposition exists for.
struct ParallelSample {
  std::string name;
  std::uint64_t num_ops = 0;
  std::uint64_t levels = 0;
  std::uint64_t parallel_levels = 0;
  std::uint64_t serial_levels = 0;
  std::uint64_t cuts_adjusted = 0;
  std::uint32_t participants = 0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;

  [[nodiscard]] double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

/// Floor for the in-binary parallel gate at 4 workers.  Enforced only when
/// the host has >= 4 hardware threads: on fewer cores the 5 participants
/// time-slice and the measurement degrades to an oversubscription test,
/// which the section's "degraded" flag records instead of failing CI.
constexpr double kParallelSpeedupFloor = 1.8;
constexpr std::size_t kParallelGateWorkers = 4;

template <typename MakeArray>
ParallelSample measure_parallel_one(const char* name, MakeArray&& make,
                                    sim::ThreadPool& ppool) {
  ParallelSample s;
  s.name = name;
  auto arr = make();
  const auto low = compile::lower_array(arr);
  s.num_ops = low.net.num_ops();
  s.levels = low.net.cycles();
  compile::CompiledEngine ce(low.net);
  if (ce.run_all_checked().found || ce.verify_outputs().found) {
    std::fprintf(stderr, "bench_all: compiled backend diverges on %s\n", name);
    std::exit(1);
  }
  s.serial_seconds = best_seconds(9, [&] {
    ce.reset();
    ce.run_all();
    benchmark::DoNotOptimize(ce.now());
  });
  compile::ParallelCompiledEngine pe(low.net, &ppool);
  pe.run_all();
  // Bit-exactness across the whole slot file, not just outputs: the
  // static slab cuts must reproduce the serial tape order everywhere.
  for (sim::SlotId slot = 0; slot < low.net.num_slots; ++slot) {
    if (pe.value(slot, 0) != ce.value(slot)) {
      std::fprintf(stderr, "bench_all: parallel replay diverges on %s\n",
                   name);
      std::exit(1);
    }
  }
  s.parallel_levels = pe.parallel_levels();
  s.serial_levels = pe.serial_levels();
  s.cuts_adjusted = pe.cuts_adjusted();
  s.participants = pe.participants();
  s.parallel_seconds = best_seconds(9, [&] {
    pe.reset();
    pe.run_all();
    benchmark::DoNotOptimize(pe.now());
  });
  return s;
}

std::vector<ParallelSample> measure_parallel(sim::ThreadPool& ppool) {
  std::vector<ParallelSample> out;
  {
    Rng rng(192192);
    const auto dims = random_chain_dims(192, rng);
    out.push_back(measure_parallel_one(
        "parallel_gkt_n192", [&] { return GktModularArray(dims); }, ppool));
  }
  {
    Rng rng(778);
    std::uniform_int_distribution<Cost> freq(1, 40);
    std::vector<Cost> f(192);
    for (auto& x : f) x = freq(rng);
    const BstRule rule(f);
    out.push_back(measure_parallel_one(
        "parallel_bst_n192",
        [&] { return TriangularModularArray<BstRule>(rule, rule.num_keys()); },
        ppool));
  }
  return out;
}

// --------------------------------------------------------- baseline -------

struct MetricSample {
  std::string name;  ///< e.g. "triangular_family/serial"
  double seconds = 0.0;
};

struct Comparison {
  std::string name;
  double baseline_seconds = 0.0;
  double current_seconds = 0.0;
  double tolerance = 0.15;

  [[nodiscard]] double ratio() const {
    return baseline_seconds > 0.0 ? current_seconds / baseline_seconds : 1.0;
  }
};

constexpr double kRegressionTolerance = 0.15;

// -------------------------------------------------------- host block ------

/// Build type baked in by bench/CMakeLists.txt; "unspecified" when built
/// outside CMake (e.g. a compile_commands-driven tool run).
#ifndef SYSDP_BUILD_TYPE
#define SYSDP_BUILD_TYPE "unspecified"
#endif
constexpr const char* kBuildType = SYSDP_BUILD_TYPE;

/// Host SIMD ISA availability as a JSON string-array body.  On x86 this is
/// detected at runtime (__builtin_cpu_supports) because the batched
/// executor's lane kernels are function-multiversioned — the binary is
/// compiled at baseline ISA yet dispatches AVX-512F/AVX2 clones on capable
/// hosts, so compile-time macros would under-report what actually ran.
/// Recording it makes cross-host BENCH_SIM.json diffs explainable — a
/// 2x-per-instance host and a 4x host usually differ right here.
std::string simd_isa_flags() {
  std::vector<const char*> isa;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f")) isa.push_back("avx512f");
  if (__builtin_cpu_supports("avx2")) isa.push_back("avx2");
  if (__builtin_cpu_supports("avx")) isa.push_back("avx");
  if (__builtin_cpu_supports("sse4.2")) isa.push_back("sse4.2");
#elif defined(__ARM_NEON)
  isa.push_back("neon");
#endif
  std::string out;
  for (std::size_t i = 0; i < isa.size(); ++i) {
    out += '"';
    out += isa[i];
    out += '"';
    if (i + 1 < isa.size()) out += ", ";
  }
  return out;
}

/// Entries gated by --engine-tolerance: the observer-free engine
/// throughput runs ("_observed" deliberately excluded — it carries a
/// no-op observer, so it measures when-on cost, not when-off overhead),
/// plus the compiled-tape replay timings, whose steadiness (flat arrays,
/// no dispatch) supports the same tight cross-run comparison.
bool engine_gated(const std::string& name) {
  if (name.rfind("compiled_", 0) == 0) return true;
  return name.rfind("design1_modular_", 0) == 0 &&
         name.find("_observed") == std::string::npos;
}

/// Pull {"name": ..., "<field>": X} pairs out of the named array section of
/// a BENCH_SIM.json written by this binary (one object per line — this is
/// a scanner for our own output format, not a general JSON parser).
std::vector<MetricSample> scan_section(const std::string& text,
                                       const std::string& section,
                                       const std::string& field,
                                       const std::string& suffix) {
  std::vector<MetricSample> out;
  const auto sec = text.find('"' + section + '"');
  if (sec == std::string::npos) return out;
  const auto sec_end = text.find(']', sec);
  std::size_t pos = sec;
  while (true) {
    const auto np = text.find("\"name\": \"", pos);
    if (np == std::string::npos || np > sec_end) break;
    const auto ns = np + 9;
    const auto ne = text.find('"', ns);
    if (ne == std::string::npos) break;
    const auto line_end = text.find('\n', ne);
    const auto fp = text.find('"' + field + "\": ", ne);
    if (fp != std::string::npos && fp < line_end) {
      out.push_back(MetricSample{
          text.substr(ns, ne - ns) + suffix,
          std::strtod(text.c_str() + fp + field.size() + 4, nullptr)});
    }
    pos = ne;
  }
  return out;
}

/// All comparable per-benchmark medians in a BENCH_SIM.json document.
std::vector<MetricSample> comparable_metrics(const std::string& text) {
  std::vector<MetricSample> out;
  for (auto& s : scan_section(text, "batch_sweeps", "serial_seconds",
                              "/serial")) {
    out.push_back(std::move(s));
  }
  for (auto& s : scan_section(text, "batch_sweeps", "batch_seconds",
                              "/batch")) {
    out.push_back(std::move(s));
  }
  for (auto& s : scan_section(text, "engine_throughput", "wall_seconds", "")) {
    out.push_back(std::move(s));
  }
  for (auto& s :
       scan_section(text, "compiled_throughput", "compiled_seconds", "")) {
    out.push_back(std::move(s));
  }
  for (auto& s : scan_section(text, "compiled_batch_throughput",
                              "batch8_seconds", "/b8")) {
    out.push_back(std::move(s));
  }
  for (auto& s : scan_section(text, "compiled_batch_throughput",
                              "batch16_seconds", "/b16")) {
    out.push_back(std::move(s));
  }
  // optimized_replay_throughput entries are deliberately absent: their
  // opt2 replays run in microseconds, where one tick of timer
  // quantisation dwarfs the 15% tolerance.  Their gate is the in-binary
  // >=1.3x opt0-vs-opt2 floor — a same-run ratio, immune to host drift.
  for (auto& s : scan_section(text, "parallel_replay_throughput",
                              "parallel_seconds", "/par")) {
    out.push_back(std::move(s));
  }
  for (auto& s : scan_section(text, "gating", "sparse_seconds", "/sparse")) {
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_SIM.json";
  std::string baseline_path;
  bool reduced = false;
  double engine_tolerance = kRegressionTolerance;
  g_workers = std::max<std::size_t>(sim::ThreadPool::default_workers(), 1);

  // Strip our own flags before handing argv to google-benchmark.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--reduced") == 0) {
      reduced = true;
    } else if (std::strncmp(argv[i], "--engine-tolerance=", 19) == 0) {
      engine_tolerance = std::strtod(argv[i] + 19, nullptr);
      if (engine_tolerance <= 0.0) {
        std::fprintf(stderr, "bench_all: bad --engine-tolerance\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      g_workers = static_cast<std::size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());

  register_gbench_sweeps();
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }

  std::ostringstream gbench_json;
  if (!reduced) {
    std::printf("# bench_all: google-benchmark pass (JSON captured)\n");
    std::ostringstream gbench_err;
    benchmark::JSONReporter json_reporter;
    json_reporter.SetOutputStream(&gbench_json);
    json_reporter.SetErrorStream(&gbench_err);
    benchmark::RunSpecifiedBenchmarks(&json_reporter);
  }
  benchmark::Shutdown();

  // Direct serial-vs-batch timing, same process, same run: the headline
  // speedup numbers, each the median of three passes.  The batched pass's
  // results are cross-checked against the serial pass so a racy backend
  // fails loudly here, not just in CI.
  std::printf("# bench_all: aggregate pass (%zu workers + caller)\n",
              g_workers);
  // A pool below two workers cannot demonstrate any thread-level speedup;
  // flag it loudly (and in the JSON's "degraded" markers) so a ~1x batch
  // column from a small container is never read as a regression.
  const bool pool_degraded = g_workers < 2;
  if (pool_degraded) {
    std::fprintf(stderr,
                 "bench_all: warning: pool has %zu worker(s) on %u hardware "
                 "threads — thread-level speedups on this host are degraded, "
                 "not regressions\n",
                 g_workers, std::thread::hardware_concurrency());
  }
  sim::ThreadPool pool(g_workers);
  std::vector<std::pair<Sweep, sim::BatchSpeedup>> measured;
  for (auto& sweep : all_sweeps()) {
    sim::BatchSpeedup s;
    s.jobs = sweep.jobs;
    s.lanes = pool.num_lanes();
    std::vector<std::uint64_t> base, par;
    sim::BatchRunner serial(nullptr);
    s.serial_seconds =
        median5_seconds([&] { base = serial.run(sweep.jobs, sweep.job); });
    sim::BatchRunner batched(&pool);
    s.batch_seconds =
        median5_seconds([&] { par = batched.run(sweep.jobs, sweep.job); });
    if (base != par) {
      std::fprintf(stderr, "bench_all: batch results diverge on %s\n",
                   sweep.name);
      return 1;
    }
    std::printf("  %-24s jobs=%3zu serial=%8.3fms batch=%8.3fms speedup=%.2fx\n",
                sweep.name, s.jobs, s.serial_seconds * 1e3,
                s.batch_seconds * 1e3, s.speedup());
    measured.emplace_back(std::move(sweep), s);
  }

  // Dense versus activity-gated engine on the fill/drain-heavy workloads:
  // same instance, same process, gating the only variable.
  const auto gating = measure_gating();
  for (const auto& e : gating) {
    std::printf("  gating %-24s dense=%8.3fms sparse=%8.3fms speedup=%.2fx activity=%.3f\n",
                e.name.c_str(), e.dense_seconds * 1e3, e.sparse_seconds * 1e3,
                e.speedup(), e.activity());
  }

  // Engine-level throughput on one wide array (96 PEs): cycles simulated
  // and module-evals/sec, serial engine versus threaded eval/commit.
  Rng rng(42);
  const auto g = with_single_source_sink(random_multistage(7, 96, rng));
  auto prob = to_string_product(g);
  struct EngineSample {
    sim::ThroughputStats t;
    std::uint64_t active_evals = 0;
    std::uint64_t dense_evals = 0;
  };
  const auto engine_run = [&](sim::ThreadPool* p) {
    EngineSample s;
    RunResult<Cost> res;
    s.t.wall_seconds = best_seconds(9, [&] {
      Design1Modular arr(prob.mats, prob.v);
      res = arr.run(p);
    });
    s.t.cycles = res.cycles;
    s.t.module_evals = res.active_evals;  // evals actually performed
    s.active_evals = res.active_evals;
    s.dense_evals = res.dense_evals;
    return s;
  };
  const auto eng_serial = engine_run(nullptr);
  const auto eng_parallel = engine_run(&pool);
  // Observer-attached variant: same workload with a do-nothing probe, so
  // the delta against design1_modular_serial is the telemetry layer's
  // when-on dispatch cost (the when-off cost is gated separately via
  // --engine-tolerance on the two entries above).
  sim::EngineObserver noop_observer;
  const auto engine_run_observed = [&] {
    EngineSample s;
    RunResult<Cost> res;
    s.t.wall_seconds = best_seconds(9, [&] {
      Design1Modular arr(prob.mats, prob.v);
      sim::Engine engine(nullptr, sim::Gating::kSparse);
      engine.add_observer(&noop_observer);
      res = arr.run(engine);
    });
    s.t.cycles = res.cycles;
    s.t.module_evals = res.active_evals;
    s.active_evals = res.active_evals;
    s.dense_evals = res.dense_evals;
    return s;
  };
  const auto eng_observed = engine_run_observed();
  std::printf("  engine 96-PE design1: serial %.0f evals/s, parallel %.0f evals/s, observed %.0f evals/s, activity %.3f\n",
              eng_serial.t.evals_per_sec(), eng_parallel.t.evals_per_sec(),
              eng_observed.t.evals_per_sec(),
              static_cast<double>(eng_serial.active_evals) /
                  static_cast<double>(eng_serial.dense_evals));

  // Compiled flat-tape replay versus the interpreted modular engine on the
  // same instances: the lowering pipeline's whole reason to exist.
  const auto compiled = measure_compiled(prob.mats, prob.v);
  std::size_t compiled_fast_families = 0;
  for (const auto& c : compiled) {
    if (c.speedup() >= kCompiledSpeedupFloor) ++compiled_fast_families;
    std::printf(
        "  compiled %-22s interpreted=%8.3fms compiled=%8.3fms speedup=%.1fx "
        "(%.0f ops/s, occupancy %.1f over %llu levels)\n",
        c.name.c_str(), c.interpreted_seconds * 1e3, c.compiled_seconds * 1e3,
        c.speedup(), c.ops_per_sec(), c.level_occupancy,
        static_cast<unsigned long long>(c.levels_executed));
  }

  // Batched compiled replay: one parameterised lowering per family, B
  // lanes per replay, per-instance throughput against the single-lane
  // replay, plus the 128-instance rebind loop on the same tape.
  const auto cbatch = measure_compiled_batch(prob.mats, prob.v);
  std::size_t batch_fast_families = 0;
  for (const auto& c : cbatch) {
    if (c.speedup_b8() >= kBatchPerInstanceFloor) ++batch_fast_families;
    std::printf(
        "  batch %-26s single=%8.3fms b8=%8.3fms (%.2fx/inst) "
        "b16=%8.3fms (%.2fx/inst) rebind=%llu inst @ %.0f inst/s\n",
        c.name.c_str(), c.single_seconds * 1e3, c.batch8_seconds * 1e3,
        c.speedup_b8(), c.batch16_seconds * 1e3, c.speedup_b16(),
        static_cast<unsigned long long>(c.rebound_instances),
        c.rebind_instances_per_sec());
  }

  // Optimizer payoff: the same families' tapes untouched versus opt-2.
  const auto optimized = measure_optimized();
  std::size_t optimized_fast_families = 0;
  for (const auto& c : optimized) {
    if (c.speedup() >= kOptimizedSpeedupFloor) ++optimized_fast_families;
    std::printf(
        "  optimized %-22s opt0=%8.3fms (%llu levels) opt2=%8.3fms "
        "(%llu levels, %llu fused, %llu pruned) speedup=%.2fx\n",
        c.name.c_str(), c.opt0_seconds * 1e3,
        static_cast<unsigned long long>(c.levels_opt0), c.opt2_seconds * 1e3,
        static_cast<unsigned long long>(c.levels_opt2),
        static_cast<unsigned long long>(c.levels_fused),
        static_cast<unsigned long long>(c.ops_pruned), c.speedup());
  }

  // Thread-parallel replay on the wide-level families, on a dedicated
  // 4-worker pool (the gate's fixed configuration, independent of
  // --workers).  On hosts below 4 hardware threads the 5 participants
  // time-slice, so the numbers are recorded but the gate is waived.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool parallel_degraded = hw_threads < kParallelGateWorkers;
  std::vector<ParallelSample> parallel;
  {
    sim::ThreadPool ppool(kParallelGateWorkers);
    parallel = measure_parallel(ppool);
  }
  std::size_t parallel_fast_families = 0;
  for (const auto& c : parallel) {
    if (c.speedup() >= kParallelSpeedupFloor) ++parallel_fast_families;
    std::printf(
        "  parallel %-23s serial=%8.3fms x%u=%8.3fms speedup=%.2fx "
        "(%llu/%llu levels sliced, %llu cuts adjusted)%s\n",
        c.name.c_str(), c.serial_seconds * 1e3, c.participants,
        c.parallel_seconds * 1e3, c.speedup(),
        static_cast<unsigned long long>(c.parallel_levels),
        static_cast<unsigned long long>(c.parallel_levels + c.serial_levels),
        static_cast<unsigned long long>(c.cuts_adjusted),
        parallel_degraded ? "  [degraded host]" : "");
  }

  // ----------------------------------------------------------- output -----
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_all: cannot write %s\n", out_path.c_str());
    return 1;
  }
  char buf[512];
  out << "{\n";
  out << "  \"schema\": \"sysdp-bench-sim-v3\",\n";
  out << "  \"host\": {\n";
  out << "    \"hardware_concurrency\": " << hw_threads << ",\n";
  out << "    \"pool_workers\": " << g_workers << ",\n";
  out << "    \"pool_lanes\": " << (g_workers + 1) << ",\n";
  out << "    \"degraded\": " << (pool_degraded ? "true" : "false") << ",\n";
  out << "    \"build_type\": \"" << kBuildType << "\",\n";
  out << "    \"simd\": [" << simd_isa_flags() << "]\n  },\n";

  // v3 sections are objects: the worker/host context each measurement ran
  // under rides with its entries, so a cross-host diff of one section is
  // self-explaining (a 1-worker container's ~1x batch column is marked
  // degraded right where it appears).  Sections that use no pool record
  // pool_workers 0 and are never degraded.
  const auto section_open = [&](const char* name, std::size_t workers,
                                bool degraded) {
    out << "  \"" << name << "\": {\n";
    out << "    \"pool_workers\": " << workers << ",\n";
    out << "    \"hardware_concurrency\": " << hw_threads << ",\n";
    out << "    \"degraded\": " << (degraded ? "true" : "false") << ",\n";
    out << "    \"entries\": [\n";
  };
  const auto section_close = [&] { out << "    ]\n  },\n"; };

  section_open("batch_sweeps", g_workers, pool_degraded);
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& [sweep, s] = measured[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"jobs\": %zu, \"lanes\": %zu, "
                  "\"serial_seconds\": %.6f, \"batch_seconds\": %.6f, "
                  "\"speedup\": %.3f}%s\n",
                  sweep.name, s.jobs, s.lanes, s.serial_seconds,
                  s.batch_seconds, s.speedup(),
                  i + 1 < measured.size() ? "," : "");
    out << buf;
  }
  section_close();

  section_open("gating", 0, false);
  for (std::size_t i = 0; i < gating.size(); ++i) {
    const auto& e = gating[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"dense_seconds\": %.6f, "
                  "\"sparse_seconds\": %.6f, \"speedup\": %.3f, "
                  "\"active_evals\": %llu, \"dense_evals\": %llu, "
                  "\"activity\": %.4f}%s\n",
                  e.name.c_str(), e.dense_seconds, e.sparse_seconds,
                  e.speedup(),
                  static_cast<unsigned long long>(e.active_evals),
                  static_cast<unsigned long long>(e.dense_evals),
                  e.activity(), i + 1 < gating.size() ? "," : "");
    out << buf;
  }
  section_close();

  const auto engine_entry = [&](const char* name, const EngineSample& s,
                                const char* trailer) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cycles\": %llu, "
                  "\"module_evals\": %llu, \"wall_seconds\": %.6f, "
                  "\"evals_per_sec\": %.0f, \"active_evals\": %llu, "
                  "\"dense_evals\": %llu, \"activity\": %.4f}%s\n",
                  name, static_cast<unsigned long long>(s.t.cycles),
                  static_cast<unsigned long long>(s.t.module_evals),
                  s.t.wall_seconds, s.t.evals_per_sec(),
                  static_cast<unsigned long long>(s.active_evals),
                  static_cast<unsigned long long>(s.dense_evals),
                  static_cast<double>(s.active_evals) /
                      static_cast<double>(s.dense_evals),
                  trailer);
    out << buf;
  };
  section_open("engine_throughput", g_workers, pool_degraded);
  engine_entry("design1_modular_serial", eng_serial, ",");
  engine_entry("design1_modular_parallel", eng_parallel, ",");
  engine_entry("design1_modular_observed", eng_observed, "");
  section_close();

  section_open("compiled_throughput", 0, false);
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const auto& c = compiled[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cycles\": %llu, "
                  "\"num_ops\": %llu, \"levels_executed\": %llu, "
                  "\"level_occupancy\": %.3f, \"provenance_modules\": %llu, "
                  "\"interpreted_seconds\": %.6f, "
                  "\"compiled_seconds\": %.6f, \"speedup\": %.3f, "
                  "\"compiled_ops_per_sec\": %.0f}%s\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.cycles),
                  static_cast<unsigned long long>(c.num_ops),
                  static_cast<unsigned long long>(c.levels_executed),
                  c.level_occupancy,
                  static_cast<unsigned long long>(c.provenance_modules),
                  c.interpreted_seconds, c.compiled_seconds, c.speedup(),
                  c.ops_per_sec(), i + 1 < compiled.size() ? "," : "");
    out << buf;
  }
  section_close();

  section_open("compiled_batch_throughput", 0, false);
  for (std::size_t i = 0; i < cbatch.size(); ++i) {
    const auto& c = cbatch[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"num_ops\": %llu, "
                  "\"num_params\": %llu, \"single_seconds\": %.6f, "
                  "\"batch8_seconds\": %.6f, \"batch16_seconds\": %.6f, "
                  "\"per_instance_speedup_b8\": %.3f, "
                  "\"per_instance_speedup_b16\": %.3f, "
                  "\"rebound_instances\": %llu, "
                  "\"rebind_instances_per_sec\": %.0f}%s\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.num_ops),
                  static_cast<unsigned long long>(c.num_params),
                  c.single_seconds, c.batch8_seconds, c.batch16_seconds,
                  c.speedup_b8(), c.speedup_b16(),
                  static_cast<unsigned long long>(c.rebound_instances),
                  c.rebind_instances_per_sec(),
                  i + 1 < cbatch.size() ? "," : "");
    out << buf;
  }
  section_close();

  section_open("optimized_replay_throughput", 0, false);
  for (std::size_t i = 0; i < optimized.size(); ++i) {
    const auto& c = optimized[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"num_ops\": %llu, "
                  "\"levels_opt0\": %llu, \"levels_opt2\": %llu, "
                  "\"levels_fused\": %llu, \"ops_pruned\": %llu, "
                  "\"opt0_seconds\": %.6f, \"opt2_seconds\": %.6f, "
                  "\"speedup\": %.3f}%s\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.num_ops),
                  static_cast<unsigned long long>(c.levels_opt0),
                  static_cast<unsigned long long>(c.levels_opt2),
                  static_cast<unsigned long long>(c.levels_fused),
                  static_cast<unsigned long long>(c.ops_pruned),
                  c.opt0_seconds, c.opt2_seconds, c.speedup(),
                  i + 1 < optimized.size() ? "," : "");
    out << buf;
  }
  section_close();

  section_open("parallel_replay_throughput", kParallelGateWorkers,
               parallel_degraded);
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const auto& c = parallel[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"num_ops\": %llu, "
                  "\"levels\": %llu, \"parallel_levels\": %llu, "
                  "\"serial_levels\": %llu, \"cuts_adjusted\": %llu, "
                  "\"participants\": %u, \"serial_seconds\": %.6f, "
                  "\"parallel_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.num_ops),
                  static_cast<unsigned long long>(c.levels),
                  static_cast<unsigned long long>(c.parallel_levels),
                  static_cast<unsigned long long>(c.serial_levels),
                  static_cast<unsigned long long>(c.cuts_adjusted),
                  c.participants, c.serial_seconds, c.parallel_seconds,
                  c.speedup(), i + 1 < parallel.size() ? "," : "");
    out << buf;
  }
  section_close();

  // Baseline comparison: per-benchmark medians against a committed
  // BENCH_SIM.json; only benchmarks present in both documents compare.
  std::size_t regressed = 0;
  if (!baseline_path.empty()) {
    std::ifstream bl(baseline_path);
    if (!bl) {
      std::fprintf(stderr, "bench_all: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(bl)),
                           std::istreambuf_iterator<char>());
    const auto old_metrics = comparable_metrics(text);
    std::ostringstream current_doc;
    {
      // The current metrics, in the same shape the scanner reads.
      std::ostringstream tmp;
      tmp << "  \"batch_sweeps\": [\n";
      for (const auto& [sweep, s] : measured) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"serial_seconds\": %.6f, "
                      "\"batch_seconds\": %.6f},\n",
                      sweep.name, s.serial_seconds, s.batch_seconds);
        tmp << buf;
      }
      tmp << "  ],\n  \"engine_throughput\": [\n";
      std::snprintf(buf, sizeof buf,
                    "    {\"name\": \"design1_modular_serial\", "
                    "\"wall_seconds\": %.6f},\n"
                    "    {\"name\": \"design1_modular_parallel\", "
                    "\"wall_seconds\": %.6f},\n"
                    "    {\"name\": \"design1_modular_observed\", "
                    "\"wall_seconds\": %.6f}\n  ],\n",
                    eng_serial.t.wall_seconds, eng_parallel.t.wall_seconds,
                    eng_observed.t.wall_seconds);
      tmp << buf;
      tmp << "  \"compiled_throughput\": [\n";
      for (const auto& c : compiled) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"compiled_seconds\": %.6f},\n",
                      c.name.c_str(), c.compiled_seconds);
        tmp << buf;
      }
      tmp << "  ],\n";
      tmp << "  \"compiled_batch_throughput\": [\n";
      for (const auto& c : cbatch) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"batch8_seconds\": %.6f, "
                      "\"batch16_seconds\": %.6f},\n",
                      c.name.c_str(), c.batch8_seconds, c.batch16_seconds);
        tmp << buf;
      }
      tmp << "  ],\n";
      tmp << "  \"optimized_replay_throughput\": [\n";
      for (const auto& c : optimized) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"opt2_seconds\": %.6f},\n",
                      c.name.c_str(), c.opt2_seconds);
        tmp << buf;
      }
      tmp << "  ],\n";
      tmp << "  \"parallel_replay_throughput\": [\n";
      for (const auto& c : parallel) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"parallel_seconds\": %.6f},\n",
                      c.name.c_str(), c.parallel_seconds);
        tmp << buf;
      }
      tmp << "  ],\n";
      tmp << "  \"gating\": [\n";
      for (const auto& e : gating) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"sparse_seconds\": %.6f},\n",
                      e.name.c_str(), e.sparse_seconds);
        tmp << buf;
      }
      tmp << "  ]\n";
      current_doc << tmp.str();
    }
    const auto new_metrics = comparable_metrics(current_doc.str());

    std::vector<Comparison> comps;
    for (const auto& nm : new_metrics) {
      for (const auto& om : old_metrics) {
        if (om.name == nm.name && om.seconds > 0.0) {
          const double tol = engine_gated(nm.name) ? engine_tolerance
                                                   : kRegressionTolerance;
          comps.push_back(Comparison{nm.name, om.seconds, nm.seconds, tol});
          break;
        }
      }
    }
    out << "  \"regressions\": {\n";
    out << "    \"baseline\": \"" << baseline_path << "\",\n";
    std::snprintf(buf, sizeof buf,
                  "    \"tolerance\": %.2f,\n    \"engine_tolerance\": %.2f,\n",
                  kRegressionTolerance, engine_tolerance);
    out << buf;
    out << "    \"compared\": " << comps.size() << ",\n";
    out << "    \"entries\": [\n";
    for (std::size_t i = 0; i < comps.size(); ++i) {
      const auto& c = comps[i];
      const bool bad = c.ratio() > 1.0 + c.tolerance;
      if (bad) ++regressed;
      std::snprintf(buf, sizeof buf,
                    "      {\"name\": \"%s\", \"baseline_seconds\": %.6f, "
                    "\"current_seconds\": %.6f, \"ratio\": %.3f, "
                    "\"tolerance\": %.2f, \"regressed\": %s}%s\n",
                    c.name.c_str(), c.baseline_seconds, c.current_seconds,
                    c.ratio(), c.tolerance, bad ? "true" : "false",
                    i + 1 < comps.size() ? "," : "");
      out << buf;
      std::printf("  baseline %-32s %8.3fms -> %8.3fms (%.2fx, tol %.0f%%)%s\n",
                  c.name.c_str(), c.baseline_seconds * 1e3,
                  c.current_seconds * 1e3, c.ratio(), c.tolerance * 100.0,
                  bad ? "  REGRESSED" : "");
    }
    out << "    ],\n";
    out << "    \"regressed\": " << regressed << "\n  },\n";
  } else {
    out << "  \"regressions\": null,\n";
  }

  // Raw google-benchmark report (--benchmark_format=json equivalent),
  // spliced in verbatim: it is already a JSON object.
  out << "  \"google_benchmark\": "
      << (gbench_json.str().empty() ? std::string("null") : gbench_json.str())
      << "\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_all: write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("bench_all: wrote %s\n", out_path.c_str());

  // In-binary compiled gate (no baseline needed): the flat tape must beat
  // the interpreted dense serial run by kCompiledSpeedupFloor on at least
  // two families, or the lowering pipeline has stopped paying for itself.
  if (compiled_fast_families < 2) {
    std::fprintf(stderr,
                 "bench_all: compiled backend >= %.1fx interpreted on only "
                 "%zu/%zu families (need >= 2)\n",
                 kCompiledSpeedupFloor, compiled_fast_families,
                 compiled.size());
    return 2;
  }

  // Batched gate: replaying B = 8 lanes at once must deliver >= 2x the
  // per-instance throughput of the single-lane replay on at least two
  // families, or the lane-major layout has stopped vectorising.
  if (batch_fast_families < 2) {
    std::fprintf(stderr,
                 "bench_all: batched replay >= %.1fx per-instance at B=8 on "
                 "only %zu/%zu families (need >= 2)\n",
                 kBatchPerInstanceFloor, batch_fast_families, cbatch.size());
    return 2;
  }

  // Optimizer gate: the opt-2 tape must beat the untouched tape by
  // kOptimizedSpeedupFloor on at least two of the fill/drain-heavy
  // families.  Serial replay of the same op stream — no host-parallelism
  // caveat applies, so this gate is unconditional.
  if (optimized_fast_families < 2) {
    std::fprintf(stderr,
                 "bench_all: optimized replay >= %.1fx on only %zu/%zu "
                 "families (need >= 2)\n",
                 kOptimizedSpeedupFloor, optimized_fast_families,
                 optimized.size());
    return 2;
  }

  // Parallel gate: at 4 workers, at least one wide-level family must
  // replay >= kParallelSpeedupFloor faster than the serial engine — but
  // only where the host can actually run 4 threads; below that the
  // section is marked degraded instead.
  if (!parallel_degraded && parallel_fast_families < 1) {
    std::fprintf(stderr,
                 "bench_all: parallel replay >= %.1fx at %zu workers on "
                 "0/%zu families (need >= 1)\n",
                 kParallelSpeedupFloor, kParallelGateWorkers,
                 parallel.size());
    return 2;
  }
  if (parallel_degraded) {
    std::fprintf(stderr,
                 "bench_all: note: parallel gate waived (host has %u "
                 "hardware threads, gate needs >= %zu)\n",
                 hw_threads, kParallelGateWorkers);
  }

  if (regressed > 0) {
    std::fprintf(stderr,
                 "bench_all: %zu benchmark(s) regressed beyond tolerance vs %s\n",
                 regressed, baseline_path.c_str());
    return 2;
  }
  return 0;
}
