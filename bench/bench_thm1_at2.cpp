// E5 — Theorem 1: S(N) T^2(N) >= Theta(N log2 N) T_1^2 with equality at
// S(N) = Theta(N / log2 N).  Sweeps S at several N and shows the minimum
// of S*T^2 sits at the critical granularity.
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dnc/metrics.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# E5: Theorem 1 - S*T^2 vs granularity S (lower-bound model)\n");
  for (const double n : {4096.0, 65536.0, 1048576.0}) {
    const double s_star = n / std::log2(n);
    std::printf("N = %.0f (N/log2 N = %.0f, N log2 N = %.3e)\n", n, s_star,
                n * std::log2(n));
    std::printf("  %12s | %14s | %10s\n", "S", "S*T^2", "vs N*lgN");
    for (const double factor : {1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0,
                                64.0}) {
      const double s = s_star * factor;
      if (s < 1 || s > n) continue;
      const double v = st2_lower_bound(n, s);
      std::printf("  %12.0f | %14.4e | %10.2f\n", s, v,
                  v / (n * std::log2(n)));
    }
  }
  std::printf(
      "# paper: the S*T^2 / (N log2 N) column bottoms out near S = "
      "N/log2(N) and grows in both directions (eqs. 27-28).\n\n");
}

void bm_st2_sweep(benchmark::State& state) {
  const double n = static_cast<double>(state.range(0));
  for (auto _ : state) {
    double best = 1e300;
    for (double s = 1; s <= n; s *= 1.1) {
      best = std::min(best, st2_lower_bound(n, s));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(bm_st2_sweep)->Arg(4096)->Arg(1 << 20);

}  // namespace

SYSDP_BENCH_MAIN(report)
