// Ablation A1 — scheduling policy for the divide-and-conquer AND-tree
// (Section 4).  The paper assumes an idealised schedule in eq. (29); this
// ablation quantifies how much the ready-task policy matters: Hu's
// highest-level-first (the implementation default) versus a FIFO work queue
// versus an adversarial lowest-level-first order.
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "dnc/metrics.hpp"
#include "dnc/schedule.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# A1: AND-tree scheduling-policy ablation (makespan, units of T_1)\n");
  std::printf("%6s %6s | %8s | %8s %8s %8s | %10s\n", "N", "K", "eq.(29)",
              "HLF", "FIFO", "LLF", "HLF PU");
  for (const std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    for (const std::uint64_t k : {8u, 64u, 341u, 1024u}) {
      const auto hlf =
          schedule_and_tree(n, k, SchedulePolicy::kHighestLevelFirst);
      const auto fifo = schedule_and_tree(n, k, SchedulePolicy::kFifo);
      const auto llf =
          schedule_and_tree(n, k, SchedulePolicy::kLowestLevelFirst);
      std::printf("%6zu %6" PRIu64 " | %8" PRIu64 " | %8" PRIu64 " %8" PRIu64
                  " %8" PRIu64 " | %10.4f\n",
                  n, k, dnc_time_eq29(n, k), hlf.makespan, fifo.makespan,
                  llf.makespan, hlf.utilization(k));
    }
  }
  std::printf(
      "# takeaway: Hu's level order never loses; naive policies pay a few "
      "extra wind-down steps, matching the slack eq. (29) absorbs in its "
      "floor-log term.\n\n");
}

void bm_policy(benchmark::State& state) {
  const auto policy = static_cast<SchedulePolicy>(state.range(0));
  for (auto _ : state) {
    auto res = schedule_and_tree(4096, 341, policy);
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(bm_policy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

SYSDP_BENCH_MAIN(report)
