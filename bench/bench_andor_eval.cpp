// Ablation A6 — evaluation strategies over AND/OR-graphs (Section 5/6.2):
// sequential bottom-up, level-parallel bottom-up with p processors, and
// top-down memoised search that visits only the queried subgraph.
#include <cinttypes>
#include <cstdio>

#include "andor/chain_builder.hpp"
#include "andor/level_evaluate.hpp"
#include "andor/regular_builder.hpp"
#include "andor/search.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf(
      "# A6: AND/OR evaluation strategies (regular reduction graphs, "
      "m = 3)\n");
  std::printf("%6s %6s | %9s | %9s %9s %9s | %12s %9s\n", "N", "nodes",
              "levels", "T(p=1)", "T(p=16)", "T(p=inf)", "topdown 1pair",
              "of total");
  Rng rng(1);
  for (const std::size_t n_seg : {4u, 16u, 64u}) {
    const auto g = random_multistage(n_seg + 1, 3, rng);
    const auto reg = build_regular_andor(g, 2);
    const auto p1 = evaluate_by_levels(reg.graph, 1);
    const auto p16 = evaluate_by_levels(reg.graph, 16);
    const auto pinf = evaluate_by_levels(reg.graph, 1u << 30);
    const auto td = solve_top_down(reg.graph, reg.top_id(0, 0));
    std::printf("%6zu %6zu | %9zu | %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                " | %12" PRIu64 " %8.1f%%\n",
                n_seg, reg.graph.size(), p1.levels, p1.steps, p16.steps,
                pinf.steps, td.visited,
                100.0 * static_cast<double>(td.visited) /
                    static_cast<double>(reg.graph.size()));
  }
  std::printf(
      "# unbounded processors collapse each level to one step (the graph "
      "height bounds parallel time); a top-down single-pair query already "
      "skips 10-64%% of the reduction graph, and the locality grows when "
      "the query is narrower than the structure:\n");
  // A narrower query: the chain graph's root does reach everything, but a
  // *sub*chain query uses only its triangle.
  Rng rng2(2);
  const auto dims = random_chain_dims(24, rng2);
  const auto chain = build_chain_andor(dims);
  const auto sub = solve_top_down(chain.graph, chain.or_id(0, 11));
  std::printf("chain n=24: querying m[0,11] visits %" PRIu64
              " of %zu nodes (%.1f%%)\n\n",
              sub.visited, chain.graph.size(),
              100.0 * static_cast<double>(sub.visited) /
                  static_cast<double>(chain.graph.size()));
}

void bm_level_eval(benchmark::State& state) {
  const auto p = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  const auto g = random_multistage(33, 3, rng);
  const auto reg = build_regular_andor(g, 2);
  for (auto _ : state) {
    auto res = evaluate_by_levels(reg.graph, p);
    benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(bm_level_eval)->Arg(1)->Arg(16);

void bm_top_down(benchmark::State& state) {
  Rng rng(4);
  const auto chain = build_chain_andor(random_chain_dims(48, rng));
  for (auto _ : state) {
    auto td = solve_top_down(chain.graph, chain.root);
    benchmark::DoNotOptimize(td.value);
  }
}
BENCHMARK(bm_top_down);

}  // namespace

SYSDP_BENCH_MAIN(report)
