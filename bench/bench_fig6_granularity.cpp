// E3 — Figure 6: KT^2 vs K for multiplying N = 4096 matrices by K
// synchronous systolic arrays (time model eq. 29).  The paper reports the
// minimum at K = 431 or 465; N / log2 N = 341.
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "dnc/metrics.hpp"
#include "dnc/schedule.hpp"

namespace {

using namespace sysdp;

void report() {
  const std::uint64_t n = 4096;
  std::printf("# E3: Figure 6 - K*T^2 vs K for N = %" PRIu64 " (eq. 29)\n",
              n);
  std::printf("%6s | %6s | %12s | %8s\n", "K", "T", "K*T^2", "PU");
  for (const std::uint64_t k :
       {1u,   16u,  64u,  128u, 256u, 300u, 341u, 400u, 431u,
        455u, 465u, 512u, 600u, 800u, 1024u, 1200u}) {
    std::printf("%6" PRIu64 " | %6" PRIu64 " | %12.0f | %8.4f\n", k,
                dnc_time_eq29(n, k), kt2_eq29(n, k), pu_eq29(n, k));
  }
  const auto best = minimize_kt2(n, 2 * n);
  std::printf("minimum: K = %" PRIu64 " with K*T^2 = %.0f\n", best.k,
              best.kt2);
  std::printf("paper:   K = 431 or 465; N/log2(N) = %.0f\n",
              static_cast<double>(n) / 12.0);
  std::printf("# the paper's candidates vs the curve:\n");
  for (const std::uint64_t k : {431u, 465u}) {
    std::printf("  K = %" PRIu64 ": K*T^2 = %.0f (%.1f%% above the curve "
                "minimum)\n",
                k, kt2_eq29(n, k),
                100.0 * (kt2_eq29(n, k) / best.kt2 - 1.0));
  }
  std::printf("\n");
}

void bm_minimize_kt2(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto best = minimize_kt2(n, 2 * n);
    benchmark::DoNotOptimize(best.k);
  }
}
BENCHMARK(bm_minimize_kt2)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_schedule_sim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    auto res = schedule_and_tree(n, k);
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(bm_schedule_sim)->Args({4096, 341})->Args({4096, 465});

}  // namespace

SYSDP_BENCH_MAIN(report)
