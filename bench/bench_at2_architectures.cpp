// Ablation A3 — AT^2 across architectures (Section 4's VLSI criteria).
// The broadcast AND/OR mapping finishes in N with Theta(n^4) bus wiring;
// the serialised (Figure 8) design takes 2N with Theta(n^3) dummy
// registers: the AT^2 crossover quantifies when planar systolic wiring
// pays off.
#include <cinttypes>
#include <cstdio>

#include "arrays/paper_metrics.hpp"
#include "bench_util.hpp"
#include "vlsi/area_model.hpp"

namespace {

using namespace sysdp;

void report() {
  std::printf("# A3: area and AT^2 - broadcast vs serialised chain search\n");
  std::printf("%5s | %12s %12s | %8s %8s | %14s %14s | %9s\n", "N",
              "A(bcast)", "A(serial)", "T=N", "T=2N", "AT2(bcast)",
              "AT2(serial)", "winner");
  for (const std::uint64_t n : {4u, 8u, 16u, 32u, 64u}) {
    const auto ab = area_chain_broadcast(n);
    const auto as = area_chain_serialized(n);
    const double atb = at2(ab, t_broadcast(n));
    const double ats = at2(as, t_pipelined(n));
    std::printf("%5" PRIu64 " | %12" PRIu64 " %12" PRIu64 " | %8" PRIu64
                " %8" PRIu64 " | %14.3e %14.3e | %9s\n",
                n, ab.total(), as.total(), t_broadcast(n), t_pipelined(n),
                atb, ats, atb < ats ? "broadcast" : "serial");
  }
  std::printf(
      "# paper: serialisation doubles T but removes the broadcast buses; "
      "the crossover (here between N = 32 and N = 64) is the 'additional hardware and "
      "delay is problem dependent' trade-off of Section 6.2.\n\n");

  std::printf("linear designs, area per problem size (m PEs):\n");
  std::printf("%5s | %10s %10s %10s (N = 64 stages)\n", "m", "design1",
              "design2", "design3");
  for (const std::uint64_t m : {4u, 16u, 64u}) {
    std::printf("%5" PRIu64 " | %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "\n",
                m, area_design1(m).total(), area_design2(m).total(),
                area_design3(m, 64).total());
  }
  std::printf(
      "# design 3 pays N*m path-register words for hardware path recovery."
      "\n\n");
}

void bm_area_chain(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto b = area_chain_broadcast(n);
    auto s = area_chain_serialized(n);
    benchmark::DoNotOptimize(b.total() + s.total());
  }
}
BENCHMARK(bm_area_chain)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

SYSDP_BENCH_MAIN(report)
