// E1 — eq. (9) / Section 3.2: Designs 1 and 2 on (N+1)-stage single-
// source/sink graphs.  Reproduces the iteration counts (N*m in the paper's
// accounting, which bills the initial load of D; (N-1)*m multiply
// iterations plus m-1 fill cycles in the simulator) and the processor
// utilisation PU = (N-2)/N + 1/(N m) -> 1.
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <optional>

#include "arrays/design1_modular.hpp"
#include "arrays/design2_modular.hpp"
#include "arrays/graph_adapter.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/multistage_dp.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/batch.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace sysdp;

MultistageGraph instance(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return with_single_source_sink(random_multistage(n - 1, m, rng));
}

void report() {
  std::printf(
      "# E1: Designs 1/2 on (N+1)-stage graphs - iteration counts and PU "
      "(eq. 9)\n");
  std::printf(
      "%6s %4s | %10s %10s %10s | %9s %9s | %8s %8s\n", "N", "m",
      "serial", "d1 cycles", "d2 cycles", "d1 busy", "d2 busy", "PU(eq9)",
      "PU(meas)");
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    for (const std::size_t m : {4u, 8u, 16u}) {
      const auto g = instance(n, m, n * 100 + m);
      const auto d1 = run_design1_shortest(g);
      const auto d2 = run_design2_shortest(g);
      const auto serial = serial_steps_design12(n, m);
      const double pu9 = analytic_pu_design12(n, m);
      const double pum =
          d1.utilization_iters(static_cast<std::uint64_t>(n) * m);
      std::printf(
          "%6zu %4zu | %10" PRIu64 " %10" PRIu64 " %10" PRIu64
          " | %9" PRIu64 " %9" PRIu64 " | %8.4f %8.4f\n",
          n, m, serial, d1.cycles, d2.cycles, d1.busy_steps, d2.busy_steps,
          pu9, pum);
    }
  }
  std::printf(
      "# paper: PU -> 1 as N, m grow; busy steps == sequential steps.\n\n");
}

void bm_design1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto g = instance(n, m, 42);
  for (auto _ : state) {
    auto res = run_design1_shortest(g);
    benchmark::DoNotOptimize(res.values);
  }
  state.counters["pu_eq9"] = analytic_pu_design12(n, m);
}
BENCHMARK(bm_design1)->Args({16, 8})->Args({64, 8})->Args({64, 16});

void bm_design2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto g = instance(n, m, 42);
  for (auto _ : state) {
    auto res = run_design2_shortest(g);
    benchmark::DoNotOptimize(res.values);
  }
}
BENCHMARK(bm_design2)->Args({16, 8})->Args({64, 8})->Args({64, 16});

void bm_sequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto g = instance(n, m, 42);
  for (auto _ : state) {
    auto res = solve_multistage(g);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(bm_sequential)->Args({16, 8})->Args({64, 8})->Args({64, 16});

// The whole E1 grid as one batch: every (N, m) point runs both modular
// designs on its own engine, so sweep points fan out across the pool.
// Arg(0) = serial loop; Arg(k) = k workers + caller.
void bm_e1_grid_batch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t ns[] = {4, 8, 16, 32, 64};
  const std::size_t ms[] = {4, 8, 16};
  const std::size_t jobs = std::size(ns) * std::size(ms);
  const auto job = [&](std::size_t i) -> std::uint64_t {
    const std::size_t n = ns[i / std::size(ms)];
    const std::size_t m = ms[i % std::size(ms)];
    const auto g = instance(n, m, n * 100 + m);
    auto prob = to_string_product(g);
    Design1Modular d1(prob.mats, prob.v);
    Design2Modular d2(prob.mats, prob.v);
    return d1.run().busy_steps + d2.run().busy_steps;
  };
  std::optional<sysdp::sim::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  sysdp::sim::BatchRunner runner(pool ? &*pool : nullptr);
  for (auto _ : state) {
    auto results = runner.run(jobs, job);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["lanes"] = static_cast<double>(runner.lanes());
}
BENCHMARK(bm_e1_grid_batch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Engine-level parallelism on one big array: all PEs eval/commit across
// the pool each cycle.  Arg(0) = serial engine.  Fine-grained fork-join
// per cycle only pays off for wide arrays on multi-core hosts; the point
// of benching it is to *measure* that boundary, not to assume it.
void bm_design1_modular_engine(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto g = instance(8, 96, 42);
  auto prob = to_string_product(g);
  std::optional<sysdp::sim::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  for (auto _ : state) {
    Design1Modular arr(prob.mats, prob.v);
    auto res = arr.run(pool ? &*pool : nullptr);
    benchmark::DoNotOptimize(res.values);
  }
}
BENCHMARK(bm_design1_modular_engine)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSDP_BENCH_MAIN(report)
