# Empty compiler generated dependencies file for bench_elimination_orders.
# This may be replaced when dependencies are built.
