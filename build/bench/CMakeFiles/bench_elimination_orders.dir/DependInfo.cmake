
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_elimination_orders.cpp" "bench/CMakeFiles/bench_elimination_orders.dir/bench_elimination_orders.cpp.o" "gcc" "bench/CMakeFiles/bench_elimination_orders.dir/bench_elimination_orders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vlsi/CMakeFiles/sysdp_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sysdp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sysdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arrays/CMakeFiles/sysdp_arrays.dir/DependInfo.cmake"
  "/root/repo/build/src/dnc/CMakeFiles/sysdp_dnc.dir/DependInfo.cmake"
  "/root/repo/build/src/andor/CMakeFiles/sysdp_andor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sysdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sysdp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nonserial/CMakeFiles/sysdp_nonserial.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
