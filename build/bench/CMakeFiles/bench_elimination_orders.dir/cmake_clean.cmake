file(REMOVE_RECURSE
  "CMakeFiles/bench_elimination_orders.dir/bench_elimination_orders.cpp.o"
  "CMakeFiles/bench_elimination_orders.dir/bench_elimination_orders.cpp.o.d"
  "bench_elimination_orders"
  "bench_elimination_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elimination_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
