file(REMOVE_RECURSE
  "CMakeFiles/bench_dataflow_orders.dir/bench_dataflow_orders.cpp.o"
  "CMakeFiles/bench_dataflow_orders.dir/bench_dataflow_orders.cpp.o.d"
  "bench_dataflow_orders"
  "bench_dataflow_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
