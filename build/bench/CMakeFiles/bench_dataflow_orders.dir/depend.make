# Empty dependencies file for bench_dataflow_orders.
# This may be replaced when dependencies are built.
