# Empty dependencies file for bench_prop1_pu.
# This may be replaced when dependencies are built.
