file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_pu.dir/bench_prop1_pu.cpp.o"
  "CMakeFiles/bench_prop1_pu.dir/bench_prop1_pu.cpp.o.d"
  "bench_prop1_pu"
  "bench_prop1_pu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_pu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
