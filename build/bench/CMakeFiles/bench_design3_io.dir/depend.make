# Empty dependencies file for bench_design3_io.
# This may be replaced when dependencies are built.
