file(REMOVE_RECURSE
  "CMakeFiles/bench_design3_io.dir/bench_design3_io.cpp.o"
  "CMakeFiles/bench_design3_io.dir/bench_design3_io.cpp.o.d"
  "bench_design3_io"
  "bench_design3_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design3_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
