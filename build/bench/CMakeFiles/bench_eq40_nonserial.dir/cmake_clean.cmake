file(REMOVE_RECURSE
  "CMakeFiles/bench_eq40_nonserial.dir/bench_eq40_nonserial.cpp.o"
  "CMakeFiles/bench_eq40_nonserial.dir/bench_eq40_nonserial.cpp.o.d"
  "bench_eq40_nonserial"
  "bench_eq40_nonserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq40_nonserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
