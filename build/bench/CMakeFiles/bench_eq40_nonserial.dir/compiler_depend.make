# Empty compiler generated dependencies file for bench_eq40_nonserial.
# This may be replaced when dependencies are built.
