# Empty compiler generated dependencies file for bench_design12_pu.
# This may be replaced when dependencies are built.
