file(REMOVE_RECURSE
  "CMakeFiles/bench_design12_pu.dir/bench_design12_pu.cpp.o"
  "CMakeFiles/bench_design12_pu.dir/bench_design12_pu.cpp.o.d"
  "bench_design12_pu"
  "bench_design12_pu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design12_pu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
