# Empty compiler generated dependencies file for bench_eq29_model_vs_sim.
# This may be replaced when dependencies are built.
