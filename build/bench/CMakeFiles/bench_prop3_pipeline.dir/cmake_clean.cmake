file(REMOVE_RECURSE
  "CMakeFiles/bench_prop3_pipeline.dir/bench_prop3_pipeline.cpp.o"
  "CMakeFiles/bench_prop3_pipeline.dir/bench_prop3_pipeline.cpp.o.d"
  "bench_prop3_pipeline"
  "bench_prop3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
