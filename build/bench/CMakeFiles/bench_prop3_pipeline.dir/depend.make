# Empty dependencies file for bench_prop3_pipeline.
# This may be replaced when dependencies are built.
