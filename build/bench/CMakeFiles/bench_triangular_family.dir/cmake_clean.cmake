file(REMOVE_RECURSE
  "CMakeFiles/bench_triangular_family.dir/bench_triangular_family.cpp.o"
  "CMakeFiles/bench_triangular_family.dir/bench_triangular_family.cpp.o.d"
  "bench_triangular_family"
  "bench_triangular_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangular_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
