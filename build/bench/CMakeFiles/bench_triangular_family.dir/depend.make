# Empty dependencies file for bench_triangular_family.
# This may be replaced when dependencies are built.
