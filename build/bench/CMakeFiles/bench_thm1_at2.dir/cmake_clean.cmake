file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_at2.dir/bench_thm1_at2.cpp.o"
  "CMakeFiles/bench_thm1_at2.dir/bench_thm1_at2.cpp.o.d"
  "bench_thm1_at2"
  "bench_thm1_at2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_at2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
