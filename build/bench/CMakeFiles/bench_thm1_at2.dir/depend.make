# Empty dependencies file for bench_thm1_at2.
# This may be replaced when dependencies are built.
