file(REMOVE_RECURSE
  "CMakeFiles/bench_prop2_broadcast.dir/bench_prop2_broadcast.cpp.o"
  "CMakeFiles/bench_prop2_broadcast.dir/bench_prop2_broadcast.cpp.o.d"
  "bench_prop2_broadcast"
  "bench_prop2_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop2_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
