file(REMOVE_RECURSE
  "CMakeFiles/bench_andor_eval.dir/bench_andor_eval.cpp.o"
  "CMakeFiles/bench_andor_eval.dir/bench_andor_eval.cpp.o.d"
  "bench_andor_eval"
  "bench_andor_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_andor_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
