# Empty compiler generated dependencies file for bench_andor_eval.
# This may be replaced when dependencies are built.
