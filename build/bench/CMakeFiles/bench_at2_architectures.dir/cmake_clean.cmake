file(REMOVE_RECURSE
  "CMakeFiles/bench_at2_architectures.dir/bench_at2_architectures.cpp.o"
  "CMakeFiles/bench_at2_architectures.dir/bench_at2_architectures.cpp.o.d"
  "bench_at2_architectures"
  "bench_at2_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_at2_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
