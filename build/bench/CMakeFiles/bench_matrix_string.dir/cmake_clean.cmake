file(REMOVE_RECURSE
  "CMakeFiles/bench_matrix_string.dir/bench_matrix_string.cpp.o"
  "CMakeFiles/bench_matrix_string.dir/bench_matrix_string.cpp.o.d"
  "bench_matrix_string"
  "bench_matrix_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matrix_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
