# Empty compiler generated dependencies file for bench_matrix_string.
# This may be replaced when dependencies are built.
