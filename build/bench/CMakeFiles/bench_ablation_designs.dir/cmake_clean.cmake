file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_designs.dir/bench_ablation_designs.cpp.o"
  "CMakeFiles/bench_ablation_designs.dir/bench_ablation_designs.cpp.o.d"
  "bench_ablation_designs"
  "bench_ablation_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
