file(REMOVE_RECURSE
  "CMakeFiles/sysdp_vlsi.dir/area_model.cpp.o"
  "CMakeFiles/sysdp_vlsi.dir/area_model.cpp.o.d"
  "libsysdp_vlsi.a"
  "libsysdp_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
