# Empty compiler generated dependencies file for sysdp_vlsi.
# This may be replaced when dependencies are built.
