file(REMOVE_RECURSE
  "libsysdp_vlsi.a"
)
