file(REMOVE_RECURSE
  "libsysdp_sim.a"
)
