# Empty dependencies file for sysdp_sim.
# This may be replaced when dependencies are built.
