file(REMOVE_RECURSE
  "CMakeFiles/sysdp_sim.dir/engine.cpp.o"
  "CMakeFiles/sysdp_sim.dir/engine.cpp.o.d"
  "libsysdp_sim.a"
  "libsysdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
