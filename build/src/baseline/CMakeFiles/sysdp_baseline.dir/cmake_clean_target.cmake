file(REMOVE_RECURSE
  "libsysdp_baseline.a"
)
