# Empty compiler generated dependencies file for sysdp_baseline.
# This may be replaced when dependencies are built.
