file(REMOVE_RECURSE
  "CMakeFiles/sysdp_baseline.dir/matrix_chain.cpp.o"
  "CMakeFiles/sysdp_baseline.dir/matrix_chain.cpp.o.d"
  "CMakeFiles/sysdp_baseline.dir/multistage_dp.cpp.o"
  "CMakeFiles/sysdp_baseline.dir/multistage_dp.cpp.o.d"
  "libsysdp_baseline.a"
  "libsysdp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
