file(REMOVE_RECURSE
  "libsysdp_semiring.a"
)
