# Empty compiler generated dependencies file for sysdp_semiring.
# This may be replaced when dependencies are built.
