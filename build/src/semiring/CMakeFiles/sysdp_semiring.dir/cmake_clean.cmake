file(REMOVE_RECURSE
  "CMakeFiles/sysdp_semiring.dir/cost.cpp.o"
  "CMakeFiles/sysdp_semiring.dir/cost.cpp.o.d"
  "libsysdp_semiring.a"
  "libsysdp_semiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
