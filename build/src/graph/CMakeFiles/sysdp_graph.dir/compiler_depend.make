# Empty compiler generated dependencies file for sysdp_graph.
# This may be replaced when dependencies are built.
