file(REMOVE_RECURSE
  "CMakeFiles/sysdp_graph.dir/generators.cpp.o"
  "CMakeFiles/sysdp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/sysdp_graph.dir/interaction_graph.cpp.o"
  "CMakeFiles/sysdp_graph.dir/interaction_graph.cpp.o.d"
  "CMakeFiles/sysdp_graph.dir/multistage_graph.cpp.o"
  "CMakeFiles/sysdp_graph.dir/multistage_graph.cpp.o.d"
  "CMakeFiles/sysdp_graph.dir/node_value_graph.cpp.o"
  "CMakeFiles/sysdp_graph.dir/node_value_graph.cpp.o.d"
  "libsysdp_graph.a"
  "libsysdp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
