
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/sysdp_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/sysdp_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/interaction_graph.cpp" "src/graph/CMakeFiles/sysdp_graph.dir/interaction_graph.cpp.o" "gcc" "src/graph/CMakeFiles/sysdp_graph.dir/interaction_graph.cpp.o.d"
  "/root/repo/src/graph/multistage_graph.cpp" "src/graph/CMakeFiles/sysdp_graph.dir/multistage_graph.cpp.o" "gcc" "src/graph/CMakeFiles/sysdp_graph.dir/multistage_graph.cpp.o.d"
  "/root/repo/src/graph/node_value_graph.cpp" "src/graph/CMakeFiles/sysdp_graph.dir/node_value_graph.cpp.o" "gcc" "src/graph/CMakeFiles/sysdp_graph.dir/node_value_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
