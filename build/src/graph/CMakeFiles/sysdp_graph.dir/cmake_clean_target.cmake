file(REMOVE_RECURSE
  "libsysdp_graph.a"
)
