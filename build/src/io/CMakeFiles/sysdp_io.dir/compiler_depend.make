# Empty compiler generated dependencies file for sysdp_io.
# This may be replaced when dependencies are built.
