
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/problem_io.cpp" "src/io/CMakeFiles/sysdp_io.dir/problem_io.cpp.o" "gcc" "src/io/CMakeFiles/sysdp_io.dir/problem_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nonserial/CMakeFiles/sysdp_nonserial.dir/DependInfo.cmake"
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
