file(REMOVE_RECURSE
  "libsysdp_io.a"
)
