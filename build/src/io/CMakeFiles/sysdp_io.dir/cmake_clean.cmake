file(REMOVE_RECURSE
  "CMakeFiles/sysdp_io.dir/problem_io.cpp.o"
  "CMakeFiles/sysdp_io.dir/problem_io.cpp.o.d"
  "libsysdp_io.a"
  "libsysdp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
