# Empty dependencies file for sysdp_core.
# This may be replaced when dependencies are built.
