file(REMOVE_RECURSE
  "CMakeFiles/sysdp_core.dir/classification.cpp.o"
  "CMakeFiles/sysdp_core.dir/classification.cpp.o.d"
  "CMakeFiles/sysdp_core.dir/solver.cpp.o"
  "CMakeFiles/sysdp_core.dir/solver.cpp.o.d"
  "CMakeFiles/sysdp_core.dir/table1.cpp.o"
  "CMakeFiles/sysdp_core.dir/table1.cpp.o.d"
  "libsysdp_core.a"
  "libsysdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
