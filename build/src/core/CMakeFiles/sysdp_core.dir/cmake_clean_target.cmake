file(REMOVE_RECURSE
  "libsysdp_core.a"
)
