file(REMOVE_RECURSE
  "CMakeFiles/sysdp_andor.dir/andor_graph.cpp.o"
  "CMakeFiles/sysdp_andor.dir/andor_graph.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/chain_builder.cpp.o"
  "CMakeFiles/sysdp_andor.dir/chain_builder.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/level_evaluate.cpp.o"
  "CMakeFiles/sysdp_andor.dir/level_evaluate.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/level_schedule.cpp.o"
  "CMakeFiles/sysdp_andor.dir/level_schedule.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/pipeline_array.cpp.o"
  "CMakeFiles/sysdp_andor.dir/pipeline_array.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/regular_builder.cpp.o"
  "CMakeFiles/sysdp_andor.dir/regular_builder.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/search.cpp.o"
  "CMakeFiles/sysdp_andor.dir/search.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/serialize.cpp.o"
  "CMakeFiles/sysdp_andor.dir/serialize.cpp.o.d"
  "CMakeFiles/sysdp_andor.dir/stage_reduction.cpp.o"
  "CMakeFiles/sysdp_andor.dir/stage_reduction.cpp.o.d"
  "libsysdp_andor.a"
  "libsysdp_andor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_andor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
