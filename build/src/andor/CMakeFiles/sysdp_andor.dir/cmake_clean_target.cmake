file(REMOVE_RECURSE
  "libsysdp_andor.a"
)
