
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/andor/andor_graph.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/andor_graph.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/andor_graph.cpp.o.d"
  "/root/repo/src/andor/chain_builder.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/chain_builder.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/chain_builder.cpp.o.d"
  "/root/repo/src/andor/level_evaluate.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/level_evaluate.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/level_evaluate.cpp.o.d"
  "/root/repo/src/andor/level_schedule.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/level_schedule.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/level_schedule.cpp.o.d"
  "/root/repo/src/andor/pipeline_array.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/pipeline_array.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/pipeline_array.cpp.o.d"
  "/root/repo/src/andor/regular_builder.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/regular_builder.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/regular_builder.cpp.o.d"
  "/root/repo/src/andor/search.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/search.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/search.cpp.o.d"
  "/root/repo/src/andor/serialize.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/serialize.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/serialize.cpp.o.d"
  "/root/repo/src/andor/stage_reduction.cpp" "src/andor/CMakeFiles/sysdp_andor.dir/stage_reduction.cpp.o" "gcc" "src/andor/CMakeFiles/sysdp_andor.dir/stage_reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sysdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sysdp_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
