# Empty dependencies file for sysdp_andor.
# This may be replaced when dependencies are built.
