
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arrays/design1_modular.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/design1_modular.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/design1_modular.cpp.o.d"
  "/root/repo/src/arrays/design2_modular.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/design2_modular.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/design2_modular.cpp.o.d"
  "/root/repo/src/arrays/design3_feedback.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/design3_feedback.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/design3_feedback.cpp.o.d"
  "/root/repo/src/arrays/design3_modular.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/design3_modular.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/design3_modular.cpp.o.d"
  "/root/repo/src/arrays/gkt_array.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/gkt_array.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/gkt_array.cpp.o.d"
  "/root/repo/src/arrays/gkt_rtl.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/gkt_rtl.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/gkt_rtl.cpp.o.d"
  "/root/repo/src/arrays/graph_adapter.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/graph_adapter.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/graph_adapter.cpp.o.d"
  "/root/repo/src/arrays/triangular_array.cpp" "src/arrays/CMakeFiles/sysdp_arrays.dir/triangular_array.cpp.o" "gcc" "src/arrays/CMakeFiles/sysdp_arrays.dir/triangular_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sysdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
