# Empty compiler generated dependencies file for sysdp_arrays.
# This may be replaced when dependencies are built.
