file(REMOVE_RECURSE
  "libsysdp_arrays.a"
)
