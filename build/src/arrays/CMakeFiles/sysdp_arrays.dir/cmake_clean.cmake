file(REMOVE_RECURSE
  "CMakeFiles/sysdp_arrays.dir/design1_modular.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/design1_modular.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/design2_modular.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/design2_modular.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/design3_feedback.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/design3_feedback.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/design3_modular.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/design3_modular.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/gkt_array.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/gkt_array.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/gkt_rtl.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/gkt_rtl.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/graph_adapter.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/graph_adapter.cpp.o.d"
  "CMakeFiles/sysdp_arrays.dir/triangular_array.cpp.o"
  "CMakeFiles/sysdp_arrays.dir/triangular_array.cpp.o.d"
  "libsysdp_arrays.a"
  "libsysdp_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
