
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnc/and_tree.cpp" "src/dnc/CMakeFiles/sysdp_dnc.dir/and_tree.cpp.o" "gcc" "src/dnc/CMakeFiles/sysdp_dnc.dir/and_tree.cpp.o.d"
  "/root/repo/src/dnc/dataflow.cpp" "src/dnc/CMakeFiles/sysdp_dnc.dir/dataflow.cpp.o" "gcc" "src/dnc/CMakeFiles/sysdp_dnc.dir/dataflow.cpp.o.d"
  "/root/repo/src/dnc/metrics.cpp" "src/dnc/CMakeFiles/sysdp_dnc.dir/metrics.cpp.o" "gcc" "src/dnc/CMakeFiles/sysdp_dnc.dir/metrics.cpp.o.d"
  "/root/repo/src/dnc/schedule.cpp" "src/dnc/CMakeFiles/sysdp_dnc.dir/schedule.cpp.o" "gcc" "src/dnc/CMakeFiles/sysdp_dnc.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
