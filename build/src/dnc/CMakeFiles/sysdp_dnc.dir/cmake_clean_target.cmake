file(REMOVE_RECURSE
  "libsysdp_dnc.a"
)
