# Empty dependencies file for sysdp_dnc.
# This may be replaced when dependencies are built.
