file(REMOVE_RECURSE
  "CMakeFiles/sysdp_dnc.dir/and_tree.cpp.o"
  "CMakeFiles/sysdp_dnc.dir/and_tree.cpp.o.d"
  "CMakeFiles/sysdp_dnc.dir/dataflow.cpp.o"
  "CMakeFiles/sysdp_dnc.dir/dataflow.cpp.o.d"
  "CMakeFiles/sysdp_dnc.dir/metrics.cpp.o"
  "CMakeFiles/sysdp_dnc.dir/metrics.cpp.o.d"
  "CMakeFiles/sysdp_dnc.dir/schedule.cpp.o"
  "CMakeFiles/sysdp_dnc.dir/schedule.cpp.o.d"
  "libsysdp_dnc.a"
  "libsysdp_dnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_dnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
