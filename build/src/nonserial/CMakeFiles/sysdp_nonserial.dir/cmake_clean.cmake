file(REMOVE_RECURSE
  "CMakeFiles/sysdp_nonserial.dir/elimination.cpp.o"
  "CMakeFiles/sysdp_nonserial.dir/elimination.cpp.o.d"
  "CMakeFiles/sysdp_nonserial.dir/grouping.cpp.o"
  "CMakeFiles/sysdp_nonserial.dir/grouping.cpp.o.d"
  "CMakeFiles/sysdp_nonserial.dir/nonserial_generators.cpp.o"
  "CMakeFiles/sysdp_nonserial.dir/nonserial_generators.cpp.o.d"
  "CMakeFiles/sysdp_nonserial.dir/objective.cpp.o"
  "CMakeFiles/sysdp_nonserial.dir/objective.cpp.o.d"
  "CMakeFiles/sysdp_nonserial.dir/serial_chain.cpp.o"
  "CMakeFiles/sysdp_nonserial.dir/serial_chain.cpp.o.d"
  "libsysdp_nonserial.a"
  "libsysdp_nonserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_nonserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
