file(REMOVE_RECURSE
  "libsysdp_nonserial.a"
)
