# Empty dependencies file for sysdp_nonserial.
# This may be replaced when dependencies are built.
