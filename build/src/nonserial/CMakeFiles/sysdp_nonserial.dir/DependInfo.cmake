
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nonserial/elimination.cpp" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/elimination.cpp.o" "gcc" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/elimination.cpp.o.d"
  "/root/repo/src/nonserial/grouping.cpp" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/grouping.cpp.o" "gcc" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/grouping.cpp.o.d"
  "/root/repo/src/nonserial/nonserial_generators.cpp" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/nonserial_generators.cpp.o" "gcc" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/nonserial_generators.cpp.o.d"
  "/root/repo/src/nonserial/objective.cpp" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/objective.cpp.o" "gcc" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/objective.cpp.o.d"
  "/root/repo/src/nonserial/serial_chain.cpp" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/serial_chain.cpp.o" "gcc" "src/nonserial/CMakeFiles/sysdp_nonserial.dir/serial_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
