# Empty compiler generated dependencies file for sysdp_tests.
# This may be replaced when dependencies are built.
