
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/andor_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/andor_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/andor_test.cpp.o.d"
  "/root/repo/tests/arrays_misc_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/arrays_misc_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/arrays_misc_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/design12_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/design12_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/design12_test.cpp.o.d"
  "/root/repo/tests/design3_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/design3_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/design3_test.cpp.o.d"
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/dnc_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/dnc_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/dnc_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/figures_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/figures_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/figures_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/metamorphic_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/metamorphic_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/metamorphic_test.cpp.o.d"
  "/root/repo/tests/modular_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/modular_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/modular_test.cpp.o.d"
  "/root/repo/tests/nonserial_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/nonserial_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/nonserial_test.cpp.o.d"
  "/root/repo/tests/reduction_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/reduction_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/reduction_test.cpp.o.d"
  "/root/repo/tests/scale_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/scale_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/scale_test.cpp.o.d"
  "/root/repo/tests/semiring_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/semiring_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/semiring_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/vlsi_dataflow_test.cpp" "tests/CMakeFiles/sysdp_tests.dir/vlsi_dataflow_test.cpp.o" "gcc" "tests/CMakeFiles/sysdp_tests.dir/vlsi_dataflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vlsi/CMakeFiles/sysdp_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sysdp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sysdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arrays/CMakeFiles/sysdp_arrays.dir/DependInfo.cmake"
  "/root/repo/build/src/dnc/CMakeFiles/sysdp_dnc.dir/DependInfo.cmake"
  "/root/repo/build/src/andor/CMakeFiles/sysdp_andor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sysdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sysdp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nonserial/CMakeFiles/sysdp_nonserial.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sysdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/semiring/CMakeFiles/sysdp_semiring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
