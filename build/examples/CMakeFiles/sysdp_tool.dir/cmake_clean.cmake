file(REMOVE_RECURSE
  "CMakeFiles/sysdp_tool.dir/sysdp_tool.cpp.o"
  "CMakeFiles/sysdp_tool.dir/sysdp_tool.cpp.o.d"
  "sysdp_tool"
  "sysdp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysdp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
