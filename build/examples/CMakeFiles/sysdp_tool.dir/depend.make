# Empty dependencies file for sysdp_tool.
# This may be replaced when dependencies are built.
