# Empty dependencies file for circuit_nonserial.
# This may be replaced when dependencies are built.
