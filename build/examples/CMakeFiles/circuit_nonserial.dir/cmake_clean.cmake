file(REMOVE_RECURSE
  "CMakeFiles/circuit_nonserial.dir/circuit_nonserial.cpp.o"
  "CMakeFiles/circuit_nonserial.dir/circuit_nonserial.cpp.o.d"
  "circuit_nonserial"
  "circuit_nonserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_nonserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
