# Empty compiler generated dependencies file for traffic_control.
# This may be replaced when dependencies are built.
