file(REMOVE_RECURSE
  "CMakeFiles/traffic_control.dir/traffic_control.cpp.o"
  "CMakeFiles/traffic_control.dir/traffic_control.cpp.o.d"
  "traffic_control"
  "traffic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
