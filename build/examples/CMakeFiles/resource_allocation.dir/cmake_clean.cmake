file(REMOVE_RECURSE
  "CMakeFiles/resource_allocation.dir/resource_allocation.cpp.o"
  "CMakeFiles/resource_allocation.dir/resource_allocation.cpp.o.d"
  "resource_allocation"
  "resource_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
