// Budget allocation as a (MAX,+) multistage DP on the Design 1 array.
//
// Allocate R budget units across A activities to maximise total profit —
// the "industrial engineering / economics" family the paper's introduction
// cites.  Stage k's nodes are cumulative units spent; profits ride the
// (MAX,+) semiring, so the identical systolic hardware that minimises path
// costs maximises profit (Section 3.1's closed-semiring generality).
//
//   ./resource_allocation [activities] [budget] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arrays/design1_pipeline.hpp"
#include "graph/generators.hpp"
#include "semiring/ops.hpp"

int main(int argc, char** argv) {
  using namespace sysdp;
  const std::size_t activities = argc > 1 ? std::stoul(argv[1]) : 5;
  const std::size_t budget = argc > 2 ? std::stoul(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 17;

  Rng rng(seed);
  const auto g = resource_allocation_instance(activities, budget, rng);
  std::printf("allocate %zu units across %zu activities\n\n", budget,
              activities);

  // The (MAX,+) string product: start from "profit 0 at every final spend".
  std::vector<Cost> v(budget + 1, MaxPlus::one());
  Design1Pipeline<MaxPlus> array(g.matrix_string(), v);
  Design1Pipeline<MaxPlus>::ArgTables args;
  const auto res = array.run(&args);
  const Cost best = *std::max_element(res.values.begin(), res.values.end());
  std::printf("max total profit: %s  (%llu cycles on %zu PEs)\n",
              cost_to_string(best).c_str(),
              static_cast<unsigned long long>(res.cycles), res.num_pes);

  // Trace the allocation through the recorded arg tables.
  std::size_t spent = 0;
  std::printf("plan:\n");
  for (std::size_t k = 0; k < activities; ++k) {
    const std::size_t next = args[k][spent];
    std::printf("  activity %zu gets %zu unit(s) (profit %s)\n", k,
                next - spent,
                cost_to_string(g.edge(k, spent, next)).c_str());
    spent = next;
  }
  std::printf("total spent: %zu of %zu\n", spent, budget);

  // Sequential (MAX,+) sweep as the oracle.
  const auto check = string_mat_vec<MaxPlus>(g.matrix_string(), v);
  const Cost oracle = *std::max_element(check.begin(), check.end());
  std::printf("\nsequential check: %s -> %s\n",
              cost_to_string(oracle).c_str(),
              oracle == best ? "agree" : "MISMATCH");
  return oracle == best ? 0 : 1;
}
