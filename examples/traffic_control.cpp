// Traffic-light timing with Design 3 (Figure 5).
//
// Section 2.2's traffic-control application: each stage is one signal whose
// quantised values are candidate change times; the edge cost is the timing
// difference between consecutive signals.  Design 3 streams only the node
// values into the array (the order-of-magnitude I/O saving of Section 3.2)
// and its path registers recover the optimal schedule.
//
//   ./traffic_control [signals] [candidates] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arrays/design3_feedback.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/multistage_dp.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace sysdp;
  const std::size_t signals = argc > 1 ? std::stoul(argv[1]) : 6;
  const std::size_t candidates = argc > 2 ? std::stoul(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 7;

  Rng rng(seed);
  const NodeValueGraph nv =
      traffic_control_instance(signals, candidates, rng);
  std::printf("traffic-control instance: %zu signals, %zu candidate change "
              "times each\n\n",
              signals, candidates);
  for (std::size_t s = 0; s < signals; ++s) {
    std::printf("  signal %zu candidates (s):", s);
    for (Cost v : nv.stage_values(s)) {
      std::printf(" %3lld", static_cast<long long>(v));
    }
    std::printf("\n");
  }

  Design3Feedback array(nv);
  const auto res = array.run();
  std::printf("\nDesign 3 array  : %zu PEs, %llu iterations ((N+1)m = %llu)"
              "\n",
              candidates, static_cast<unsigned long long>(res.stats.cycles),
              static_cast<unsigned long long>(array.iterations()));
  std::printf("total timing gap: %s\n", cost_to_string(res.cost).c_str());
  std::printf("chosen schedule :");
  for (std::size_t s = 0; s < signals; ++s) {
    std::printf(" %lld",
                static_cast<long long>(nv.value(s, res.path[s])));
  }
  std::printf("\n");
  std::printf("I/O             : %llu node values streamed in (edge-cost "
              "form would need %zu scalars)\n",
              static_cast<unsigned long long>(res.stats.input_scalars),
              nv.edge_scalars());
  std::printf("utilisation     : measured %.4f, paper formula %.4f\n",
              res.stats.utilization_wall(),
              analytic_pu_design3(signals, candidates));

  const auto ref = solve_multistage(nv.materialize());
  std::printf("\nsequential check: cost %s -> %s\n",
              cost_to_string(ref.cost).c_str(),
              ref.cost == res.cost ? "agree" : "MISMATCH");
  return ref.cost == res.cost ? 0 : 1;
}
