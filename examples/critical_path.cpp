// Critical-path (PERT) analysis with the (MAX,+) semiring on Design 1.
//
// The array designs are templated on the closed semiring (Section 3.1), so
// the same pipelined hardware that finds shortest paths over (MIN,+) finds
// the *longest* path — the project's critical path — over (MAX,+), and the
// bottleneck route over (MIN,MAX).  Stages are project phases; nodes are
// alternative activities with random durations.
//
//   ./critical_path [phases] [alternatives] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arrays/design1_pipeline.hpp"
#include "arrays/graph_adapter.hpp"
#include "graph/generators.hpp"
#include "semiring/ops.hpp"

int main(int argc, char** argv) {
  using namespace sysdp;
  const std::size_t phases = argc > 1 ? std::stoul(argv[1]) : 7;
  const std::size_t alts = argc > 2 ? std::stoul(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 13;

  Rng rng(seed);
  const auto g = random_multistage(phases, alts, rng, 1, 20);
  std::printf("project network: %zu phases x %zu alternative activities\n\n",
              phases, alts);

  auto prob = to_string_product(g);

  // (MAX,+): the longest (critical) chain of activity durations.
  {
    std::vector<Cost> v(alts, MaxPlus::one());
    Design1Pipeline<MaxPlus> arr(prob.mats, v);
    const auto res = arr.run();
    const Cost critical =
        *std::max_element(res.values.begin(), res.values.end());
    const auto check = string_mat_vec<MaxPlus>(prob.mats, v);
    std::printf("critical path length (MAX,+): %s  [%llu cycles, check %s]\n",
                cost_to_string(critical).c_str(),
                static_cast<unsigned long long>(res.cycles),
                res.values == check ? "ok" : "MISMATCH");
  }

  // (MIN,+): the fastest route, same hardware, different semiring.
  {
    std::vector<Cost> v(alts, MinPlus::one());
    Design1Pipeline<MinPlus> arr(prob.mats, v);
    const auto res = arr.run();
    std::printf("fastest route        (MIN,+): %s\n",
                cost_to_string(*std::min_element(res.values.begin(),
                                                 res.values.end()))
                    .c_str());
  }

  // (MIN,MAX): the bottleneck route — minimise the longest single activity.
  {
    std::vector<Cost> v(alts, MinMax::one());
    Design1Pipeline<MinMax> arr(prob.mats, v);
    const auto res = arr.run();
    const auto check = string_mat_vec<MinMax>(prob.mats, v);
    std::printf("bottleneck route   (MIN,MAX): %s  [check %s]\n",
                cost_to_string(*std::min_element(res.values.begin(),
                                                 res.values.end()))
                    .c_str(),
                res.values == check ? "ok" : "MISMATCH");
  }
  return 0;
}
