// Optimal matrix-multiplication order as a polyadic-nonserial DP problem
// (Sections 2.2, 4, 6.2).
//
// Builds the Figure 2 AND/OR-graph, serialises it with dummy nodes
// (Figure 8), runs the GKT triangular systolic array, and compares the
// broadcast (T_d = N) and pipelined (T_p = 2N) evaluation schedules —
// then uses the recovered order to drive the divide-and-conquer scheduler
// of Section 4 on k systolic arrays.
//
//   ./matrix_chain [matrices] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "andor/chain_builder.hpp"
#include "andor/level_schedule.hpp"
#include "andor/serialize.hpp"
#include "arrays/gkt_array.hpp"
#include "arrays/paper_metrics.hpp"
#include "baseline/matrix_chain.hpp"
#include "dnc/metrics.hpp"
#include "dnc/schedule.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace sysdp;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 11;

  Rng rng(seed);
  const auto dims = random_chain_dims(n, rng, 5, 60);
  std::printf("matrix chain: %zu matrices, dims", n);
  for (Cost d : dims) std::printf(" %lld", static_cast<long long>(d));
  std::printf("\n\n");

  // Sequential table DP (eq. 6).
  const auto base = matrix_chain_order(dims);
  std::printf("sequential DP    : cost %s, order %s\n",
              cost_to_string(base.total()).c_str(),
              base.parenthesization().c_str());

  // AND/OR-graph search (Figure 2) and its serialisation (Figure 8).
  const auto chain = build_chain_andor(dims);
  std::printf("AND/OR-graph     : %zu nodes (%zu AND, %zu OR), serial: %s\n",
              chain.graph.size(), chain.graph.count(AndOrType::kAnd),
              chain.graph.count(AndOrType::kOr),
              chain.graph.is_serial() ? "yes" : "no");
  const auto ser = serialize_andor(chain.graph);
  std::printf("serialised       : +%llu dummy nodes, now serial: %s\n",
              static_cast<unsigned long long>(ser.dummies_added),
              ser.graph.is_serial() ? "yes" : "no");

  // Evaluation schedules: Propositions 2 and 3.
  std::printf("broadcast map    : T_d = %llu steps (= N)\n",
              static_cast<unsigned long long>(
                  simulate_chain_broadcast(n).completion));
  std::printf("pipelined map    : T_p = %llu steps (= 2N)\n",
              static_cast<unsigned long long>(
                  simulate_chain_pipelined(n).completion));

  // GKT triangular systolic array.
  GktArray gkt(dims);
  const auto run = gkt.run();
  std::printf("GKT array        : cost %s in %llu cycles on %zu cells\n",
              cost_to_string(run.total()).c_str(),
              static_cast<unsigned long long>(run.completion()),
              gkt.num_cells());

  // Section 4: once the order is known, execute the products on k arrays.
  std::printf("\ndivide-and-conquer execution of the string itself "
              "(unit-size stage matrices):\n");
  for (const std::uint64_t k : {1u, 4u, 16u}) {
    const auto sched = schedule_and_tree(n, k);
    std::printf("  k = %2llu arrays: %llu steps (eq. 29 predicts %llu), "
                "PU %.3f\n",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(sched.makespan),
                static_cast<unsigned long long>(dnc_time_eq29(n, k)),
                sched.utilization(k));
  }

  const bool ok = run.total() == base.total() &&
                  chain.solve() == base.total();
  std::printf("\nall methods agree: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
