// Netlist linter over every shipped systolic-array model.
//
//   sysdp_lint [--json] [--fail-on <error|warning|note>] [--design <substr>]
//              [--list]
//
// Elaborates each example array (Designs 1-3, the GKT chain array, and the
// generic triangular family) at several sizes on a fresh engine, captures
// the dataflow netlist, and runs the five analysis checks.  Text output is
// one report per design; --json emits one sysdp-lint-v1 document with all
// reports, which CI archives.  The exit status is nonzero if any design
// has a finding at or above the --fail-on severity (default: error), so
// the lint run gates merges exactly like a test.
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/netlist.hpp"
#include "arrays/design1_modular.hpp"
#include "arrays/design2_modular.hpp"
#include "arrays/design3_modular.hpp"
#include "arrays/gkt_modular.hpp"
#include "arrays/triangular_array.hpp"
#include "arrays/triangular_modular.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sysdp;

int usage() {
  std::fprintf(stderr,
               "usage: sysdp_lint [--json] [--fail-on <error|warning|note>]\n"
               "                  [--design <substring>] [--list]\n");
  return 2;
}

/// Deterministic instance inputs: the lint gate must flag the same netlist
/// every run, so all sizes and seeds are fixed here.
std::vector<Cost> deterministic_costs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  std::uniform_int_distribution<Cost> dist(1, 50);
  std::vector<Cost> out(n);
  for (auto& x : out) x = dist(rng);
  return out;
}

/// Elaborate `arr` into a fresh gated engine, capture the netlist with the
/// design's environment taps, and run all checks.
template <typename Array>
analysis::LintReport lint_array(Array& arr, const std::string& name) {
  sim::Engine engine(sim::Gating::kSparse);
  arr.elaborate(engine);
  analysis::CaptureOptions opts;
  arr.describe_environment(opts.environment);
  return analysis::Linter().run(analysis::capture(engine, opts), name);
}

struct Named {
  std::string name;
  std::function<analysis::LintReport()> run;
};

std::vector<Named> all_designs() {
  std::vector<Named> out;
  // Design 1: distributed-control string-product array.
  for (auto [q, m] : {std::pair<std::size_t, std::size_t>{2, 3}, {4, 6}}) {
    std::string name = "design1-modular[q" + std::to_string(q) + ",m" +
                       std::to_string(m) + "]";
    out.push_back({name, [q = q, m = m, name] {
                     Rng rng(11 * q + m);
                     Design1Modular arr(random_matrix_string(q, m, rng),
                                        deterministic_costs(m, q));
                     return lint_array(arr, name);
                   }});
  }
  // Design 2: broadcast-bus array.
  for (auto [q, m] : {std::pair<std::size_t, std::size_t>{2, 3}, {3, 5}}) {
    std::string name = "design2-modular[q" + std::to_string(q) + ",m" +
                       std::to_string(m) + "]";
    out.push_back({name, [q = q, m = m, name] {
                     Rng rng(13 * q + m);
                     Design2Modular arr(random_matrix_string(q, m, rng),
                                        deterministic_costs(m, q + 7));
                     return lint_array(arr, name);
                   }});
  }
  // Design 3: feedback array over node-value graphs.
  for (auto [stages, width] :
       {std::pair<std::size_t, std::size_t>{3, 2}, {6, 4}}) {
    std::string name = "design3-modular[s" + std::to_string(stages) + ",w" +
                       std::to_string(width) + "]";
    out.push_back({name, [stages = stages, width = width, name] {
                     Rng rng(17 * stages + width);
                     const auto graph =
                         traffic_control_instance(stages, width, rng);
                     Design3Modular arr(graph);
                     return lint_array(arr, name);
                   }});
  }
  // GKT matrix-chain triangle.
  for (std::size_t m : {3u, 6u}) {
    std::string name = "gkt-modular[m" + std::to_string(m) + "]";
    out.push_back({name, [m, name] {
                     GktModularArray arr(deterministic_costs(m + 1, m));
                     return lint_array(arr, name);
                   }});
  }
  // Generic triangular family: one netlist per rule.
  for (std::size_t n : {4u, 7u}) {
    std::string bst = "triangular-bst[n" + std::to_string(n) + "]";
    out.push_back({bst, [n, bst] {
                     TriangularModularArray<BstRule> arr(
                         BstRule(deterministic_costs(n, n)), n);
                     return lint_array(arr, bst);
                   }});
    std::string poly = "triangular-polygon[n" + std::to_string(n) + "]";
    out.push_back({poly, [n, poly] {
                     TriangularModularArray<PolygonRule> arr(
                         PolygonRule(deterministic_costs(n, n + 3)), n);
                     return lint_array(arr, poly);
                   }});
    std::string chain = "triangular-chain[n" + std::to_string(n) + "]";
    out.push_back({chain, [n, chain] {
                     TriangularModularArray<ChainRule> arr(
                         ChainRule(deterministic_costs(n + 1, n + 5)), n);
                     return lint_array(arr, chain);
                   }});
  }
  return out;
}

bool parse_severity(std::string_view s, analysis::Severity& out) {
  if (s == "error") {
    out = analysis::Severity::kError;
  } else if (s == "warning") {
    out = analysis::Severity::kWarning;
  } else if (s == "note") {
    out = analysis::Severity::kNote;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list = false;
  std::string filter;
  analysis::Severity fail_at = analysis::Severity::kError;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--design" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--fail-on" && i + 1 < argc) {
      if (!parse_severity(argv[++i], fail_at)) return usage();
    } else {
      return usage();
    }
  }

  auto designs = all_designs();
  if (list) {
    for (const auto& d : designs) std::printf("%s\n", d.name.c_str());
    return 0;
  }

  std::vector<analysis::LintReport> reports;
  for (const auto& d : designs) {
    if (!filter.empty() && d.name.find(filter) == std::string::npos) continue;
    reports.push_back(d.run());
  }
  if (reports.empty()) {
    std::fprintf(stderr, "sysdp_lint: no design matches '%s'\n",
                 filter.c_str());
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool failed = false;
  for (const auto& r : reports) {
    errors += r.errors();
    warnings += r.warnings();
    failed = failed || !r.clean(fail_at);
  }

  if (json) {
    std::string doc = "{\"schema\": \"sysdp-lint-v1\", \"designs\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) doc += ", ";
      doc += reports[i].to_json();
    }
    doc += "], \"total_errors\": " + std::to_string(errors) +
           ", \"total_warnings\": " + std::to_string(warnings) + "}";
    std::printf("%s\n", doc.c_str());
  } else {
    for (const auto& r : reports) std::printf("%s", r.to_text().c_str());
    std::printf("sysdp_lint: %zu design(s), %zu error(s), %zu warning(s)\n",
                reports.size(), errors, warnings);
  }
  return failed ? 1 : 0;
}
