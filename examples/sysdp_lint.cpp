// Static checks over every shipped systolic-array model.
//
//   sysdp_lint [--tape] [--json] [--fail-on <error|warning|note>]
//              [--design <substr>] [--list]
//
// Two gates share this driver:
//
//   default     — netlist lint.  Elaborates each example array (Designs
//                 1-3, the GKT chain array, and the generic triangular
//                 family) at the registry's fixed sizes on a fresh engine,
//                 captures the dataflow netlist, and runs the analysis
//                 checks (schema sysdp-lint-v1).
//   --tape      — tape verification.  Lowers each instance to a compiled
//                 flat netlist and runs analysis::TapeVerifier over seven
//                 variants per design: the raw SSA tape (#ssa), the
//                 live-range-compacted tape (#compacted), a parameterised
//                 tape re-verified under a perturbed weight binding
//                 (#rebound) — proving the static guarantees hold for
//                 rebound replays, not just the oracle's weights — and the
//                 optimizer sweep (#opt1, #opt2, #opt1-rebound,
//                 #opt2-rebound): each optimizer level in compacted and
//                 rebound-parameterised form, proving every pass pipeline
//                 preserves the checks the recorder established
//                 (schema sysdp-tapelint-v1).
//
// Text output is one report per design (per tape variant with --tape);
// --json emits one document with all reports, which CI archives.  The
// exit status is nonzero if any report has a finding at or above the
// --fail-on severity (default: error), so both runs gate merges exactly
// like tests.
//
// The instance set is examples/design_registry.hpp — shared with
// sysdp_trace, so the gates certify exactly the netlists and tapes the
// trace tool records.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/netlist.hpp"
#include "analysis/tape_verify.hpp"
#include "compile/lower.hpp"
#include "design_registry.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sysdp;

int usage() {
  std::fprintf(stderr,
               "usage: sysdp_lint [--tape] [--json]\n"
               "                  [--fail-on <error|warning|note>]\n"
               "                  [--design <substring>] [--list]\n");
  return 2;
}

/// Elaborate one registry instance into a fresh gated engine, capture the
/// netlist with the design's environment taps, and run all checks.
analysis::LintReport lint_design(const examples::DesignSpec& spec) {
  const auto inst = spec.make();
  sim::Engine engine(sim::Gating::kSparse);
  inst->elaborate(engine);
  analysis::CaptureOptions opts;
  inst->describe_environment(opts.environment);
  return analysis::Linter().run(analysis::capture(engine, opts), spec.name);
}

/// Verify a parameterised lowering of `spec` under a perturbed rebinding
/// (every finite oracle weight +1 — deterministic, and different enough
/// that a verifier accidentally reading the baked immediates would certify
/// the wrong value ranges).
analysis::TapeVerifyReport verify_rebound(const examples::DesignSpec& spec,
                                          compile::LowerOptions opt,
                                          const std::string& variant) {
  opt.parameterise = true;
  const auto low = spec.make()->lower(opt);
  analysis::TapeVerifyOptions vopt;
  vopt.bound_weights = low.net.params;
  for (Cost& w : vopt.bound_weights) {
    if (!is_inf(w) && !is_neg_inf(w)) w += 1;
  }
  return analysis::verify_tape(low.net, spec.name + variant, vopt);
}

/// Lower one registry instance seven ways and verify each tape: the SSA
/// tape, the compacted tape, a parameterised tape under a perturbed
/// rebinding, and — for each optimizer level — the optimized compacted
/// tape plus its rebound-parameterised twin.  The optimizer sweep is the
/// gate that keeps every pass pipeline honest: whatever fusion, reordering
/// and pruning did, the nine static checks must still hold, under the
/// oracle's weights and under a rebinding alike.
std::vector<analysis::TapeVerifyReport> verify_design(
    const examples::DesignSpec& spec) {
  std::vector<analysis::TapeVerifyReport> out;

  compile::LowerOptions ssa;
  ssa.compact = false;
  out.push_back(analysis::verify_tape(spec.make()->lower(ssa).net,
                                      spec.name + "#ssa"));

  out.push_back(analysis::verify_tape(spec.make()->lower({}).net,
                                      spec.name + "#compacted"));

  out.push_back(verify_rebound(spec, {}, "#rebound"));

  for (int level = 1; level <= 2; ++level) {
    compile::LowerOptions oopt;
    oopt.optimize = level;
    const std::string tag = "#opt" + std::to_string(level);
    out.push_back(
        analysis::verify_tape(spec.make()->lower(oopt).net, spec.name + tag));
    out.push_back(verify_rebound(spec, oopt, tag + "-rebound"));
  }
  return out;
}

bool parse_severity(std::string_view s, analysis::Severity& out) {
  if (s == "error") {
    out = analysis::Severity::kError;
  } else if (s == "warning") {
    out = analysis::Severity::kWarning;
  } else if (s == "note") {
    out = analysis::Severity::kNote;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list = false;
  bool tape = false;
  std::string filter;
  analysis::Severity fail_at = analysis::Severity::kError;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--tape") {
      tape = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--design" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--fail-on" && i + 1 < argc) {
      if (!parse_severity(argv[++i], fail_at)) return usage();
    } else {
      return usage();
    }
  }

  const auto designs = examples::all_designs();
  if (list) {
    for (const auto& d : designs) std::printf("%s\n", d.name.c_str());
    return 0;
  }

  if (tape) {
    std::vector<analysis::TapeVerifyReport> reports;
    for (const auto& d : designs) {
      if (!filter.empty() && d.name.find(filter) == std::string::npos) {
        continue;
      }
      for (auto& r : verify_design(d)) reports.push_back(std::move(r));
    }
    if (reports.empty()) {
      std::fprintf(stderr, "sysdp_lint: no design matches '%s'\n",
                   filter.c_str());
      return 2;
    }
    std::size_t errors = 0;
    std::size_t warnings = 0;
    bool failed = false;
    for (const auto& r : reports) {
      errors += r.errors();
      warnings += r.warnings();
      failed = failed || !r.clean(fail_at);
    }
    if (json) {
      std::string doc = "{\"schema\": \"sysdp-tapelint-v1\", \"tapes\": [";
      for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i > 0) doc += ", ";
        doc += reports[i].to_json();
      }
      doc += "], \"total_errors\": " + std::to_string(errors) +
             ", \"total_warnings\": " + std::to_string(warnings) + "}";
      std::printf("%s\n", doc.c_str());
    } else {
      for (const auto& r : reports) std::printf("%s", r.to_text().c_str());
      std::printf("sysdp_lint: %zu tape(s), %zu error(s), %zu warning(s)\n",
                  reports.size(), errors, warnings);
    }
    return failed ? 1 : 0;
  }

  std::vector<analysis::LintReport> reports;
  for (const auto& d : designs) {
    if (!filter.empty() && d.name.find(filter) == std::string::npos) continue;
    reports.push_back(lint_design(d));
  }
  if (reports.empty()) {
    std::fprintf(stderr, "sysdp_lint: no design matches '%s'\n",
                 filter.c_str());
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool failed = false;
  for (const auto& r : reports) {
    errors += r.errors();
    warnings += r.warnings();
    failed = failed || !r.clean(fail_at);
  }

  if (json) {
    // tape_schema names the sibling document sysdp_lint --tape emits, so a
    // consumer holding only this report knows which tape-report revision
    // the same binary would produce.
    std::string doc =
        "{\"schema\": \"sysdp-lint-v1\", "
        "\"tape_schema\": \"sysdp-tapelint-v1\", \"designs\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) doc += ", ";
      doc += reports[i].to_json();
    }
    doc += "], \"total_errors\": " + std::to_string(errors) +
           ", \"total_warnings\": " + std::to_string(warnings) + "}";
    std::printf("%s\n", doc.c_str());
  } else {
    for (const auto& r : reports) std::printf("%s", r.to_text().c_str());
    std::printf("sysdp_lint: %zu design(s), %zu error(s), %zu warning(s)\n",
                reports.size(), errors, warnings);
  }
  return failed ? 1 : 0;
}
