// Netlist linter over every shipped systolic-array model.
//
//   sysdp_lint [--json] [--fail-on <error|warning|note>] [--design <substr>]
//              [--list]
//
// Elaborates each example array (Designs 1-3, the GKT chain array, and the
// generic triangular family) at the registry's fixed sizes on a fresh
// engine, captures the dataflow netlist, and runs the analysis checks.
// Text output is one report per design; --json emits one sysdp-lint-v1
// document with all reports, which CI archives.  The exit status is
// nonzero if any design has a finding at or above the --fail-on severity
// (default: error), so the lint run gates merges exactly like a test.
//
// The instance set is examples/design_registry.hpp — shared with
// sysdp_trace, so the lint gate certifies exactly the netlists the trace
// tool records.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/netlist.hpp"
#include "design_registry.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sysdp;

int usage() {
  std::fprintf(stderr,
               "usage: sysdp_lint [--json] [--fail-on <error|warning|note>]\n"
               "                  [--design <substring>] [--list]\n");
  return 2;
}

/// Elaborate one registry instance into a fresh gated engine, capture the
/// netlist with the design's environment taps, and run all checks.
analysis::LintReport lint_design(const examples::DesignSpec& spec) {
  const auto inst = spec.make();
  sim::Engine engine(sim::Gating::kSparse);
  inst->elaborate(engine);
  analysis::CaptureOptions opts;
  inst->describe_environment(opts.environment);
  return analysis::Linter().run(analysis::capture(engine, opts), spec.name);
}

bool parse_severity(std::string_view s, analysis::Severity& out) {
  if (s == "error") {
    out = analysis::Severity::kError;
  } else if (s == "warning") {
    out = analysis::Severity::kWarning;
  } else if (s == "note") {
    out = analysis::Severity::kNote;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list = false;
  std::string filter;
  analysis::Severity fail_at = analysis::Severity::kError;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--design" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--fail-on" && i + 1 < argc) {
      if (!parse_severity(argv[++i], fail_at)) return usage();
    } else {
      return usage();
    }
  }

  const auto designs = examples::all_designs();
  if (list) {
    for (const auto& d : designs) std::printf("%s\n", d.name.c_str());
    return 0;
  }

  std::vector<analysis::LintReport> reports;
  for (const auto& d : designs) {
    if (!filter.empty() && d.name.find(filter) == std::string::npos) continue;
    reports.push_back(lint_design(d));
  }
  if (reports.empty()) {
    std::fprintf(stderr, "sysdp_lint: no design matches '%s'\n",
                 filter.c_str());
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool failed = false;
  for (const auto& r : reports) {
    errors += r.errors();
    warnings += r.warnings();
    failed = failed || !r.clean(fail_at);
  }

  if (json) {
    std::string doc = "{\"schema\": \"sysdp-lint-v1\", \"designs\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) doc += ", ";
      doc += reports[i].to_json();
    }
    doc += "], \"total_errors\": " + std::to_string(errors) +
           ", \"total_warnings\": " + std::to_string(warnings) + "}";
    std::printf("%s\n", doc.c_str());
  } else {
    for (const auto& r : reports) std::printf("%s", r.to_text().c_str());
    std::printf("sysdp_lint: %zu design(s), %zu error(s), %zu warning(s)\n",
                reports.size(), errors, warnings);
  }
  return failed ? 1 : 0;
}
